// Figures 14-16: diffuse-procedure.
//  Fig 14: PC output (threshold lowered to 0.2, as the paper did) --
//          MPI_Barrier sync bottleneck + CPU bound in
//          bottleneckProcedure.
//  Fig 15: CPU-inclusive histogram for three procedures -- roughly one
//          CPU's worth in bottleneckProcedure (~1/nprocs per process,
//          why the default 0.3 threshold missed it), ~nothing in the
//          irrelevant procedures.
//  Fig 16: Jumpshot Time Lines -- every process spends about the same
//          total time in MPI_Barrier.
#include "bench_common.hpp"

#include "trace/mpe.hpp"
#include "util/ascii_chart.hpp"
#include "util/clock.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 14-16", "diffuse-procedure");
    bench::Grader g;

    // ---- Figure 14: PC output at threshold 0.2 ---------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        ppm::Params p = bench::pc_params(ppm::kDiffuseProcedure);
        core::PerformanceConsultant::Options o = bench::pc_options();
        o.cpu_threshold = 0.2;  // "We set the threshold for CPU usage to 0.2"
        const bench::PcRun run = bench::run_pc(flavor, ppm::kDiffuseProcedure, 4, p, o);
        std::printf("\n--- Fig 14 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) + ": MPI_Barrier bottleneck",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Barrier") ||
                    run.report.found("ExcessiveSyncWaitingTime",
                                     "/SyncObject/Barrier"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": CPU bound in bottleneckProcedure",
                run.report.found("CPUBound", "bottleneckProcedure"));
    }

    // ---- Figure 15: CPU inclusive for three procedures --------------------
    {
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;
        core::Session s(simmpi::Flavor::Lam, {}, wcfg);
        ppm::Params p;
        p.iterations = 300;
        p.time_to_waste = 2;
        p.waste_unit_seconds = 0.002;
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kDiffuseProcedure, {}, 4);
        s.tool().flush();
        auto for_fn = [&](const std::string& fn) {
            core::Focus f;
            f.code = "/Code/pperfmark/" + fn;
            return s.tool().metrics().request("cpu_inclusive", f);
        };
        auto hot = for_fn("bottleneckProcedure");
        auto irr0 = for_fn("irrelevantProcedure0");
        auto irr1 = for_fn("irrelevantProcedure1");
        const double t0 = util::wall_seconds();
        s.world().release_start_gate();
        s.world().join_all();
        const double wall = util::wall_seconds() - t0;

        std::printf("\n--- Fig 15: CPU inclusive across the whole program ---\n");
        std::printf("%s",
                    util::render_chart({{"bottleneckProcedure",
                                         hot->histogram().values()},
                                        {"irrelevantProcedure0",
                                         irr0->histogram().values()}},
                                       hot->histogram().bin_width(), 5,
                                       "CPU-seconds")
                        .c_str());
        util::TextTable t({"procedure", "CPU-seconds", "CPUs (avg)", "per process"});
        const double cpus = hot->total() / wall;
        t.add_row({"bottleneckProcedure", util::fmt(hot->total(), 3),
                   util::fmt(cpus, 2), util::fmt(cpus / 4.0, 2)});
        t.add_row({"irrelevantProcedure0", util::fmt(irr0->total(), 4), "~0", "~0"});
        t.add_row({"irrelevantProcedure1", util::fmt(irr1->total(), 4), "~0", "~0"});
        std::printf("%s", t.render().c_str());
        std::printf("paper: ~1 CPU in bottleneckProcedure / 4 processes = 0.25 each,\n"
                    "       which is why the PC needed the threshold lowered to 0.2\n"
                    "(note: this host has %u core(s); the per-process share is the "
                    "same computation)\n",
                    std::thread::hardware_concurrency());
        // The diffused bottleneck occupies one waster at a time: about
        // one core's worth of CPU.
        g.check("bottleneckProcedure uses ~1 CPU's worth of time",
                cpus > 0.5 && cpus < 1.3);
        g.check("irrelevant procedures use essentially none",
                irr0->total() + irr1->total() < 0.05 * hot->total());
        for (auto* pr : {&hot, &irr0, &irr1}) s.tool().metrics().release(*pr);
    }

    // ---- Figure 16: time lines -- barrier time balanced over processes ----
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p;
        p.iterations = 40;
        p.time_to_waste = 2;
        p.waste_unit_seconds = 0.002;
        ppm::register_all(s.world(), p);
        trace::MpeLogger mpe(s.world());
        s.run(ppm::kDiffuseProcedure, 3);
        std::printf("\n--- Fig 16: time lines ---\n%s",
                    trace::render_timelines(mpe.log(), 3, 72).c_str());
        // Per-rank barrier totals should be roughly equal ("each of the
        // processes ... approximately the same amount of time in
        // MPI_Barrier").
        double per_rank[3] = {0, 0, 0};
        for (const trace::TraceEvent& e : mpe.log().events())
            if (e.state == "MPI_Barrier" && e.rank >= 0 && e.rank < 3)
                per_rank[e.rank] += e.t1 - e.t0;
        const double mx = std::max({per_rank[0], per_rank[1], per_rank[2]});
        const double mn = std::min({per_rank[0], per_rank[1], per_rank[2]});
        std::printf("per-rank MPI_Barrier seconds: %.3f / %.3f / %.3f\n", per_rank[0],
                    per_rank[1], per_rank[2]);
        g.check("barrier time balanced across processes (max < 2x min)",
                mn > 0.0 && mx < 2.0 * mn);
    }

    std::printf("\nFigures 14-16 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
