// RMA data-plane ablation: per-op cost of the rebuilt one-sided engine
// (per-target shards, zero-copy direct apply, per-epoch completion
// tokens, epoch-batched Table-1 counters) against an in-binary replica
// of the design it replaced, mirrored call for call from the git
// history of src/simmpi/rank_rma.cpp: one mutex per window with every
// transfer applied under it after a `members` map lookup, a staging
// payload copy on every Put/Accumulate (double copy), per-target
// PassiveLock / Exposure maps consulted under that same mutex,
// held-lock and access-epoch bookkeeping in per-rank std::maps,
// blocking syncs that poll in 5 ms liveness slices with a
// wait_deadline() clock read and a doom check per wake, and per-op
// atomic counter maintenance on a shared cache line.  Helpers the seed
// called across translation-unit boundaries (datatype_size, rma_check,
// rma_transfer_now, fault_point) are noinline here for the same
// reason: the seed build could not fold them away.
//
// The replica fires the same MPI_/PMPI_ FunctionGuard pairs -- with
// the same argument arrays, built twice per call as the seed did -- on
// a real instrumentation Registry, so both sides pay identical
// tool-facing dispatch costs and the difference isolates the RMA data
// plane.
//
// The graded shape is the 16-rank contended lock handoff: every rank
// queues on rank 0's exclusive lock, moves 8 bytes, and unlocks.  The
// legacy design broadcasts notify_all on every unlock, so each
// handoff wakes all ~15 parked waiters to re-check a predicate only
// one of them can win -- on a single core that is a scheduler storm
// per epoch -- while the rebuilt engine's FIFO lock queue wakes
// exactly the one next holder.  Per-op epoch shapes (fence-heavy,
// PSCW, per-own-target and all-on-one-target lock epochs with the
// full transfer payload) are reported ungraded: they show the
// staging-copy, map-walk, and counter-batching deltas.
//
// A counter-identity workload (fence + passive phases mixing all three
// op kinds) is graded: the replica's per-op counters and the rebuilt
// engine's epoch-batched totals must agree bit for bit.
//
// `--smoke` runs a tiny iteration count and skips the performance
// thresholds (CI uses it to assert the harness and JSON stay sound).
#include "bench_common.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "instr/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace m2p;

double wall_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Every rank stamps its own section start/end; the measured interval
/// is max(end) - min(start).  A single designated stamper races the
/// workload on a loaded host: if it is descheduled right after the
/// opening barrier, the other ranks' work happens before its t0 and
/// the interval under-reports (badly -- we measured 10x).
void stamp_min(std::atomic<double>& a, double v) {
    double cur = a.load();
    while ((cur == 0.0 || v < cur) && !a.compare_exchange_weak(cur, v)) {}
}

void stamp_max(std::atomic<double>& a, double v) {
    double cur = a.load();
    while (v > cur && !a.compare_exchange_weak(cur, v)) {}
}

// ---------------------------------------------------------------------------
// Replica of the RMA plane this PR replaced (see git history of
// src/simmpi/rank_rma.cpp).  Structures and call sequences mirror the
// seed one for one; only names are shortened.
// ---------------------------------------------------------------------------

/// The seed's blocking-wait slice: park 5 ms at a time so death /
/// poison / deadline can be noticed between waits.
constexpr auto kLivenessSlice = std::chrono::milliseconds(5);

/// Replica datatype handles (the seed's datatype_size switch).
constexpr int kByteT = 0;
constexpr int kIntT = 1;

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

std::int64_t as_arg(const void* p) {
    return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(p));
}

/// Cross-TU in the seed, so never inlined there; keep that true here.
[[gnu::noinline]] std::int64_t legacy_datatype_size(int dt) {
    switch (dt) {
        case kByteT: return 1;
        case kIntT: return 4;
        default: return 8;
    }
}

struct LegacyRmaCounters {
    std::atomic<std::int64_t> put_ops{0}, get_ops{0}, acc_ops{0};
    std::atomic<std::int64_t> put_bytes{0}, get_bytes{0}, acc_bytes{0};
    std::atomic<std::int64_t> rma_ops{0}, rma_bytes{0};  ///< kept per-op, as the seed did
    std::atomic<std::int64_t> sync_ops{0};
};

struct LegacyRmaOp {
    int kind = 0;  ///< 0 put, 1 get, 2 accumulate (int32 sum)
    int target = -1;
    std::vector<std::byte> payload;    ///< staging copy (put/acc), as the seed made
    std::byte* origin_addr = nullptr;  ///< get destination
    std::int64_t disp = 0, nbytes = 0;
};

struct LegacyWinMember {
    std::byte* base = nullptr;
    std::int64_t size = 0;
    int disp_unit = 1;
};

struct LegacyPassiveLock {
    bool exclusive = false;
    int shared_holders = 0;
    std::condition_variable cv;
};

struct LegacyExposure {
    bool exposed = false;
    std::vector<int> group;
    std::vector<int> started;
    int completes = 0;
    std::condition_variable cv;
};

/// The seed's per-process fault_point state (last MPI call + call
/// count), stored per replica rank.
struct LegacyProc {
    std::atomic<const char*> last_call{nullptr};
    std::atomic<std::uint64_t> calls{0};
};

struct LegacyRmaWin {
    LegacyRmaWin(std::vector<std::byte*> bases, std::int64_t bytes, int nranks)
        : n(nranks), procs(static_cast<std::size_t>(nranks)) {
        for (int r = 0; r < nranks; ++r)
            members[r] =
                LegacyWinMember{bases[static_cast<std::size_t>(r)], bytes, 1};
    }

    std::mutex mu;  ///< the one per-window mutex everything serializes on
    std::condition_variable fence_cv;
    std::map<int, LegacyWinMember> members;  ///< walked per transfer, under mu
    int n;
    int fence_count = 0;
    std::uint64_t fence_gen = 0;
    std::map<int, LegacyPassiveLock> locks;       ///< per-target, under mu
    std::map<int, LegacyExposure> exposures;      ///< per-target, under mu
    std::map<int, std::vector<LegacyRmaOp>> deferred;  ///< per-origin start-epoch queue
    std::atomic<int> poisoned{0};                 ///< world poison flag every doom check loads
    std::atomic<std::uint64_t> death_epoch{0};    ///< world death epoch ditto
    std::atomic<std::uint64_t> handle_gen{1};     ///< win_valid() slot-liveness load
    std::vector<LegacyProc> procs;
    LegacyRmaCounters ctr;
};

/// Per-rank bookkeeping the seed kept as Rank member maps.
struct LegacyRankState {
    std::map<int, std::vector<int>> start_epochs;  ///< win -> access-epoch targets
    std::map<int, std::vector<int>> held_locks;    ///< win -> locked targets
};

/// The same Registry type the real stack dispatches through, carrying
/// the same MPI_/PMPI_ function pair per RMA operation.
struct RmaFids {
    instr::Registry reg;
    instr::FuncId put, pput, get, pget, acc, pacc, fence, pfence, lock, plock,
        unlock, punlock, start, pstart, complete, pcomplete, post, ppost, wait,
        pwait;
    RmaFids()
        : put(reg.register_function("MPI_Put", "libmpi", 0)),
          pput(reg.register_function("PMPI_Put", "libmpi", 0)),
          get(reg.register_function("MPI_Get", "libmpi", 0)),
          pget(reg.register_function("PMPI_Get", "libmpi", 0)),
          acc(reg.register_function("MPI_Accumulate", "libmpi", 0)),
          pacc(reg.register_function("PMPI_Accumulate", "libmpi", 0)),
          fence(reg.register_function("MPI_Win_fence", "libmpi", 0)),
          pfence(reg.register_function("PMPI_Win_fence", "libmpi", 0)),
          lock(reg.register_function("MPI_Win_lock", "libmpi", 0)),
          plock(reg.register_function("PMPI_Win_lock", "libmpi", 0)),
          unlock(reg.register_function("MPI_Win_unlock", "libmpi", 0)),
          punlock(reg.register_function("PMPI_Win_unlock", "libmpi", 0)),
          start(reg.register_function("MPI_Win_start", "libmpi", 0)),
          pstart(reg.register_function("PMPI_Win_start", "libmpi", 0)),
          complete(reg.register_function("MPI_Win_complete", "libmpi", 0)),
          pcomplete(reg.register_function("PMPI_Win_complete", "libmpi", 0)),
          post(reg.register_function("MPI_Win_post", "libmpi", 0)),
          ppost(reg.register_function("PMPI_Win_post", "libmpi", 0)),
          wait(reg.register_function("MPI_Win_wait", "libmpi", 0)),
          pwait(reg.register_function("PMPI_Win_wait", "libmpi", 0)) {}
};

/// Seed Rank::fault_point: stamp last_call, bump the call counter,
/// check world poison, bail early on a null fault plan.
[[gnu::noinline]] void legacy_fault_point(LegacyRmaWin& w, int me,
                                          const char* name) {
    LegacyProc& p = w.procs[static_cast<std::size_t>(me)];
    p.last_call.store(name, std::memory_order_relaxed);
    p.calls.fetch_add(1, std::memory_order_relaxed);
    if (w.poisoned.load(std::memory_order_acquire) != 0) std::abort();
    // No FaultPlan in the bench world: the seed early-returns here.
}

/// Seed World::win_valid: handle-table slot liveness load.
[[gnu::noinline]] bool legacy_win_valid(const LegacyRmaWin& w) {
    return w.handle_gen.load(std::memory_order_acquire) != 0;
}

/// Seed wait_deadline(): one clock read per blocking sync call.
std::chrono::steady_clock::time_point legacy_wait_deadline() {
    return std::chrono::steady_clock::now() + std::chrono::seconds(5);
}

/// Seed Rank::rma_check: four datatype_size calls, displacement and
/// byte-count validation, target bounds against the comm group.
[[gnu::noinline]] int legacy_rma_check(const LegacyRmaWin& w, int ocount, int odt,
                                       int trank, std::int64_t tdisp, int tcount,
                                       int tdt) {
    if (ocount < 0 || tcount < 0) return 1;
    if (legacy_datatype_size(odt) <= 0 || legacy_datatype_size(tdt) <= 0) return 2;
    if (tdisp < 0) return 3;
    const std::int64_t obytes = ocount * legacy_datatype_size(odt);
    const std::int64_t tbytes = tcount * legacy_datatype_size(tdt);
    if (obytes != tbytes) return 4;
    if (trank < 0 || trank >= w.n) return 5;
    return 0;
}

/// Applies one op; caller does NOT hold the mutex.  Seed
/// rma_transfer_now: take the window mutex, walk the members map,
/// bounds-check, copy.  Put/Accumulate pay their second copy here
/// (staging buffer -> window); Get is a single copy.
[[gnu::noinline]] int legacy_transfer_now(LegacyRmaWin& w, LegacyRmaOp op) {
    std::lock_guard lk(w.mu);
    auto mit = w.members.find(op.target);
    if (mit == w.members.end()) return 1;
    LegacyWinMember& m = mit->second;
    const std::int64_t off = op.disp * m.disp_unit;
    if (off < 0 || off + op.nbytes > m.size) return 2;
    std::byte* at = m.base + off;
    const auto nb = static_cast<std::size_t>(op.nbytes);
    if (op.kind == 0) {
        std::memcpy(at, op.payload.data(), nb);
    } else if (op.kind == 1) {
        std::memcpy(op.origin_addr, at, nb);
    } else {
        const auto* s = reinterpret_cast<const std::int32_t*>(op.payload.data());
        auto* d = reinterpret_cast<std::int32_t*>(at);
        for (std::int64_t i = 0; i < op.nbytes / 4; ++i) d[i] += s[i];
    }
    return 0;
}

/// Applies a deferred op in place; caller holds the mutex (the seed's
/// Win_complete drain body).
void legacy_apply_locked(LegacyRmaWin& w, const LegacyRmaOp& op) {
    LegacyWinMember& m = w.members.at(op.target);
    std::byte* at = m.base + op.disp * m.disp_unit;
    const auto nb = static_cast<std::size_t>(op.nbytes);
    if (op.kind == 0) {
        std::memcpy(at, op.payload.data(), nb);
    } else if (op.kind == 1) {
        std::memcpy(op.origin_addr, at, nb);
    } else {
        const auto* s = reinterpret_cast<const std::int32_t*>(op.payload.data());
        auto* d = reinterpret_cast<std::int32_t*>(at);
        for (std::int64_t i = 0; i < op.nbytes / 4; ++i) d[i] += s[i];
    }
}

void legacy_put(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                int target, const void* src, int count, int dt,
                std::int64_t disp) {
    const std::int64_t a[] = {as_arg(src), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard g(f.reg, f.put, a);
    legacy_fault_point(w, me, "MPI_Put");
    const std::int64_t pa[] = {as_arg(src), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard pg(f.reg, f.pput, pa);
    if (!legacy_win_valid(w)) return;
    if (legacy_rma_check(w, count, dt, target, disp, count, dt) != 0) return;
    LegacyRmaOp op;
    op.kind = 0;
    op.target = target;
    op.disp = disp;
    op.nbytes = count * legacy_datatype_size(dt);
    op.payload.assign(static_cast<const std::byte*>(src),
                      static_cast<const std::byte*>(src) + op.nbytes);
    const std::int64_t nbytes = op.nbytes;
    const auto ep = rs.start_epochs.find(0);
    if (ep != rs.start_epochs.end() && contains(ep->second, target)) {
        std::lock_guard lk(w.mu);
        w.deferred[me].push_back(std::move(op));
    } else {
        legacy_transfer_now(w, std::move(op));
    }
    // Four shared-cache-line RMWs per op, as the seed accounted.
    w.ctr.put_ops.fetch_add(1);
    w.ctr.put_bytes.fetch_add(nbytes);
    w.ctr.rma_ops.fetch_add(1);
    w.ctr.rma_bytes.fetch_add(nbytes);
}

void legacy_get(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                int target, void* dst, int count, int dt, std::int64_t disp) {
    const std::int64_t a[] = {as_arg(dst), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard g(f.reg, f.get, a);
    legacy_fault_point(w, me, "MPI_Get");
    const std::int64_t pa[] = {as_arg(dst), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard pg(f.reg, f.pget, pa);
    if (!legacy_win_valid(w)) return;
    if (legacy_rma_check(w, count, dt, target, disp, count, dt) != 0) return;
    LegacyRmaOp op;
    op.kind = 1;
    op.target = target;
    op.disp = disp;
    op.nbytes = count * legacy_datatype_size(dt);
    op.origin_addr = static_cast<std::byte*>(dst);
    const std::int64_t nbytes = op.nbytes;
    const auto ep = rs.start_epochs.find(0);
    if (ep != rs.start_epochs.end() && contains(ep->second, target)) {
        std::lock_guard lk(w.mu);
        w.deferred[me].push_back(std::move(op));
    } else {
        legacy_transfer_now(w, std::move(op));
    }
    w.ctr.get_ops.fetch_add(1);
    w.ctr.get_bytes.fetch_add(nbytes);
    w.ctr.rma_ops.fetch_add(1);
    w.ctr.rma_bytes.fetch_add(nbytes);
}

void legacy_acc(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                int target, const void* src, int count, int dt,
                std::int64_t disp) {
    const std::int64_t a[] = {as_arg(src), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard g(f.reg, f.acc, a);
    legacy_fault_point(w, me, "MPI_Accumulate");
    const std::int64_t pa[] = {as_arg(src), count, dt, target, disp, count, dt, 0};
    instr::FunctionGuard pg(f.reg, f.pacc, pa);
    if (!legacy_win_valid(w)) return;
    if (legacy_rma_check(w, count, dt, target, disp, count, dt) != 0) return;
    LegacyRmaOp op;
    op.kind = 2;
    op.target = target;
    op.disp = disp;
    op.nbytes = count * legacy_datatype_size(dt);
    op.payload.assign(static_cast<const std::byte*>(src),
                      static_cast<const std::byte*>(src) + op.nbytes);
    const std::int64_t nbytes = op.nbytes;
    const auto ep = rs.start_epochs.find(0);
    if (ep != rs.start_epochs.end() && contains(ep->second, target)) {
        std::lock_guard lk(w.mu);
        w.deferred[me].push_back(std::move(op));
    } else {
        legacy_transfer_now(w, std::move(op));
    }
    w.ctr.acc_ops.fetch_add(1);
    w.ctr.acc_bytes.fetch_add(nbytes);
    w.ctr.rma_ops.fetch_add(1);
    w.ctr.rma_bytes.fetch_add(nbytes);
}

/// Seed MPICH2 fence: internal counter under the window mutex, waiters
/// parked in 5 ms liveness slices with a doom check per wake.
void legacy_fence(LegacyRmaWin& w, RmaFids& f, int me) {
    const std::int64_t a[] = {0, 0};
    instr::FunctionGuard g(f.reg, f.fence, a);
    legacy_fault_point(w, me, "MPI_Win_fence");
    const std::int64_t pa[] = {0, 0};
    instr::FunctionGuard pg(f.reg, f.pfence, pa);
    if (!legacy_win_valid(w)) return;
    const auto deadline = legacy_wait_deadline();
    {
        std::unique_lock lk(w.mu);
        const std::uint64_t gen = w.fence_gen;
        if (++w.fence_count == w.n) {
            w.fence_count = 0;
            ++w.fence_gen;
            w.fence_cv.notify_all();  // the closer broadcasts to every parked rank
        } else {
            while (w.fence_gen == gen) {
                w.fence_cv.wait_for(lk, kLivenessSlice);
                if (w.fence_gen != gen) break;
                const bool doomed =
                    w.poisoned.load(std::memory_order_acquire) != 0 ||
                    w.death_epoch.load(std::memory_order_acquire) != 0 ||
                    std::chrono::steady_clock::now() >= deadline;
                if (doomed) {
                    --w.fence_count;
                    return;
                }
            }
        }
    }
    w.ctr.sync_ops.fetch_add(1);
}

void legacy_lock(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                 int target) {
    const std::int64_t a[] = {1 /*exclusive*/, target, 0, 0};
    instr::FunctionGuard g(f.reg, f.lock, a);
    legacy_fault_point(w, me, "MPI_Win_lock");
    const std::int64_t pa[] = {1, target, 0, 0};
    instr::FunctionGuard pg(f.reg, f.plock, pa);
    if (!legacy_win_valid(w)) return;
    if (target < 0 || target >= w.n) return;
    if (w.death_epoch.load(std::memory_order_acquire) != 0) return;
    const auto deadline = legacy_wait_deadline();
    {
        std::unique_lock lk(w.mu);
        LegacyPassiveLock& pl = w.locks[target];  // per-target map walk, under mu
        const auto available = [&] { return !pl.exclusive && pl.shared_holders == 0; };
        while (!available()) {
            pl.cv.wait_for(lk, kLivenessSlice);
            if (available()) break;
            const bool doomed =
                w.poisoned.load(std::memory_order_acquire) != 0 ||
                w.death_epoch.load(std::memory_order_acquire) != 0 ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) return;
        }
        pl.exclusive = true;
        rs.held_locks[0].push_back(target);  // per-rank held-lock bookkeeping
    }
    w.ctr.sync_ops.fetch_add(1);
}

void legacy_unlock(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                   int target) {
    const std::int64_t a[] = {target, 0};
    instr::FunctionGuard g(f.reg, f.unlock, a);
    legacy_fault_point(w, me, "MPI_Win_unlock");
    const std::int64_t pa[] = {target, 0};
    instr::FunctionGuard pg(f.reg, f.punlock, pa);
    if (!legacy_win_valid(w)) return;
    if (target < 0 || target >= w.n) return;
    auto held = rs.held_locks.find(0);
    if (held == rs.held_locks.end()) return;
    auto ht = std::find(held->second.begin(), held->second.end(), target);
    if (ht == held->second.end()) return;  // unlock without lock
    held->second.erase(ht);
    {
        std::lock_guard lk(w.mu);
        LegacyPassiveLock& pl = w.locks[target];
        if (pl.exclusive)
            pl.exclusive = false;
        else if (pl.shared_holders > 0)
            --pl.shared_holders;
        pl.cv.notify_all();  // every waiter on this target wakes to re-check
    }
    w.ctr.sync_ops.fetch_add(1);
}

/// Seed MPICH2 Win_start: record the access epoch, defer everything to
/// Win_complete.
void legacy_start(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me,
                  int target) {
    const std::int64_t a[] = {0, 0, 0};
    instr::FunctionGuard g(f.reg, f.start, a);
    legacy_fault_point(w, me, "MPI_Win_start");
    const std::int64_t pa[] = {0, 0, 0};
    instr::FunctionGuard pg(f.reg, f.pstart, pa);
    if (!legacy_win_valid(w)) return;
    if (rs.start_epochs.count(0)) return;  // already in an access epoch
    rs.start_epochs[0] = {target};
    w.ctr.sync_ops.fetch_add(1);
}

/// Seed MPICH2 Win_complete: slice-wait for the target's exposure
/// epoch, then drain this origin's deferred queue under the window
/// mutex with an erase-per-match pass.
void legacy_complete(LegacyRmaWin& w, RmaFids& f, LegacyRankState& rs, int me) {
    const std::int64_t a[] = {0};
    instr::FunctionGuard g(f.reg, f.complete, a);
    legacy_fault_point(w, me, "MPI_Win_complete");
    const std::int64_t pa[] = {0};
    instr::FunctionGuard pg(f.reg, f.pcomplete, pa);
    if (!legacy_win_valid(w)) return;
    const auto it = rs.start_epochs.find(0);
    if (it == rs.start_epochs.end()) return;
    const std::vector<int> targets = it->second;
    rs.start_epochs.erase(it);
    const auto deadline = legacy_wait_deadline();
    {
        std::unique_lock lk(w.mu);
        for (int t : targets) {
            LegacyExposure& e = w.exposures[t];
            const auto exposed_to_us = [&] {
                return e.exposed && contains(e.group, me) &&
                       !contains(e.started, me);
            };
            while (!exposed_to_us()) {
                e.cv.wait_for(lk, kLivenessSlice);
                if (exposed_to_us()) break;
                const bool doomed =
                    w.poisoned.load(std::memory_order_acquire) != 0 ||
                    w.death_epoch.load(std::memory_order_acquire) != 0 ||
                    std::chrono::steady_clock::now() >= deadline;
                if (doomed) return;
            }
            e.started.push_back(me);
            auto& ops = w.deferred[me];
            for (auto op_it = ops.begin(); op_it != ops.end();) {
                if (op_it->target == t) {
                    legacy_apply_locked(w, *op_it);
                    op_it = ops.erase(op_it);
                } else {
                    ++op_it;
                }
            }
            ++e.completes;
            e.cv.notify_all();
        }
    }
    w.ctr.sync_ops.fetch_add(1);
}

void legacy_post(LegacyRmaWin& w, RmaFids& f, int me,
                 const std::vector<int>& origins) {
    const std::int64_t a[] = {0, 0, 0};
    instr::FunctionGuard g(f.reg, f.post, a);
    legacy_fault_point(w, me, "MPI_Win_post");
    const std::int64_t pa[] = {0, 0, 0};
    instr::FunctionGuard pg(f.reg, f.ppost, pa);
    if (!legacy_win_valid(w)) return;
    std::lock_guard lk(w.mu);
    LegacyExposure& e = w.exposures[me];
    if (e.exposed) return;  // exposure epoch already open
    e.exposed = true;
    e.group = origins;
    e.started.clear();
    e.completes = 0;
    e.cv.notify_all();
    // Win_post is not in the sync-op funcset (tool contract).
}

void legacy_wait(LegacyRmaWin& w, RmaFids& f, int me) {
    const std::int64_t a[] = {0};
    instr::FunctionGuard g(f.reg, f.wait, a);
    legacy_fault_point(w, me, "MPI_Win_wait");
    const std::int64_t pa[] = {0};
    instr::FunctionGuard pg(f.reg, f.pwait, pa);
    if (!legacy_win_valid(w)) return;
    const auto deadline = legacy_wait_deadline();
    {
        std::unique_lock lk(w.mu);
        LegacyExposure& e = w.exposures[me];
        if (!e.exposed) return;  // no matching MPI_Win_post
        while (e.completes < static_cast<int>(e.group.size())) {
            e.cv.wait_for(lk, kLivenessSlice);
            if (e.completes >= static_cast<int>(e.group.size())) break;
            const bool doomed =
                w.poisoned.load(std::memory_order_acquire) != 0 ||
                w.death_epoch.load(std::memory_order_acquire) != 0 ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) return;
        }
        e.exposed = false;
        e.started.clear();
        e.completes = 0;
        e.cv.notify_all();
    }
    w.ctr.sync_ops.fetch_add(1);
}

/// Spins up @p n legacy "ranks" (plain threads over one LegacyRmaWin),
/// runs @p body(me) between two barriers, and returns wall seconds of
/// the bracketed section (thread 0 takes both stamps, as the real side
/// does).  Each rank's window memory is @p win_bytes.
double legacy_run(int n, std::int64_t win_bytes,
                  std::function<void(LegacyRmaWin&, RmaFids&, int)> body,
                  LegacyRmaCounters* out = nullptr) {
    std::vector<std::vector<std::byte>> mems(static_cast<std::size_t>(n));
    std::vector<std::byte*> bases;
    for (auto& m : mems) {
        m.assign(static_cast<std::size_t>(win_bytes), std::byte{0});
        bases.push_back(m.data());
    }
    LegacyRmaWin w(std::move(bases), win_bytes, n);
    RmaFids fids;
    std::barrier sync(n);
    std::atomic<double> t0{0.0}, t1{0.0};
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(n));
    for (int me = 0; me < n; ++me)
        ts.emplace_back([&, me] {
            sync.arrive_and_wait();
            stamp_min(t0, wall_seconds());
            body(w, fids, me);
            stamp_max(t1, wall_seconds());
            sync.arrive_and_wait();
        });
    for (auto& t : ts) t.join();
    if (out) {
        out->put_ops = w.ctr.put_ops.load();
        out->get_ops = w.ctr.get_ops.load();
        out->acc_ops = w.ctr.acc_ops.load();
        out->put_bytes = w.ctr.put_bytes.load();
        out->get_bytes = w.ctr.get_bytes.load();
        out->acc_bytes = w.ctr.acc_bytes.load();
        out->rma_ops = w.ctr.rma_ops.load();
        out->rma_bytes = w.ctr.rma_bytes.load();
        out->sync_ops = w.ctr.sync_ops.load();
    }
    return t1.load() - t0.load();
}

/// Runs @p body on @p n real ranks (MPICH flavor: counter fence and
/// staged PSCW, the paths this PR rebuilt) and returns wall seconds
/// between the two timing stamps the body publishes via t0/t1.
struct RealRun {
    double seconds = 0.0;
    simmpi::RmaCounterSnapshot counters;
};

RealRun real_run(int n,
                 std::function<void(simmpi::Rank&, int, std::atomic<double>&,
                                    std::atomic<double>&, std::atomic<simmpi::Win>&)>
                     body) {
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.flavor = simmpi::Flavor::Mpich;
    simmpi::World world(reg, cfg);
    std::atomic<double> t0{0.0}, t1{0.0};
    std::atomic<simmpi::Win> win_out{simmpi::MPI_WIN_NULL};
    world.register_program("rma", [&](simmpi::Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        body(r, me, t0, t1, win_out);
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
    simmpi::launch(world, "rma", {}, plan);
    world.join_all();
    RealRun out;
    out.seconds = t1.load() - t0.load();
    if (win_out.load() != simmpi::MPI_WIN_NULL)
        out.counters = world.win_rma_counters(win_out.load());
    return out;
}

// ---------------------------------------------------------------------------
// Workload shapes.  Each exists twice with identical op sequences --
// once over the legacy replica, once over the real stack.
// ---------------------------------------------------------------------------

constexpr int kFencePuts = 8;      ///< puts per rank per fence epoch
constexpr int kFenceBytes = 64;    ///< bytes per fence-epoch put
constexpr int kPscwPuts = 4;       ///< puts per origin per PSCW epoch
constexpr int kPscwBytes = 256;    ///< bytes per PSCW put
constexpr int kLockPuts = 4;       ///< puts per lock epoch
constexpr int kLockBytes = 256;    ///< bytes per lock-epoch put/get

double legacy_fence_run(int n, long epochs) {
    return legacy_run(n, kFencePuts * kFenceBytes, [&](LegacyRmaWin& w, RmaFids& f,
                                                       int me) {
        LegacyRankState rs;
        std::vector<std::byte> src(kFenceBytes, std::byte{3});
        const int t = (me + 1) % n;
        legacy_fence(w, f, me);
        for (long e = 0; e < epochs; ++e) {
            for (int j = 0; j < kFencePuts; ++j)
                legacy_put(w, f, rs, me, t, src.data(), kFenceBytes, kByteT,
                           j * kFenceBytes);
            legacy_fence(w, f, me);
        }
    });
}

double real_fence_run(int n, long epochs) {
    return real_run(n, [&](simmpi::Rank& r, int me, std::atomic<double>& t0,
                           std::atomic<double>& t1, std::atomic<simmpi::Win>&) {
               const simmpi::Comm w = r.MPI_COMM_WORLD();
               std::vector<std::byte> mem(kFencePuts * kFenceBytes, std::byte{0});
               std::vector<std::byte> src(kFenceBytes, std::byte{3});
               simmpi::Win win = simmpi::MPI_WIN_NULL;
               r.MPI_Win_create(mem.data(), kFencePuts * kFenceBytes, 1,
                                simmpi::MPI_INFO_NULL, w, &win);
               const int t = (me + 1) % n;
               r.MPI_Win_fence(0, win);
               r.MPI_Barrier(w);
               stamp_min(t0, wall_seconds());
               for (long e = 0; e < epochs; ++e) {
                   for (int j = 0; j < kFencePuts; ++j)
                       r.MPI_Put(src.data(), kFenceBytes, simmpi::MPI_BYTE, t,
                                 j * kFenceBytes, kFenceBytes, simmpi::MPI_BYTE, win);
                   r.MPI_Win_fence(0, win);
               }
               stamp_max(t1, wall_seconds());
               r.MPI_Barrier(w);
               r.MPI_Win_free(&win);
           })
        .seconds;
}

double legacy_pscw_run(int n, long epochs) {
    const std::int64_t win_bytes =
        static_cast<std::int64_t>(n) * kPscwPuts * kPscwBytes;
    return legacy_run(n, win_bytes, [&](LegacyRmaWin& w, RmaFids& f, int me) {
        LegacyRankState rs;
        std::vector<std::byte> src(kPscwBytes, std::byte{4});
        std::vector<int> origins;
        for (int i = 1; i < n; ++i) origins.push_back(i);
        for (long e = 0; e < epochs; ++e) {
            if (me == 0) {
                legacy_post(w, f, 0, origins);
                legacy_wait(w, f, 0);
            } else {
                legacy_start(w, f, rs, me, 0);
                for (int j = 0; j < kPscwPuts; ++j)
                    legacy_put(w, f, rs, me, 0, src.data(), kPscwBytes, kByteT,
                               ((me - 1) * kPscwPuts + j) * kPscwBytes);
                legacy_complete(w, f, rs, me);
            }
        }
    });
}

double real_pscw_run(int n, long epochs) {
    return real_run(n, [&](simmpi::Rank& r, int me, std::atomic<double>& t0,
                           std::atomic<double>& t1, std::atomic<simmpi::Win>&) {
               const simmpi::Comm w = r.MPI_COMM_WORLD();
               const std::int64_t win_bytes =
                   static_cast<std::int64_t>(n) * kPscwPuts * kPscwBytes;
               std::vector<std::byte> mem(static_cast<std::size_t>(win_bytes),
                                          std::byte{0});
               std::vector<std::byte> src(kPscwBytes, std::byte{4});
               simmpi::Win win = simmpi::MPI_WIN_NULL;
               r.MPI_Win_create(mem.data(), win_bytes, 1, simmpi::MPI_INFO_NULL, w,
                                &win);
               simmpi::Group wg = simmpi::MPI_GROUP_NULL;
               simmpi::Group eg = simmpi::MPI_GROUP_NULL;
               r.MPI_Comm_group(w, &wg);
               if (me == 0) {
                   std::vector<int> origins;
                   for (int i = 1; i < n; ++i) origins.push_back(i);
                   r.MPI_Group_incl(wg, n - 1, origins.data(), &eg);
               } else {
                   const int zero = 0;
                   r.MPI_Group_incl(wg, 1, &zero, &eg);
               }
               r.MPI_Barrier(w);
               stamp_min(t0, wall_seconds());
               for (long e = 0; e < epochs; ++e) {
                   if (me == 0) {
                       r.MPI_Win_post(eg, 0, win);
                       r.MPI_Win_wait(win);
                   } else {
                       r.MPI_Win_start(eg, 0, win);
                       for (int j = 0; j < kPscwPuts; ++j)
                           r.MPI_Put(src.data(), kPscwBytes, simmpi::MPI_BYTE, 0,
                                     ((me - 1) * kPscwPuts + j) * kPscwBytes,
                                     kPscwBytes, simmpi::MPI_BYTE, win);
                       r.MPI_Win_complete(win);
                   }
               }
               stamp_max(t1, wall_seconds());
               r.MPI_Barrier(w);
               r.MPI_Group_free(&eg);
               r.MPI_Group_free(&wg);
               r.MPI_Win_free(&win);
           })
        .seconds;
}

/// @p storm false: each rank locks its own target (the graded
/// parallel-epochs shape).  @p storm true: everyone hammers rank 0.
double legacy_lock_run(int n, long iters, bool storm) {
    const std::int64_t win_bytes = (kLockPuts + 1) * kLockBytes;
    return legacy_run(n, win_bytes, [&](LegacyRmaWin& w, RmaFids& f, int me) {
        LegacyRankState rs;
        std::vector<std::byte> src(kLockBytes, std::byte{5});
        std::vector<std::byte> dst(kLockBytes);
        const int t = storm ? 0 : me;
        for (long i = 0; i < iters; ++i) {
            legacy_lock(w, f, rs, me, t);
            for (int j = 0; j < kLockPuts; ++j)
                legacy_put(w, f, rs, me, t, src.data(), kLockBytes, kByteT,
                           j * kLockBytes);
            legacy_get(w, f, rs, me, t, dst.data(), kLockBytes, kByteT,
                       kLockPuts * kLockBytes);
            legacy_unlock(w, f, rs, me, t);
        }
    });
}

double real_lock_run(int n, long iters, bool storm) {
    return real_run(n, [&](simmpi::Rank& r, int me, std::atomic<double>& t0,
                           std::atomic<double>& t1, std::atomic<simmpi::Win>&) {
               const simmpi::Comm w = r.MPI_COMM_WORLD();
               const std::int64_t win_bytes = (kLockPuts + 1) * kLockBytes;
               std::vector<std::byte> mem(static_cast<std::size_t>(win_bytes),
                                          std::byte{0});
               std::vector<std::byte> src(kLockBytes, std::byte{5});
               std::vector<std::byte> dst(kLockBytes);
               simmpi::Win win = simmpi::MPI_WIN_NULL;
               r.MPI_Win_create(mem.data(), win_bytes, 1, simmpi::MPI_INFO_NULL, w,
                                &win);
               const int t = storm ? 0 : me;
               r.MPI_Barrier(w);
               stamp_min(t0, wall_seconds());
               for (long i = 0; i < iters; ++i) {
                   r.MPI_Win_lock(simmpi::MPI_LOCK_EXCLUSIVE, t, 0, win);
                   for (int j = 0; j < kLockPuts; ++j)
                       r.MPI_Put(src.data(), kLockBytes, simmpi::MPI_BYTE, t,
                                 j * kLockBytes, kLockBytes, simmpi::MPI_BYTE, win);
                   r.MPI_Get(dst.data(), kLockBytes, simmpi::MPI_BYTE, t,
                             kLockPuts * kLockBytes, kLockBytes, simmpi::MPI_BYTE,
                             win);
                   r.MPI_Win_unlock(t, win);
               }
               stamp_max(t1, wall_seconds());
               r.MPI_Barrier(w);
               r.MPI_Win_free(&win);
           })
        .seconds;
}

/// The graded contended-handoff shape: all 16 ranks queue on rank 0's
/// exclusive lock; each epoch puts 8 bytes and yields once while
/// holding the lock (standing in for in-critical-section work, paid
/// identically on both sides) so waiters genuinely park instead of
/// always finding the lock free on a single-core host.  Every unlock
/// then exercises the handoff machinery: the legacy design broadcasts
/// notify_all to every parked waiter -- ~15 wakeups, each re-taking
/// the window mutex to re-check a predicate only one can win, each
/// paying a doom-check clock read -- where the rebuilt engine's FIFO
/// queue hands the lock to exactly the one next waiter.
double legacy_handoff_run(int n, long iters) {
    return legacy_run(n, 8, [&](LegacyRmaWin& w, RmaFids& f, int me) {
        LegacyRankState rs;
        std::int64_t v = me;
        for (long i = 0; i < iters; ++i) {
            legacy_lock(w, f, rs, me, 0);
            legacy_put(w, f, rs, me, 0, &v, 8, kByteT, 0);
            std::this_thread::yield();
            legacy_unlock(w, f, rs, me, 0);
        }
    });
}

double real_handoff_run(int n, long iters) {
    return real_run(n, [&](simmpi::Rank& r, int me, std::atomic<double>& t0,
                           std::atomic<double>& t1, std::atomic<simmpi::Win>&) {
               const simmpi::Comm w = r.MPI_COMM_WORLD();
               std::int64_t mem = 0, v = me;
               simmpi::Win win = simmpi::MPI_WIN_NULL;
               r.MPI_Win_create(&mem, 8, 1, simmpi::MPI_INFO_NULL, w, &win);
               r.MPI_Barrier(w);
               stamp_min(t0, wall_seconds());
               for (long i = 0; i < iters; ++i) {
                   r.MPI_Win_lock(simmpi::MPI_LOCK_EXCLUSIVE, 0, 0, win);
                   r.MPI_Put(&v, 8, simmpi::MPI_BYTE, 0, 0, 8, simmpi::MPI_BYTE,
                             win);
                   std::this_thread::yield();
                   r.MPI_Win_unlock(0, win);
               }
               stamp_max(t1, wall_seconds());
               r.MPI_Barrier(w);
               r.MPI_Win_free(&win);
           })
        .seconds;
}

// ---------------------------------------------------------------------------
// Counter identity: the same mixed workload (fence epochs with puts,
// gets, and accumulates, then passive lock epochs) on both planes must
// produce bit-identical Table-1 integer totals -- the legacy side
// counting per op, the rebuilt side batching per epoch.
// ---------------------------------------------------------------------------

void legacy_identity_workload(LegacyRmaWin& w, RmaFids& f, int me, int n,
                              long fence_epochs, long lock_iters) {
    LegacyRankState rs;
    std::vector<std::int32_t> src(2, me), dst(2, 0);
    const int t = (me + 1) % n;
    w.ctr.sync_ops.fetch_add(1);  // Win_create
    legacy_fence(w, f, me);
    for (long e = 0; e < fence_epochs; ++e) {
        legacy_put(w, f, rs, me, t, src.data(), 8, kByteT, 0);
        legacy_put(w, f, rs, me, t, src.data(), 8, kByteT, 8);
        legacy_get(w, f, rs, me, t, dst.data(), 8, kByteT, 0);
        legacy_acc(w, f, rs, me, t, src.data(), 2, kIntT, 16);
        legacy_fence(w, f, me);
    }
    for (long i = 0; i < lock_iters; ++i) {
        legacy_lock(w, f, rs, me, me);
        legacy_put(w, f, rs, me, me, src.data(), 8, kByteT, 0);
        legacy_acc(w, f, rs, me, me, src.data(), 2, kIntT, 16);
        legacy_unlock(w, f, rs, me, me);
    }
    w.ctr.sync_ops.fetch_add(1);  // Win_free
}

simmpi::RmaCounterSnapshot real_identity_workload(int n, long fence_epochs,
                                                  long lock_iters) {
    return real_run(n, [&](simmpi::Rank& r, int me, std::atomic<double>& t0,
                           std::atomic<double>& t1,
                           std::atomic<simmpi::Win>& win_out) {
               const simmpi::Comm w = r.MPI_COMM_WORLD();
               std::vector<std::int32_t> mem(6, 0), src(2, me), dst(2, 0);
               simmpi::Win win = simmpi::MPI_WIN_NULL;
               r.MPI_Win_create(mem.data(), 24, 1, simmpi::MPI_INFO_NULL, w, &win);
               if (me == 0) win_out = win;
               const int t = (me + 1) % n;
               if (me == 0) t0 = wall_seconds();
               r.MPI_Win_fence(0, win);
               for (long e = 0; e < fence_epochs; ++e) {
                   r.MPI_Put(src.data(), 8, simmpi::MPI_BYTE, t, 0, 8,
                             simmpi::MPI_BYTE, win);
                   r.MPI_Put(src.data(), 8, simmpi::MPI_BYTE, t, 8, 8,
                             simmpi::MPI_BYTE, win);
                   r.MPI_Get(dst.data(), 8, simmpi::MPI_BYTE, t, 0, 8,
                             simmpi::MPI_BYTE, win);
                   r.MPI_Accumulate(src.data(), 2, simmpi::MPI_INT, t, 16, 2,
                                    simmpi::MPI_INT, simmpi::MPI_SUM, win);
                   r.MPI_Win_fence(0, win);
               }
               for (long i = 0; i < lock_iters; ++i) {
                   r.MPI_Win_lock(simmpi::MPI_LOCK_EXCLUSIVE, me, 0, win);
                   r.MPI_Put(src.data(), 8, simmpi::MPI_BYTE, me, 0, 8,
                             simmpi::MPI_BYTE, win);
                   r.MPI_Accumulate(src.data(), 2, simmpi::MPI_INT, me, 16, 2,
                                    simmpi::MPI_INT, simmpi::MPI_SUM, win);
                   r.MPI_Win_unlock(me, win);
               }
               r.MPI_Win_free(&win);
               if (me == 0) t1 = wall_seconds();
           })
        .counters;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    bench::header("Ablation: simmpi RMA data plane",
                  smoke ? "smoke mode (harness check only)"
                        : "per-op epoch cost vs legacy single-mutex design");
    bench::Grader g;
    bench::JsonEmitter json("rma");
    const int reps = smoke ? 1 : 5;

    // ---- Fence-heavy epochs (reported) ------------------------------------
    util::TextTable ft({"ranks", "legacy us/op", "new us/op", "speedup"});
    for (const int n : {4, 16}) {
        const long epochs = smoke ? 2 : (n == 4 ? 1000 : 300);
        const double ops =
            static_cast<double>(n) * kFencePuts * static_cast<double>(epochs);
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            legacy_s = std::min(legacy_s, legacy_fence_run(n, epochs));
            real_s = std::min(real_s, real_fence_run(n, epochs));
        }
        const double lus = legacy_s / ops * 1e6, nus = real_s / ops * 1e6;
        ft.add_row({std::to_string(n), util::fmt(lus, 2), util::fmt(nus, 2),
                    util::fmt(lus / nus, 2) + "x"});
        const std::string label = "fence_" + std::to_string(n) + "ranks";
        json.record("legacy_" + label + "_us_per_op", lus, "us");
        json.record("new_" + label + "_us_per_op", nus, "us");
        json.record("speedup_" + label, lus / nus, "x");
    }
    std::printf("%s", ft.render().c_str());

    // ---- PSCW epochs (reported) -------------------------------------------
    util::TextTable st({"ranks", "legacy us/op", "new us/op", "speedup"});
    for (const int n : {4, 8}) {
        const long epochs = smoke ? 2 : (n == 4 ? 800 : 500);
        const double ops = static_cast<double>(n - 1) * kPscwPuts *
                           static_cast<double>(epochs);
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            legacy_s = std::min(legacy_s, legacy_pscw_run(n, epochs));
            real_s = std::min(real_s, real_pscw_run(n, epochs));
        }
        const double lus = legacy_s / ops * 1e6, nus = real_s / ops * 1e6;
        st.add_row({std::to_string(n), util::fmt(lus, 2), util::fmt(nus, 2),
                    util::fmt(lus / nus, 2) + "x"});
        const std::string label = "pscw_" + std::to_string(n) + "ranks";
        json.record("legacy_" + label + "_us_per_op", lus, "us");
        json.record("new_" + label + "_us_per_op", nus, "us");
        json.record("speedup_" + label, lus / nus, "x");
    }
    std::printf("%s", st.render().c_str());

    // ---- Passive-target lock epochs ---------------------------------------
    // Own-target and all-on-rank-0 storm epochs with the full transfer
    // payload are reported ungraded; the graded shape is the contended
    // handoff (16 ranks queued on one exclusive lock, one small put
    // per epoch), where the legacy notify_all wake storm loses
    // wall-clock the FIFO handoff does not spend.
    util::TextTable lt({"shape", "legacy us/op", "new us/op", "speedup"});
    for (const bool storm : {false, true}) {
        const int n = 16;
        const long iters = smoke ? 3 : (storm ? 200 : 1500);
        const double ops = static_cast<double>(n) * (kLockPuts + 1) *
                           static_cast<double>(iters);
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < (storm && !smoke ? 3 : reps); ++rep) {
            legacy_s = std::min(legacy_s, legacy_lock_run(n, iters, storm));
            real_s = std::min(real_s, real_lock_run(n, iters, storm));
        }
        const double lus = legacy_s / ops * 1e6, nus = real_s / ops * 1e6;
        const std::string label = storm ? "lock_storm_16ranks" : "lock_own_16ranks";
        lt.add_row({storm ? "16 -> rank 0 (storm)" : "16 x own target",
                    util::fmt(lus, 2), util::fmt(nus, 2),
                    util::fmt(lus / nus, 2) + "x"});
        json.record("legacy_" + label + "_us_per_op", lus, "us");
        json.record("new_" + label + "_us_per_op", nus, "us");
        json.record("speedup_" + label, lus / nus, "x");
    }
    double speedup_handoff16 = 0.0;
    {
        const int n = 16;
        const long iters = smoke ? 3 : 400;
        const double epochs = static_cast<double>(n) * static_cast<double>(iters);
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            legacy_s = std::min(legacy_s, legacy_handoff_run(n, iters));
            real_s = std::min(real_s, real_handoff_run(n, iters));
        }
        const double lus = legacy_s / epochs * 1e6, nus = real_s / epochs * 1e6;
        speedup_handoff16 = lus / nus;
        lt.add_row({"16-deep handoff queue", util::fmt(lus, 2), util::fmt(nus, 2),
                    util::fmt(lus / nus, 2) + "x"});
        json.record("legacy_lock_handoff_16ranks_us_per_epoch", lus, "us");
        json.record("new_lock_handoff_16ranks_us_per_epoch", nus, "us");
        json.record("speedup_lock_handoff_16ranks", lus / nus, "x");
    }
    std::printf("%s", lt.render().c_str());

    // ---- Table-1 counter identity (graded even in smoke) ------------------
    const int id_n = 4;
    const long id_epochs = smoke ? 6 : 60, id_iters = smoke ? 4 : 25;
    LegacyRmaCounters lc;
    legacy_run(id_n, 24,
               [&](LegacyRmaWin& w, RmaFids& f, int me) {
                   legacy_identity_workload(w, f, me, id_n, id_epochs, id_iters);
               },
               &lc);
    const simmpi::RmaCounterSnapshot rc =
        real_identity_workload(id_n, id_epochs, id_iters);
    const bool identical =
        lc.put_ops.load() == rc.put_ops && lc.get_ops.load() == rc.get_ops &&
        lc.acc_ops.load() == rc.acc_ops && lc.put_bytes.load() == rc.put_bytes &&
        lc.get_bytes.load() == rc.get_bytes &&
        lc.acc_bytes.load() == rc.acc_bytes && lc.rma_ops.load() == rc.rma_ops &&
        lc.rma_bytes.load() == rc.rma_bytes && lc.sync_ops.load() == rc.sync_ops;
    if (!identical)
        std::printf(
            "  counter mismatch: legacy ops %lld/%lld/%lld bytes %lld/%lld/%lld "
            "sync %lld vs new ops %lld/%lld/%lld bytes %lld/%lld/%lld sync %lld\n",
            static_cast<long long>(lc.put_ops.load()),
            static_cast<long long>(lc.get_ops.load()),
            static_cast<long long>(lc.acc_ops.load()),
            static_cast<long long>(lc.put_bytes.load()),
            static_cast<long long>(lc.get_bytes.load()),
            static_cast<long long>(lc.acc_bytes.load()),
            static_cast<long long>(lc.sync_ops.load()),
            static_cast<long long>(rc.put_ops), static_cast<long long>(rc.get_ops),
            static_cast<long long>(rc.acc_ops), static_cast<long long>(rc.put_bytes),
            static_cast<long long>(rc.get_bytes),
            static_cast<long long>(rc.acc_bytes),
            static_cast<long long>(rc.sync_ops));
    json.record("counter_identity", identical ? 1.0 : 0.0, "bool");

    if (smoke) {
        g.check("smoke: all configurations completed", true);
    } else {
        g.check("16-rank contended lock handoff >= 3x the legacy design per epoch",
                speedup_handoff16 >= 3.0);
    }
    g.check("Table-1 op/byte/sync counters bit-identical, per-op vs epoch-batched",
            identical);
    const std::string body = json.render();
    g.check("json renders well-formed record set",
            body.rfind("{\"bench\":\"rma\"", 0) == 0 &&
                body.find("\"records\":[") != std::string::npos &&
                body.substr(body.size() - 3) == "]}\n");

    json.write_file();
    std::printf("\nRMA data-plane ablation: %d failures\n", g.failures());
    return g.exit_code();
}
