// Fast-path ablation: per-event dispatch cost and multi-thread scaling
// of the instrumentation substrate (the tool-perturbation knob the
// paper's whole evaluation methodology depends on -- section 5's
// known-bottleneck validation only works if the tool stays cheap).
//
// Measures entry+return dispatch cost at 1/4/16 threads, for
// uninstrumented functions (the overwhelmingly common case: one load
// and branch) and functions carrying one counter snippet, against an
// in-binary replica of the pre-lock-free implementation (registry-wide
// shared_mutex resolve + per-function shared_mutex + shared_ptr
// snapshot + two globally contended atomics), so the speedup is
// measured directly rather than against a remembered number.
// The tracing ablation at the end guards the flight recorder's "always
// on" claim: a 2-rank eager streaming exchange (64 B messages, ~1 us of
// compute per message) through a traced and an untraced World, graded
// on ns per dispatch event (CI runs it with --smoke and fails the build
// past 10% overhead).
#include "bench_common.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstring>
#include <memory>
#include <shared_mutex>
#include <thread>

#include "instr/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace m2p;

// ---------------------------------------------------------------------------
// Faithful replica of the dispatch path this PR replaced (see git
// history of src/instr/registry.cpp): every dispatch took the
// registry-wide shared_mutex to resolve the FuncId, the per-function
// shared_mutex to snapshot the snippet list (bumping a contended
// shared_ptr refcount), and fetch_add on two process-global atomics.
// ---------------------------------------------------------------------------
class LegacyRegistry {
public:
    using SnippetVec = std::vector<std::pair<std::uint64_t, instr::Snippet>>;

    instr::FuncId register_function(std::string name, std::string module) {
        std::unique_lock lk(mu_);
        auto f = std::make_unique<FuncImpl>();
        f->info.id = static_cast<instr::FuncId>(funcs_.size());
        f->info.name = std::move(name);
        f->info.module = std::move(module);
        funcs_.push_back(std::move(f));
        return funcs_.back()->info.id;
    }

    void insert(instr::FuncId f, instr::Where w, instr::Snippet s) {
        FuncImpl& fi = func_impl(f);
        std::unique_lock lk(fi.mu);
        auto& pt = fi.points[static_cast<int>(w)];
        auto next = pt.snippets ? std::make_shared<SnippetVec>(*pt.snippets)
                                : std::make_shared<SnippetVec>();
        next->emplace_back(next_id_.fetch_add(1), std::move(s));
        pt.snippets = std::move(next);
    }

    void dispatch(instr::FuncId f, instr::Where w, instr::CallContext& ctx) {
        FuncImpl& fi = func_impl(f);
        std::shared_ptr<const SnippetVec> snap;
        {
            std::shared_lock lk(fi.mu);
            snap = fi.points[static_cast<int>(w)].snippets;
        }
        events_.fetch_add(1, std::memory_order_relaxed);
        if (!snap || snap->empty()) return;
        ctx.func = f;
        ctx.info = &fi.info;
        for (const auto& [id, s] : *snap) {
            s(ctx);
            executed_.fetch_add(1, std::memory_order_relaxed);
        }
    }

private:
    struct PointImpl {
        std::shared_ptr<const SnippetVec> snippets;
    };
    struct FuncImpl {
        instr::FunctionInfo info;
        PointImpl points[2];
        mutable std::shared_mutex mu;
    };

    FuncImpl& func_impl(instr::FuncId f) {
        std::shared_lock lk(mu_);
        return *funcs_[f];
    }

    mutable std::shared_mutex mu_;
    std::vector<std::unique_ptr<FuncImpl>> funcs_;
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> events_{0};
    std::atomic<std::uint64_t> executed_{0};
};

/// Entry+return guard against either registry type.
template <class Reg>
void fire_guard(Reg& reg, instr::FuncId f) {
    instr::CallContext ctx;
    ctx.func = f;
    reg.dispatch(f, instr::Where::Entry, ctx);
    reg.dispatch(f, instr::Where::Return, ctx);
}

/// One timed run: @p guards_total entry+return pairs split across
/// @p nthreads; returns cost per event (two events per guard) in ns.
template <class Reg>
double run_once_ns_per_event(Reg& reg, instr::FuncId f, int nthreads,
                             long guards_total) {
    const long per_thread = guards_total / nthreads;
    std::barrier sync(nthreads + 1);
    std::vector<std::thread> ts;
    ts.reserve(nthreads);
    for (int i = 0; i < nthreads; ++i)
        ts.emplace_back([&] {
            sync.arrive_and_wait();
            for (long n = 0; n < per_thread; ++n) fire_guard(reg, f);
        });
    sync.arrive_and_wait();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& t : ts) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    return ns / (2.0 * static_cast<double>(per_thread) *
                 static_cast<double>(nthreads));
}

struct Config {
    int threads;
    bool instrumented;
    long guards;
};

/// ~1 us of integer hashing standing in for the compute phase between
/// messages -- PPerfMark's small-messages shape, still far more
/// communication-bound than the paper's actual workloads.  Two reasons
/// it matters: (a) a zero-compute stream is a producer/consumer latency
/// race whose condvar handoffs are bistable -- a ~15 ns perturbation
/// (one rdtsc) at the wrong point flips every rendezvous from the spin
/// path to a parked futex wait, and the "overhead" measured is the
/// scheduler cliff, not the tracing cost; (b) the recorder's floor is
/// two rdtsc stamps (~30 ns on this class of host) per user call, so
/// the overhead *ratio* is only meaningful against a workload that does
/// any work at all between calls.  The absolute recording cost is
/// ~9 ns per dispatch event either way; see EXPERIMENTS.md.
inline void message_compute(std::uint64_t& acc) {
    for (int i = 0; i < 1024; ++i)
        acc = acc * 2654435761u + static_cast<std::uint64_t>(i);
}

/// One 2-rank eager streaming exchange, tracing on or off; returns ns
/// per dispatch event (the registry's own event counter, so both
/// variants are normalized by identical work).  The flight-recorder
/// cost rides on real MPI calls here -- grading raw ring pushes against
/// a bare dispatch would compare a memcpy against a load-and-branch.
/// Streaming (sender runs ahead inside the mailbox's 64 KiB eager
/// window) rather than strict ping-pong: the buffering absorbs
/// scheduling jitter, so the delta between the two variants is the
/// recording path and not condvar-park weather.
double stream_ns_per_event(bool traced, long iters) {
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.trace_enabled = traced;
    simmpi::World world(reg, cfg);
    world.register_program(
        "stream", [iters](simmpi::Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            const simmpi::Comm w = r.MPI_COMM_WORLD();
            int me = 0;
            r.MPI_Comm_rank(w, &me);
            char buf[64] = {};
            std::uint64_t acc = 0;
            for (long i = 0; i < iters; ++i) {
                if (me == 0) {
                    message_compute(acc);
                    r.MPI_Send(buf, sizeof buf, simmpi::MPI_BYTE, 1, 1, w);
                } else {
                    r.MPI_Recv(buf, sizeof buf, simmpi::MPI_BYTE, 0, 1, w, nullptr);
                    message_compute(acc);
                }
            }
            buf[0] = static_cast<char>(acc & 0x7f);  // keep the compute live
            r.MPI_Finalize();
        });
    simmpi::LaunchPlan plan;
    plan.placements = {"node0", "node0"};
    const auto t0 = std::chrono::steady_clock::now();
    simmpi::launch(world, "stream", {}, plan);
    world.join_all();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    const std::uint64_t events = reg.stats().events;
    return events ? ns / static_cast<double>(events) : 0.0;
}

void tracing_ablation(bench::Grader& g, bench::JsonEmitter& json, long iters,
                      int reps) {
    stream_ns_per_event(false, iters / 4);  // warm-up: first-touch, allocator
    // Interleaved best-of-N, same reasoning as the legacy comparison:
    // both variants sample the same scheduling weather.
    double off_ns = 1e30, on_ns = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        off_ns = std::min(off_ns, stream_ns_per_event(false, iters));
        on_ns = std::min(on_ns, stream_ns_per_event(true, iters));
    }
    const double overhead_pct = off_ns > 0.0 ? (on_ns / off_ns - 1.0) * 100.0 : 0.0;
    std::printf("\ntracing ablation (2-rank eager stream, %ld msgs, best of %d):\n"
                "  traced off %.1f ns/event, traced on %.1f ns/event (%+.1f%%)\n",
                iters, reps, off_ns, on_ns, overhead_pct);
    json.record("stream_untraced_ns_per_event", off_ns, "ns");
    json.record("stream_traced_ns_per_event", on_ns, "ns");
    json.record("tracing_overhead_pct", overhead_pct, "%");
    g.check("flight-recorder overhead <= 10% per dispatch event",
            on_ns <= 1.10 * off_ns);
}

}  // namespace

int main(int argc, char** argv) {
    // --smoke: the CI gate -- skip the legacy-replica matrix, run only
    // the tracing ablation (the part this build must not regress).
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

    bench::header("Ablation: dispatch fast path",
                  "per-event cost, lock-free registry vs legacy locked design");
    bench::Grader g;
    bench::JsonEmitter json("dispatch_fastpath");

    const Config configs[] = {
        {1, false, 400000}, {4, false, 400000}, {16, false, 320000},
        {1, true, 200000},  {4, true, 200000},  {16, true, 160000},
    };
    if (smoke) {
        tracing_ablation(g, json, /*iters=*/20000, /*reps=*/5);
        json.write_file();
        std::printf("\nDispatch fast-path smoke: %d failures\n", g.failures());
        return g.exit_code();
    }

    util::TextTable t({"threads", "snippets", "legacy ns/event", "lock-free ns/event",
                       "speedup"});
    double speedup_16t_uninstr = 0.0;
    double checksum = 0.0;

    for (const Config& c : configs) {
        LegacyRegistry legacy;
        const instr::FuncId lf = legacy.register_function("f", "m");
        instr::Registry fresh;
        const instr::FuncId nf = fresh.register_function("f", "m", 0);
        // A second, uninstrumented function on each registry keeps the
        // tables non-trivial (dispatch must resolve among entries).
        legacy.register_function("g", "m");
        fresh.register_function("g", "m", 0);

        std::atomic<std::uint64_t> sunk{0};
        if (c.instrumented) {
            const auto count = [&sunk](const instr::CallContext&) {
                sunk.fetch_add(1, std::memory_order_relaxed);
            };
            legacy.insert(lf, instr::Where::Entry, count);
            fresh.insert(nf, instr::Where::Entry, count);
        }

        // Interleave repetitions and take best-of-5 per implementation:
        // on shared/virtualized hosts the clock-speed and scheduling
        // weather changes second to second, and alternating keeps both
        // designs sampling the same conditions.
        double legacy_ns = 1e30, fresh_ns = 1e30;
        for (int rep = 0; rep < 5; ++rep) {
            legacy_ns = std::min(
                legacy_ns, run_once_ns_per_event(legacy, lf, c.threads, c.guards));
            fresh_ns = std::min(
                fresh_ns, run_once_ns_per_event(fresh, nf, c.threads, c.guards));
        }
        const double speedup = legacy_ns / fresh_ns;
        checksum += sunk.load();
        if (c.threads == 16 && !c.instrumented) speedup_16t_uninstr = speedup;

        const std::string label = std::to_string(c.threads) + "t_" +
                                  (c.instrumented ? "instrumented" : "uninstrumented");
        t.add_row({std::to_string(c.threads), c.instrumented ? "1" : "0",
                   util::fmt(legacy_ns, 1), util::fmt(fresh_ns, 1),
                   util::fmt(speedup, 2) + "x"});
        json.record("legacy_" + label + "_ns_per_event", legacy_ns, "ns");
        json.record("lockfree_" + label + "_ns_per_event", fresh_ns, "ns");
        json.record("speedup_" + label, speedup, "x");
    }
    std::printf("%s", t.render().c_str());

    g.check("16-thread uninstrumented dispatch >= 5x cheaper than legacy design",
            speedup_16t_uninstr >= 5.0);
    g.check("instrumented snippet fires were observed on both designs",
            checksum > 0.0);

    // Stats sharding must still aggregate exactly: one registry, known
    // event count across threads.
    {
        instr::Registry reg;
        const instr::FuncId f = reg.register_function("f", "m", 0);
        constexpr int kThreads = 8;
        constexpr long kGuards = 20000;
        std::vector<std::thread> ts;
        for (int i = 0; i < kThreads; ++i)
            ts.emplace_back([&] {
                for (long n = 0; n < kGuards; ++n) fire_guard(reg, f);
            });
        for (auto& t2 : ts) t2.join();
        const instr::DispatchStats s = reg.stats();
        g.check("sharded stats aggregate exactly (8 threads x 20k guards)",
                s.events == 2ULL * kThreads * kGuards);
        json.record("sharded_stats_events", static_cast<double>(s.events), "events");
    }

    tracing_ablation(g, json, /*iters=*/20000, /*reps=*/5);

    json.write_file();
    std::printf("\nDispatch fast-path ablation: %d failures\n", g.failures());
    return g.exit_code();
}
