// Ablation (paper section 4.2.2): intercept vs attach spawn support.
//
// "While this approach [intercept] is simple, it has the drawback of
// adding overhead to the spawning operation.  If the user wanted to
// measure the performance cost of spawning operations, this method
// would inflate the measured values.  It also starts a new Paradyn
// daemon for each new process, which is not strictly necessary."
//
// This bench times MPI_Comm_spawn under three configurations --
// unmonitored, intercept, and attach(+MPIR) -- and shows the
// per-method overhead and daemon counts.
#include "bench_common.hpp"

#include "util/clock.hpp"
#include "util/stats.hpp"

using namespace m2p;

namespace {

struct SpawnTiming {
    double mean_spawn_seconds = 0.0;
    int daemons_started = 0;
    int processes_discovered = 0;
};

SpawnTiming run_case(core::SpawnMethod method, bool mpir, int rounds, int children) {
    simmpi::World::Config wcfg;
    wcfg.mpir_enabled = mpir;
    instr::Registry reg;
    simmpi::World world(reg, wcfg);
    core::PerfTool::Options topts;
    topts.spawn_method = method;
    core::PerfTool tool(world, topts);

    std::vector<double> times;
    world.register_program("child", [](simmpi::Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    world.register_program("parent", [&](simmpi::Rank& r,
                                         const std::vector<std::string>&) {
        r.MPI_Init();
        for (int i = 0; i < rounds; ++i) {
            simmpi::Comm inter = simmpi::MPI_COMM_NULL;
            std::vector<int> errcodes;
            const double t0 = util::wall_seconds();
            r.MPI_Comm_spawn("child", {}, children, simmpi::MPI_INFO_NULL, 0,
                             r.MPI_COMM_WORLD(), &inter, &errcodes);
            times.push_back(util::wall_seconds() - t0);
        }
        r.MPI_Finalize();
    });
    core::run_app_async(tool, "parent", {}, 1);
    world.join_all();
    tool.flush();

    SpawnTiming out;
    out.mean_spawn_seconds = util::summarize(times).mean;
    out.daemons_started = tool.spawn_stats().daemons_started;
    out.processes_discovered = tool.known_process_count() - 1;  // minus parent
    return out;
}

}  // namespace

int main() {
    bench::header("Ablation: spawn support method",
                  "intercept (paper's implementation) vs attach (MPIR) vs none");
    bench::Grader g;
    constexpr int kRounds = 8, kChildren = 3;

    const SpawnTiming none =
        run_case(core::SpawnMethod::None, false, kRounds, kChildren);
    const SpawnTiming intercept =
        run_case(core::SpawnMethod::Intercept, false, kRounds, kChildren);
    const SpawnTiming attach_no_mpir =
        run_case(core::SpawnMethod::Attach, false, kRounds, kChildren);
    const SpawnTiming attach_mpir =
        run_case(core::SpawnMethod::Attach, true, kRounds, kChildren);

    util::TextTable t({"method", "mean MPI_Comm_spawn (ms)", "overhead vs none (ms)",
                       "daemons started", "children discovered"});
    auto row = [&](const char* name, const SpawnTiming& s) {
        t.add_row({name, util::fmt(1e3 * s.mean_spawn_seconds, 3),
                   util::fmt(1e3 * (s.mean_spawn_seconds - none.mean_spawn_seconds), 3),
                   std::to_string(s.daemons_started),
                   std::to_string(s.processes_discovered)});
    };
    row("unmonitored", none);
    row("intercept", intercept);
    row("attach (no MPIR, as in 2004)", attach_no_mpir);
    row("attach (MPIR available)", attach_mpir);
    std::printf("%s", t.render().c_str());

    g.check("intercept discovers every child",
            intercept.processes_discovered == kRounds * kChildren);
    g.check("intercept inflates measured spawn cost (paper's drawback)",
            intercept.mean_spawn_seconds > 1.3 * none.mean_spawn_seconds);
    g.check("intercept starts one daemon per child",
            intercept.daemons_started == kRounds * kChildren);
    g.check("attach without MPIR discovers nothing (the 2004 reality)",
            attach_no_mpir.processes_discovered == 0);
    g.check("attach with MPIR discovers every child without daemons-per-child",
            attach_mpir.processes_discovered == kRounds * kChildren &&
                attach_mpir.daemons_started == 0);
    g.check("attach adds less spawn overhead than intercept",
            attach_mpir.mean_spawn_seconds < intercept.mean_spawn_seconds);

    std::printf("\nSpawn-method ablation: %d failures\n", g.failures());
    return g.exit_code();
}
