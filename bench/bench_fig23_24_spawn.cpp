// Figures 23 & 24: dynamic process creation (LAM only).
//  Fig 23: Resource Hierarchy before and after MPI_Comm_spawn in
//          spawnwinsync -- three new processes appear, the
//          parent<->child RMA window is detected, and friendly names
//          show: "Parent&Child" (merged intracomm), "toParentGroup"
//          (children's parent intercomm), and "ParentChildWindow" --
//          which under LAM also appears under Message because LAM
//          stores window names in a per-window communicator.
//  Fig 24: PC output for spawnsync (children wait in childFunction ->
//          MPI_Recv; parent CPU bound in parentFunction) and
//          spawnwinsync (children wait in MPI_Win_fence on the named
//          window; message-passing sync also appears because LAM's
//          fence uses Isend/Waitall).
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 23 & 24", "spawn support: hierarchy growth + PC findings");
    bench::Grader g;

    // ---- Figure 23: hierarchy before/after the spawn ----------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p;
        p.iterations = 40;
        p.spawn_children = 3;
        ppm::register_all(s.world(), p);
        s.tool().flush();
        const std::string before_procs = s.tool().hierarchy().render("/Process");
        const std::size_t procs_before =
            s.tool().hierarchy().children("/Process", true).size();
        s.run(ppm::kSpawnwinSync, 1);
        std::printf("--- Fig 23: /Process before spawn ---\n%s", before_procs.c_str());
        std::printf("\n--- Fig 23: /Process after spawn ---\n%s",
                    s.tool().hierarchy().render("/Process").c_str());
        std::printf("\n--- Fig 23: /SyncObject after spawn ---\n%s",
                    s.tool().hierarchy().render("/SyncObject").c_str());

        const auto procs_after = s.tool().hierarchy().children("/Process", true);
        g.check("three new processes appeared",
                procs_before == 0 && procs_after.size() == 4);
        bool win_named = false;
        for (const auto& w : s.tool().hierarchy().children("/SyncObject/Window", true))
            win_named |= s.tool().hierarchy().get(w).display == "ParentChildWindow";
        g.check("parent/child RMA window detected and named ParentChildWindow",
                win_named);
        bool merged_named = false, to_parent = false, win_under_message = false;
        for (const auto& c :
             s.tool().hierarchy().children("/SyncObject/Message", true)) {
            const std::string d = s.tool().hierarchy().get(c).display;
            merged_named |= d == "Parent&Child";
            to_parent |= d == "toParentGroup";
            win_under_message |= d == "ParentChildWindow";
        }
        g.check("merged intracommunicator named Parent&Child", merged_named);
        g.check("children's parent intercomm named toParentGroup", to_parent);
        g.check("window name also under Message (LAM stores it in a comm)",
                win_under_message);
    }

    // ---- Figure 24 (left): spawnsync ---------------------------------------
    {
        const bench::PcRun run =
            bench::run_pc(simmpi::Flavor::Lam, ppm::kSpawnSync, 1,
                          bench::pc_params(ppm::kSpawnSync), bench::pc_options());
        std::printf("\n--- Fig 24 condensed PC output (spawnsync) ---\n%s",
                    run.condensed.c_str());
        g.check("children's sync bottleneck in childFunction",
                run.report.found("ExcessiveSyncWaitingTime", "childFunction"));
        g.check("drilled to MPI_Recv",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Recv"));
        g.check("parent CPU bound (parentFunction or its process)",
                run.report.found("CPUBound", "parentFunction") ||
                    run.report.found("CPUBound", "/Process/p0"));
    }

    // ---- Figure 24 (right): spawnwinsync ------------------------------------
    {
        const bench::PcRun run =
            bench::run_pc(simmpi::Flavor::Lam, ppm::kSpawnwinSync, 1,
                          bench::pc_params(ppm::kSpawnwinSync), bench::pc_options());
        std::printf("\n--- Fig 24 condensed PC output (spawnwinsync) ---\n%s",
                    run.condensed.c_str());
        g.check("sync waiting due to one-sided communication (fence)",
                run.report.found("ExcessiveSyncWaitingTime", "Win_fence"));
        g.check("responsible window identified",
                run.report.found("ExcessiveSyncWaitingTime", "/SyncObject/Window/"));
        // LAM's fence is built on Isend/Waitall + Barrier: message-
        // passing sync also shows up.
        g.check("message-passing sync also present (LAM fence internals)",
                run.report.found("ExcessiveSyncWaitingTime", "Barrier") ||
                    run.report.found("ExcessiveSyncWaitingTime", "Wait") ||
                    run.report.found("ExcessiveSyncWaitingTime", "Message"));
        g.check("parent CPU bound",
                run.report.found("CPUBound", "parentFunction") ||
                    run.report.found("CPUBound", "/Process/p0"));
    }

    std::printf("\nFigures 23-24 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
