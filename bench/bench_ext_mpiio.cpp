// Extension: MPI-I/O tool support -- the remaining MPI-2 feature the
// paper's conclusion lists as in-progress ("We are continuing to
// implement support for the remaining MPI-2 features").  Section 3
// frames the requirement: "The MPI-I/O interface is extensive ...
// These flexibilities increase the chances that a less than optimal
// combination could be chosen.  Programmers will desire performance
// measurement for MPI-I/O."
//
// This bench validates the MPI-I/O metric suite on a known workload
// and shows the Performance Consultant diagnosing a collective-write
// straggler down to the routine and the responsible file.
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Extension: MPI-I/O", "metrics + PC diagnosis of parallel file access");
    bench::Grader g;

    // ---- Metric validation on io-stripes --------------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;
        core::Session s(flavor, {}, wcfg);
        ppm::Params p;
        p.io_rounds = 10;
        p.io_chunk_bytes = 32768;
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kIoStripes, {}, 4);
        auto ops = s.tool().metrics().request("mpiio_ops", core::Focus{});
        auto written = s.tool().metrics().request("mpiio_bytes_written", core::Focus{});
        auto read = s.tool().metrics().request("mpiio_bytes_read", core::Focus{});
        auto wait = s.tool().metrics().request("mpiio_wait", core::Focus{});
        s.world().release_start_gate();
        s.world().join_all();
        s.tool().flush();

        const ppm::IoTruth t = ppm::io_stripes_truth(p, 4);
        util::TextTable table({"metric", "measured", "expected"});
        table.add_row({"mpiio_ops", util::fmt(ops->total()),
                       util::fmt(static_cast<double>(t.ops))});
        table.add_row({"mpiio_bytes_written", util::fmt(written->total()),
                       util::fmt(static_cast<double>(t.bytes_written))});
        table.add_row({"mpiio_bytes_read", util::fmt(read->total()),
                       util::fmt(static_cast<double>(t.bytes_read))});
        table.add_row({"mpiio_wait (CPU-s)", util::fmt(wait->total(), 4), "> 0"});
        std::printf("\n--- %s: io-stripes metric validation ---\n%s",
                    simmpi::flavor_name(flavor), table.render().c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) + ": op count exact",
                ops->total() == static_cast<double>(t.ops));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": bytes written exact",
                written->total() == static_cast<double>(t.bytes_written));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": bytes read exact",
                read->total() == static_cast<double>(t.bytes_read));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": file wait observed",
                wait->total() > 0.0);

        const auto files = s.tool().hierarchy().children("/SyncObject/File", true);
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": shared file discovered and named",
                files.size() == 1 &&
                    s.tool().hierarchy().get(files[0]).display ==
                        "pperfmark-stripes.dat");
        for (auto* pr : {&ops, &written, &read, &wait}) s.tool().metrics().release(*pr);
    }

    // ---- PC diagnosis of the collective-write straggler ------------------
    {
        core::Session s(simmpi::Flavor::Mpich);
        ppm::Params p;
        p.io_rounds = 40;
        p.io_chunk_bytes = 1 << 17;
        ppm::register_all(s.world(), p);
        core::PerformanceConsultant::Options o = bench::pc_options();
        const core::PCReport r = s.run_with_consultant(ppm::kIoBound, 4, o);
        std::printf("\n--- io-bound: condensed PC output ---\n%s",
                    core::PerformanceConsultant::render_condensed(r).c_str());
        g.check("ExcessiveIOBlockingTime true",
                r.found("ExcessiveIOBlockingTime", ""));
        g.check("drilled to MPI_File_write_all",
                r.found("ExcessiveIOBlockingTime", "File_write_all"));
        g.check("responsible file identified",
                r.found("ExcessiveIOBlockingTime", "/SyncObject/File/"));
    }

    std::printf("\nMPI-I/O extension: %d failures\n", g.failures());
    return g.exit_code();
}
