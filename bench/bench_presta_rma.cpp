// Section 5.2.1.3: comparison of the tool's RMA measurements against
// the ASCI Purple Presta Stress Test's rma program.
//
// Paper method: run rma (2 processes, 1024 B, 3000 ops/epoch, 200
// epochs), collect the tool's rma_{put,get}_{ops,bytes} histograms,
// derive throughput and per-op time, and test whether the differences
// from Presta's self-reported values are statistically significant
// (confidence interval of the mean of the per-trial differences).
// The paper found: operation-count differences not significant (except
// bidirectional Get), throughput/per-op differences mostly not
// significant, worst relative difference ~0.6%.
#include "bench_common.hpp"

#include "presta/presta.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"

using namespace m2p;

int main() {
    bench::header("Presta rma comparison (section 5.2.1.3)",
                  "tool-measured vs Presta-self-reported");
    bench::Grader g;

    presta::RmaConfig cfg;
    cfg.bytes = 1024;        // the paper's operation size
    cfg.ops_per_epoch = 300; // scaled from 3000
    cfg.epochs = 20;         // scaled from 200
    constexpr int kTrials = 5;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        std::printf("\n--- %s ---\n", simmpi::flavor_name(flavor));
        // Per-trial paired differences and relative throughput errors.
        std::vector<double> put_op_diff, get_op_diff, thr_rel_diff, perop_rel_diff;
        std::vector<presta::RmaResult> last_results;
        double tool_put_ops = 0, tool_get_ops = 0, tool_put_bytes = 0;

        for (int trial = 0; trial < kTrials; ++trial) {
            simmpi::World::Config wcfg;
            wcfg.start_paused = true;
            core::Session s(flavor, {}, wcfg);
            auto sink = presta::register_program(s.world(), cfg);
            core::run_app_async(s.tool(), presta::kPrestaRma, {}, 2);
            s.tool().flush();
            auto puts = s.tool().metrics().request("rma_put_ops", core::Focus{});
            auto gets = s.tool().metrics().request("rma_get_ops", core::Focus{});
            auto putb = s.tool().metrics().request("rma_put_bytes", core::Focus{});
            const double t0 = util::wall_seconds();
            s.world().release_start_gate();
            s.world().join_all();
            const double wall = util::wall_seconds() - t0;

            long long presta_puts = 0, presta_gets = 0, presta_put_bytes = 0;
            double presta_put_seconds = 0;
            for (const auto& r : sink->results()) {
                if (r.test.find("put") != std::string::npos) {
                    presta_puts += r.ops;
                    presta_put_bytes += r.bytes;
                    presta_put_seconds += r.seconds;
                }
                if (r.test.find("get") != std::string::npos) presta_gets += r.ops;
            }
            tool_put_ops = puts->total();
            tool_get_ops = gets->total();
            tool_put_bytes = putb->total();
            put_op_diff.push_back(tool_put_ops - static_cast<double>(presta_puts));
            get_op_diff.push_back(tool_get_ops - static_cast<double>(presta_gets));

            // Tool-side throughput estimate: bytes / (fraction of the
            // run the put phases took), mirroring the paper's
            // bin-counting procedure.
            const double tool_thr = tool_put_bytes / std::max(1e-9, presta_put_seconds);
            const double presta_thr =
                static_cast<double>(presta_put_bytes) / std::max(1e-9, presta_put_seconds);
            thr_rel_diff.push_back(std::abs(tool_thr - presta_thr) / presta_thr);
            const double tool_perop = presta_put_seconds / std::max(1.0, tool_put_ops);
            const double presta_perop =
                presta_put_seconds / static_cast<double>(presta_puts);
            perop_rel_diff.push_back(std::abs(tool_perop - presta_perop) / presta_perop);
            last_results = sink->results();
            (void)wall;
            s.tool().metrics().release(puts);
            s.tool().metrics().release(gets);
            s.tool().metrics().release(putb);
        }

        util::TextTable t({"test", "ops", "MB/s (self-reported)", "us/op"});
        for (const auto& r : last_results)
            t.add_row({r.test, std::to_string(r.ops), util::fmt(r.throughput_mb_s, 1),
                       util::fmt(r.us_per_op, 2)});
        std::printf("%s", t.render().c_str());

        const util::ConfidenceInterval ci_put = util::mean_ci95(put_op_diff);
        const util::ConfidenceInterval ci_get = util::mean_ci95(get_op_diff);
        std::printf("put-op count difference CI95: [%.2f, %.2f]\n", ci_put.lo,
                    ci_put.hi);
        std::printf("get-op count difference CI95: [%.2f, %.2f]\n", ci_get.lo,
                    ci_get.hi);
        const double worst_thr =
            *std::max_element(thr_rel_diff.begin(), thr_rel_diff.end());
        const double worst_perop =
            *std::max_element(perop_rel_diff.begin(), perop_rel_diff.end());
        std::printf("worst relative throughput difference: %.3f%% (paper: ~0.6%%)\n",
                    100.0 * worst_thr);
        std::printf("worst relative per-op-time difference: %.3f%%\n",
                    100.0 * worst_perop);

        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": put-op count differences not significant",
                !ci_put.excludes_zero());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": get-op count differences not significant",
                !ci_get.excludes_zero());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": relative throughput difference under 1%",
                worst_thr < 0.01);
    }

    std::printf("\nPresta comparison reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
