// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Each binary regenerates one paper artifact: it runs the relevant
// PPerfMark/Presta workload under the tool, prints what the paper
// reported next to what this reproduction measured, and exits nonzero
// if the qualitative finding (who is the bottleneck) does not hold.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "util/text_table.hpp"

namespace m2p::bench {

/// Machine-readable results alongside the human tables: each bench
/// binary records {metric, value, unit} rows and writes them to
/// BENCH_<name>.json in the working directory, so benchmark
/// trajectories can be tracked across commits without scraping stdout.
class JsonEmitter {
public:
    explicit JsonEmitter(std::string bench_name) : name_(std::move(bench_name)) {}

    void record(const std::string& metric, double value, const std::string& unit) {
        rows_.push_back({metric, value, unit});
    }

    std::string render() const {
        std::string out = "{\"bench\":\"" + escaped(name_) + "\",\"records\":[";
        char num[32];
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::snprintf(num, sizeof num, "%.9g", rows_[i].value);
            if (i) out += ',';
            out += "{\"metric\":\"" + escaped(rows_[i].metric) + "\",\"value\":" +
                   num + ",\"unit\":\"" + escaped(rows_[i].unit) + "\"}";
        }
        out += "]}\n";
        return out;
    }

    /// Writes BENCH_<name>.json; returns false (with a note on stderr)
    /// if the file cannot be created.
    bool write_file() const {
        const std::string path = "BENCH_" + name_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "JsonEmitter: cannot write %s\n", path.c_str());
            return false;
        }
        const std::string body = render();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("  [json] wrote %s (%zu records)\n", path.c_str(), rows_.size());
        return true;
    }

private:
    static std::string escaped(const std::string& s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        return out;
    }

    struct Row {
        std::string metric;
        double value;
        std::string unit;
    };
    std::string name_;
    std::vector<Row> rows_;
};

/// Iteration counts tuned so each program runs ~2-3 s under the
/// Performance Consultant on a small host (workloads are scaled from
/// the paper's cluster runs; see DESIGN.md section 2).
inline ppm::Params pc_params(const std::string& program) {
    ppm::Params p;
    p.time_to_waste = 2;
    p.waste_unit_seconds = 0.002;
    if (program == ppm::kSmallMessages) p.iterations = 400000;
    else if (program == ppm::kBigMessage) p.iterations = 150000;
    else if (program == ppm::kWrongWay) p.iterations = 500000;
    else if (program == ppm::kIntensiveServer) p.iterations = 120;
    else if (program == ppm::kRandomBarrier) p.iterations = 500;
    else if (program == ppm::kDiffuseProcedure) p.iterations = 500;
    else if (program == ppm::kSystemTime) p.iterations = 150, p.waste_unit_seconds = 0.004;
    else if (program == ppm::kHotProcedure) p.iterations = 500;
    else if (program == ppm::kSstwod) p.iterations = 30000, p.grid_n = 48;
    else if (program == ppm::kAllcount) p.iterations = 100, p.epochs = 400,
             p.rma_ops_per_epoch = 20;
    else if (program == ppm::kWincreateBlast) p.win_blast_count = 64;
    else if (program == ppm::kWinfenceSync) p.iterations = 450;
    else if (program == ppm::kWinscpwSync) p.iterations = 450;
    else if (program == ppm::kWinlockSync) p.iterations = 300;
    else if (program == ppm::kSpawnCount) p.spawn_rounds = 4, p.spawn_children = 3;
    else if (program == ppm::kSpawnSync) p.iterations = 250;
    else if (program == ppm::kSpawnwinSync) p.iterations = 350;
    else if (program == ppm::kOned) p.iterations = 25000, p.grid_n = 48;
    return p;
}

/// Process counts per program, following the paper's runs (6 for the
/// client/server programs, 2 for the pairwise ones, 4 elsewhere).
inline int pc_nprocs(const std::string& program) {
    if (program == ppm::kSmallMessages || program == ppm::kIntensiveServer ||
        program == ppm::kRandomBarrier)
        return 6;
    if (program == ppm::kBigMessage || program == ppm::kWrongWay) return 2;
    if (program == ppm::kSpawnCount || program == ppm::kSpawnSync ||
        program == ppm::kSpawnwinSync)
        return 1;
    return 4;
}

inline core::PerformanceConsultant::Options pc_options() {
    core::PerformanceConsultant::Options o;
    o.eval_interval = 0.08;
    o.max_search_seconds = 6.0;
    return o;
}

struct PcRun {
    core::PCReport report;
    std::string condensed;
};

/// Runs @p program on @p nprocs processes of a fresh session under the
/// Performance Consultant.  @p tweak may adjust params/opts first.
inline PcRun run_pc(simmpi::Flavor flavor, const std::string& program, int nprocs,
                    ppm::Params params, core::PerformanceConsultant::Options opts) {
    core::Session s(flavor);
    ppm::register_all(s.world(), params);
    PcRun out;
    out.report = s.run_with_consultant(program, nprocs, opts);
    out.condensed = core::PerformanceConsultant::render_condensed(out.report);
    return out;
}

/// Prints a standard header for one reproduced artifact.
inline void header(const std::string& artifact, const std::string& what) {
    std::printf("==========================================================\n");
    std::printf("%s -- %s\n", artifact.c_str(), what.c_str());
    std::printf("==========================================================\n");
}

/// One paper-vs-measured check line; accumulates the exit status.
class Grader {
public:
    void check(const std::string& claim, bool held) {
        std::printf("  [%s] %s\n", held ? "PASS" : "FAIL", claim.c_str());
        failed_ += held ? 0 : 1;
    }
    void note(const std::string& text) { std::printf("  [note] %s\n", text.c_str()); }
    int exit_code() const { return failed_ == 0 ? 0 : 1; }
    int failures() const { return failed_; }

private:
    int failed_ = 0;
};

}  // namespace m2p::bench
