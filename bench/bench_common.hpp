// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Each binary regenerates one paper artifact: it runs the relevant
// PPerfMark/Presta workload under the tool, prints what the paper
// reported next to what this reproduction measured, and exits nonzero
// if the qualitative finding (who is the bottleneck) does not hold.
#pragma once

#include <cstdio>
#include <string>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "util/text_table.hpp"

namespace m2p::bench {

/// Iteration counts tuned so each program runs ~2-3 s under the
/// Performance Consultant on a small host (workloads are scaled from
/// the paper's cluster runs; see DESIGN.md section 2).
inline ppm::Params pc_params(const std::string& program) {
    ppm::Params p;
    p.time_to_waste = 2;
    p.waste_unit_seconds = 0.002;
    if (program == ppm::kSmallMessages) p.iterations = 400000;
    else if (program == ppm::kBigMessage) p.iterations = 150000;
    else if (program == ppm::kWrongWay) p.iterations = 500000;
    else if (program == ppm::kIntensiveServer) p.iterations = 120;
    else if (program == ppm::kRandomBarrier) p.iterations = 500;
    else if (program == ppm::kDiffuseProcedure) p.iterations = 500;
    else if (program == ppm::kSystemTime) p.iterations = 150, p.waste_unit_seconds = 0.004;
    else if (program == ppm::kHotProcedure) p.iterations = 500;
    else if (program == ppm::kSstwod) p.iterations = 30000, p.grid_n = 48;
    else if (program == ppm::kAllcount) p.iterations = 100, p.epochs = 400,
             p.rma_ops_per_epoch = 20;
    else if (program == ppm::kWincreateBlast) p.win_blast_count = 64;
    else if (program == ppm::kWinfenceSync) p.iterations = 450;
    else if (program == ppm::kWinscpwSync) p.iterations = 450;
    else if (program == ppm::kWinlockSync) p.iterations = 300;
    else if (program == ppm::kSpawnCount) p.spawn_rounds = 4, p.spawn_children = 3;
    else if (program == ppm::kSpawnSync) p.iterations = 250;
    else if (program == ppm::kSpawnwinSync) p.iterations = 350;
    else if (program == ppm::kOned) p.iterations = 25000, p.grid_n = 48;
    return p;
}

/// Process counts per program, following the paper's runs (6 for the
/// client/server programs, 2 for the pairwise ones, 4 elsewhere).
inline int pc_nprocs(const std::string& program) {
    if (program == ppm::kSmallMessages || program == ppm::kIntensiveServer ||
        program == ppm::kRandomBarrier)
        return 6;
    if (program == ppm::kBigMessage || program == ppm::kWrongWay) return 2;
    if (program == ppm::kSpawnCount || program == ppm::kSpawnSync ||
        program == ppm::kSpawnwinSync)
        return 1;
    return 4;
}

inline core::PerformanceConsultant::Options pc_options() {
    core::PerformanceConsultant::Options o;
    o.eval_interval = 0.08;
    o.max_search_seconds = 6.0;
    return o;
}

struct PcRun {
    core::PCReport report;
    std::string condensed;
};

/// Runs @p program on @p nprocs processes of a fresh session under the
/// Performance Consultant.  @p tweak may adjust params/opts first.
inline PcRun run_pc(simmpi::Flavor flavor, const std::string& program, int nprocs,
                    ppm::Params params, core::PerformanceConsultant::Options opts) {
    core::Session s(flavor);
    ppm::register_all(s.world(), params);
    PcRun out;
    out.report = s.run_with_consultant(program, nprocs, opts);
    out.condensed = core::PerformanceConsultant::render_condensed(out.report);
    return out;
}

/// Prints a standard header for one reproduced artifact.
inline void header(const std::string& artifact, const std::string& what) {
    std::printf("==========================================================\n");
    std::printf("%s -- %s\n", artifact.c_str(), what.c_str());
    std::printf("==========================================================\n");
}

/// One paper-vs-measured check line; accumulates the exit status.
class Grader {
public:
    void check(const std::string& claim, bool held) {
        std::printf("  [%s] %s\n", held ? "PASS" : "FAIL", claim.c_str());
        failed_ += held ? 0 : 1;
    }
    void note(const std::string& text) { std::printf("  [note] %s\n", text.c_str()); }
    int exit_code() const { return failed_ == 0 ? 0 : 1; }
    int failures() const { return failed_; }

private:
    int failed_ = 0;
};

}  // namespace m2p::bench
