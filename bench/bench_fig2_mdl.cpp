// Figure 2: MDL metric definition and constraint examples.  Parses the
// paper's four definitions (rma_put_ops, rma_sync_wait, rma_put_bytes,
// and the RMA window constraint) verbatim, compiles them against the
// live instrumentation substrate, and shows they measure a real
// workload exactly as the built-in copies do.
#include "bench_common.hpp"

#include "mdl/ast.hpp"
#include "mdl/default_metrics.hpp"

using namespace m2p;

namespace {

// The paper's Figure 2, transcribed (modulo whitespace).
const char* kFigure2 = R"(
metric mpi_rma_put_ops {
    name "rma_put_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
        }
    }
}

metric mpi_rma_put_bytes {
    name "rma_put_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_put_bytes += bytes * count; *)
        }
    }
}

metric mpi_rma_syncwait {
    name "rma_sync_wait";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint procedureConstraint;
    constraint moduleConstraint;
    constraint mpi_syncobjConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_rma_sync {
            append preinsn func.entry constrained (* startWallTimer(mpi_rma_syncwait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_rma_syncwait); *)
        }
        foreach func in mpi_all_calls {
        }
    }
}

constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_get {
        prepend preinsn func.entry
            (* if (DYNINSTTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_put {
        prepend preinsn func.entry
            (* if (DYNINSTTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}
)";

}  // namespace

int main() {
    bench::header("Figure 2", "the paper's MDL examples parse, compile, and measure");
    bench::Grader g;

    mdl::MdlFile fig2;
    try {
        fig2 = mdl::parse(kFigure2);
    } catch (const mdl::ParseError& e) {
        std::printf("parse error: %s\n", e.what());
        return 1;
    }
    g.check("Figure 2 source parses", true);
    g.check("three metrics parsed", fig2.metrics.size() == 3);
    g.check("window constraint parsed with /SyncObject/Window path",
            fig2.find_constraint("mpi_windowConstraint") != nullptr &&
                fig2.find_constraint("mpi_windowConstraint")->path ==
                    "/SyncObject/Window");

    // Compile the figure's metrics in a live session and compare
    // against ground truth from allcount.
    core::Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.epochs = 20;
    p.rma_ops_per_epoch = 25;
    ppm::register_all(s.world(), p);

    auto resolver = [&](const std::string& set) {
        return s.tool().resolve_funcset(set);
    };
    double put_ops = 0, put_bytes = 0, sync_wait = 0;
    auto cm_ops = mdl::compile_metric(
        s.registry(), *fig2.find_metric("rma_put_ops"), {}, s.tool().services(),
        resolver, [&](double, double d) { put_ops += d; });
    auto cm_bytes = mdl::compile_metric(
        s.registry(), *fig2.find_metric("rma_put_bytes"), {}, s.tool().services(),
        resolver, [&](double, double d) { put_bytes += d; });
    auto cm_wait = mdl::compile_metric(
        s.registry(), *fig2.find_metric("rma_sync_wait"), {}, s.tool().services(),
        resolver, [&](double, double d) { sync_wait += d; });

    s.run(ppm::kAllcount, 3);
    const ppm::RmaTruth t = ppm::allcount_truth(p, 3);

    util::TextTable table({"Figure 2 metric", "measured", "expected"});
    table.add_row({"rma_put_ops", util::fmt(put_ops),
                   util::fmt(static_cast<double>(t.puts))});
    table.add_row({"rma_put_bytes", util::fmt(put_bytes),
                   util::fmt(static_cast<double>(t.put_bytes))});
    table.add_row({"rma_sync_wait (CPU-s)", util::fmt(sync_wait, 4), "> 0"});
    std::printf("%s", table.render().c_str());

    g.check("figure-2 rma_put_ops counts exactly",
            put_ops == static_cast<double>(t.puts));
    g.check("figure-2 rma_put_bytes counts exactly",
            put_bytes == static_cast<double>(t.put_bytes));
    g.check("figure-2 rma_sync_wait accrues wall time", sync_wait > 0.0);

    mdl::uninstall(s.registry(), cm_ops);
    mdl::uninstall(s.registry(), cm_bytes);
    mdl::uninstall(s.registry(), cm_wait);

    std::printf("\nFigure 2 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
