// Figure 21: winscpwsync (start/complete + post/wait) for LAM and
// MPICH2.  The PC finds ExcessiveSyncWaitingTime due to active-target
// synchronization on the responsible RMA window; the process with rank
// 0 is CPU bound in waste_time.  The MPI-2 standard leaves the
// blocking point to the implementation: LAM blocks in MPI_Win_start,
// MPICH2 in MPI_Win_complete -- the paper's per-implementation
// difference.
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figure 21", "winscpwsync: PC findings, LAM vs MPICH2");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        ppm::Params p = bench::pc_params(ppm::kWinscpwSync);
        core::PerformanceConsultant::Options o = bench::pc_options();
        o.max_search_seconds = 8.0;
        const bench::PcRun run = bench::run_pc(flavor, ppm::kWinscpwSync, 4, p, o);
        std::printf("\n--- Fig 21 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());

        const bool in_start =
            run.report.found("ExcessiveSyncWaitingTime", "Win_start");
        const bool in_complete =
            run.report.found("ExcessiveSyncWaitingTime", "Win_complete");
        if (flavor == simmpi::Flavor::Lam) {
            g.check("LAM: origins wait in MPI_Win_start", in_start);
            g.check("LAM: not blamed on MPI_Win_complete", !in_complete);
        } else {
            g.check("MPICH2: origins wait in MPI_Win_complete", in_complete);
            g.check("MPICH2: not blamed on MPI_Win_start", !in_start);
        }
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": responsible RMA window determined",
                run.report.found("ExcessiveSyncWaitingTime", "/SyncObject/Window/"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": rank 0 CPU bound in waste_time",
                run.report.found("CPUBound", "waste_time"));
    }

    std::printf("\nFigure 21 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
