// Table 3: PPerfMark MPI-2 program characteristics and pass/fail
// grading -- RMA discovery/metrics, active-target synchronization,
// dynamic process creation, and the passive-target extension program
// the paper defers (winlock-sync).
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Table 3", "PPerfMark MPI-2 program grading");
    bench::Grader g;
    util::TextTable table({"program", "paper", "measured", "details (paper)"});

    // --- allcount: counts of RMA ops and bytes --------------------------
    {
        ppm::Params p = bench::pc_params(ppm::kAllcount);
        core::Session s(simmpi::Flavor::Lam);
        ppm::register_all(s.world(), p);
        auto ops = s.tool().metrics().request("rma_ops", core::Focus{});
        auto bytes = s.tool().metrics().request("rma_bytes", core::Focus{});
        s.run(ppm::kAllcount, 3);
        const ppm::RmaTruth t = ppm::allcount_truth(p, 3);
        const bool pass =
            ops->total() == static_cast<double>(t.puts + t.gets + t.accs) &&
            bytes->total() == static_cast<double>(t.put_bytes + t.get_bytes + t.acc_bytes);
        table.add_row({ppm::kAllcount, "Pass", pass ? "Pass" : "FAIL",
                       "counted RMA operations and bytes transferred"});
        g.check("allcount counts exact", pass);
        s.tool().metrics().release(ops);
        s.tool().metrics().release(bytes);
    }

    // --- wincreate-blast: every window detected despite id reuse --------
    {
        ppm::Params p = bench::pc_params(ppm::kWincreateBlast);
        core::Session s(simmpi::Flavor::Lam);
        ppm::register_all(s.world(), p);
        s.run(ppm::kWincreateBlast, 2);
        const auto wins = s.tool().hierarchy().children("/SyncObject/Window", true);
        const bool pass = wins.size() == static_cast<std::size_t>(p.win_blast_count);
        table.add_row({ppm::kWincreateBlast, "Pass", pass ? "Pass" : "FAIL",
                       "detected and incorporated all windows (N-M ids)"});
        g.check("wincreate-blast discovers all windows", pass);
    }

    // --- winfence-sync: late rank 0, others wait in fence -----------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kWinfenceSync, 4,
                          bench::pc_params(ppm::kWinfenceSync), bench::pc_options());
        const bool sync = run.report.found("ExcessiveSyncWaitingTime", "Win_fence") ||
                          run.report.found("ExcessiveSyncWaitingTime", "Barrier");
        const bool cpu = run.report.found("CPUBound", "waste_time") ||
                         run.report.found("CPUBound", "/Process/p0");
        table.add_row({std::string(ppm::kWinfenceSync) + " (" +
                           simmpi::flavor_name(flavor) + ")",
                       "Pass", (sync && cpu) ? "Pass" : "FAIL",
                       "non-zero ranks too long in MPI_Win_fence; rank 0 CPU bound"});
        g.check(std::string("winfence-sync graded (") + simmpi::flavor_name(flavor) +
                    ")",
                sync && cpu);
        if (!(sync && cpu)) std::printf("%s\n", run.condensed.c_str());
    }

    // --- winscpw-sync: start/complete vs post/wait ------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kWinscpwSync, 4,
                          bench::pc_params(ppm::kWinscpwSync), bench::pc_options());
        // LAM blocks in MPI_Win_start; MPICH2 in MPI_Win_complete --
        // "the differences in the findings are due to differences in
        // the MPI implementations" (paper 5.2.1.1).
        const bool at_sync =
            flavor == simmpi::Flavor::Lam
                ? run.report.found("ExcessiveSyncWaitingTime", "Win_start")
                : run.report.found("ExcessiveSyncWaitingTime", "Win_complete");
        const bool window =
            run.report.found("ExcessiveSyncWaitingTime", "/SyncObject/Window/");
        const bool cpu = run.report.found("CPUBound", "waste_time") ||
                         run.report.found("CPUBound", "/Process/p0");
        table.add_row(
            {std::string(ppm::kWinscpwSync) + " (" + simmpi::flavor_name(flavor) + ")",
             "Pass", (at_sync && window && cpu) ? "Pass" : "FAIL",
             flavor == simmpi::Flavor::Lam ? "origins wait in MPI_Win_start (LAM)"
                                           : "origins wait in MPI_Win_complete (MPICH2)"});
        g.check(std::string("winscpw-sync graded (") + simmpi::flavor_name(flavor) +
                    ")",
                at_sync && window && cpu);
        if (!(at_sync && window && cpu)) std::printf("%s\n", run.condensed.c_str());
    }

    // --- winlock-sync (extension: passive target) -------------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p = bench::pc_params(ppm::kWinlockSync);
        ppm::register_all(s.world(), p);
        auto pt = s.tool().metrics().request("pt_rma_sync_wait", core::Focus{});
        const core::PCReport r =
            s.run_with_consultant(ppm::kWinlockSync, 4, bench::pc_options());
        const bool pass = r.found("ExcessiveSyncWaitingTime", "Win_lock") &&
                          pt->total() > 0.0;
        table.add_row({std::string(ppm::kWinlockSync) + " (extension)",
                       "(deferred)", pass ? "Pass" : "FAIL",
                       "passive-target waiting in MPI_Win_lock (paper future work)"});
        g.check("winlock-sync passive target graded", pass);
        s.tool().metrics().release(pt);
    }

    // --- spawncount: every spawned process detected ------------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p = bench::pc_params(ppm::kSpawnCount);
        ppm::register_all(s.world(), p);
        s.run(ppm::kSpawnCount, 1);
        const int expect = 1 + p.spawn_rounds * p.spawn_children;
        const bool pass = s.tool().known_process_count() == expect;
        table.add_row({ppm::kSpawnCount, "Pass", pass ? "Pass" : "FAIL",
                       "detected and incorporated all new processes"});
        g.check("spawn-count discovers all children", pass);
    }

    // --- spawnsync -----------------------------------------------------------
    {
        const bench::PcRun run =
            bench::run_pc(simmpi::Flavor::Lam, ppm::kSpawnSync, 1,
                          bench::pc_params(ppm::kSpawnSync), bench::pc_options());
        const bool pass = run.report.found("ExcessiveSyncWaitingTime", "childFunction") &&
                          run.report.found("CPUBound", "");
        table.add_row({ppm::kSpawnSync, "Pass", pass ? "Pass" : "FAIL",
                       "children too long in MPI_Recv; parent CPU bound"});
        g.check("spawn-sync graded", pass);
        if (!pass) std::printf("%s\n", run.condensed.c_str());
    }

    // --- spawnwinsync ----------------------------------------------------------
    {
        const bench::PcRun run =
            bench::run_pc(simmpi::Flavor::Lam, ppm::kSpawnwinSync, 1,
                          bench::pc_params(ppm::kSpawnwinSync), bench::pc_options());
        const bool pass = run.report.found("ExcessiveSyncWaitingTime", "Win_fence") ||
                          run.report.found("ExcessiveSyncWaitingTime", "Barrier");
        table.add_row({ppm::kSpawnwinSync, "Pass", pass ? "Pass" : "FAIL",
                       "children waiting in MPI_Win_fence; parent CPU bound"});
        g.check("spawnwin-sync graded", pass);
        if (!pass) std::printf("%s\n", run.condensed.c_str());
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nTable 3 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
