// Transport data-plane ablation: message rate and collective cost of
// the rebuilt simmpi engine (lock-free handle tables, reusable
// envelope buffers, targeted wakeups, tree collectives) against an
// in-binary replica of the design it replaced (global-mutex std::map
// handle lookups, a freshly allocated vector per message, notify_all
// on a single per-mailbox condition variable).
//
// The replica fires the same MPI_/PMPI_ FunctionGuard pairs on a real
// instrumentation Registry, so both sides pay identical tool-facing
// dispatch costs and the difference isolates the transport.
//
// The graded point-to-point shape is a rendezvous incast: n-1 clients
// each stream large (above-eager-limit) messages to one server.  Under
// the legacy protocol every rendezvous sender parks on the mailbox's
// single condition variable and every queue event notify_all()s it, so
// each delivery wakes every parked sender to futilely re-check -- a
// per-message wake storm that grows with rank count.  The rebuilt
// engine hands each rendezvous envelope its own DeliveryToken, so a
// delivery wakes exactly the one sender it completes.  An eager
// windowed-streaming table is also reported (ungraded): with 64-deep
// windows the wakeup costs amortize and the remaining gap is the
// handle-lookup and allocation savings.
//
// Collectives are graded on the bottleneck-rank metric: the maximum
// over ranks of per-call thread-CPU time.  On a timesliced host the
// wall clock cannot show tree-vs-flat parallelism, but the busiest
// rank's CPU work per operation (O(n) for the flat root loop, O(log n)
// for the binomial tree) is host-independent.
//
// `--smoke` runs a tiny iteration count and skips the performance
// thresholds (CI uses it to assert the harness and JSON stay sound).
#include "bench_common.hpp"

#include <barrier>
#include <chrono>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <thread>

#include "instr/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace m2p;

double wall_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double thread_cpu_seconds() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------------------
// Replica of the transport this PR replaced (see git history of
// src/simmpi/world.{hpp,cpp}): every handle resolution locked the one
// world mutex and walked a std::map; every message allocated (and
// zero-filled) its own std::vector payload; every queue transition
// broadcast on the mailbox's single condition variable.
// ---------------------------------------------------------------------------
struct LegacyEnvelope {
    int src;
    int tag;
    std::vector<std::byte> data;
    std::shared_ptr<bool> delivered;  ///< rendezvous token (seed protocol)
};

struct LegacyMailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<LegacyEnvelope> queue;
    std::size_t bytes_queued = 0;
};

struct LegacyProc {
    int global_rank;
    int node = 0;
};

struct LegacyComm {
    std::vector<int> group;
    std::int64_t context = 0;
};

class LegacyWorld {
public:
    explicit LegacyWorld(int nprocs) {
        for (int i = 0; i < nprocs; ++i) {
            procs_[i] = LegacyProc{i};
            mailboxes_[i];  // default-construct in place
        }
        comms_[0].context = 100;
        for (int i = 0; i < nprocs; ++i) comms_[0].group.push_back(i);
    }

    LegacyComm& comm(int c) {
        std::lock_guard lk(mu_);
        return comms_.at(c);
    }
    LegacyProc& proc(int p) {
        std::lock_guard lk(mu_);
        return procs_.at(p);
    }
    LegacyMailbox& mailbox(int p) {
        std::lock_guard lk(mu_);
        return mailboxes_.at(p);
    }

private:
    std::mutex mu_;
    std::map<int, LegacyProc> procs_;
    std::map<int, LegacyMailbox> mailboxes_;
    std::map<int, LegacyComm> comms_;
};

/// Instrumentation fixture shared by both legacy workers: the same
/// Registry type the real stack dispatches through, carrying the same
/// MPI_/PMPI_ function pair per operation.
struct LegacyFids {
    instr::Registry reg;
    instr::FuncId send, psend, recv, precv;
    LegacyFids()
        : send(reg.register_function("MPI_Send", "libmpi", 0)),
          psend(reg.register_function("PMPI_Send", "libmpi", 0)),
          recv(reg.register_function("MPI_Recv", "libmpi", 0)),
          precv(reg.register_function("PMPI_Recv", "libmpi", 0)) {}
};

void legacy_send(LegacyWorld& w, LegacyFids& f, int comm, int me, int dest, int tag,
                 const void* buf, int bytes, bool rendezvous) {
    instr::FunctionGuard g(f.reg, f.send);
    instr::FunctionGuard pg(f.reg, f.psend);
    LegacyComm& cd = w.comm(comm);          // global mutex + map walk
    const int dest_global = cd.group[static_cast<std::size_t>(dest)];
    (void)w.proc(dest_global);              // second global-mutex round trip
    LegacyMailbox& mb = w.mailbox(dest_global);  // and a third
    LegacyEnvelope env;
    env.src = me;
    env.tag = tag;
    env.data.resize(static_cast<std::size_t>(bytes));  // fresh zero-filled alloc
    std::memcpy(env.data.data(), buf, static_cast<std::size_t>(bytes));
    std::unique_lock lk(mb.mu);
    if (rendezvous) {
        // Seed protocol: the waiting sender parks on the mailbox's one
        // condition variable, so every queue event on this mailbox --
        // including other senders' pushes -- wakes it to re-check.
        auto token = std::make_shared<bool>(false);
        env.delivered = token;
        mb.queue.push_back(std::move(env));
        mb.cv.notify_all();
        mb.cv.wait(lk, [&] { return *token; });
        return;
    }
    mb.bytes_queued += env.data.size();
    mb.queue.push_back(std::move(env));
    mb.cv.notify_all();  // under the lock, as the seed did
}

void legacy_recv(LegacyWorld& w, LegacyFids& f, int comm, int me, int src, int tag,
                 void* buf, int bytes) {
    instr::FunctionGuard g(f.reg, f.recv);
    instr::FunctionGuard pg(f.reg, f.precv);
    LegacyComm& cd = w.comm(comm);
    (void)cd;
    LegacyMailbox& mb = w.mailbox(me);
    std::unique_lock lk(mb.mu);
    for (;;) {
        for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
            if (it->src != src || it->tag != tag) continue;
            std::memcpy(buf, it->data.data(),
                        std::min(it->data.size(), static_cast<std::size_t>(bytes)));
            if (it->delivered)
                *it->delivered = true;  // release the rendezvous sender
            else
                mb.bytes_queued -= it->data.size();
            mb.queue.erase(it);  // vector payload freed here, every message
            mb.cv.notify_all();  // under the lock, as the seed did
            return;
        }
        mb.cv.wait(lk);
    }
}

/// Windowed streaming exchange over the legacy replica: in each of
/// @p windows rounds, the even rank of a pair sends kWindow 8-byte
/// messages back to back and the odd rank drains them, acking once
/// per window.  This is the message-RATE shape (cf. bandwidth
/// benchmarks): receivers mostly find messages already queued, so the
/// per-message data-plane cost -- not the futex round trip of a
/// strict ping-pong -- dominates.  Returns wall seconds.
constexpr int kWindow = 64;

double legacy_stream_run(int nranks, long windows) {
    LegacyWorld w(nranks);
    LegacyFids fids;
    std::barrier sync(nranks);
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(nranks));
    // Thread 0 takes both timestamps (mirroring rank 0 on the real
    // side): the main thread may not get scheduled promptly on a
    // loaded host, but a traffic participant releases from the barrier
    // straight into its own timed work.
    std::atomic<double> t0{0.0}, t1{0.0};
    for (int me = 0; me < nranks; ++me)
        ts.emplace_back([&, me] {
            const bool lead = me % 2 == 0;
            const int peer = lead ? me + 1 : me - 1;
            std::uint64_t out = 0, in = 0;
            sync.arrive_and_wait();
            if (me == 0) t0 = wall_seconds();
            for (long wnd = 0; wnd < windows; ++wnd) {
                if (lead) {
                    for (int k = 0; k < kWindow; ++k) {
                        out = static_cast<std::uint64_t>(wnd * kWindow + k);
                        legacy_send(w, fids, 0, me, peer, 7, &out, 8, false);
                    }
                    legacy_recv(w, fids, 0, me, peer, 8, &in, 8);  // window ack
                } else {
                    for (int k = 0; k < kWindow; ++k)
                        legacy_recv(w, fids, 0, me, peer, 7, &in, 8);
                    out = in;
                    legacy_send(w, fids, 0, me, peer, 8, &out, 8, false);
                }
            }
            sync.arrive_and_wait();
            if (me == 0) t1 = wall_seconds();
        });
    for (auto& t : ts) t.join();
    return t1.load() - t0.load();
}

/// Same exchange over the real stack (full MPI trampolines, real
/// Registry dispatch, the production mailbox).  Returns wall seconds
/// measured between two barriers that bracket the traffic.
double real_stream_run(int nranks, long windows) {
    instr::Registry reg;
    simmpi::World world(reg, simmpi::World::Config{});
    std::atomic<double> t0{0.0}, t1{0.0};
    world.register_program("stream", [&](simmpi::Rank& r,
                                         const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        const bool lead = me % 2 == 0;
        const int peer = lead ? me + 1 : me - 1;
        std::uint64_t out = 0, in = 0;
        r.MPI_Barrier(w);
        if (me == 0) t0 = wall_seconds();
        for (long wnd = 0; wnd < windows; ++wnd) {
            if (lead) {
                for (int k = 0; k < kWindow; ++k) {
                    out = static_cast<std::uint64_t>(wnd * kWindow + k);
                    r.MPI_Send(&out, 8, simmpi::MPI_BYTE, peer, 7, w);
                }
                r.MPI_Recv(&in, 8, simmpi::MPI_BYTE, peer, 8, w, nullptr);
            } else {
                for (int k = 0; k < kWindow; ++k)
                    r.MPI_Recv(&in, 8, simmpi::MPI_BYTE, peer, 7, w, nullptr);
                out = in;
                r.MPI_Send(&out, 8, simmpi::MPI_BYTE, peer, 8, w);
            }
        }
        r.MPI_Barrier(w);
        if (me == 0) t1 = wall_seconds();
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i) plan.placements.push_back("node0");
    simmpi::launch(world, "stream", {}, plan);
    world.join_all();
    return t1.load() - t0.load();
}

/// Rendezvous incast over the legacy replica: ranks 1..n-1 each send
/// @p iters large (rendezvous) messages to rank 0, which receives them
/// round-robin.  Each message is an unavoidable sleep/wake handshake,
/// and under the seed protocol every queue event wakes every parked
/// sender on the mailbox's single condition variable -- the wake-storm
/// cost the DeliveryToken redesign removes.  Returns wall seconds.
double legacy_incast_run(int nranks, long iters, int bytes) {
    LegacyWorld w(nranks);
    LegacyFids fids;
    std::barrier sync(nranks);
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(nranks));
    std::atomic<double> t0{0.0}, t1{0.0};
    std::vector<std::byte> payload(static_cast<std::size_t>(bytes), std::byte{5});
    for (int me = 0; me < nranks; ++me)
        ts.emplace_back([&, me] {
            std::vector<std::byte> buf(static_cast<std::size_t>(bytes));
            sync.arrive_and_wait();
            if (me == 0) {
                t0 = wall_seconds();
                for (long i = 0; i < iters; ++i)
                    for (int src = 1; src < nranks; ++src)
                        legacy_recv(w, fids, 0, 0, src, 7, buf.data(), bytes);
            } else {
                for (long i = 0; i < iters; ++i)
                    legacy_send(w, fids, 0, me, 0, 7, payload.data(), bytes, true);
            }
            sync.arrive_and_wait();
            if (me == 0) t1 = wall_seconds();
        });
    for (auto& t : ts) t.join();
    return t1.load() - t0.load();
}

/// Same incast over the real stack: message size above the eager limit
/// makes MPI_Send rendezvous, completing via the per-envelope
/// DeliveryToken (one targeted wake per message).
double real_incast_run(int nranks, long iters, int bytes) {
    instr::Registry reg;
    simmpi::World world(reg, simmpi::World::Config{});
    std::atomic<double> t0{0.0}, t1{0.0};
    world.register_program("incast", [&](simmpi::Rank& r,
                                         const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<std::byte> buf(static_cast<std::size_t>(bytes), std::byte{5});
        r.MPI_Barrier(w);
        if (me == 0) {
            t0 = wall_seconds();
            for (long i = 0; i < iters; ++i)
                for (int src = 1; src < n; ++src)
                    r.MPI_Recv(buf.data(), bytes, simmpi::MPI_BYTE, src, 7, w, nullptr);
            t1 = wall_seconds();
        } else {
            for (long i = 0; i < iters; ++i)
                r.MPI_Send(buf.data(), bytes, simmpi::MPI_BYTE, 0, 7, w);
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i) plan.placements.push_back("node0");
    simmpi::launch(world, "incast", {}, plan);
    world.join_all();
    return t1.load() - t0.load();
}

struct CollResult {
    double wall_per_op;            ///< wall seconds per collective call
    double bottleneck_cpu_per_op;  ///< max over ranks of CPU seconds per call
};

/// Runs @p iters Bcasts (1 KiB) or Allreduces (64 doubles) on
/// @p nranks ranks under the given algorithm family.
CollResult real_collective_run(simmpi::CollAlgo algo, bool allreduce, int nranks,
                               long iters) {
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.coll_algo = algo;
    simmpi::World world(reg, cfg);
    std::vector<double> cpu(static_cast<std::size_t>(nranks), 0.0);
    std::atomic<double> t0{0.0}, t1{0.0};
    world.register_program("coll", [&](simmpi::Rank& r,
                                       const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::byte> buf(1024, std::byte{1});
        std::vector<double> acc(64, me * 1.0), out(64, 0.0);
        // Per-rank CPU through the world's accounting: on the fiber
        // engine CLOCK_THREAD_CPUTIME_ID belongs to the shared worker
        // (it would charge every rank with the whole run), while
        // proc_cpu_seconds() is the rank's own accumulated slices
        // plus the live slice.
        const auto rank_cpu = [&] {
            return world.proc_cpu_seconds(me) +
                   static_cast<double>(simmpi::sched::current_slice_cpu_ns()) * 1e-9;
        };
        r.MPI_Barrier(w);
        if (me == 0) t0 = wall_seconds();
        const double c0 = rank_cpu();
        for (long i = 0; i < iters; ++i) {
            if (allreduce)
                r.MPI_Allreduce(acc.data(), out.data(), 64, simmpi::MPI_DOUBLE,
                                simmpi::MPI_SUM, w);
            else
                r.MPI_Bcast(buf.data(), 1024, simmpi::MPI_BYTE, 0, w);
        }
        cpu[static_cast<std::size_t>(me)] = rank_cpu() - c0;
        r.MPI_Barrier(w);
        if (me == 0) t1 = wall_seconds();
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i) plan.placements.push_back("node0");
    simmpi::launch(world, "coll", {}, plan);
    world.join_all();
    CollResult res;
    res.wall_per_op = (t1.load() - t0.load()) / static_cast<double>(iters);
    double worst = 0.0;
    for (double c : cpu) worst = std::max(worst, c);
    res.bottleneck_cpu_per_op = worst / static_cast<double>(iters);
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    bench::header("Ablation: simmpi transport data plane",
                  smoke ? "smoke mode (harness check only)"
                        : "message rate and collective cost vs legacy design");
    bench::Grader g;
    bench::JsonEmitter json("transport");

    // ---- Point-to-point message rate: rendezvous incast (graded) ----------
    // 8 KiB messages sit above the 4 KiB eager limit, so every send is
    // a rendezvous handshake; n-1 clients stream at one server.  This
    // is the shape where the legacy shared-condition-variable protocol
    // pays an unamortizable per-message wake storm.
    const int sizes[] = {2, 4, 8, 16};
    const int reps = smoke ? 1 : 5;
    constexpr int kIncastBytes = 8 * 1024;
    double speedup_16 = 0.0;

    util::TextTable pt({"ranks", "legacy msgs/s", "new msgs/s", "speedup"});
    for (const int n : sizes) {
        const long iters = smoke ? 3 : 1600 / (n - 1);
        const double msgs = static_cast<double>(n - 1) * static_cast<double>(iters);
        // Interleave repetitions, best-of per implementation: the
        // scheduling weather on a shared host changes second to
        // second, and alternating samples both designs under it.
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            legacy_s = std::min(legacy_s, legacy_incast_run(n, iters, kIncastBytes));
            real_s = std::min(real_s, real_incast_run(n, iters, kIncastBytes));
        }
        const double legacy_rate = msgs / legacy_s;
        const double real_rate = msgs / real_s;
        const double speedup = real_rate / legacy_rate;
        if (n == 16) speedup_16 = speedup;
        pt.add_row({std::to_string(n), util::fmt(legacy_rate, 0),
                    util::fmt(real_rate, 0), util::fmt(speedup, 2) + "x"});
        const std::string label = "pt2pt_" + std::to_string(n) + "ranks";
        json.record("legacy_" + label + "_msgs_per_s", legacy_rate, "msgs/s");
        json.record("new_" + label + "_msgs_per_s", real_rate, "msgs/s");
        json.record("speedup_" + label, speedup, "x");
    }
    std::printf("%s", pt.render().c_str());

    // ---- Eager windowed streaming (reported, ungraded) --------------------
    // Small messages below the eager limit, 64-deep windows with one
    // ack per window.  Wakeups amortize here, so the gap shows only the
    // handle-lookup and per-message allocation savings.
    util::TextTable st({"ranks", "legacy msgs/s", "new msgs/s", "speedup"});
    for (const int n : sizes) {
        const long windows = smoke ? 3 : 6000 / n;
        // Data messages only (the one ack per window is overhead on
        // both sides alike).
        const double msgs = static_cast<double>(n) / 2.0 *
                            static_cast<double>(windows) * kWindow;
        double legacy_s = 1e30, real_s = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            legacy_s = std::min(legacy_s, legacy_stream_run(n, windows));
            real_s = std::min(real_s, real_stream_run(n, windows));
        }
        const double legacy_rate = msgs / legacy_s;
        const double real_rate = msgs / real_s;
        const std::string label = "stream_" + std::to_string(n) + "ranks";
        st.add_row({std::to_string(n), util::fmt(legacy_rate, 0),
                    util::fmt(real_rate, 0),
                    util::fmt(real_rate / legacy_rate, 2) + "x"});
        json.record("legacy_" + label + "_msgs_per_s", legacy_rate, "msgs/s");
        json.record("new_" + label + "_msgs_per_s", real_rate, "msgs/s");
        json.record("speedup_" + label, real_rate / legacy_rate, "x");
    }
    std::printf("%s", st.render().c_str());

    // ---- Collectives: tree vs flat at 16 ranks ----------------------------
    const long citer = smoke ? 20 : 400;
    util::TextTable ct({"collective", "flat wall us/op", "tree wall us/op",
                        "flat bottleneck us/op", "tree bottleneck us/op"});
    double bcast_flat_bn = 0.0, bcast_tree_bn = 0.0;
    double allred_flat_bn = 0.0, allred_tree_bn = 0.0;
    double allred_flat_wall = 0.0, allred_tree_wall = 0.0;
    for (const bool allreduce : {false, true}) {
        CollResult flat{1e30, 1e30}, tree{1e30, 1e30};
        for (int rep = 0; rep < (smoke ? 1 : 3); ++rep) {
            const CollResult f = real_collective_run(simmpi::CollAlgo::Flat,
                                                     allreduce, 16, citer);
            const CollResult t = real_collective_run(simmpi::CollAlgo::Tree,
                                                     allreduce, 16, citer);
            flat.wall_per_op = std::min(flat.wall_per_op, f.wall_per_op);
            flat.bottleneck_cpu_per_op =
                std::min(flat.bottleneck_cpu_per_op, f.bottleneck_cpu_per_op);
            tree.wall_per_op = std::min(tree.wall_per_op, t.wall_per_op);
            tree.bottleneck_cpu_per_op =
                std::min(tree.bottleneck_cpu_per_op, t.bottleneck_cpu_per_op);
        }
        const char* name = allreduce ? "allreduce_16ranks" : "bcast_16ranks";
        if (allreduce) {
            allred_flat_bn = flat.bottleneck_cpu_per_op;
            allred_tree_bn = tree.bottleneck_cpu_per_op;
            allred_flat_wall = flat.wall_per_op;
            allred_tree_wall = tree.wall_per_op;
        } else {
            bcast_flat_bn = flat.bottleneck_cpu_per_op;
            bcast_tree_bn = tree.bottleneck_cpu_per_op;
        }
        ct.add_row({allreduce ? "Allreduce(64d)" : "Bcast(1KiB)",
                    util::fmt(flat.wall_per_op * 1e6, 1),
                    util::fmt(tree.wall_per_op * 1e6, 1),
                    util::fmt(flat.bottleneck_cpu_per_op * 1e6, 1),
                    util::fmt(tree.bottleneck_cpu_per_op * 1e6, 1)});
        json.record(std::string("flat_") + name + "_wall_us_per_op",
                    flat.wall_per_op * 1e6, "us");
        json.record(std::string("tree_") + name + "_wall_us_per_op",
                    tree.wall_per_op * 1e6, "us");
        json.record(std::string("flat_") + name + "_bottleneck_us_per_op",
                    flat.bottleneck_cpu_per_op * 1e6, "us");
        json.record(std::string("tree_") + name + "_bottleneck_us_per_op",
                    tree.bottleneck_cpu_per_op * 1e6, "us");
    }
    std::printf("%s", ct.render().c_str());

    if (smoke) {
        g.check("smoke: all configurations completed", true);
    } else {
        g.check("16-rank rendezvous incast message rate >= 3x the legacy design",
                speedup_16 >= 3.0);
        g.check("tree Bcast beats flat on the bottleneck-rank metric at 16 ranks",
                bcast_tree_bn < bcast_flat_bn);
        g.check("tree Allreduce beats flat on the bottleneck-rank metric at 16 ranks",
                allred_tree_bn < allred_flat_bn);
        g.check("tree Allreduce beats flat on wall-clock at 16 ranks",
                allred_tree_wall < allred_flat_wall);
    }
    const std::string body = json.render();
    g.check("json renders well-formed record set",
            body.rfind("{\"bench\":\"transport\"", 0) == 0 &&
                body.find("\"records\":[") != std::string::npos &&
                body.substr(body.size() - 3) == "]}\n");

    json.write_file();
    std::printf("\nTransport data-plane ablation: %d failures\n", g.failures());
    return g.exit_code();
}
