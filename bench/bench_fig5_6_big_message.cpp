// Figures 5 & 6: big-message.
//  Fig 5: PC output identical for LAM and MPICH: ExcessiveSyncWaiting-
//         Time through Gsend_message/Grecv_message to MPI_Send and
//         MPI_Recv, plus the communicator.
//  Fig 6: histogram of point-to-point bytes sent/received for one
//         process (paper: 397.9 MB measured vs 400 MB known; slightly
//         low because of end-point bins).
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 5 & 6", "big-message: PC findings + byte histogram");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kBigMessage, 2,
                          bench::pc_params(ppm::kBigMessage), bench::pc_options());
        std::printf("\n--- Fig 5 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) + ": drilled to MPI_Send",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Send"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": receive side implicated (MPI_Recv or Grecv_message)",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Recv") ||
                    run.report.found("ExcessiveSyncWaitingTime", "Grecv_message"));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": communicator found",
                run.report.found("ExcessiveSyncWaitingTime",
                                 "/SyncObject/Message/comm_"));
    }

    // ---- Figure 6: bytes sent/received for one process --------------------
    {
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;  // instrument before the first message
        core::Session s(simmpi::Flavor::Lam, {}, wcfg);
        ppm::Params p;
        p.iterations = 2000;  // scaled from the paper's 1000 x 100 KB x larger cluster
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kBigMessage, {}, 2);
        s.tool().flush();
        core::Focus p0;
        p0.process = s.tool().process_path(0);
        auto sent = s.tool().metrics().request("msg_bytes_sent", p0);
        auto recv = s.tool().metrics().request("msg_bytes_recv", p0);
        s.world().release_start_gate();
        s.world().join_all();

        const ppm::MessageTruth t = ppm::big_message_truth(p);
        std::printf("\n--- Fig 6: process 0 point-to-point bytes ---\n");
        std::printf("sent measured:  %.0f   truth: %lld\n", sent->total(),
                    t.bytes_sent);
        std::printf("recv measured:  %.0f   truth: %lld\n", recv->total(),
                    t.bytes_sent);
        std::printf("paper: measured 397.9 MB vs known 400 MB (\"slightly lower\", "
                    "end-point bins)\n");
        // Paper's values were slightly low (bin export error); with the
        // job started paused our counters are exact.
        g.check("sent bytes exactly match ground truth",
                sent->total() == static_cast<double>(t.bytes_sent));
        g.check("recv bytes exactly match ground truth",
                recv->total() == static_cast<double>(t.bytes_sent));
        s.tool().metrics().release(sent);
        s.tool().metrics().release(recv);
    }

    std::printf("\nFigures 5-6 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
