// Table 2: PPerfMark MPI-1 program characteristics and pass/fail
// grading.  Runs every MPI-1 program under the Performance Consultant
// for both MPI implementations and grades the findings against the
// paper's, including the one deliberate failure (system-time).
#include "bench_common.hpp"

using namespace m2p;

namespace {

struct Expectation {
    const char* program;
    const char* characteristics;
    bool paper_pass;
    const char* paper_details;
    // What the PC must (or must not) find, evaluated on the LAM run by
    // default; flavor-specific extras handled below.
    std::function<bool(const core::PCReport&)> grade;
};

}  // namespace

int main() {
    bench::header("Table 2", "PPerfMark MPI-1 program grading (LAM & MPICH)");

    using R = core::PCReport;
    const Expectation rows[] = {
        {ppm::kSmallMessages,
         "many small client->server messages; clients stuck in MPI_Send", true,
         "clients spending too much time in MPI_Send",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "Gsend_message") &&
                    r.found("ExcessiveSyncWaitingTime", "MPI_Send");
         }},
        {ppm::kBigMessage, "very large messages between two processes", true,
         "most time sending and receiving messages",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "MPI_Send") &&
                    (r.found("ExcessiveSyncWaitingTime", "MPI_Recv") ||
                     r.found("ExcessiveSyncWaitingTime", "Grecv_message"));
         }},
        {ppm::kWrongWay, "messages sent in a different order than expected", true,
         "too much time in send and receive operations",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "MPI_Send") ||
                    r.found("ExcessiveSyncWaitingTime", "MPI_Recv");
         }},
        {ppm::kIntensiveServer, "overloaded server; clients wait for replies", true,
         "much time in MPI_Recv; also a computational bottleneck",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "Grecv_message") &&
                    r.found("CPUBound", "");
         }},
        {ppm::kRandomBarrier, "random process wastes time; rest wait in barrier",
         true, "too much time in MPI_Barrier; CPU bound in waste_time",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "MPI_Barrier") &&
                    r.found("CPUBound", "waste_time");
         }},
        {ppm::kDiffuseProcedure,
         "bottleneckProcedure rotates across processes; others in barrier", true,
         "much time in MPI_Barrier; CPU bound in bottleneckProcedure (threshold 0.2)",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "MPI_Barrier") &&
                    r.found("CPUBound", "bottleneckProcedure");
         }},
        {ppm::kSystemTime, "spends its time in system calls", false,
         "all hypotheses false: no default system-time metrics",
         [](const R& r) {
             for (const auto& root : r.roots)
                 if (root->tested_true) return false;
             return true;
         }},
        {ppm::kHotProcedure, "one hot procedure among many irrelevant ones", true,
         "CPU bound in bottleneckProcedure",
         [](const R& r) {
             return r.found("CPUBound", "bottleneckProcedure") &&
                    !r.found("CPUBound", "irrelevantProcedure");
         }},
        {ppm::kSstwod, "Using-MPI 2-D Poisson; known bottleneck in exchng2", true,
         "ExcessiveSyncWaitingTime in MPI_Sendrecv and MPI_Allreduce",
         [](const R& r) {
             return r.found("ExcessiveSyncWaitingTime", "MPI_Sendrecv") ||
                    r.found("ExcessiveSyncWaitingTime", "MPI_Allreduce");
         }},
    };

    bench::Grader g;
    util::TextTable table({"program", "paper", "LAM", "MPICH", "details (paper)"});
    for (const Expectation& e : rows) {
        std::string cells[2];
        int i = 0;
        for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
            ppm::Params p = bench::pc_params(e.program);
            core::PerformanceConsultant::Options o = bench::pc_options();
            if (std::string(e.program) == ppm::kDiffuseProcedure)
                o.cpu_threshold = 0.2;  // the paper lowered it for this program
            const bench::PcRun run =
                bench::run_pc(flavor, e.program, bench::pc_nprocs(e.program), p, o);
            // grade() returns whether the tool's findings match what
            // the paper reported for this program (including the
            // system-time case, where matching means all-false).
            const bool matches = e.grade(run.report);
            cells[i++] = matches ? (e.paper_pass ? "Pass" : "Fail*") : "MISMATCH";
            g.check(std::string(e.program) + " [" + simmpi::flavor_name(flavor) +
                        "] matches paper verdict",
                    matches);
            if (!matches)
                std::printf("--- findings for %s (%s):\n%s\n", e.program,
                            simmpi::flavor_name(flavor), run.condensed.c_str());
        }
        table.add_row({e.program, e.paper_pass ? "Pass" : "Fail", cells[0], cells[1],
                       e.paper_details});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(* = reproduces the paper's deliberate failure)\n");

    // Flavor-specific finding: MPICH's socket transport makes
    // small-messages show ExcessiveIOBlockingTime (Fig 3 / Table 2
    // discussion); LAM does not.
    {
        const bench::PcRun lam = bench::run_pc(simmpi::Flavor::Lam, ppm::kSmallMessages,
                                               6, bench::pc_params(ppm::kSmallMessages),
                                               bench::pc_options());
        const bench::PcRun mpich =
            bench::run_pc(simmpi::Flavor::Mpich, ppm::kSmallMessages, 6,
                          bench::pc_params(ppm::kSmallMessages), bench::pc_options());
        g.check("MPICH small-messages shows ExcessiveIOBlockingTime",
                mpich.report.found("ExcessiveIOBlockingTime", ""));
        g.check("LAM small-messages shows no ExcessiveIOBlockingTime",
                !lam.report.found("ExcessiveIOBlockingTime", ""));
    }

    std::printf("\nTable 2 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
