// Table 1: the RMA metric suite.  Reproduces the paper's table of
// twelve one-sided-communication metrics and validates each against a
// workload with known operation/byte counts (PPerfMark allcount).
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Table 1", "RMA metrics validated on PPerfMark allcount");

    ppm::Params p;
    p.epochs = 50;
    p.rma_ops_per_epoch = 40;
    p.rma_bytes = 1024;
    const int nprocs = 3;
    const ppm::RmaTruth truth = ppm::allcount_truth(p, nprocs);

    struct Row {
        const char* metric;
        const char* description;
        double expected;  // -1: structural only (value printed, not checked)
    };
    const Row rows[] = {
        {"rma_put_ops", "count of Put operations per unit time",
         static_cast<double>(truth.puts)},
        {"rma_get_ops", "count of Get operations per unit time",
         static_cast<double>(truth.gets)},
        {"rma_acc_ops", "count of Accumulate operations per unit time",
         static_cast<double>(truth.accs)},
        {"rma_ops", "count of Put+Get+Accumulate operations",
         static_cast<double>(truth.puts + truth.gets + truth.accs)},
        {"rma_put_bytes", "bytes put per unit time",
         static_cast<double>(truth.put_bytes)},
        {"rma_get_bytes", "bytes gotten per unit time",
         static_cast<double>(truth.get_bytes)},
        {"rma_acc_bytes", "bytes accumulated in the target",
         static_cast<double>(truth.acc_bytes)},
        {"rma_bytes", "sum of RMA byte count metrics",
         static_cast<double>(truth.put_bytes + truth.get_bytes + truth.acc_bytes)},
        {"at_rma_sync_wait", "wall time in active target RMA sync routines", -1},
        {"pt_rma_sync_wait", "wall time in passive target RMA sync routines", -2},
        {"rma_sync_wait", "wall time in RMA synchronization routines", -1},
        {"rma_sync_ops", "count of RMA synchronization operations",
         // per process: 2 fences per epoch; plus create+free once each.
         static_cast<double>(nprocs * (2LL * p.epochs + 2))},
    };

    bench::Grader g;
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        std::printf("\n--- %s ---\n", simmpi::flavor_name(flavor));
        core::Session s(flavor);
        ppm::register_all(s.world(), p);
        std::vector<std::shared_ptr<core::MetricFocusPair>> pairs;
        for (const Row& r : rows)
            pairs.push_back(s.tool().metrics().request(r.metric, core::Focus{}));
        s.run(ppm::kAllcount, nprocs);

        util::TextTable t({"metric", "description", "measured", "expected"});
        for (std::size_t i = 0; i < std::size(rows); ++i) {
            const double v = pairs[i]->total();
            t.add_row({rows[i].metric, rows[i].description, util::fmt(v),
                       rows[i].expected >= 0 ? util::fmt(rows[i].expected)
                       : rows[i].expected > -1.5 ? "(>0)"
                                                 : "(0: no passive ops)"});
            if (rows[i].expected >= 0) {
                g.check(std::string(rows[i].metric) + " exact",
                        v == rows[i].expected);
            } else if (rows[i].expected > -1.5) {
                g.check(std::string(rows[i].metric) + " nonzero", v > 0.0);
            } else {
                g.check(std::string(rows[i].metric) + " zero without passive ops",
                        v == 0.0);
            }
            s.tool().metrics().release(pairs[i]);
        }
        std::printf("%s", t.render().c_str());
        // Paper: passive target untestable on LAM/MPICH2 of the era;
        // allcount uses active-target fences, so pt_rma_sync_wait is
        // checked nonzero by the winlock-sync extension instead.
    }

    // Passive-target metric exercised by the extension program.
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params lp;
        lp.iterations = 40;
        lp.time_to_waste = 1;
        ppm::register_all(s.world(), lp);
        auto pt = s.tool().metrics().request("pt_rma_sync_wait", core::Focus{});
        s.run(ppm::kWinlockSync, 3);
        std::printf("\npt_rma_sync_wait under winlock-sync (extension): %.4f CPU-s\n",
                    pt->total());
        g.check("pt_rma_sync_wait sees passive-target waiting", pt->total() > 0.0);
        s.tool().metrics().release(pt);
    }

    std::printf("\nTable 1 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
