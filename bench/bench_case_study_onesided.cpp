// Case study (paper introduction + conclusion): replacing MPI-1
// communication with MPI-2 one-sided transfers.
//
// "NASA's Goddard Space Flight Center reported a 39% improvement in
// throughput after replacing MPI-1.2 non-blocking communication with
// MPI-2 one-sided communication in a global atmospheric modeling
// program."  The conclusion announces exactly this case study with the
// enhanced Paradyn.
//
// This bench runs an atmospheric-model-like halo-exchange kernel in
// two variants -- MPI-1 nonblocking Isend/Irecv/Waitall vs MPI-2
// Put-under-fence -- measures throughput of both, and uses the tool to
// characterize where each variant spends its synchronization time
// (which is what the tool contribution is actually for).  The absolute
// speedup depends on the transport; the *shape* the paper motivates --
// one-sided doing no per-message matching and the tool attributing its
// waits to RMA sync rather than message passing -- must hold.
#include "bench_common.hpp"

#include "util/clock.hpp"

using namespace m2p;
using simmpi::Comm;
using simmpi::Rank;
using simmpi::Win;

namespace {

constexpr int kHalo = 512;      // doubles per exchange, per neighbour
constexpr int kSteps = 1200;
constexpr int kRanks = 4;

// The physics step: column work varies by latitude band (rank), the
// load imbalance real atmospheric models fight -- it is what turns
// exchange synchronization into measurable waiting time.
void compute(std::vector<double>& field, int me) {
    for (std::size_t i = 1; i + 1 < field.size(); ++i)
        field[i] = 0.25 * (field[i - 1] + 2 * field[i] + field[i + 1]);
    util::burn_thread_cpu(me == 1 ? 0.0009 : 0.0003);
}

/// MPI-1 variant: nonblocking sends/recvs + Waitall each step.
void model_p2p(Rank& r, int steps) {
    r.MPI_Init();
    const Comm w = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(w, &me);
    r.MPI_Comm_size(w, &n);
    std::vector<double> field(kHalo * 4, me);
    std::vector<double> left_in(kHalo), right_in(kHalo);
    const int left = me > 0 ? me - 1 : simmpi::MPI_PROC_NULL;
    const int right = me < n - 1 ? me + 1 : simmpi::MPI_PROC_NULL;
    for (int s = 0; s < steps; ++s) {
        simmpi::Request reqs[4];
        r.MPI_Irecv(left_in.data(), kHalo, simmpi::MPI_DOUBLE, left, 0, w, &reqs[0]);
        r.MPI_Irecv(right_in.data(), kHalo, simmpi::MPI_DOUBLE, right, 1, w, &reqs[1]);
        r.MPI_Isend(field.data(), kHalo, simmpi::MPI_DOUBLE, left, 1, w, &reqs[2]);
        r.MPI_Isend(field.data() + field.size() - kHalo, kHalo, simmpi::MPI_DOUBLE,
                    right, 0, w, &reqs[3]);
        simmpi::Status sts[4];
        r.MPI_Waitall(4, reqs, sts);
        compute(field, me);
    }
    r.MPI_Finalize();
}

/// MPI-2 variant: halo movement with MPI_Put under fence epochs.
void model_rma(Rank& r, int steps) {
    r.MPI_Init();
    const Comm w = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(w, &me);
    r.MPI_Comm_size(w, &n);
    std::vector<double> field(kHalo * 4, me);
    std::vector<double> ghosts(2 * kHalo, 0.0);  // [left_in | right_in]
    Win win = simmpi::MPI_WIN_NULL;
    r.MPI_Win_create(ghosts.data(), static_cast<std::int64_t>(ghosts.size() * 8), 8,
                     simmpi::MPI_INFO_NULL, w, &win);
    r.MPI_Win_set_name(win, "GhostCells");
    const int left = me > 0 ? me - 1 : simmpi::MPI_PROC_NULL;
    const int right = me < n - 1 ? me + 1 : simmpi::MPI_PROC_NULL;
    for (int s = 0; s < steps; ++s) {
        r.MPI_Win_fence(0, win);
        // Only the origin specifies the transfer: no matching receives.
        if (left != simmpi::MPI_PROC_NULL)
            r.MPI_Put(field.data(), kHalo, simmpi::MPI_DOUBLE, left, kHalo, kHalo,
                      simmpi::MPI_DOUBLE, win);
        if (right != simmpi::MPI_PROC_NULL)
            r.MPI_Put(field.data() + field.size() - kHalo, kHalo, simmpi::MPI_DOUBLE,
                      right, 0, kHalo, simmpi::MPI_DOUBLE, win);
        r.MPI_Win_fence(0, win);
        compute(field, me);
    }
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

struct VariantResult {
    double steps_per_second = 0.0;
    bool msg_sync_found = false;
    bool rma_sync_found = false;
};

VariantResult run_variant(bool rma) {
    core::Session s(simmpi::Flavor::Lam);
    s.world().register_program("model", [rma](Rank& r, const std::vector<std::string>&) {
        rma ? model_rma(r, kSteps) : model_p2p(r, kSteps);
    });
    const double t0 = util::wall_seconds();
    core::PerformanceConsultant::Options o;
    o.eval_interval = 0.08;
    o.max_search_seconds = 4.0;
    core::run_app_async(s.tool(), "model", {}, kRanks);
    core::PerformanceConsultant pc(s.tool(), o);
    const core::PCReport rep = pc.search([&] { return !s.world().all_finished(); });
    s.world().join_all();
    const double wall = util::wall_seconds() - t0;

    std::printf("\n--- %s variant: condensed PC output ---\n%s",
                rma ? "one-sided (Put/fence)" : "point-to-point (Isend/Irecv)",
                core::PerformanceConsultant::render_condensed(rep).c_str());
    VariantResult out;
    out.steps_per_second = kSteps / wall;
    out.msg_sync_found =
        rep.found("ExcessiveSyncWaitingTime", "MPI_Recv") ||
        rep.found("ExcessiveSyncWaitingTime", "MPI_Wait") ||
        rep.found("ExcessiveSyncWaitingTime", "/SyncObject/Message/");
    out.rma_sync_found = rep.found("ExcessiveSyncWaitingTime", "Win_fence") ||
                         rep.found("ExcessiveSyncWaitingTime", "/SyncObject/Window/");
    return out;
}

}  // namespace

int main() {
    bench::header("Case study (paper intro/conclusion)",
                  "MPI-1 nonblocking vs MPI-2 one-sided halo exchange");
    bench::Grader g;

    const VariantResult p2p = run_variant(false);
    const VariantResult rma = run_variant(true);

    util::TextTable t({"variant", "steps/s", "tool attributes waits to"});
    t.add_row({"MPI-1 Isend/Irecv/Waitall", util::fmt(p2p.steps_per_second, 0),
               p2p.msg_sync_found ? "message passing" : "(none found)"});
    t.add_row({"MPI-2 Put under fence", util::fmt(rma.steps_per_second, 0),
               rma.rma_sync_found ? "RMA window synchronization" : "(none found)"});
    std::printf("\n%s", t.render().c_str());
    std::printf("throughput ratio (one-sided / point-to-point): %.2fx\n",
                rma.steps_per_second / p2p.steps_per_second);
    std::printf("(NASA reported +39%% for the real atmospheric model; our transport\n"
                " is shared memory either way, so only the shape is comparable)\n");

    g.check("point-to-point waits attributed to message passing", p2p.msg_sync_found);
    g.check("one-sided waits attributed to RMA synchronization", rma.rma_sync_found);
    g.check("one-sided variant does not blame message passing", !rma.msg_sync_found ||
            // LAM's fence internally uses Isend/Waitall -- acceptable
            // attribution per Fig 24; the window must still be blamed.
            rma.rma_sync_found);
    g.check("one-sided throughput is competitive (>= 0.7x of point-to-point)",
            rma.steps_per_second >= 0.7 * p2p.steps_per_second);

    std::printf("\nCase-study reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
