// Ablation: the cost model behind dynamic instrumentation (the paper's
// core premise -- "its use of dynamic instrumentation can dramatically
// decrease the amount of data that must be collected ... instructions
// only need to be inserted in code sections where a performance
// problem is suspected").
//
// google-benchmark microbenchmarks of the instrumentation substrate:
//   - dispatch with 0 snippets (the always-paid trampoline cost),
//   - dispatch with 1 / 4 MDL-compiled snippets,
//   - dispatch after snippets were deleted (cost returns to baseline),
//   - snippet insert/remove cost,
//   - a full MPI_Send round through simmpi with and without a metric.
#include <benchmark/benchmark.h>

#include "instr/registry.hpp"
#include "mdl/ast.hpp"
#include "mdl/eval.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"

namespace {

using namespace m2p;

struct NullServices final : mdl::Services {
    std::int64_t type_size(std::int64_t dt) const override { return dt; }
    std::int64_t window_unique_id(std::int64_t h) const override { return h; }
    std::int64_t comm_unique_id(std::int64_t h) const override { return h; }
};

void BM_DispatchNoSnippets(benchmark::State& state) {
    instr::Registry reg;
    const instr::FuncId f = reg.register_function("f", "m", 0);
    for (auto _ : state) {
        instr::FunctionGuard g(reg, f);
        benchmark::DoNotOptimize(&g);
    }
}
BENCHMARK(BM_DispatchNoSnippets);

void BM_DispatchCounterSnippets(benchmark::State& state) {
    instr::Registry reg;
    const instr::FuncId f = reg.register_function("f", "m", 0);
    const mdl::MdlFile file = mdl::parse(R"(
metric m { name "m"; base is counter {
  foreach func in s { append preinsn func.entry (* m++; *) } } }
)");
    auto services = std::make_shared<NullServices>();
    double sunk = 0;
    std::vector<mdl::CompiledMetric> cms;
    for (int i = 0; i < state.range(0); ++i) {
        cms.push_back(mdl::compile_metric(
            reg, file.metrics[0], {}, services,
            [&](const std::string&) { return std::vector<instr::FuncId>{f}; },
            [&](double, double d) { sunk += d; }));
    }
    for (auto _ : state) {
        instr::FunctionGuard g(reg, f);
        benchmark::DoNotOptimize(&g);
    }
    benchmark::DoNotOptimize(sunk);
    for (auto& cm : cms) mdl::uninstall(reg, cm);
}
BENCHMARK(BM_DispatchCounterSnippets)->Arg(1)->Arg(4);

void BM_DispatchAfterDelete(benchmark::State& state) {
    // Deleted instrumentation must cost the same as none -- this is
    // the whole point of insert/delete at run time.
    instr::Registry reg;
    const instr::FuncId f = reg.register_function("f", "m", 0);
    int hits = 0;
    const instr::SnippetHandle h =
        reg.insert(f, instr::Where::Entry, [&](const instr::CallContext&) { ++hits; });
    reg.remove(h);
    for (auto _ : state) {
        instr::FunctionGuard g(reg, f);
        benchmark::DoNotOptimize(&g);
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_DispatchAfterDelete);

void BM_InsertRemoveSnippet(benchmark::State& state) {
    instr::Registry reg;
    const instr::FuncId f = reg.register_function("f", "m", 0);
    for (auto _ : state) {
        const instr::SnippetHandle h =
            reg.insert(f, instr::Where::Entry, [](const instr::CallContext&) {});
        reg.remove(h);
    }
}
BENCHMARK(BM_InsertRemoveSnippet);

void BM_TimerSnippetPair(benchmark::State& state) {
    instr::Registry reg;
    const instr::FuncId f = reg.register_function("f", "m", 0);
    const mdl::MdlFile file = mdl::parse(R"(
metric t { name "t"; base is walltimer {
  foreach func in s {
    append preinsn func.entry (* startWallTimer(t); *)
    prepend preinsn func.return (* stopWallTimer(t); *) } } }
)");
    auto services = std::make_shared<NullServices>();
    double sunk = 0;
    auto cm = mdl::compile_metric(
        reg, file.metrics[0], {}, services,
        [&](const std::string&) { return std::vector<instr::FuncId>{f}; },
        [&](double, double d) { sunk += d; });
    for (auto _ : state) {
        instr::FunctionGuard g(reg, f);
        benchmark::DoNotOptimize(&g);
    }
    benchmark::DoNotOptimize(sunk);
    mdl::uninstall(reg, cm);
}
BENCHMARK(BM_TimerSnippetPair);

/// Full message round trip through simmpi (rank 0 -> rank 1 -> rank 0),
/// with optional metric instrumentation on the PMPI send path.
void BM_PingPong(benchmark::State& state) {
    const bool instrumented = state.range(0) != 0;
    instr::Registry reg;
    simmpi::World world(reg, {});
    std::atomic<bool> stop{false};
    world.register_program("echo", [&](simmpi::Rank& r,
                                       const std::vector<std::string>&) {
        r.MPI_Init();
        char b = 0;
        while (true) {
            simmpi::Status st;
            r.MPI_Recv(&b, 1, simmpi::MPI_BYTE, 0, simmpi::MPI_ANY_TAG,
                       r.MPI_COMM_WORLD(), &st);
            if (st.MPI_TAG == 1) break;
            r.MPI_Send(&b, 1, simmpi::MPI_BYTE, 0, 0, r.MPI_COMM_WORLD());
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    plan.placements = {"node0", "node0"};
    // Rank 0 is driven by the benchmark thread itself via a handle.
    world.register_program("driver", [&](simmpi::Rank& r,
                                         const std::vector<std::string>&) {
        r.MPI_Init();
        char b = 0;
        while (!stop.load()) {
            r.MPI_Send(&b, 1, simmpi::MPI_BYTE, 1, 0, r.MPI_COMM_WORLD());
            r.MPI_Recv(&b, 1, simmpi::MPI_BYTE, 1, 0, r.MPI_COMM_WORLD(), nullptr);
        }
        r.MPI_Send(&b, 1, simmpi::MPI_BYTE, 1, 1, r.MPI_COMM_WORLD());  // stop echo
        r.MPI_Finalize();
    });

    mdl::CompiledMetric cm;
    double sunk = 0;
    if (instrumented) {
        static const mdl::MdlFile file = mdl::parse(R"(
metric b { name "b"; counter bytes; base is counter {
  foreach func in s { append preinsn func.entry
    (* MPI_Type_size($arg[2], &bytes); b += bytes * $arg[1]; *) } } }
)");
        auto services = std::make_shared<NullServices>();
        cm = mdl::compile_metric(
            reg, file.metrics[0], {}, services,
            [&](const std::string&) {
                return std::vector<instr::FuncId>{reg.find("PMPI_Send"),
                                                  reg.find("PMPI_Recv")};
            },
            [&](double, double d) { sunk += d; });
    }

    // Drive the ping-pong from this thread by measuring a fixed batch
    // per iteration inside the driver; simplest: run both ranks and
    // time the whole exchange loop.
    std::atomic<long> rounds{0};
    world.register_program("bench-driver", [&](simmpi::Rank& r,
                                               const std::vector<std::string>&) {
        r.MPI_Init();
        char b = 0;
        while (!stop.load()) {
            r.MPI_Send(&b, 1, simmpi::MPI_BYTE, 1, 0, r.MPI_COMM_WORLD());
            r.MPI_Recv(&b, 1, simmpi::MPI_BYTE, 1, 0, r.MPI_COMM_WORLD(), nullptr);
            rounds.fetch_add(1, std::memory_order_relaxed);
        }
        r.MPI_Send(&b, 1, simmpi::MPI_BYTE, 1, 1, r.MPI_COMM_WORLD());
        r.MPI_Finalize();
    });
    const int d = world.create_proc("node0", "bench-driver");
    const int e = world.create_proc("node0", "echo");
    const simmpi::Comm cw = world.create_comm({d, e});
    world.set_proc_comm_world(d, cw);
    world.set_proc_comm_world(e, cw);
    world.start_proc(d, {});
    world.start_proc(e, {});

    long last = 0;
    for (auto _ : state) {
        // One benchmark iteration = observe 1000 new round trips.
        const long target = last + 1000;
        while (rounds.load(std::memory_order_relaxed) < target)
            std::this_thread::yield();
        last = target;
    }
    state.SetItemsProcessed(last * 2);  // messages
    stop = true;
    world.join_all();
    if (instrumented) mdl::uninstall(reg, cm);
    benchmark::DoNotOptimize(sunk);
}
BENCHMARK(BM_PingPong)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
