// Figure 1: RMA synchronization patterns.  The paper's figure shows
// where waiting time arises in each synchronization style; this bench
// measures it with the tool's RMA wait metrics using late-arriver
// micro-workloads:
//   (a) collective MPI_Win_create with one late process,
//   (b) MPI_Win_fence with one late process,
//   (c) start/complete + post/wait with a late target,
//   (d) passive target lock/unlock with a long-held lock.
#include "bench_common.hpp"

#include <chrono>
#include <thread>

#include "util/clock.hpp"

using namespace m2p;
using simmpi::Comm;
using simmpi::Group;
using simmpi::Rank;
using simmpi::Win;

namespace {

constexpr double kLate = 0.08;  // seconds of lateness injected

double measure(simmpi::Flavor flavor, const char* metric,
               const std::function<void(Rank&, int, int)>& body) {
    core::Session s(flavor);
    auto pair = s.tool().metrics().request(metric, core::Focus{});
    s.world().register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0, n = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        r.MPI_Comm_size(r.MPI_COMM_WORLD(), &n);
        body(r, me, n);
        r.MPI_Finalize();
    });
    core::run_app_async(s.tool(), "prog", {}, 3);
    s.world().join_all();
    const double v = pair->total();
    s.tool().metrics().release(pair);
    return v;
}

}  // namespace

int main() {
    bench::header("Figure 1", "waiting time in each RMA synchronization pattern");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        std::printf("\n--- %s ---\n", simmpi::flavor_name(flavor));
        util::TextTable t({"pattern", "late party", "metric", "measured wait (s)",
                           "expected"});

        // (a) Win_create: "synchronization overhead that could occur if
        // a process were late in executing MPI_Win_create".
        const double create_wait = measure(
            flavor, "rma_sync_wait", [](Rank& r, int me, int) {
                if (me == 0) util::burn_thread_cpu(kLate);
                std::vector<char> mem(64, 0);
                Win w = simmpi::MPI_WIN_NULL;
                r.MPI_Win_create(mem.data(), 64, 1, simmpi::MPI_INFO_NULL,
                                 r.MPI_COMM_WORLD(), &w);
                r.MPI_Win_free(&w);
            });
        t.add_row({"collective create", "rank 0 late", "rma_sync_wait",
                   util::fmt(create_wait, 4), ">= 2 x lateness"});
        g.check("win_create late arriver causes waiting", create_wait > 1.2 * kLate);

        // (b) Fence: "if Process B is late executing the fence, then
        // processes A and C may incur synchronization waiting time".
        const double fence_wait = measure(
            flavor, "at_rma_sync_wait", [](Rank& r, int me, int) {
                std::vector<char> mem(64, 0);
                Win w = simmpi::MPI_WIN_NULL;
                r.MPI_Win_create(mem.data(), 64, 1, simmpi::MPI_INFO_NULL,
                                 r.MPI_COMM_WORLD(), &w);
                if (me == 1) util::burn_thread_cpu(kLate);
                r.MPI_Win_fence(0, w);
                r.MPI_Win_free(&w);
            });
        t.add_row({"fence (active target)", "rank 1 late", "at_rma_sync_wait",
                   util::fmt(fence_wait, 4), ">= 2 x lateness"});
        g.check("late fence causes waiting in others", fence_wait > 1.2 * kLate);

        // (c) start/complete + post/wait: origins wait for the late
        // target's post (in MPI_Win_start on LAM, MPI_Win_complete on
        // MPICH2).
        const double pscw_wait = measure(
            flavor, "at_rma_sync_wait", [](Rank& r, int me, int n) {
                std::vector<char> mem(64, 0);
                Win w = simmpi::MPI_WIN_NULL;
                r.MPI_Win_create(mem.data(), 64, 1, simmpi::MPI_INFO_NULL,
                                 r.MPI_COMM_WORLD(), &w);
                Group wg = simmpi::MPI_GROUP_NULL;
                r.MPI_Comm_group(r.MPI_COMM_WORLD(), &wg);
                if (me == 0) {
                    util::burn_thread_cpu(kLate);  // late target
                    std::vector<int> origins;
                    for (int i = 1; i < n; ++i) origins.push_back(i);
                    Group og = simmpi::MPI_GROUP_NULL;
                    r.MPI_Group_incl(wg, n - 1, origins.data(), &og);
                    r.MPI_Win_post(og, 0, w);
                    r.MPI_Win_wait(w);
                } else {
                    const int zero = 0;
                    Group tg = simmpi::MPI_GROUP_NULL;
                    r.MPI_Group_incl(wg, 1, &zero, &tg);
                    char b = 1;
                    r.MPI_Win_start(tg, 0, w);
                    r.MPI_Put(&b, 1, simmpi::MPI_BYTE, 0, 0, 1, simmpi::MPI_BYTE, w);
                    r.MPI_Win_complete(w);
                }
                r.MPI_Win_free(&w);
            });
        t.add_row({"start/complete-post/wait", "target late", "at_rma_sync_wait",
                   util::fmt(pscw_wait, 4), ">= 2 x lateness"});
        g.check("late post makes origins wait", pscw_wait > 1.2 * kLate);

        // (d) Passive target: "MPI_Win_unlock is not allowed to return
        // until all of its data transfers have completed"; here the
        // wait shows in the competing MPI_Win_lock calls.
        const double pt_wait = measure(
            flavor, "pt_rma_sync_wait", [](Rank& r, int me, int) {
                std::vector<char> mem(64, 0);
                Win w = simmpi::MPI_WIN_NULL;
                r.MPI_Win_create(mem.data(), 64, 1, simmpi::MPI_INFO_NULL,
                                 r.MPI_COMM_WORLD(), &w);
                // Rank 0 acquires first and holds long; the others
                // arrive a moment later and block in MPI_Win_lock.
                if (me != 0)
                    std::this_thread::sleep_for(std::chrono::milliseconds(15));
                r.MPI_Win_lock(simmpi::MPI_LOCK_EXCLUSIVE, 0, 0, w);
                if (me == 0) util::burn_thread_cpu(kLate);  // long hold
                char b = 2;
                r.MPI_Put(&b, 1, simmpi::MPI_BYTE, 0, 0, 1, simmpi::MPI_BYTE, w);
                r.MPI_Win_unlock(0, w);
                r.MPI_Win_free(&w);
            });
        t.add_row({"lock/unlock (passive)", "lock held long", "pt_rma_sync_wait",
                   util::fmt(pt_wait, 4), ">= lateness"});
        g.check("held lock causes passive-target waiting", pt_wait > 0.5 * kLate);

        std::printf("%s", t.render().c_str());
    }

    std::printf("\nFigure 1 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
