// Ablation (paper section 5): histogram folding error.
//
// "Because of the combination of the bins over time, some amount of
// error is introduced into the performance data.  To reduce error, we
// eliminated the first and last bins from the calculations."
//
// This bench feeds a known uniform event rate into folding histograms
// of several capacities, then reconstructs the rate the paper's way
// (with and without dropping the end-point bins) and reports the
// relative error as granularity degrades from folding.
#include "bench_common.hpp"

#include "core/histogram.hpp"

using namespace m2p;

int main() {
    bench::header("Ablation: histogram folding",
                  "error of rate-x-time reconstruction vs bins/folds");
    bench::Grader g;
    bench::JsonEmitter json("histogram_folding");

    // Known signal: 1000 units/second for 3.27 seconds, delivered in
    // 1 ms impulses, starting at an awkward offset so end-point bins
    // are partially covered.
    constexpr double kRate = 1000.0;
    constexpr double kStart = 0.0137;
    constexpr double kDuration = 3.27;

    util::TextTable t({"capacity", "final bin width (s)", "folds",
                       "est (all bins)", "err%", "est (endpoints dropped)", "err%"});
    double worst_dropped = 0.0;
    for (const std::size_t bins : {16UL, 32UL, 64UL, 128UL, 256UL}) {
        core::Histogram h(0.0, 0.01, bins);  // 10 ms base granularity
        double truth = 0.0;  // exactly what was fed in
        for (double ts = kStart; ts < kStart + kDuration; ts += 0.001) {
            h.add(ts, kRate * 0.001);
            truth += kRate * 0.001;
        }

        auto reconstruct = [&](bool drop) {
            // The paper's procedure: average rate x covered time.
            return h.rate(drop) * h.bin_width() * static_cast<double>(h.active_bins());
        };
        const double est_all = reconstruct(false);
        const double est_drop = reconstruct(true);
        const double err_all = 100.0 * std::abs(est_all - truth) / truth;
        const double err_drop = 100.0 * std::abs(est_drop - truth) / truth;
        worst_dropped = std::max(worst_dropped, err_drop);
        t.add_row({std::to_string(bins), util::fmt(h.bin_width(), 3),
                   std::to_string(h.folds()), util::fmt(est_all, 1),
                   util::fmt(err_all, 2), util::fmt(est_drop, 1),
                   util::fmt(err_drop, 2)});
        g.check("capacity " + std::to_string(bins) + ": total conserved exactly",
                std::abs(h.total() - truth) < 1e-6 * truth);
        json.record("err_pct_dropped_cap" + std::to_string(bins), err_drop, "%");
        json.record("total_cap" + std::to_string(bins), h.total(), "units");
    }
    std::printf("%s", t.render().c_str());
    std::printf("(the paper's bins went 0.2s -> 0.8s over their runs: two folds)\n");
    g.check("endpoint-dropped reconstruction stays within 12% at all capacities",
            worst_dropped < 12.0);

    // Folding granularity mirrors the paper's observation directly.
    {
        core::Histogram h(0.0, 0.2, 16);
        h.add(0.2 * 16 * 4 - 0.05, 1.0);
        g.check("0.2s bins fold to 0.8s after two folds (paper's range)",
                h.bin_width() == 0.8 && h.folds() == 2);
    }

    json.record("worst_err_pct_dropped", worst_dropped, "%");
    json.write_file();
    std::printf("\nHistogram-folding ablation: %d failures\n", g.failures());
    return g.exit_code();
}
