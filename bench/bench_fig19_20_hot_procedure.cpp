// Figures 19 & 20 (left): hot-procedure.
//  Fig 19: gprof flat profile of a serial run -- bottleneckProcedure
//          consumes ~100% of the time; the irrelevantProcedures are
//          called equally often but take ~0 us/call.
//  Fig 20 (left): PC output -- CPUBound drills to bottleneckProcedure
//          for both implementations.
#include "bench_common.hpp"

#include "prof/flat_profiler.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 19 & 20 (hot-procedure)", "gprof cross-check + PC output");
    bench::Grader g;

    // ---- Figure 19: gprof-style flat profile ------------------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p;
        p.iterations = 400;
        p.waste_unit_seconds = 0.002;
        ppm::register_all(s.world(), p);
        prof::FlatProfiler profiler(s.registry());
        // The paper profiles a non-MPI version of hot-procedure; one
        // process gives the same flat profile.
        s.run(ppm::kHotProcedure, 1, 1);
        std::printf("\n--- Fig 19: flat profile (cf. gprof) ---\n%s",
                    profiler.render().c_str());
        const auto rows = profiler.report();
        g.check("bottleneckProcedure tops the profile",
                !rows.empty() && rows[0].name == "bottleneckProcedure");
        g.check("bottleneckProcedure consumes ~100% of the time",
                rows[0].pct_time > 95.0);
        bool calls_equal = true, irrelevant_cheap = true;
        for (const auto& r : rows) {
            if (r.name.rfind("irrelevantProcedure", 0) == 0) {
                calls_equal = calls_equal && r.calls == rows[0].calls;
                irrelevant_cheap = irrelevant_cheap && r.us_per_call < 50.0;
            }
        }
        g.check("every procedure called an equal number of times", calls_equal);
        g.check("irrelevantProcedures take ~0 us/call", irrelevant_cheap);
    }

    // ---- Figure 20 (left): PC output --------------------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kHotProcedure, 4,
                          bench::pc_params(ppm::kHotProcedure), bench::pc_options());
        std::printf("\n--- Fig 20 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": CPUBound -> bottleneckProcedure",
                run.report.found("CPUBound", "bottleneckProcedure"));
    }

    std::printf("\nFigures 19-20 (hot-procedure) reproduction: %d failures\n",
                g.failures());
    return g.exit_code();
}
