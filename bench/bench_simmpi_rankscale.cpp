// Rank scaling: the fiber engine vs the thread-per-rank wall.
//
// The thread engine spends an OS thread (8 MiB default stack, a
// kernel scheduling entity, 5 ms condvar wait slices) per simulated
// rank, which walls out around the core count times a small factor --
// the paper's cluster scenarios (hundreds of ranks) simply do not fit.
// The fiber engine multiplexes rank fibers over a small worker pool
// with park/unpark wakeups, so world size is bounded by memory, not by
// the kernel scheduler.
//
// This bench drives three workloads -- Barrier, Allreduce(64 doubles),
// and a contended exclusive RMA lock on rank 0's window -- at
// {16, 64, 256, 1024} ranks under the fiber engine, plus an in-binary
// thread-engine baseline at 16 ranks (the largest size where
// thread-per-rank is still comfortably measurable).  The graded claim
// extrapolates the thread engine to 256 ranks from its measured
// 16-rank per-rank-per-op cost (linear in ranks: flat star messages,
// context switches, and wakeup slices all scale at least linearly)
// and requires the fiber engine to beat that projection by >= 3x on
// the combined barrier+allreduce wall clock.
//
// `--smoke` runs one tiny repetition per cell and skips the
// performance thresholds (CI uses it to keep the harness honest).
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "instr/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace m2p;

double wall_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

enum class Workload { Barrier, Allreduce, RmaLock };

const char* workload_name(Workload w) {
    switch (w) {
        case Workload::Barrier: return "barrier";
        case Workload::Allreduce: return "allreduce";
        case Workload::RmaLock: return "rmalock";
    }
    return "?";
}

/// Runs @p iters operations of @p wl on a fresh world of @p nranks and
/// returns wall seconds per op (timed on rank 0 between barriers).
/// Returns a negative value if any rank saw an error.
double run_workload(simmpi::RankEngine engine, Workload wl, int nranks,
                    long iters) {
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.rank_engine = engine;
    cfg.coll_algo = simmpi::CollAlgo::Tree;
    cfg.wait_deadline_seconds = 60.0;
    cfg.join_deadline_seconds = 300.0;
    simmpi::World world(reg, cfg);
    std::atomic<double> t0{0.0}, t1{0.0};
    std::atomic<bool> failed{false};
    world.register_program("wl", [&](simmpi::Rank& r,
                                     const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<double> acc(64, 1.0), out(64, 0.0);
        std::vector<std::int32_t> mem(64, 0);
        simmpi::Win win = simmpi::MPI_WIN_NULL;
        if (wl == Workload::RmaLock &&
            r.MPI_Win_create(mem.data(),
                             static_cast<std::int64_t>(mem.size()) * 4, 4,
                             simmpi::MPI_INFO_NULL, w, &win) !=
                simmpi::MPI_SUCCESS)
            failed.store(true);
        r.MPI_Barrier(w);
        if (me == 0) t0.store(wall_seconds());
        int rc = simmpi::MPI_SUCCESS;
        for (long i = 0; i < iters && rc == simmpi::MPI_SUCCESS; ++i) {
            switch (wl) {
                case Workload::Barrier:
                    rc = r.MPI_Barrier(w);
                    break;
                case Workload::Allreduce:
                    rc = r.MPI_Allreduce(acc.data(), out.data(), 64,
                                         simmpi::MPI_DOUBLE, simmpi::MPI_SUM, w);
                    break;
                case Workload::RmaLock: {
                    // Every rank hammers rank 0's window under an
                    // exclusive lock: the fully-serialized shape where
                    // wakeup latency, not bandwidth, is the cost.
                    const std::int32_t v = me;
                    rc = r.MPI_Win_lock(simmpi::MPI_LOCK_EXCLUSIVE, 0, 0, win);
                    if (rc == simmpi::MPI_SUCCESS)
                        rc = r.MPI_Put(&v, 1, simmpi::MPI_INT, 0,
                                       me % 64, 1, simmpi::MPI_INT, win);
                    if (rc == simmpi::MPI_SUCCESS)
                        rc = r.MPI_Win_unlock(0, win);
                    break;
                }
            }
        }
        if (rc != simmpi::MPI_SUCCESS) failed.store(true);
        r.MPI_Barrier(w);
        if (me == 0) t1.store(wall_seconds());
        if (win != simmpi::MPI_WIN_NULL) r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i)
        plan.placements.push_back("node" + std::to_string(i / 8));
    simmpi::launch(world, "wl", {}, plan);
    world.join_all();
    if (failed.load() || !world.epitaphs().empty()) return -1.0;
    return (t1.load() - t0.load()) / static_cast<double>(iters);
}

long iters_for(Workload wl, int nranks, bool smoke) {
    if (smoke) return 2;
    const long budget = wl == Workload::RmaLock ? 2048 : 6144;
    return std::max<long>(3, budget / nranks);
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    bench::header("Rank scaling: fiber engine vs the thread-per-rank wall",
                  smoke ? "smoke mode (harness check only)"
                        : "barrier/allreduce/RMA-lock wall clock, 16..1024 ranks");
    bench::Grader g;
    bench::JsonEmitter json("rankscale");

    const Workload workloads[] = {Workload::Barrier, Workload::Allreduce,
                                  Workload::RmaLock};
    const int sizes[] = {16, 64, 256, 1024};

    // ---- Thread-engine baseline at 16 ranks -------------------------------
    // Thread-per-rank at 256+ is exactly what this PR retires; measure
    // it where it still works and extrapolate per-rank cost linearly.
    double thread16[3] = {0, 0, 0};
    {
        util::TextTable tt({"workload", "threads us/op (16 ranks)",
                            "fibers us/op (16 ranks)", "fiber speedup"});
        for (int wi = 0; wi < 3; ++wi) {
            const Workload wl = workloads[wi];
            const long iters = iters_for(wl, 16, smoke);
            const int reps = smoke ? 1 : 3;
            double th = 1e30, fb = 1e30;
            for (int rep = 0; rep < reps; ++rep) {
                th = std::min(th, run_workload(simmpi::RankEngine::Thread, wl,
                                               16, iters));
                fb = std::min(fb, run_workload(simmpi::RankEngine::Fiber, wl,
                                               16, iters));
            }
            thread16[wi] = th;
            tt.add_row({workload_name(wl), util::fmt(th * 1e6, 1),
                        util::fmt(fb * 1e6, 1), util::fmt(th / fb, 2) + "x"});
            json.record(std::string("thread16_") + workload_name(wl) +
                            "_us_per_op",
                        th * 1e6, "us");
            json.record(std::string("fiber16_") + workload_name(wl) +
                            "_us_per_op",
                        fb * 1e6, "us");
        }
        std::printf("%s", tt.render().c_str());
    }

    // ---- Fiber engine across the size axis --------------------------------
    double fiber_us[3][4];
    bool all_completed = true;
    util::TextTable ft({"ranks", "barrier us/op", "allreduce us/op",
                        "rmalock us/op"});
    for (int si = 0; si < 4; ++si) {
        const int n = sizes[si];
        std::vector<std::string> row{std::to_string(n)};
        for (int wi = 0; wi < 3; ++wi) {
            const Workload wl = workloads[wi];
            const long iters = iters_for(wl, n, smoke);
            const int reps = smoke ? 1 : (n >= 1024 ? 2 : 3);
            double best = 1e30;
            for (int rep = 0; rep < reps; ++rep)
                best = std::min(best, run_workload(simmpi::RankEngine::Fiber,
                                                   wl, n, iters));
            fiber_us[wi][si] = best * 1e6;
            if (best < 0.0) all_completed = false;
            row.push_back(util::fmt(best * 1e6, 1));
            json.record("fiber_" + std::to_string(n) + "ranks_" +
                            workload_name(wl) + "_us_per_op",
                        best * 1e6, "us");
        }
        ft.add_row(row);
    }
    std::printf("%s", ft.render().c_str());

    // ---- Grading ----------------------------------------------------------
    // Per-rank-per-op cost at 16 ranks, scaled to 256 ranks.
    const double thr_extrap_256 =
        (thread16[0] + thread16[1]) / 16.0 * 256.0 * 1e6;  // us
    const double fiber_256 = fiber_us[0][2] + fiber_us[1][2];
    const double ratio = fiber_256 > 0.0 ? thr_extrap_256 / fiber_256 : 0.0;
    json.record("thread_extrapolated_256ranks_barrier_allreduce_us",
                thr_extrap_256, "us");
    json.record("fiber_256ranks_barrier_allreduce_us", fiber_256, "us");
    json.record("fiber_vs_thread_extrapolated_256ranks", ratio, "x");
    std::printf(
        "\n  256-rank barrier+allreduce: fibers %.1f us/op vs %.1f us/op "
        "extrapolated thread-per-rank (%.1fx)\n",
        fiber_256, thr_extrap_256, ratio);

    if (smoke) {
        g.check("smoke: all sizes and workloads completed", all_completed);
    } else {
        g.check("1024-rank barrier+allreduce+rmalock workloads complete in-process",
                all_completed && fiber_us[0][3] > 0.0 && fiber_us[1][3] > 0.0 &&
                    fiber_us[2][3] > 0.0);
        g.check("fibers beat extrapolated thread-per-rank at 256 ranks by >= 3x",
                ratio >= 3.0);
    }
    const std::string body = json.render();
    g.check("json renders well-formed record set",
            body.rfind("{\"bench\":\"rankscale\"", 0) == 0 &&
                body.find("\"records\":[") != std::string::npos &&
                body.substr(body.size() - 3) == "]}\n");

    json.write_file();
    std::printf("\nRank scaling: %d failures\n", g.failures());
    return g.exit_code();
}
