// Figures 9, 17 & 18: random-barrier.
//  Fig 9:  PC output -- MPI_Barrier sync bottleneck; CPU bound in
//          waste_time; on MPICH the barrier decomposes into
//          PMPI_Sendrecv; not every process is CPU bound in waste_time
//          (the waster moves around).
//  Fig 17: Jumpshot statistical preview -- ~3 of 4 processes in
//          MPI_Barrier at any time.
//  Fig 18: sync_wait_inclusive across all processes -- LAM ~61% vs
//          MPICH ~62%: roughly equal, spread over every process.
#include "bench_common.hpp"

#include "trace/mpe.hpp"
#include "util/ascii_chart.hpp"
#include "util/clock.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 9, 17 & 18", "random-barrier");
    bench::Grader g;

    // ---- Figure 9: PC output, LAM vs MPICH ------------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        ppm::Params p = bench::pc_params(ppm::kRandomBarrier);
        p.time_to_waste = 5;  // the paper's TIMETOWASTE = 5
        core::PerformanceConsultant::Options o = bench::pc_options();
        o.max_search_seconds = 8.0;
        const bench::PcRun run = bench::run_pc(flavor, ppm::kRandomBarrier, 6, p, o);
        std::printf("\n--- Fig 9 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) + ": MPI_Barrier bottleneck",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Barrier") ||
                    run.report.found("ExcessiveSyncWaitingTime",
                                     "/SyncObject/Barrier"));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": CPU bound in waste_time",
                run.report.found("CPUBound", "waste_time"));
        if (flavor == simmpi::Flavor::Mpich) {
            // "PMPI_Barrier is implemented as a collective
            // communication operation with PMPI_Sendrecv".
            g.check("MPICH: barrier decomposes into PMPI_Sendrecv",
                    run.report.found("ExcessiveSyncWaitingTime", "PMPI_Sendrecv"));
        }
    }

    // ---- Figure 17: Jumpshot statistical preview -------------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p;
        p.iterations = 80;  // the paper shortened this run too (MPE log size)
        p.time_to_waste = 5;
        p.waste_unit_seconds = 0.002;
        ppm::register_all(s.world(), p);
        trace::MpeLogger mpe(s.world());
        s.run(ppm::kRandomBarrier, 4);
        const double avg = trace::statistical_preview(mpe.log(), "MPI_Barrier");
        std::printf("\n--- Fig 17: statistical preview (4 processes) ---\n");
        std::printf("average processes in MPI_Barrier: %.2f (paper: ~3 of 4)\n", avg);
        g.check("~3 of 4 processes in MPI_Barrier", avg > 2.2 && avg < 3.8);
    }

    // ---- Figure 18: sync_wait_inclusive over all processes ---------------
    {
        double pct[2] = {0, 0};
        int i = 0;
        for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
            core::Session s(flavor);
            ppm::Params p;
            p.iterations = 250;
            p.time_to_waste = 5;
            p.waste_unit_seconds = 0.002;
            ppm::register_all(s.world(), p);
            auto pair = s.tool().metrics().request("sync_wait_inclusive", core::Focus{});
            const double t0 = util::wall_seconds();
            s.run(ppm::kRandomBarrier, 6);
            const double wall = util::wall_seconds() - t0;
            pct[i] = 100.0 * pair->total() / (wall * 6.0);
            if (i == 0)
                std::printf("%s",
                            util::render_chart(
                                {{"sync_wait_inclusive, all 6 processes (LAM)",
                                  pair->histogram().values()}},
                                pair->histogram().bin_width(), 5, "CPU-seconds")
                                .c_str());
            std::printf("%s: average inclusive sync waiting = %.0f%% (paper: %s)\n",
                        simmpi::flavor_name(flavor), pct[i],
                        flavor == simmpi::Flavor::Lam ? "61%" : "62%");
            s.tool().metrics().release(pair);
            ++i;
        }
        g.check("sync time is a large fraction on both (paper: 61% / 62%)",
                pct[0] > 40.0 && pct[1] > 40.0);
        g.check("LAM and MPICH within 15 points of each other (paper: 1 point)",
                std::abs(pct[0] - pct[1]) < 15.0);
    }

    std::printf("\nFigures 9/17/18 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
