// Figures 3 & 4: small-messages.
//  Fig 3: condensed PC output for LAM vs MPICH -- both drill through
//         Gsend_message to MPI_Send; LAM additionally finds the
//         communicator; MPICH additionally shows
//         ExcessiveIOBlockingTime (socket transport).
//  Fig 4: Paradyn histogram of server message bytes received; the
//         paper multiplies the average rate by the run time and
//         compares against the known 200,000,000 bytes (scaled here).
#include "bench_common.hpp"

#include "util/ascii_chart.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 3 & 4", "small-messages: PC findings + byte histogram");
    bench::Grader g;

    // ---- Figure 3: PC condensed output, both implementations -----------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kSmallMessages, 6,
                          bench::pc_params(ppm::kSmallMessages), bench::pc_options());
        std::printf("\n--- Fig 3 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": ExcessiveSyncWaitingTime -> Gsend_message -> MPI_Send",
                run.report.found("ExcessiveSyncWaitingTime", "Gsend_message") &&
                    run.report.found("ExcessiveSyncWaitingTime", "MPI_Send"));
        if (flavor == simmpi::Flavor::Lam) {
            g.check("LAM: communicator identified",
                    run.report.found("ExcessiveSyncWaitingTime",
                                     "/SyncObject/Message/comm_"));
            g.check("LAM: no ExcessiveIOBlockingTime",
                    !run.report.found("ExcessiveIOBlockingTime", ""));
        } else {
            g.check("MPICH: ExcessiveIOBlockingTime true (socket read/write)",
                    run.report.found("ExcessiveIOBlockingTime", ""));
        }
    }

    // ---- Figure 4: server bytes-received histogram ----------------------
    {
        // Start the job paused (as Paradyn does) so the byte counters
        // are in place before the first message.
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;
        core::Session s(simmpi::Flavor::Lam, {}, wcfg);
        ppm::Params p;
        p.iterations = 60000;  // scaled from the paper's 10,000,000
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kSmallMessages, {}, 6);
        s.tool().flush();
        core::Focus server;
        server.process = s.tool().process_path(0);
        auto recv = s.tool().metrics().request("msg_bytes_recv", server);
        core::Focus client;
        client.process = s.tool().process_path(1);
        auto sent = s.tool().metrics().request("msg_bytes_sent", client);
        s.world().release_start_gate();
        s.world().join_all();
        s.tool().flush();

        const ppm::MessageTruth t = ppm::small_messages_truth(p, 6);
        const core::Histogram& h = recv->histogram();
        // The paper's procedure: average rate x run time, first/last
        // bins excluded to reduce folding error.
        const double est = h.rate(true) * h.bin_width() *
                           static_cast<double>(h.active_bins());
        std::printf("\n--- Fig 4: server msg_bytes_recv histogram ---\n");
        std::printf("%s", util::render_chart({{"server: message bytes received",
                                               h.values()}},
                                             h.bin_width(), 6, "bytes")
                              .c_str());
        std::printf("bins=%zu width=%.3fs folds=%d\n", h.active_bins(), h.bin_width(),
                    h.folds());
        std::printf("exact total:      %.0f bytes\n", recv->total());
        std::printf("histogram est.:   %.0f bytes (rate x time, endpoints dropped)\n",
                    est);
        std::printf("ground truth:     %lld bytes (paper scale: 200,000,000)\n",
                    t.bytes_received_at_server);
        std::printf("client 1 sent:    %.0f bytes (truth %lld)\n", sent->total(),
                    t.bytes_sent);

        g.check("server received-bytes exactly match ground truth",
                recv->total() == static_cast<double>(t.bytes_received_at_server));
        g.check("histogram estimate within 15% of exact total (folding error)",
                std::abs(est - recv->total()) < 0.15 * recv->total() + 1.0);
        g.check("client sent-bytes exactly match ground truth",
                sent->total() == static_cast<double>(t.bytes_sent));
        s.tool().metrics().release(recv);
        s.tool().metrics().release(sent);
    }

    std::printf("\nFigures 3-4 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
