// Figure 20 (right): sstwod -- the "Using MPI" book's 2-D Poisson
// solver with a known communication bottleneck in exchng2.  The PC
// finds ExcessiveSyncWaitingTime and drills through exchng2 to
// MPI_Sendrecv, plus a synchronization bottleneck in MPI_Allreduce.
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figure 20 (sstwod)", "PC findings for the Using-MPI Poisson solver");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        ppm::Params p = bench::pc_params(ppm::kSstwod);
        core::PerformanceConsultant::Options o = bench::pc_options();
        o.max_search_seconds = 8.0;
        const bench::PcRun run = bench::run_pc(flavor, ppm::kSstwod, 4, p, o);
        std::printf("\n--- Fig 20 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": ExcessiveSyncWaitingTime true",
                run.report.found("ExcessiveSyncWaitingTime", ""));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": MPI_Sendrecv implicated (exchng2's exchange)",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Sendrecv"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": MPI_Allreduce also a bottleneck",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Allreduce"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": drill passes through exchng2",
                run.report.found("ExcessiveSyncWaitingTime", "exchng2"));
    }

    std::printf("\nFigure 20 (sstwod) reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
