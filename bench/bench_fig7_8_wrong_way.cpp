// Figures 7 & 8: wrong-way.
//  Fig 7: both implementations show ExcessiveSyncWaitingTime through
//         Gsend_message / Grecv_message; MPICH's weak-symbol build
//         drills to PMPI_Send / PMPI_Recv.
//  Fig 8: bytes sent by process 0 / received by process 1 (paper:
//         71.4 MB sent, 70.5 MB received vs the known 72 MB).
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 7 & 8", "wrong-way: PC findings + byte histogram");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run =
            bench::run_pc(flavor, ppm::kWrongWay, 2,
                          bench::pc_params(ppm::kWrongWay), bench::pc_options());
        std::printf("\n--- Fig 7 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": send/recv operations implicated",
                run.report.found("ExcessiveSyncWaitingTime", "MPI_Send") ||
                    run.report.found("ExcessiveSyncWaitingTime", "MPI_Recv") ||
                    run.report.found("ExcessiveSyncWaitingTime", "Gsend_message") ||
                    run.report.found("ExcessiveSyncWaitingTime", "Grecv_message"));
        if (flavor == simmpi::Flavor::Mpich) {
            // Fig 7: "For MPICH, the PC drilled down ... to find
            // PMPI_Send and PMPI_Recv" -- the weak-symbol resolution.
            g.check("MPICH drill names PMPI_-level symbols",
                    run.report.found("ExcessiveSyncWaitingTime", "PMPI_Send") ||
                        run.report.found("ExcessiveSyncWaitingTime", "PMPI_Recv"));
        }
    }

    // ---- Figure 8: p0 bytes sent / p1 bytes received -----------------------
    {
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;  // instrument before the first message
        core::Session s(simmpi::Flavor::Lam, {}, wcfg);
        ppm::Params p;
        p.iterations = 30000;  // scaled from the paper's 18,000,000 messages
        p.wrongway_batch = 16;
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kWrongWay, {}, 2);
        s.tool().flush();
        core::Focus p0, p1;
        p0.process = s.tool().process_path(0);
        p1.process = s.tool().process_path(1);
        auto sent = s.tool().metrics().request("msg_bytes_sent", p0);
        auto recv = s.tool().metrics().request("msg_bytes_recv", p1);
        s.world().release_start_gate();
        s.world().join_all();

        const ppm::MessageTruth t = ppm::wrong_way_truth(p);
        std::printf("\n--- Fig 8: p0 bytes sent / p1 bytes received ---\n");
        std::printf("p0 sent measured: %.0f  truth: %lld\n", sent->total(),
                    t.bytes_sent);
        std::printf("p1 recv measured: %.0f  truth: %lld\n", recv->total(),
                    t.bytes_received_at_server);
        std::printf("paper: 71,375,728 sent / 70,465,869 received vs known "
                    "72,000,000 (both slightly low)\n");
        g.check("p0 sent bytes exactly match ground truth",
                sent->total() == static_cast<double>(t.bytes_sent));
        g.check("p1 recv bytes exactly match ground truth",
                recv->total() == static_cast<double>(t.bytes_received_at_server));
        s.tool().metrics().release(sent);
        s.tool().metrics().release(recv);
    }

    std::printf("\nFigures 7-8 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
