// Recovery plane: revoke propagation latency and shrink cost.
//
// MPI_Comm_revoke is a latch plus one scheduler wakeup broadcast (the
// same fan-out a death notification uses), so a revoke issued while
// hundreds of survivors sit parked inside blocking operations must
// reach every one of them at wakeup speed -- microseconds -- rather
// than at the thread engine's 5 ms condvar wait-slice cadence, and
// certainly not at the multi-second wait-deadline sweep.  This bench
// parks n-1 fiber ranks in MPI_Recv on a dup of MPI_COMM_WORLD,
// revokes the dup from rank 0, and timestamps each survivor as its
// receive fails out with MPI_ERR_REVOKED.  It then times the full
// recovery tail: MPI_Comm_shrink over all n members of the revoked
// comm, and a first collective on the replacement.
//
// The graded claims: at 256 ranks every parked survivor wakes, the
// p99 revoke-propagation latency stays under the 5 ms slice that
// would betray a polling fallback, and the post-shrink barrier
// succeeds.  The measured distribution lands in BENCH_recovery.json.
//
// `--smoke` runs one tiny repetition per cell and skips the
// performance thresholds (CI uses it to keep the harness honest).
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "instr/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace m2p;

struct RecoveryRun {
    std::vector<double> wake_us;  ///< per-survivor revoke->wakeup latency
    double shrink_ms = -1.0;      ///< max per-rank MPI_Comm_shrink time
    double recovery_wall_ms = -1.0;  ///< rank 0: revoke -> shrink complete
    int post_barrier_ok = 0;      ///< ranks whose post-shrink barrier passed
    bool ok = false;              ///< all ranks finished, every rc as expected
};

/// One revoke/shrink cycle on a fresh fiber world of @p nranks.
RecoveryRun run_cycle(int nranks) {
    RecoveryRun out;
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.rank_engine = simmpi::RankEngine::Fiber;
    cfg.wait_deadline_seconds = 30.0;
    cfg.join_deadline_seconds = 300.0;
    simmpi::World world(reg, cfg);
    std::atomic<std::int64_t> revoke_ns{0};
    std::atomic<double> shrink_max_ms{0.0}, wall_ms{-1.0};
    std::atomic<int> barrier_ok{0}, bad_rc{0};
    std::mutex mu;
    std::vector<double> wake_us;
    const auto now_ns = [] {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    };
    world.register_program("recover", [&](simmpi::Rank& r,
                                          const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        simmpi::Comm c = simmpi::MPI_COMM_NULL;
        if (r.MPI_Comm_dup(w, &c) != simmpi::MPI_SUCCESS) {
            ++bad_rc;
            r.MPI_Finalize();
            return;
        }
        r.MPI_Barrier(w);
        if (me == 0) {
            // Let the others sink into their receives before pulling
            // the plug; a rank that has not parked yet still fails at
            // the entry pre-check, it just isn't the path under test.
            simmpi::sched::sleep_for(std::chrono::milliseconds(100));
            revoke_ns.store(now_ns(), std::memory_order_release);
            r.MPI_Comm_revoke(c);
        } else {
            int v = 0;  // no sender exists: parks until the revoke
            const int rc = r.MPI_Recv(&v, 1, simmpi::MPI_INT, 0, 42, c, nullptr);
            const std::int64_t woke = now_ns();
            if (rc != simmpi::MPI_ERR_REVOKED) {
                ++bad_rc;
            } else {
                const std::int64_t t0 = revoke_ns.load(std::memory_order_acquire);
                std::lock_guard lk(mu);
                wake_us.push_back(static_cast<double>(woke - t0) / 1e3);
            }
        }
        // Everyone (rank 0 included) joins the shrink over the revoked
        // comm; the slowest member's elapsed time is the collective's
        // real cost.
        simmpi::Comm fresh = simmpi::MPI_COMM_NULL;
        const auto s0 = std::chrono::steady_clock::now();
        if (r.MPI_Comm_shrink(c, &fresh) != simmpi::MPI_SUCCESS ||
            fresh == simmpi::MPI_COMM_NULL) {
            ++bad_rc;
            r.MPI_Finalize();
            return;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - s0)
                .count();
        double cur = shrink_max_ms.load();
        while (ms > cur && !shrink_max_ms.compare_exchange_weak(cur, ms)) {
        }
        if (me == 0)
            wall_ms.store(static_cast<double>(now_ns() - revoke_ns.load()) / 1e6);
        if (r.MPI_Barrier(fresh) == simmpi::MPI_SUCCESS) ++barrier_ok;
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i)
        plan.placements.push_back("node" + std::to_string(i / 8));
    simmpi::launch(world, "recover", {}, plan);
    world.join_all();

    out.wake_us = std::move(wake_us);
    out.shrink_ms = shrink_max_ms.load();
    out.recovery_wall_ms = wall_ms.load();
    out.post_barrier_ok = barrier_ok.load();
    out.ok = world.all_finished() && world.epitaphs().empty() &&
             bad_rc.load() == 0 &&
             static_cast<int>(out.wake_us.size()) == nranks - 1 &&
             out.post_barrier_ok == nranks;
    return out;
}

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return -1.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(v.size()) - 1.0,
                         p * static_cast<double>(v.size())));
    return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    bench::header("Recovery plane: revoke propagation and shrink cost",
                  smoke ? "smoke mode (harness check only)"
                        : "parked-survivor wakeup latency and rebuild time");
    bench::Grader g;
    bench::JsonEmitter json("recovery");

    const int sizes[] = {64, 256};
    const int reps = smoke ? 1 : 3;
    bool all_ok = true;
    double p99_256 = -1.0;
    int woke_256 = -1, expect_256 = 255;

    util::TextTable tt({"ranks", "woke/parked", "wake p50 us", "wake p99 us",
                        "wake max us", "shrink ms", "recovery wall ms"});
    for (const int n : sizes) {
        // Best-of-reps on the latency percentile: the bench measures
        // the mechanism's floor, not the machine's noise.
        RecoveryRun best;
        double best_p99 = -1.0;
        for (int rep = 0; rep < reps; ++rep) {
            RecoveryRun r = run_cycle(n);
            all_ok = all_ok && r.ok;
            const double p99 = percentile(r.wake_us, 0.99);
            if (!best.ok || (r.ok && p99 >= 0.0 &&
                             (best_p99 < 0.0 || p99 < best_p99))) {
                best_p99 = p99;
                best = std::move(r);
            }
        }
        const double p50 = percentile(best.wake_us, 0.50);
        const double p99 = percentile(best.wake_us, 0.99);
        const double pmax = best.wake_us.empty()
                                ? -1.0
                                : *std::max_element(best.wake_us.begin(),
                                                    best.wake_us.end());
        if (n == 256) {
            p99_256 = p99;
            woke_256 = static_cast<int>(best.wake_us.size());
        }
        tt.add_row({std::to_string(n),
                    std::to_string(best.wake_us.size()) + "/" +
                        std::to_string(n - 1),
                    util::fmt(p50, 1), util::fmt(p99, 1), util::fmt(pmax, 1),
                    util::fmt(best.shrink_ms, 2),
                    util::fmt(best.recovery_wall_ms, 2)});
        const std::string k = std::to_string(n) + "ranks";
        json.record("revoke_" + k + "_woke", static_cast<double>(best.wake_us.size()),
                    "ranks");
        json.record("revoke_" + k + "_p50_us", p50, "us");
        json.record("revoke_" + k + "_p99_us", p99, "us");
        json.record("revoke_" + k + "_max_us", pmax, "us");
        json.record("shrink_" + k + "_ms", best.shrink_ms, "ms");
        json.record("recovery_wall_" + k + "_ms", best.recovery_wall_ms, "ms");
    }
    std::printf("%s", tt.render().c_str());

    if (smoke) {
        g.check("smoke: all cells completed with expected return codes", all_ok);
    } else {
        g.check("revoke wakes every parked survivor at 256 ranks",
                all_ok && woke_256 == expect_256);
        // 5 ms is the thread engine's condvar wait slice: any parked
        // fiber serviced by polling instead of the wakeup broadcast
        // would push the tail past it.
        g.check("p99 revoke propagation < 5 ms at 256 ranks (no wait-slice tail)",
                p99_256 >= 0.0 && p99_256 < 5000.0);
        g.check("shrink rebuilds and the post-shrink barrier succeeds", all_ok);
    }
    const std::string body = json.render();
    g.check("json renders well-formed record set",
            body.rfind("{\"bench\":\"recovery\"", 0) == 0 &&
                body.find("\"records\":[") != std::string::npos &&
                body.substr(body.size() - 3) == "]}\n");

    json.write_file();
    std::printf("\nRecovery: %d failures\n", g.failures());
    return g.exit_code();
}
