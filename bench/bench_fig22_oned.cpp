// Figure 22: Oned -- the "Using MPI-2" 1-D Poisson solver whose ghost
// exchange uses RMA.  For both implementations the PC discovers the
// bottleneck to be synchronization waiting in MPI_Win_fence inside
// exchng1.  On LAM there is additionally a bottleneck in the Barrier
// synchronization object, "because it implements MPI_Win_fence with a
// call to MPI_Barrier".
#include "bench_common.hpp"

using namespace m2p;

int main() {
    bench::header("Figure 22", "Oned: fence bottleneck in exchng1, LAM vs MPICH");
    bench::Grader g;

    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        ppm::Params p = bench::pc_params(ppm::kOned);
        core::PerformanceConsultant::Options o = bench::pc_options();
        o.max_search_seconds = 8.0;
        const bench::PcRun run = bench::run_pc(flavor, ppm::kOned, 4, p, o);
        std::printf("\n--- Fig 22 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": sync waiting in MPI_Win_fence",
                run.report.found("ExcessiveSyncWaitingTime", "Win_fence"));
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": drill passes through exchng1",
                run.report.found("ExcessiveSyncWaitingTime", "exchng1"));
        const bool barrier_obj =
            run.report.found("ExcessiveSyncWaitingTime", "/SyncObject/Barrier") ||
            run.report.found("ExcessiveSyncWaitingTime", "MPI_Barrier");
        if (flavor == simmpi::Flavor::Lam) {
            g.check("LAM: Barrier sync object implicated (fence uses MPI_Barrier)",
                    barrier_obj);
        } else {
            g.check("MPICH: no Barrier involvement (internal fence)", !barrier_obj);
        }
    }

    std::printf("\nFigure 22 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
