// Figures 10-13: intensive-server.
//  Fig 10: PC output -- clients wait in Grecv_message -> MPI_Recv with
//          the communicator (and, on LAM, the tag); CPUBound also true.
//  Fig 11: histograms -- a client spends nearly all its time in
//          Grecv_message and almost none in Gsend_message; the server
//          spends little time in either.
//  Fig 12: Jumpshot statistical preview -- ~2 of 3 processes in
//          MPI_Recv at any time (3-process run).
//  Fig 13: Jumpshot Time Lines -- server busy, clients in MPI_Recv.
#include "bench_common.hpp"

#include "trace/mpe.hpp"
#include "util/ascii_chart.hpp"
#include "util/clock.hpp"

using namespace m2p;

int main() {
    bench::header("Figures 10-13", "intensive-server");
    bench::Grader g;

    // ---- Figure 10: PC output ------------------------------------------
    for (const auto flavor : {simmpi::Flavor::Lam, simmpi::Flavor::Mpich}) {
        const bench::PcRun run = bench::run_pc(
            flavor, ppm::kIntensiveServer, 6,
            bench::pc_params(ppm::kIntensiveServer), bench::pc_options());
        std::printf("\n--- Fig 10 condensed PC output (%s) ---\n%s",
                    simmpi::flavor_name(flavor), run.condensed.c_str());
        g.check(std::string(simmpi::flavor_name(flavor)) +
                    ": Grecv_message -> MPI_Recv bottleneck",
                run.report.found("ExcessiveSyncWaitingTime", "Grecv_message") &&
                    run.report.found("ExcessiveSyncWaitingTime", "MPI_Recv"));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": communicator found",
                run.report.found("ExcessiveSyncWaitingTime",
                                 "/SyncObject/Message/comm_"));
        g.check(std::string(simmpi::flavor_name(flavor)) + ": CPUBound also true",
                run.report.found("CPUBound", ""));
    }

    // ---- Figure 11: client vs server inclusive sync time -----------------
    {
        simmpi::World::Config wcfg;
        wcfg.start_paused = true;
        core::Session s(simmpi::Flavor::Lam, {}, wcfg);
        ppm::Params p;
        p.iterations = 200;
        p.time_to_waste = 1;
        p.waste_unit_seconds = 0.002;
        ppm::register_all(s.world(), p);
        core::run_app_async(s.tool(), ppm::kIntensiveServer, {}, 6);
        s.tool().flush();

        auto request_for = [&](int rank, const char* fn) {
            core::Focus f;
            f.process = s.tool().process_path(rank);
            f.code = std::string("/Code/pperfmark/") + fn;
            return s.tool().metrics().request("sync_wait_inclusive", f);
        };
        auto client_recv = request_for(1, "Grecv_message");
        auto client_send = request_for(1, "Gsend_message");
        auto server_recv = request_for(0, "Grecv_message");
        auto server_send = request_for(0, "Gsend_message");
        const double t0 = util::wall_seconds();
        s.world().release_start_gate();
        s.world().join_all();
        const double wall = util::wall_seconds() - t0;

        std::printf("\n--- Fig 11: inclusive sync waiting time (fraction of run) ---\n");
        std::printf("%s",
                    util::render_chart(
                        {{"client p1: sync in Grecv_message",
                          client_recv->histogram().values()},
                         {"client p1: sync in Gsend_message",
                          client_send->histogram().values()},
                         {"server p0: sync in Grecv_message",
                          server_recv->histogram().values()}},
                        client_recv->histogram().bin_width(), 5, "seconds waiting")
                        .c_str());
        util::TextTable t({"process", "Grecv_message", "Gsend_message"});
        t.add_row({"client (p1)", util::fmt(client_recv->total() / wall, 3),
                   util::fmt(client_send->total() / wall, 3)});
        t.add_row({"server (p0)", util::fmt(server_recv->total() / wall, 3),
                   util::fmt(server_send->total() / wall, 3)});
        std::printf("%s", t.render().c_str());
        std::printf("paper: client ~0.999 in Grecv vs ~0.0001 in Gsend; server low in both\n");
        g.check("client is dominated by Grecv_message",
                client_recv->total() > 10.0 * std::max(1e-6, client_send->total()));
        g.check("server spends far less of its time waiting than clients",
                server_recv->total() + server_send->total() <
                    0.5 * client_recv->total());
        for (auto* pr : {&client_recv, &client_send, &server_recv, &server_send})
            s.tool().metrics().release(*pr);
    }

    // ---- Figures 12 & 13: MPE / Jumpshot cross-check ----------------------
    {
        core::Session s(simmpi::Flavor::Lam);
        ppm::Params p;
        p.iterations = 25;  // the paper shortened these runs (log size)
        p.time_to_waste = 1;
        p.waste_unit_seconds = 0.004;
        ppm::register_all(s.world(), p);
        trace::MpeLogger mpe(s.world());
        s.run(ppm::kIntensiveServer, 3);
        const double avg = trace::statistical_preview(mpe.log(), "MPI_Recv");
        std::printf("\n--- Fig 12: statistical preview (3 processes) ---\n");
        std::printf("average processes in MPI_Recv: %.2f (paper: ~2 of 3)\n", avg);
        g.check("~2 of 3 processes in MPI_Recv", avg > 1.3 && avg < 2.9);

        std::printf("\n--- Fig 13: time lines ---\n%s",
                    trace::render_timelines(mpe.log(), 3, 72).c_str());
        // The server (p0) row should be mostly computing; clients mostly 'R'.
        const std::string lines = trace::render_timelines(mpe.log(), 3, 60);
        const std::size_t p1 = lines.find("p1 |");
        const std::size_t p1end = lines.find('\n', p1);
        const std::string p1row = lines.substr(p1, p1end - p1);
        const std::size_t recv_cells =
            static_cast<std::size_t>(std::count(p1row.begin(), p1row.end(), 'R'));
        g.check("client p1 timeline is mostly MPI_Recv", recv_cells > 30);
    }

    std::printf("\nFigures 10-13 reproduction: %d failures\n", g.failures());
    return g.exit_code();
}
