// Small statistics toolkit used by the Presta-vs-tool comparison
// (paper section 5.2.1.3): the authors decide whether measurement
// differences are significant "by inspecting the confidence interval
// of the mean of the differences of the two sets of measurements".
#pragma once

#include <cstddef>
#include <vector>

namespace m2p::util {

struct Summary {
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation (n-1)
    double min = 0.0;
    double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// Two-sided Student-t critical value at 95% confidence for @p df
/// degrees of freedom (table lookup with asymptote 1.96).
double t_critical_95(std::size_t df);

struct ConfidenceInterval {
    double lo = 0.0;
    double hi = 0.0;
    /// True when the interval excludes zero, i.e. the mean difference
    /// is statistically significant at 95%.
    bool excludes_zero() const { return lo > 0.0 || hi < 0.0; }
};

/// 95% confidence interval for the mean of @p xs (paired-difference
/// test when @p xs are per-trial differences).
ConfidenceInterval mean_ci95(const std::vector<double>& xs);

struct WelchResult {
    double t = 0.0;
    double df = 0.0;
    bool significant_95 = false;
    double relative_difference = 0.0;  ///< |mean_a-mean_b| / max(|mean_b|, eps)
};

/// Welch's unequal-variance t-test between two independent samples.
WelchResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace m2p::util
