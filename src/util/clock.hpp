// Time sources used throughout the tool.
//
// The paper's Paradyn uses three kinds of timers: wall-clock timers
// (for synchronization waiting time), per-process CPU timers (for
// CPUBound detection), and system-time accounting (which Paradyn 4.0
// notably lacked -- the "system-time" PPerfMark program fails for that
// reason).  We expose all three so the reproduction can both implement
// the tool's metrics and demonstrate the gap.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace m2p::util {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_seconds();

/// CPU time consumed by the *calling thread*, in seconds.
///
/// simmpi ranks are threads, so this plays the role of per-process CPU
/// time on a cluster node (CLOCK_THREAD_CPUTIME_ID on Linux).
double thread_cpu_seconds();

/// CPU time consumed by the *calling rank context*, in seconds.
///
/// Defaults to thread_cpu_seconds().  An execution engine that
/// multiplexes ranks over worker threads (the simmpi fiber scheduler)
/// installs a provider so a start/stop timer pair reads one rank's
/// CPU clock even when the rank parks and resumes on a different
/// worker thread between the two reads -- the thread clock there
/// would subtract two different threads' clocks and produce
/// meaningless (possibly negative) deltas.  Timer metrics (proc_time
/// and friends) must use this, never thread_cpu_seconds() directly.
double rank_cpu_seconds();

/// Install the rank_cpu_seconds() provider (nullptr restores the
/// thread-clock default).  The provider must be callable from any
/// thread and fall back to the thread clock off-rank.
void set_rank_cpu_provider(double (*provider)());

/// System (kernel) CPU time consumed by the whole process, in seconds.
/// Used only by the system-time PPerfMark program's ground truth.
double process_system_seconds();

/// Busy-spins until the calling thread has burned @p seconds of CPU
/// time.  This is PPerfMark's `waste_time`: a purely computational
/// bottleneck that registers on CPU timers, not on sync timers.
void burn_thread_cpu(double seconds);

/// Busy-loop performing real syscalls until roughly @p seconds of
/// wall time pass.  Time accrues as *system* time, which the default
/// metric set cannot see (paper Table 2, "system-time": Fail).
void burn_system_time(double seconds);

/// Cheap monotonic timestamp for the flight recorder's event rings:
/// the TSC on x86 (a few ns per read, no syscall/vDSO crossing), the
/// steady clock's raw nanosecond count elsewhere.  Raw ticks have no
/// fixed unit -- convert with calibrate_ticks()/ticks_to_wall() at
/// export time, never on the recording path.  Inline on purpose: a
/// function-call round trip per stamp would double the cost of the
/// flight recorder's hot path.
inline std::uint64_t ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Linear map from raw ticks to the wall_seconds() time base, sampled
/// against a process-lifetime anchor.  Calibration spins for ~100 us
/// the first time it is called very early in the process; afterwards
/// the elapsed window makes the rate estimate essentially free.
struct TickCalibration {
    std::uint64_t t0 = 0;          ///< anchor tick count
    double wall0 = 0.0;            ///< wall_seconds() at the anchor
    double seconds_per_tick = 0.0;
};
TickCalibration calibrate_ticks();

inline double ticks_to_wall(const TickCalibration& c, std::uint64_t t) {
    return c.wall0 +
           static_cast<double>(static_cast<std::int64_t>(t - c.t0)) * c.seconds_per_tick;
}

}  // namespace m2p::util
