// Time sources used throughout the tool.
//
// The paper's Paradyn uses three kinds of timers: wall-clock timers
// (for synchronization waiting time), per-process CPU timers (for
// CPUBound detection), and system-time accounting (which Paradyn 4.0
// notably lacked -- the "system-time" PPerfMark program fails for that
// reason).  We expose all three so the reproduction can both implement
// the tool's metrics and demonstrate the gap.
#pragma once

#include <cstdint>

namespace m2p::util {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_seconds();

/// CPU time consumed by the *calling thread*, in seconds.
///
/// simmpi ranks are threads, so this plays the role of per-process CPU
/// time on a cluster node (CLOCK_THREAD_CPUTIME_ID on Linux).
double thread_cpu_seconds();

/// System (kernel) CPU time consumed by the whole process, in seconds.
/// Used only by the system-time PPerfMark program's ground truth.
double process_system_seconds();

/// Busy-spins until the calling thread has burned @p seconds of CPU
/// time.  This is PPerfMark's `waste_time`: a purely computational
/// bottleneck that registers on CPU timers, not on sync timers.
void burn_thread_cpu(double seconds);

/// Busy-loop performing real syscalls until roughly @p seconds of
/// wall time pass.  Time accrues as *system* time, which the default
/// metric set cannot see (paper Table 2, "system-time": Fail).
void burn_system_time(double seconds);

}  // namespace m2p::util
