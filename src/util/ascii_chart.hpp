// ASCII rendering of time-series histograms -- the textual stand-in
// for the Paradyn histogram windows the paper's Figures 4, 6, 8, 11,
// 15 and 18 screenshot.  One row block per series, bars scaled to the
// global maximum, with axis annotations in the series' units.
#pragma once

#include <string>
#include <vector>

namespace m2p::util {

struct ChartSeries {
    std::string label;
    std::vector<double> values;  ///< one value per time bin
};

/// Renders one or more series over a shared time axis.
/// @p bin_width_seconds labels the x axis; @p height rows per series.
std::string render_chart(const std::vector<ChartSeries>& series,
                         double bin_width_seconds, int height = 8,
                         const std::string& unit = "");

}  // namespace m2p::util
