#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace m2p::util {

std::string render_chart(const std::vector<ChartSeries>& series,
                         double bin_width_seconds, int height,
                         const std::string& unit) {
    std::ostringstream os;
    double peak = 0.0;
    std::size_t bins = 0;
    for (const ChartSeries& s : series) {
        bins = std::max(bins, s.values.size());
        for (double v : s.values) peak = std::max(peak, v);
    }
    if (bins == 0 || peak <= 0.0) return "(no data)\n";

    char buf[64];
    for (const ChartSeries& s : series) {
        os << s.label << "\n";
        for (int row = height; row >= 1; --row) {
            const double cut = peak * (row - 0.5) / height;
            if (row == height) {
                std::snprintf(buf, sizeof buf, "%10.3g |", peak);
            } else if (row == 1) {
                std::snprintf(buf, sizeof buf, "%10.3g |", 0.0);
            } else {
                std::snprintf(buf, sizeof buf, "%10s |", "");
            }
            os << buf;
            for (std::size_t b = 0; b < bins; ++b) {
                const double v = b < s.values.size() ? s.values[b] : 0.0;
                os << (v >= cut ? '#' : ' ');
            }
            os << "\n";
        }
        std::snprintf(buf, sizeof buf, "%10s +", "");
        os << buf << std::string(bins, '-') << "\n";
        char end[32];
        std::snprintf(end, sizeof end, "%.3gs",
                      bin_width_seconds * static_cast<double>(bins));
        std::string footer(11 + bins, ' ');
        footer[11] = '0';
        const std::string tail(end);
        if (footer.size() > tail.size())
            footer.replace(footer.size() - tail.size(), tail.size(), tail);
        os << footer;
        if (!unit.empty()) os << "  [" << unit << " per bin]";
        os << "\n";
    }
    return os.str();
}

}  // namespace m2p::util
