#include "util/text_table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace m2p::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> w(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c] << std::string(w[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    emit(header_);
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << "|" << std::string(w[c] + 2, '-');
    os << "|\n";
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string fmt(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
}

}  // namespace m2p::util
