#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace m2p::util {

Summary summarize(const std::vector<double>& xs) {
    Summary s;
    s.n = xs.size();
    if (xs.empty()) return s;
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    double sum = 0.0;
    for (double x : xs) sum += x;
    s.mean = sum / static_cast<double>(s.n);
    if (s.n > 1) {
        double ss = 0.0;
        for (double x : xs) ss += (x - s.mean) * (x - s.mean);
        s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    }
    return s;
}

double t_critical_95(std::size_t df) {
    // Two-sided 95% critical values; exact enough for the comparison
    // harness (df beyond 30 is effectively normal).
    static constexpr double table[] = {
        0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
        2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
        2.042};
    if (df == 0) return 12.706;
    if (df < std::size(table)) return table[df];
    if (df < 40) return 2.03;
    if (df < 60) return 2.01;
    if (df < 120) return 1.99;
    return 1.96;
}

ConfidenceInterval mean_ci95(const std::vector<double>& xs) {
    ConfidenceInterval ci;
    const Summary s = summarize(xs);
    if (s.n < 2) {
        ci.lo = ci.hi = s.mean;
        return ci;
    }
    const double se = s.stddev / std::sqrt(static_cast<double>(s.n));
    const double t = t_critical_95(s.n - 1);
    ci.lo = s.mean - t * se;
    ci.hi = s.mean + t * se;
    return ci;
}

WelchResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b) {
    WelchResult r;
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    r.relative_difference =
        std::fabs(sa.mean - sb.mean) / std::max(std::fabs(sb.mean), 1e-12);
    if (sa.n < 2 || sb.n < 2) return r;
    const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
    const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
    const double denom = std::sqrt(va + vb);
    if (denom <= 0.0) {
        r.significant_95 = sa.mean != sb.mean;
        return r;
    }
    r.t = (sa.mean - sb.mean) / denom;
    const double num = (va + vb) * (va + vb);
    const double den = va * va / static_cast<double>(sa.n - 1) +
                       vb * vb / static_cast<double>(sb.n - 1);
    r.df = den > 0.0 ? num / den : static_cast<double>(sa.n + sb.n - 2);
    r.significant_95 =
        std::fabs(r.t) > t_critical_95(static_cast<std::size_t>(std::max(1.0, r.df)));
    return r;
}

}  // namespace m2p::util
