#include "util/clock.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace m2p::util {

double wall_seconds() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch).count();
}

double thread_cpu_seconds() {
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

namespace {
std::atomic<double (*)()> g_rank_cpu_provider{nullptr};
}  // namespace

double rank_cpu_seconds() {
    if (double (*fn)() = g_rank_cpu_provider.load(std::memory_order_acquire))
        return fn();
    return thread_cpu_seconds();
}

void set_rank_cpu_provider(double (*provider)()) {
    g_rank_cpu_provider.store(provider, std::memory_order_release);
}

double process_system_seconds() {
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
    return static_cast<double>(ru.ru_stime.tv_sec) +
           static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
}

void burn_thread_cpu(double seconds) {
    // CLOCK_THREAD_CPUTIME_ID reads are real syscalls (kernel time);
    // keep them rare so the burned time is almost entirely *user*
    // time, as a compute kernel's would be.
    const double end = thread_cpu_seconds() + seconds;
    volatile std::uint64_t sink = 0;
    while (thread_cpu_seconds() < end) {
        std::uint64_t acc = 0;
        for (int i = 0; i < 400000; ++i)
            acc += static_cast<std::uint64_t>(i) * 2654435761u + (acc >> 7);
        sink = sink + acc;
    }
}

void burn_system_time(double seconds) {
    const double end = wall_seconds() + seconds;
    // Large reads from /dev/zero: the kernel zero-fills the buffer, so
    // nearly all the consumed CPU is system time (tiny user-mode
    // overhead per crossing).
    static thread_local std::vector<char> buf(1 << 20);
    int fd = ::open("/dev/zero", O_RDONLY);
    while (wall_seconds() < end) {
        if (fd >= 0) {
            for (int i = 0; i < 4; ++i) {
                [[maybe_unused]] ssize_t n = ::read(fd, buf.data(), buf.size());
            }
        } else {
            (void)::getpid();
        }
    }
    if (fd >= 0) ::close(fd);
}

namespace {
struct TickAnchor {
    std::uint64_t t = ticks();
    double w = wall_seconds();
};
}  // namespace

TickCalibration calibrate_ticks() {
    static const TickAnchor anchor;  // magic static: thread-safe init
    std::uint64_t t1 = ticks();
    double w1 = wall_seconds();
    // The rate needs a non-trivial window; only the very first caller
    // right after process start can land inside it.
    while (w1 - anchor.w < 1e-4) {
        t1 = ticks();
        w1 = wall_seconds();
    }
    TickCalibration c;
    c.t0 = anchor.t;
    c.wall0 = anchor.w;
    const std::uint64_t dt = t1 - anchor.t;
    c.seconds_per_tick = dt ? (w1 - anchor.w) / static_cast<double>(dt) : 1e-9;
    return c;
}

}  // namespace m2p::util
