// Minimal fixed-width text table renderer for benchmark/report output.
// All paper tables and "condensed PC output" figures are reproduced as
// text; this keeps their formatting consistent across bench binaries.
#pragma once

#include <string>
#include <vector>

namespace m2p::util {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Renders with a header rule and column padding.
    std::string render() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with @p digits significant decimals, trimming.
std::string fmt(double v, int digits = 3);

}  // namespace m2p::util
