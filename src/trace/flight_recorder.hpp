// Flight recorder: always-on, per-thread, lock-free event rings.
//
// Every data plane of the simulated MPI (pt2pt, collectives, RMA,
// MPI-IO, spawn, fault firings) and the tool side (PC experiments,
// resource retirement, session outcomes) drops compact binary events
// into fixed-capacity overwrite-oldest rings -- one ring per recording
// thread, so the hot path is a handful of relaxed atomic stores (one
// 56-byte slot copy) plus a release publish of the head counter.  The
// rings survive rank death: when a world poisons, aborts, or trips the
// join watchdog it renders a postmortem dump from whatever the rings
// still hold, correlated with the PR 3 epitaph table.  Accounting is
// exact: events_written == events_kept + events_dropped, always.
//
// This layer is deliberately free of simmpi dependencies (instr + util
// only) so the World can own a recorder; trace::Exporter (exporter.hpp)
// layers the world-aware conveniences and file output on top, and the
// MPE/Jumpshot log (mpe.hpp) is rebuilt as one backend reading
// MpiCall spans from these rings.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "instr/registry.hpp"
#include "util/clock.hpp"

namespace m2p::trace {

enum class EventKind : std::uint32_t {
    MpiCall = 1,          ///< one MPI_* trampoline call; t0..t1 span the guard
    Pt2ptSend,            ///< a=bytes, b=tag, c=dest global rank
    Pt2ptRecv,            ///< a=bytes, b=tag, c=source global rank
    CollBegin,            ///< a=local payload bytes, b=algo (0 flat / 1 tree), c=comm
    CollEnd,              ///< b=algo, c=comm
    RmaEpoch,             ///< epoch transition at a sync call: a=win, b=wait ns, c=passive
    RmaBatch,             ///< staged-op flush: a=ops, b=bytes, c=win
    Io,                   ///< a=bytes moved, b=byte offset, c=file handle
    Spawn,                ///< a=maxprocs, b=ok (0/1), c=intercomm
    Fault,                ///< a FaultPlan firing; a=call index / nth match
    Death,                ///< name=cause, a=calls made
    Poison,               ///< world poisoned; a=error code
    ExperimentStart,      ///< PC experiment begins; name=hypothesis
    ExperimentStop,       ///< a=tested_true (0/1)
    ExperimentTruncated,  ///< rank died during the evaluation interval
    ResourceRetired,      ///< tool retired a resource; name=path prefix
    RunOutcome,           ///< session verdict; name=status, a=abort code
    Revoke,               ///< MPI_Comm_revoke; a=comm, b=death epoch at revoke
    Shrink,               ///< MPI_Comm_shrink closed; a=old comm, b=new comm, c=survivors
    Agree,                ///< MPI_Comm_agree closed; a=comm, b=flag, c=result code
};

const char* kind_name(EventKind k);

/// One compact binary record.  @p name must point at a string whose
/// lifetime covers the recorder's (string literals, registry
/// FunctionInfo names); events never own memory.
struct Event {
    std::uint64_t t0 = 0;  ///< util::ticks() at begin (== t1 for instants)
    std::uint64_t t1 = 0;  ///< util::ticks() at end
    const char* name = nullptr;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t c = 0;
    std::int32_t rank = -1;  ///< global rank, -1 for tool-side threads
    std::uint32_t kind = 0;
};

/// Fixed-capacity overwrite-oldest ring.  Single writer (the owning
/// thread); any number of concurrent snapshot readers.  Slots are
/// arrays of relaxed atomic words -- plain mov stores on x86 -- so a
/// reader racing a wrap-around overwrite reads well-defined (if stale)
/// words, and the snapshot's head re-check discards exactly the slots
/// the writer may have recycled mid-copy.
class EventRing {
public:
    static constexpr std::size_t kWords = 7;  ///< 56-byte slot

    EventRing(std::size_t capacity, int thread_index);
    EventRing(const EventRing&) = delete;
    EventRing& operator=(const EventRing&) = delete;

    void push(const Event& e) noexcept {
        const std::uint64_t seq = head_.load(std::memory_order_relaxed);
        std::atomic<std::uint64_t>* w = &words_[(seq & mask_) * kWords];
        w[0].store(e.t0, std::memory_order_relaxed);
        w[1].store(e.t1, std::memory_order_relaxed);
        w[2].store(reinterpret_cast<std::uintptr_t>(e.name), std::memory_order_relaxed);
        w[3].store(static_cast<std::uint64_t>(e.a), std::memory_order_relaxed);
        w[4].store(static_cast<std::uint64_t>(e.b), std::memory_order_relaxed);
        w[5].store(static_cast<std::uint64_t>(e.c), std::memory_order_relaxed);
        w[6].store(static_cast<std::uint32_t>(e.rank) |
                       (static_cast<std::uint64_t>(e.kind) << 32),
                   std::memory_order_relaxed);
        head_.store(seq + 1, std::memory_order_release);
    }

    std::uint64_t written() const { return head_.load(std::memory_order_acquire); }
    std::uint64_t kept() const { return std::min<std::uint64_t>(written(), cap_); }
    std::uint64_t dropped() const { return written() - kept(); }
    std::size_t capacity() const { return cap_; }
    int thread_index() const { return thread_index_; }

    /// Appends the surviving events (oldest first) to @p out.  Safe
    /// against a concurrently pushing writer: slots the writer may have
    /// recycled during the copy are discarded, never returned torn.
    void snapshot(std::vector<Event>& out) const;

private:
    const std::size_t cap_;  ///< power of two
    const std::uint64_t mask_;
    const int thread_index_;
    std::atomic<std::uint64_t> head_{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

/// The recorder: hands each recording thread its own EventRing and
/// implements the instr::CallTraceSink seam so FunctionGuard's
/// user-boundary timestamps become MpiCall span events.
class FlightRecorder : public instr::CallTraceSink {
public:
    struct Options {
        std::size_t ring_capacity = 8192;  ///< events per thread, rounded up to 2^k
    };

    FlightRecorder();  ///< default Options
    explicit FlightRecorder(Options opts);
    ~FlightRecorder() override;
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Records an instant event stamped now.
    void record(EventKind kind, int rank, const char* name, std::int64_t a = 0,
                std::int64_t b = 0, std::int64_t c = 0) noexcept;
    /// Records a span event with caller-provided tick stamps.
    void record_span(EventKind kind, int rank, const char* name, std::uint64_t t0,
                     std::uint64_t t1, std::int64_t a = 0, std::int64_t b = 0,
                     std::int64_t c = 0) noexcept;

    void on_boundary_call(const instr::FunctionInfo& info, int rank, std::uint64_t t0,
                          std::uint64_t t1) noexcept override;

    struct Stats {
        std::uint64_t written = 0;
        std::uint64_t kept = 0;
        std::uint64_t dropped = 0;
        int rings = 0;
    };
    Stats stats() const;
    std::size_t ring_capacity() const { return cap_; }

    /// Merged snapshot of every ring, ordered by end timestamp.
    std::vector<Event> snapshot() const;

private:
    EventRing& thread_ring() noexcept;

    const std::uint64_t uid_;  ///< process-unique (thread-local cache key)
    const std::size_t cap_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<EventRing>> rings_;
};

// ---------------------------------------------------------------------------
// Renderers.  simmpi-free on purpose: World calls them from its own
// failure plane (poison / watchdog) with notes built from the epitaph
// table; trace::Exporter wraps them for tool/test use.
// ---------------------------------------------------------------------------

/// Per-rank annotation for the postmortem dump (built from epitaphs).
struct PostmortemNote {
    int rank = -1;
    std::string status;     ///< "DEAD (fault plan: ...)", "running", ...
    std::string last_call;  ///< the epitaph's last-call record (dead ranks)
};

/// Plain-text postmortem: recorder totals, then per rank its status,
/// epitaph last call, and the tail of its recorded events -- the
/// "what was everyone doing when it died" view.
std::string render_postmortem(const FlightRecorder& fr,
                              const std::vector<PostmortemNote>& notes,
                              const std::string& why, std::size_t tail_events = 8);

/// Chrome trace-event JSON (chrome://tracing / Perfetto): MpiCall and
/// collective begin/end pairs become complete ("X") slices, everything
/// else instant ("i") events, one track per rank (tool side on its own
/// track).
std::string render_chrome_json(const FlightRecorder& fr);

}  // namespace m2p::trace
