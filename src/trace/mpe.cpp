#include "trace/mpe.hpp"

#include <algorithm>
#include <sstream>

#include "util/clock.hpp"

namespace m2p::trace {

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

void TraceLog::record(int rank, std::string state, double t0, double t1) {
    std::lock_guard lk(mu_);
    if (!any_) {
        t_min_ = t0;
        t_max_ = t1;
        any_ = true;
    } else {
        t_min_ = std::min(t_min_, t0);
        t_max_ = std::max(t_max_, t1);
    }
    events_.push_back({rank, std::move(state), t0, t1});
}

std::vector<TraceEvent> TraceLog::events() const {
    std::lock_guard lk(mu_);
    return events_;
}

double TraceLog::begin_time() const {
    std::lock_guard lk(mu_);
    return t_min_;
}

double TraceLog::end_time() const {
    std::lock_guard lk(mu_);
    return t_max_;
}

std::size_t TraceLog::size() const {
    std::lock_guard lk(mu_);
    return events_.size();
}

// ---------------------------------------------------------------------------
// MpeLogger
// ---------------------------------------------------------------------------

MpeLogger::MpeLogger(simmpi::World& world) : world_(world) {
    instr::Registry& reg = world_.registry();
    // MPE interposes at the MPI->PMPI boundary: log every PMPI entry
    // point (one interval per user-level MPI call).
    for (instr::FuncId f :
         reg.functions_with(static_cast<std::uint32_t>(instr::Category::MpiApi))) {
        const instr::FunctionInfo& fi = reg.info(f);
        if (fi.name.rfind("PMPI_", 0) != 0) continue;
        const std::string display = fi.name.substr(1);  // PMPI_Recv -> MPI_Recv
        handles_.push_back(
            reg.insert(f, instr::Where::Entry, [this, f](const instr::CallContext&) {
                std::lock_guard lk(mu_);
                open_[{std::this_thread::get_id(), f}] = util::wall_seconds();
            }));
        handles_.push_back(reg.insert(
            f, instr::Where::Return,
            [this, f, display](const instr::CallContext& ctx) {
                const double t1 = util::wall_seconds();
                double t0 = t1;
                {
                    std::lock_guard lk(mu_);
                    const auto key = std::make_pair(std::this_thread::get_id(), f);
                    const auto it = open_.find(key);
                    if (it == open_.end()) return;
                    t0 = it->second;
                    open_.erase(it);
                }
                log_.record(ctx.rank, display, t0, t1);
            }));
    }
}

MpeLogger::~MpeLogger() {
    for (const auto& h : handles_) world_.registry().remove(h);
}

// ---------------------------------------------------------------------------
// Jumpshot-style analyses
// ---------------------------------------------------------------------------

std::string save_log(const TraceLog& log) {
    std::ostringstream os;
    os << "# mpe-log v1\n";
    char row[160];
    for (const TraceEvent& e : log.events()) {
        std::snprintf(row, sizeof row, "%d %s %.9f %.9f\n", e.rank, e.state.c_str(),
                      e.t0, e.t1);
        os << row;
    }
    return os.str();
}

void load_log(const std::string& text, TraceLog* out) {
    if (!out) throw std::invalid_argument("mpe: null output log");
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        int rank = -1;
        std::string state;
        double t0 = 0, t1 = 0;
        if (!(ls >> rank >> state >> t0 >> t1) || t1 < t0)
            throw std::invalid_argument("mpe: malformed log row: " + line);
        out->record(rank, std::move(state), t0, t1);
    }
}

double statistical_preview(const TraceLog& log, const std::string& state) {
    const double span = log.end_time() - log.begin_time();
    if (span <= 0.0) return 0.0;
    double occupancy = 0.0;
    for (const TraceEvent& e : log.events())
        if (e.state == state) occupancy += e.t1 - e.t0;
    return occupancy / span;
}

std::map<std::string, double> state_totals(const TraceLog& log) {
    std::map<std::string, double> out;
    for (const TraceEvent& e : log.events()) out[e.state] += e.t1 - e.t0;
    return out;
}

std::string render_timelines(const TraceLog& log, int nranks, int columns) {
    std::ostringstream os;
    const double t0 = log.begin_time();
    const double span = std::max(1e-9, log.end_time() - t0);
    const double cell = span / columns;
    const std::vector<TraceEvent> events = log.events();

    // Assign a stable letter per state, preferring mnemonic initials.
    std::map<std::string, char> letters;
    auto letter_for = [&](const std::string& state) {
        const auto it = letters.find(state);
        if (it != letters.end()) return it->second;
        char c = '?';
        if (state.rfind("MPI_Win", 0) == 0)
            c = state == "MPI_Win_fence" ? 'F' : 'W';
        else if (state.size() > 4)
            c = state[4];  // MPI_[R]ecv, MPI_[S]end, MPI_[B]arrier...
        letters[state] = c;
        return c;
    };

    for (int r = 0; r < nranks; ++r) {
        // Dominant state per cell: the state with the most overlap.
        std::vector<std::map<std::string, double>> cells(
            static_cast<std::size_t>(columns));
        for (const TraceEvent& e : events) {
            if (e.rank != r) continue;
            int c0 = static_cast<int>((e.t0 - t0) / cell);
            int c1 = static_cast<int>((e.t1 - t0) / cell);
            c0 = std::clamp(c0, 0, columns - 1);
            c1 = std::clamp(c1, 0, columns - 1);
            for (int c = c0; c <= c1; ++c) {
                const double lo = std::max(e.t0, t0 + c * cell);
                const double hi = std::min(e.t1, t0 + (c + 1) * cell);
                if (hi > lo) cells[static_cast<std::size_t>(c)][e.state] += hi - lo;
            }
        }
        os << "p" << r << " |";
        for (int c = 0; c < columns; ++c) {
            const auto& m = cells[static_cast<std::size_t>(c)];
            std::string best;
            double best_t = cell * 0.5;  // < half the cell in MPI => compute
            for (const auto& [state, t] : m) {
                if (t > best_t) {
                    best = state;
                    best_t = t;
                }
            }
            os << (best.empty() ? '-' : letter_for(best));
        }
        os << "|\n";
    }
    os << "legend:";
    for (const auto& [state, c] : letters) os << " " << c << "=" << state;
    os << " -=compute\n";
    return os.str();
}

}  // namespace m2p::trace
