#include "trace/mpe.hpp"

#include <algorithm>
#include <sstream>

#include "trace/flight_recorder.hpp"
#include "util/clock.hpp"

namespace m2p::trace {

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

void TraceLog::record(int rank, std::string state, double t0, double t1) {
    std::lock_guard lk(mu_);
    if (!any_) {
        t_min_ = t0;
        t_max_ = t1;
        any_ = true;
    } else {
        t_min_ = std::min(t_min_, t0);
        t_max_ = std::max(t_max_, t1);
    }
    events_.push_back({rank, std::move(state), t0, t1});
}

std::vector<TraceEvent> TraceLog::events() const {
    std::lock_guard lk(mu_);
    return events_;
}

double TraceLog::begin_time() const {
    std::lock_guard lk(mu_);
    return t_min_;
}

double TraceLog::end_time() const {
    std::lock_guard lk(mu_);
    return t_max_;
}

std::size_t TraceLog::size() const {
    std::lock_guard lk(mu_);
    return events_.size();
}

// ---------------------------------------------------------------------------
// MpeLogger
// ---------------------------------------------------------------------------

MpeLogger::MpeLogger(simmpi::World& world)
    : world_(world), start_ticks_(util::ticks()) {}

MpeLogger::~MpeLogger() = default;

const TraceLog& MpeLogger::log() const {
    std::lock_guard lk(mu_);
    log_ = std::make_unique<TraceLog>();
    const FlightRecorder* fr = world_.recorder();
    if (!fr) return *log_;  // tracing disabled: empty log
    const util::TickCalibration cal = util::calibrate_ticks();
    for (const Event& e : fr->snapshot()) {
        // Pt2pt spans are call spans with a folded transfer payload;
        // MPE's state log wants the call interval either way.
        if (e.kind != static_cast<std::uint32_t>(EventKind::MpiCall) &&
            e.kind != static_cast<std::uint32_t>(EventKind::Pt2ptSend) &&
            e.kind != static_cast<std::uint32_t>(EventKind::Pt2ptRecv))
            continue;
        if (e.rank < 0 || !e.name) continue;
        // Signed tick difference: the recorder and this logger share
        // one clock, but a call may straddle construction.
        if (static_cast<std::int64_t>(e.t1 - start_ticks_) < 0) continue;
        log_->record(e.rank, e.name, util::ticks_to_wall(cal, e.t0),
                     util::ticks_to_wall(cal, e.t1));
    }
    return *log_;
}

// ---------------------------------------------------------------------------
// Jumpshot-style analyses
// ---------------------------------------------------------------------------

std::string save_log(const TraceLog& log) {
    std::ostringstream os;
    os << "# mpe-log v1\n";
    char row[160];
    for (const TraceEvent& e : log.events()) {
        std::snprintf(row, sizeof row, "%d %s %.9f %.9f\n", e.rank, e.state.c_str(),
                      e.t0, e.t1);
        os << row;
    }
    return os.str();
}

void load_log(const std::string& text, TraceLog* out) {
    if (!out) throw std::invalid_argument("mpe: null output log");
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        int rank = -1;
        std::string state;
        double t0 = 0, t1 = 0;
        if (!(ls >> rank >> state >> t0 >> t1) || t1 < t0)
            throw std::invalid_argument("mpe: malformed log row: " + line);
        out->record(rank, std::move(state), t0, t1);
    }
}

double statistical_preview(const TraceLog& log, const std::string& state) {
    const double span = log.end_time() - log.begin_time();
    if (span <= 0.0) return 0.0;
    double occupancy = 0.0;
    for (const TraceEvent& e : log.events())
        if (e.state == state) occupancy += e.t1 - e.t0;
    return occupancy / span;
}

std::map<std::string, double> state_totals(const TraceLog& log) {
    std::map<std::string, double> out;
    for (const TraceEvent& e : log.events()) out[e.state] += e.t1 - e.t0;
    return out;
}

std::string render_timelines(const TraceLog& log, int nranks, int columns) {
    std::ostringstream os;
    const double t0 = log.begin_time();
    const double span = std::max(1e-9, log.end_time() - t0);
    const double cell = span / columns;
    const std::vector<TraceEvent> events = log.events();

    // Assign a stable letter per state, preferring mnemonic initials.
    std::map<std::string, char> letters;
    auto letter_for = [&](const std::string& state) {
        const auto it = letters.find(state);
        if (it != letters.end()) return it->second;
        char c = '?';
        if (state.rfind("MPI_Win", 0) == 0)
            c = state == "MPI_Win_fence" ? 'F' : 'W';
        else if (state.size() > 4)
            c = state[4];  // MPI_[R]ecv, MPI_[S]end, MPI_[B]arrier...
        letters[state] = c;
        return c;
    };

    for (int r = 0; r < nranks; ++r) {
        // Dominant state per cell: the state with the most overlap.
        std::vector<std::map<std::string, double>> cells(
            static_cast<std::size_t>(columns));
        for (const TraceEvent& e : events) {
            if (e.rank != r) continue;
            int c0 = static_cast<int>((e.t0 - t0) / cell);
            int c1 = static_cast<int>((e.t1 - t0) / cell);
            c0 = std::clamp(c0, 0, columns - 1);
            c1 = std::clamp(c1, 0, columns - 1);
            for (int c = c0; c <= c1; ++c) {
                const double lo = std::max(e.t0, t0 + c * cell);
                const double hi = std::min(e.t1, t0 + (c + 1) * cell);
                if (hi > lo) cells[static_cast<std::size_t>(c)][e.state] += hi - lo;
            }
        }
        os << "p" << r << " |";
        for (int c = 0; c < columns; ++c) {
            const auto& m = cells[static_cast<std::size_t>(c)];
            std::string best;
            double best_t = cell * 0.5;  // < half the cell in MPI => compute
            for (const auto& [state, t] : m) {
                if (t > best_t) {
                    best = state;
                    best_t = t;
                }
            }
            os << (best.empty() ? '-' : letter_for(best));
        }
        os << "|\n";
    }
    os << "legend:";
    for (const auto& [state, c] : letters) os << " " << c << "=" << state;
    os << " -=compute\n";
    return os.str();
}

}  // namespace m2p::trace
