// MPE-style trace logging plus Jumpshot-3-style analyses.
//
// The paper cross-checks Paradyn's findings against logs produced by
// linking MPICH's MPE libraries and viewing them in Jumpshot-3: the
// "Statistical Preview" (how many processes were executing in a given
// MPI state at any time -- Figs 12, 17) and the "Time Lines" window
// (Figs 13, 16).  Here the MPE library is a set of instrumentation
// snippets on the PMPI entry points (link-time interposition and
// runtime insertion observe the same events), and the two Jumpshot
// views are computed/rendered from the resulting interval log.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "instr/registry.hpp"
#include "simmpi/world.hpp"

namespace m2p::trace {

struct TraceEvent {
    int rank = -1;
    std::string state;  ///< MPI routine name, e.g. "MPI_Recv"
    double t0 = 0.0;
    double t1 = 0.0;
};

/// Thread-safe interval log (one closed interval per MPI call).
class TraceLog {
public:
    void record(int rank, std::string state, double t0, double t1);
    std::vector<TraceEvent> events() const;
    double begin_time() const;
    double end_time() const;
    std::size_t size() const;

private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    double t_min_ = 0.0;
    double t_max_ = 0.0;
    bool any_ = false;
};

/// The "MPE profiling library", rebuilt as a backend of the flight
/// recorder: instead of inserting its own snippets on every PMPI entry
/// point, it reads the MpiCall spans the always-on recorder already
/// captured at the MPI_ trampoline boundary and presents them as the
/// familiar (rank, routine, interval) log.  Construction just stamps
/// a start time; log() materializes the intervals observed since then.
class MpeLogger {
public:
    explicit MpeLogger(simmpi::World& world);
    ~MpeLogger();
    MpeLogger(const MpeLogger&) = delete;
    MpeLogger& operator=(const MpeLogger&) = delete;

    /// Rebuilds the interval log from the recorder's current ring
    /// contents (calls completed since this logger was constructed).
    /// Overwritten ring slots are gone -- the paper's "trace files got
    /// too large" problem shows up here as dropped events instead.
    const TraceLog& log() const;

private:
    simmpi::World& world_;
    std::uint64_t start_ticks_ = 0;
    mutable std::mutex mu_;
    mutable std::unique_ptr<TraceLog> log_;
};

/// Serializes the log to the CLOG-like text format MPE writes to disk
/// (one "rank state t0 t1" line per interval) -- the post-mortem
/// workflow: an application run writes the log, Jumpshot loads it
/// later.  The paper had to shorten runs because "the trace files got
/// too large"; the format makes that size observable here too.
std::string save_log(const TraceLog& log);
/// Parses a saved log into @p out (appending).  Throws
/// std::invalid_argument on malformed rows.
void load_log(const std::string& text, TraceLog* out);

/// Jumpshot-3's Statistical Preview: the time-average number of
/// processes executing in @p state over the log's span.
double statistical_preview(const TraceLog& log, const std::string& state);

/// Per-state totals (seconds in state, summed over processes).
std::map<std::string, double> state_totals(const TraceLog& log);

/// Jumpshot-3's Time Lines window as ASCII art: one row per rank,
/// @p columns time slots; each cell shows the dominant state's letter
/// ('-' = computing outside MPI).  The legend maps letters to states.
std::string render_timelines(const TraceLog& log, int nranks, int columns = 72);

}  // namespace m2p::trace
