#include "trace/exporter.hpp"

#include <cstdio>

namespace m2p::trace {

std::vector<PostmortemNote> notes_from_world(const simmpi::World& world) {
    std::vector<PostmortemNote> notes;
    const std::vector<simmpi::Epitaph> epitaphs = world.epitaphs();
    const int n = static_cast<int>(world.proc_count());
    for (int g = 0; g < n; ++g) {
        const simmpi::ProcData& p = world.proc(g);
        PostmortemNote note;
        note.rank = g;
        if (p.dead.load(std::memory_order_acquire)) {
            note.status = "DEAD";
            for (const simmpi::Epitaph& e : epitaphs) {
                if (e.global_rank != g) continue;
                note.status = std::string("DEAD: ") + simmpi::cause_name(e.cause) +
                              (e.detail.empty() ? "" : " - " + e.detail);
                note.last_call = e.last_call;
                break;
            }
        } else if (p.finished.load(std::memory_order_acquire)) {
            note.status = "finished";
        } else {
            note.status = "running";
            const char* lc = p.last_call.load(std::memory_order_relaxed);
            if (lc) note.last_call = lc;
        }
        notes.push_back(std::move(note));
    }
    return notes;
}

bool Exporter::write_files(const simmpi::World& world, const std::string& dir,
                           const std::string& stem, const std::string& why) const {
    auto write_one = [](const std::string& path, const std::string& body) {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "trace::Exporter: cannot write %s\n", path.c_str());
            return false;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        return true;
    };
    const std::string base = dir.empty() ? stem : dir + "/" + stem;
    const bool ok_json = write_one(base + ".trace.json", chrome_trace_json());
    const bool ok_txt = write_one(base + ".postmortem.txt", postmortem(world, why));
    return ok_json && ok_txt;
}

}  // namespace m2p::trace
