// trace::Exporter: world-aware front end over the flight recorder's
// renderers.  Merges the per-thread rings into Chrome trace-event JSON
// (load in chrome://tracing or Perfetto) and the plain-text postmortem
// dump, correlating dead ranks with the World's epitaph table, and can
// write both next to each other for CI artifact upload.
#pragma once

#include <string>
#include <vector>

#include "simmpi/world.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::trace {

/// One PostmortemNote per process in @p world: status from the proc
/// table, last-call record from the epitaph of a dead rank.
std::vector<PostmortemNote> notes_from_world(const simmpi::World& world);

class Exporter {
public:
    explicit Exporter(const FlightRecorder& fr) : fr_(fr) {}

    std::string chrome_trace_json() const { return render_chrome_json(fr_); }

    std::string postmortem(const simmpi::World& world, const std::string& why) const {
        return render_postmortem(fr_, notes_from_world(world), why);
    }

    /// Writes <dir>/<stem>.trace.json and <dir>/<stem>.postmortem.txt.
    /// Returns false (with a note on stderr) if either file fails.
    bool write_files(const simmpi::World& world, const std::string& dir,
                     const std::string& stem, const std::string& why) const;

private:
    const FlightRecorder& fr_;
};

}  // namespace m2p::trace
