#include "trace/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

namespace m2p::trace {

namespace {

std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return std::max<std::size_t>(p, 2);
}

std::atomic<std::uint64_t> g_recorder_uid{1};

/// Per-thread ring cache: one entry per recorder this thread has
/// recorded into.  Keyed by process-unique recorder uid, so a stale
/// entry for a destroyed recorder can never match a live one.
struct RingRef {
    std::uint64_t uid;
    EventRing* ring;
};
thread_local std::vector<RingRef> t_rings;

Event decode(const std::atomic<std::uint64_t>* w) {
    Event e;
    e.t0 = w[0].load(std::memory_order_relaxed);
    e.t1 = w[1].load(std::memory_order_relaxed);
    e.name = reinterpret_cast<const char*>(
        static_cast<std::uintptr_t>(w[2].load(std::memory_order_relaxed)));
    e.a = static_cast<std::int64_t>(w[3].load(std::memory_order_relaxed));
    e.b = static_cast<std::int64_t>(w[4].load(std::memory_order_relaxed));
    e.c = static_cast<std::int64_t>(w[5].load(std::memory_order_relaxed));
    const std::uint64_t rk = w[6].load(std::memory_order_relaxed);
    e.rank = static_cast<std::int32_t>(rk & 0xffffffffu);
    e.kind = static_cast<std::uint32_t>(rk >> 32);
    return e;
}

}  // namespace

const char* kind_name(EventKind k) {
    switch (k) {
        case EventKind::MpiCall: return "MpiCall";
        case EventKind::Pt2ptSend: return "Pt2ptSend";
        case EventKind::Pt2ptRecv: return "Pt2ptRecv";
        case EventKind::CollBegin: return "CollBegin";
        case EventKind::CollEnd: return "CollEnd";
        case EventKind::RmaEpoch: return "RmaEpoch";
        case EventKind::RmaBatch: return "RmaBatch";
        case EventKind::Io: return "Io";
        case EventKind::Spawn: return "Spawn";
        case EventKind::Fault: return "Fault";
        case EventKind::Death: return "Death";
        case EventKind::Poison: return "Poison";
        case EventKind::ExperimentStart: return "ExperimentStart";
        case EventKind::ExperimentStop: return "ExperimentStop";
        case EventKind::ExperimentTruncated: return "ExperimentTruncated";
        case EventKind::ResourceRetired: return "ResourceRetired";
        case EventKind::RunOutcome: return "RunOutcome";
        case EventKind::Revoke: return "Revoke";
        case EventKind::Shrink: return "Shrink";
        case EventKind::Agree: return "Agree";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

EventRing::EventRing(std::size_t capacity, int thread_index)
    : cap_(round_up_pow2(capacity)),
      mask_(cap_ - 1),
      thread_index_(thread_index),
      words_(new std::atomic<std::uint64_t>[cap_ * kWords]()) {}

void EventRing::snapshot(std::vector<Event>& out) const {
    const std::uint64_t h1 = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h1, cap_);
    const std::uint64_t first = h1 - n;
    std::vector<Event> tmp;
    tmp.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t seq = first; seq < h1; ++seq)
        tmp.push_back(decode(&words_[(seq & mask_) * kWords]));
    // Any slot whose sequence fell behind the post-copy head by a full
    // ring may have been recycled while we copied -- discard it.  The
    // counters stay exact: such events count as dropped at the final
    // head, not kept.
    const std::uint64_t h2 = head_.load(std::memory_order_acquire);
    const std::uint64_t safe_first = h2 > cap_ ? h2 - cap_ : 0;
    for (std::uint64_t seq = first; seq < h1; ++seq)
        if (seq >= safe_first) out.push_back(tmp[static_cast<std::size_t>(seq - first)]);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options opts)
    : uid_(g_recorder_uid.fetch_add(1, std::memory_order_relaxed)),
      cap_(round_up_pow2(opts.ring_capacity)) {}

FlightRecorder::~FlightRecorder() = default;

EventRing& FlightRecorder::thread_ring() noexcept {
    for (const RingRef& r : t_rings)
        if (r.uid == uid_) return *r.ring;
    std::lock_guard lk(mu_);
    rings_.push_back(std::make_unique<EventRing>(cap_, static_cast<int>(rings_.size())));
    EventRing* ring = rings_.back().get();
    t_rings.push_back({uid_, ring});
    return *ring;
}

void FlightRecorder::record(EventKind kind, int rank, const char* name, std::int64_t a,
                            std::int64_t b, std::int64_t c) noexcept {
    const std::uint64_t t = util::ticks();
    record_span(kind, rank, name, t, t, a, b, c);
}

void FlightRecorder::record_span(EventKind kind, int rank, const char* name,
                                 std::uint64_t t0, std::uint64_t t1, std::int64_t a,
                                 std::int64_t b, std::int64_t c) noexcept {
    Event e;
    e.t0 = t0;
    e.t1 = t1;
    e.name = name;
    e.a = a;
    e.b = b;
    e.c = c;
    e.rank = rank;
    e.kind = static_cast<std::uint32_t>(kind);
    thread_ring().push(e);
}

void FlightRecorder::on_boundary_call(const instr::FunctionInfo& info, int rank,
                                      std::uint64_t t0, std::uint64_t t1) noexcept {
    // A data plane may have folded a payload into this call (pt2pt
    // bytes/tag/peer); if so the span keeps the payload's kind and we
    // skip the separate instant event entirely -- one ring slot and two
    // timestamps per traced call, not two slots and three.
    const instr::BoundaryPayload p = instr::take_boundary_payload();
    if (p.kind)
        record_span(static_cast<EventKind>(p.kind), rank, info.name.c_str(), t0,
                    t1, p.a, p.b, p.c);
    else
        record_span(EventKind::MpiCall, rank, info.name.c_str(), t0, t1);
}

FlightRecorder::Stats FlightRecorder::stats() const {
    std::lock_guard lk(mu_);
    Stats s;
    s.rings = static_cast<int>(rings_.size());
    for (const auto& r : rings_) {
        s.written += r->written();
        s.kept += r->kept();
        s.dropped += r->dropped();
    }
    return s;
}

std::vector<Event> FlightRecorder::snapshot() const {
    std::vector<Event> out;
    {
        std::lock_guard lk(mu_);
        for (const auto& r : rings_) r->snapshot(out);
    }
    std::stable_sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
        return static_cast<std::int64_t>(x.t1 - y.t1) < 0;
    });
    return out;
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

namespace {

void format_event(std::ostringstream& os, const util::TickCalibration& cal,
                  const Event& e) {
    char line[256];
    std::snprintf(line, sizeof line, "    t=%.6fs %-12s %s a=%" PRId64 " b=%" PRId64
                                     " c=%" PRId64 "\n",
                  util::ticks_to_wall(cal, e.t1), kind_name(static_cast<EventKind>(e.kind)),
                  e.name ? e.name : "-", e.a, e.b, e.c);
    os << line;
}

}  // namespace

std::string render_postmortem(const FlightRecorder& fr,
                              const std::vector<PostmortemNote>& notes,
                              const std::string& why, std::size_t tail_events) {
    const util::TickCalibration cal = util::calibrate_ticks();
    const FlightRecorder::Stats st = fr.stats();
    const std::vector<Event> events = fr.snapshot();

    std::map<int, std::vector<const Event*>> by_rank;
    for (const Event& e : events) by_rank[e.rank].push_back(&e);

    std::ostringstream os;
    os << "=== flight-recorder postmortem: " << why << " ===\n";
    os << "rings=" << st.rings << " events_written=" << st.written
       << " events_kept=" << st.kept << " events_dropped=" << st.dropped << "\n";
    auto dump_tail = [&](const std::vector<const Event*>& evs) {
        const std::size_t n = std::min(tail_events, evs.size());
        for (std::size_t i = evs.size() - n; i < evs.size(); ++i)
            format_event(os, cal, *evs[i]);
    };
    for (const PostmortemNote& note : notes) {
        os << "rank " << note.rank << " [" << note.status << "]";
        if (!note.last_call.empty()) os << " epitaph last call: " << note.last_call;
        const auto it = by_rank.find(note.rank);
        if (it == by_rank.end() || it->second.empty()) {
            os << " (no recorded events)\n";
            continue;
        }
        // The last call-boundary event is the one that must line up
        // with the epitaph's last-call record for a dead rank.
        // Pt2pt spans are MpiCall spans with a folded payload, so they
        // count as call-boundary events too.
        const Event* last_call = nullptr;
        for (const Event* e : it->second)
            if (e->kind == static_cast<std::uint32_t>(EventKind::MpiCall) ||
                e->kind == static_cast<std::uint32_t>(EventKind::Pt2ptSend) ||
                e->kind == static_cast<std::uint32_t>(EventKind::Pt2ptRecv) ||
                e->kind == static_cast<std::uint32_t>(EventKind::Fault))
                last_call = e;
        if (last_call && last_call->name) os << "; last recorded call: " << last_call->name;
        os << "\n";
        dump_tail(it->second);
    }
    const auto tool = by_rank.find(-1);
    if (tool != by_rank.end() && !tool->second.empty()) {
        os << "tool-side events:\n";
        dump_tail(tool->second);
    }
    return os.str();
}

std::string render_chrome_json(const FlightRecorder& fr) {
    const util::TickCalibration cal = util::calibrate_ticks();
    const std::vector<Event> events = fr.snapshot();
    std::string out = "{\"traceEvents\":[";
    char buf[512];
    bool first = true;
    for (const Event& e : events) {
        const double t0_us = util::ticks_to_wall(cal, e.t0) * 1e6;
        const double t1_us = util::ticks_to_wall(cal, e.t1) * 1e6;
        // Tool-side events (rank -1) get their own track.
        const int tid = e.rank >= 0 ? e.rank : 999;
        const char* name = e.name ? e.name : kind_name(static_cast<EventKind>(e.kind));
        const bool span = e.t1 != e.t0;
        if (!first) out += ',';
        first = false;
        if (span) {
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":0,\"tid\":%d,\"args\":{\"kind\":\"%s\",\"a\":%" PRId64
                          ",\"b\":%" PRId64 ",\"c\":%" PRId64 "}}",
                          name, t0_us, t1_us - t0_us, tid,
                          kind_name(static_cast<EventKind>(e.kind)), e.a, e.b, e.c);
        } else {
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                          "\"pid\":0,\"tid\":%d,\"args\":{\"kind\":\"%s\",\"a\":%" PRId64
                          ",\"b\":%" PRId64 ",\"c\":%" PRId64 "}}",
                          name, t1_us, tid, kind_name(static_cast<EventKind>(e.kind)),
                          e.a, e.b, e.c);
        }
        out += buf;
    }
    out += "]}\n";
    return out;
}

}  // namespace m2p::trace
