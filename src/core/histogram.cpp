#include "core/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <thread>

namespace m2p::core {

namespace {

/// Stripe buffers flush into the folding bins at this size; bounds
/// per-histogram buffered memory to nstripes * kFlushAt samples.
constexpr std::size_t kFlushAt = 64;

/// Stable per-thread stripe key.  simmpi ranks are OS threads, so this
/// is per-rank striping: concurrent ranks hash to distinct stripes.
std::size_t thread_stripe_key() {
    static thread_local const std::size_t key =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return key;
}

}  // namespace

Histogram::Histogram(double origin, double base_bin_width, std::size_t bins,
                     std::size_t stripes)
    : origin_(origin),
      capacity_(bins),
      width_(base_bin_width),
      bins_(bins, 0.0),
      stripes_(new Stripe[std::max<std::size_t>(1, stripes)]),
      nstripes_(std::max<std::size_t>(1, stripes)) {
    if (base_bin_width <= 0.0 || bins < 2)
        throw std::invalid_argument("Histogram: bad bin configuration");
}

void Histogram::add(double t, double v) {
    Stripe& s = stripes_[thread_stripe_key() % nstripes_];
    std::vector<std::pair<double, double>> full;
    {
        std::lock_guard lk(s.mu);
        s.buf.emplace_back(t, v);
        if (s.buf.size() < kFlushAt) return;
        full.swap(s.buf);
    }
    // Flush outside the stripe lock; stripe locks and mu_ are never
    // held together, so readers draining stripes cannot deadlock.
    std::lock_guard lk(mu_);
    for (const auto& [tt, vv] : full) add_locked(tt, vv);
}

void Histogram::add_locked(double t, double v) const {
    double rel = t - origin_;
    if (rel < 0.0) rel = 0.0;
    while (rel >= width_ * static_cast<double>(capacity_)) fold_locked();
    const auto idx = static_cast<std::size_t>(rel / width_);
    bins_[idx] += v;
    hi_ = std::max(hi_, idx + 1);
    total_ += v;
}

void Histogram::fold_locked() const {
    // Combine neighbouring bins; the new bin represents twice the time.
    for (std::size_t i = 0; i < capacity_ / 2; ++i)
        bins_[i] = bins_[2 * i] + (2 * i + 1 < capacity_ ? bins_[2 * i + 1] : 0.0);
    std::fill(bins_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2), bins_.end(),
              0.0);
    width_ *= 2.0;
    hi_ = (hi_ + 1) / 2;
    ++folds_;
}

void Histogram::drain_stripes() const {
    for (std::size_t i = 0; i < nstripes_; ++i) {
        Stripe& s = stripes_[i];
        std::vector<std::pair<double, double>> pending;
        {
            std::lock_guard lk(s.mu);
            if (s.buf.empty()) continue;
            pending.swap(s.buf);
        }
        std::lock_guard lk(mu_);
        for (const auto& [t, v] : pending) add_locked(t, v);
    }
}

double Histogram::bin_width() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    return width_;
}

std::size_t Histogram::active_bins() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    return hi_;
}

std::vector<double> Histogram::values() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    return {bins_.begin(), bins_.begin() + static_cast<std::ptrdiff_t>(hi_)};
}

double Histogram::total() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    return total_;
}

double Histogram::rate(bool exclude_endpoints) const {
    drain_stripes();
    std::lock_guard lk(mu_);
    if (hi_ == 0) return 0.0;
    std::size_t lo = 0;
    std::size_t hi = hi_;
    if (exclude_endpoints && hi_ > 2) {
        lo = 1;
        hi = hi_ - 1;
    }
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += bins_[i];
    const double covered = width_ * static_cast<double>(hi - lo);
    return covered > 0.0 ? sum / covered : 0.0;
}

int Histogram::folds() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    return folds_;
}

std::string Histogram::to_csv() const {
    drain_stripes();
    std::lock_guard lk(mu_);
    std::string out = "bin_start_seconds,value\n";
    char row[64];
    for (std::size_t i = 0; i < hi_; ++i) {
        std::snprintf(row, sizeof row, "%.6f,%.9g\n",
                      width_ * static_cast<double>(i), bins_[i]);
        out += row;
    }
    return out;
}

}  // namespace m2p::core
