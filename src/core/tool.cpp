#include "core/tool.hpp"

#include <algorithm>
#include <chrono>

#include "core/metrics.hpp"
#include "mdl/default_metrics.hpp"
#include "simmpi/launcher.hpp"
#include "util/clock.hpp"

namespace m2p::core {

namespace {

/// MDL runtime services implemented against the tool's registries.
class ToolServices final : public mdl::Services {
public:
    explicit ToolServices(PerfTool& tool) : tool_(tool) {}

    std::int64_t type_size(std::int64_t datatype_handle) const override {
        return simmpi::datatype_size(static_cast<simmpi::Datatype>(datatype_handle));
    }
    std::int64_t window_unique_id(std::int64_t win_handle) const override {
        return tool_.window_uid(static_cast<simmpi::Win>(win_handle));
    }
    std::int64_t comm_unique_id(std::int64_t comm_handle) const override {
        // simmpi communicator handles are never reused, so the handle
        // itself is a stable identity for the tool.
        return comm_handle;
    }

private:
    PerfTool& tool_;
};

}  // namespace

PerfTool::PerfTool(simmpi::World& world, Options opts)  // NOLINT
    : world_(world), opts_(std::move(opts)), pvar_scope_(world.pvars()) {
    mdl_ = mdl::parse(opts_.mdl_source.empty() ? mdl::default_metrics_source()
                                               : opts_.mdl_source);
    // PC lifecycle tallies as pvars.  The scope detaches them in the
    // destructor, which serializes against any in-flight snapshot, so
    // a sampler never polls a dead tool.
    pvar_scope_.add_counter(
        "pc.experiments.started",
        [this] { return pc_counters_.started.load(std::memory_order_relaxed); },
        "experiments", "PC experiments launched");
    pvar_scope_.add_counter(
        "pc.experiments.completed",
        [this] { return pc_counters_.completed.load(std::memory_order_relaxed); },
        "experiments", "PC experiments measured to completion");
    pvar_scope_.add_counter(
        "pc.experiments.tested_true",
        [this] { return pc_counters_.tested_true.load(std::memory_order_relaxed); },
        "experiments", "experiments whose hypothesis held");
    pvar_scope_.add_counter(
        "pc.experiments.truncated",
        [this] { return pc_counters_.truncated.load(std::memory_order_relaxed); },
        "experiments", "experiments truncated by a rank death");
    pvar_scope_.add_counter(
        "pc.experiments.post_loss",
        [this] { return pc_counters_.post_loss.load(std::memory_order_relaxed); },
        "experiments", "clean experiments completed after a loss");
    services_ = std::make_shared<ToolServices>(*this);
    metrics_ = std::make_unique<MetricManager>(*this, opts_.bin_width, opts_.bins);
    frontend_ = std::thread([this] { frontend_loop(); });
    install_discovery();
    scan_code_resources();
    if (opts_.spawn_method == SpawnMethod::Intercept)
        world_.set_profiling_layer(this);
    world_.set_death_observer(
        [this](const simmpi::Epitaph& e) { on_rank_death(e); });
}

PerfTool::~PerfTool() {
    // Unhook before tearing anything down: a rank dying during
    // destruction must not post into a stopping frontend.
    world_.set_death_observer(nullptr);
    if (world_.profiling_layer() == this) world_.set_profiling_layer(nullptr);
    metrics_.reset();  // stop the sampler before tearing down state
    {
        std::lock_guard lk(q_mu_);
        stop_ = true;
    }
    q_cv_.notify_all();
    if (frontend_.joinable()) frontend_.join();
    // Detach pc.experiments.* while `this` is still fully alive; the
    // removal serializes against any snapshot pass mid-poll.
    pvar_scope_.reset();
}

double PerfTool::tunable(const std::string& name, double fallback) const {
    const auto it = mdl_.tunables.find(name);
    return it == mdl_.tunables.end() ? fallback : it->second;
}

// ---------------------------------------------------------------------------
// Daemon -> frontend report channel
// ---------------------------------------------------------------------------

void PerfTool::post(Report r) {
    {
        std::lock_guard lk(mu_);
        for (Daemon& d : daemons_)
            if (d.node == r.daemon_node) ++d.reports_sent;
    }
    {
        std::lock_guard lk(q_mu_);
        queue_.push_back(std::move(r));
    }
    q_cv_.notify_all();
}

void PerfTool::frontend_loop() {
    for (;;) {
        Report r;
        {
            std::unique_lock lk(q_mu_);
            q_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_) return;
                continue;
            }
            r = std::move(queue_.front());
            queue_.pop_front();
            applying_ = true;
        }
        switch (r.kind) {
            case Report::Kind::NewResource:
                if (!hierarchy_.exists(r.path)) hierarchy_.add(r.path, r.rkind);
                if (!r.display.empty()) hierarchy_.set_display(r.path, r.display);
                // A rank can die while its discovery reports are still in
                // flight, putting the Retire ahead of the NewResource in
                // the queue; honour the stashed retire now.
                if (pending_retires_.erase(r.path) != 0) hierarchy_.retire(r.path);
                break;
            case Report::Kind::NameUpdate:
                if (hierarchy_.exists(r.path)) hierarchy_.set_display(r.path, r.display);
                break;
            case Report::Kind::Retire:
                if (hierarchy_.exists(r.path)) hierarchy_.retire(r.path);
                else pending_retires_.insert(r.path);
                break;
        }
        {
            std::lock_guard lk(q_mu_);
            applying_ = false;
        }
        q_cv_.notify_all();
    }
}

void PerfTool::flush() {
    std::unique_lock lk(q_mu_);
    q_cv_.wait(lk, [&] { return queue_.empty() && !applying_; });
}

// ---------------------------------------------------------------------------
// Process management
// ---------------------------------------------------------------------------

void PerfTool::on_launch(const std::vector<int>& global_ranks) {
    for (int g : global_ranks) add_process(g);
    scan_code_resources();
}

void PerfTool::add_process(int global_rank) {
    std::string node;
    {
        std::lock_guard lk(mu_);
        if (known_procs_.count(global_rank)) return;
        known_procs_.insert(global_rank);
        node = world_.proc(global_rank).node;
        rank_node_[global_rank] = node;
        auto it = std::find_if(daemons_.begin(), daemons_.end(),
                               [&](const Daemon& d) { return d.node == node; });
        if (it == daemons_.end()) {
            daemons_.push_back(Daemon{node, {global_rank}, 0});
        } else {
            it->ranks.push_back(global_rank);
        }
    }
    const std::string pname = "p" + std::to_string(global_rank);
    post({Report::Kind::NewResource, "/Machine/" + node, ResourceKind::Machine, "",
          node});
    post({Report::Kind::NewResource, "/Machine/" + node + "/" + pname,
          ResourceKind::Process, "", node});
    post({Report::Kind::NewResource, "/Process/" + pname, ResourceKind::Process,
          world_.proc(global_rank).program, node});
}

std::string PerfTool::process_path(int global_rank) const {
    return "/Process/p" + std::to_string(global_rank);
}

void PerfTool::on_rank_death(const simmpi::Epitaph& e) {
    // Runs on whatever thread recorded the death (the dying rank or
    // the join watchdog); it only posts reports, the frontend thread
    // applies them.  The dead process is retired, not removed: the UI
    // greys it out, and children("/Process", false) -- what the PC's
    // process refinement uses -- excludes it from future experiments.
    std::string node;
    {
        std::lock_guard lk(mu_);
        const auto it = rank_node_.find(e.global_rank);
        if (it != rank_node_.end()) {
            node = it->second;
        } else {
            // Death beat discovery: the daemon never registered this
            // rank, but the world's process table has it from launch.
            // Post the retires anyway -- the frontend stashes them if
            // the NewResource reports have not landed yet.
            node = world_.proc(e.global_rank).node;
        }
    }
    const std::string pname = "p" + std::to_string(e.global_rank);
    post({Report::Kind::Retire, "/Process/" + pname, ResourceKind::Process, "",
          node});
    post({Report::Kind::Retire, "/Machine/" + node + "/" + pname,
          ResourceKind::Process, "", node});
    world_.trace_event(trace::EventKind::ResourceRetired, -1, "process",
                       e.global_rank);
}

std::vector<Daemon> PerfTool::daemons() const {
    std::lock_guard lk(mu_);
    return daemons_;
}

int PerfTool::known_process_count() const {
    std::lock_guard lk(mu_);
    return static_cast<int>(known_procs_.size());
}

std::vector<int> PerfTool::ranks_for_focus(const Focus& f) const {
    std::lock_guard lk(mu_);
    std::vector<int> out;
    const bool have_deaths = world_.death_epoch() != 0;
    for (int g : known_procs_) {
        // Dead ranks no longer contribute samples; counting them would
        // deflate per-process normalization for the survivors.
        if (have_deaths && world_.rank_dead(g)) continue;
        const std::string pname = "p" + std::to_string(g);
        if (f.process != "/Process" && f.process != "/Process/" + pname) continue;
        if (f.machine != "/Machine") {
            const std::string& node = rank_node_.at(g);
            const std::string base = "/Machine/" + node;
            if (f.machine != base && f.machine != base + "/" + pname) continue;
        }
        out.push_back(g);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Code resources
// ---------------------------------------------------------------------------

bool PerfTool::function_visible(const instr::FunctionInfo& fi) const {
    // LAM builds two library copies, so users see the MPI_* strong
    // symbols; MPICH's default weak-symbol build resolves them to the
    // PMPI_* definitions (paper section 4.1.1).
    if (fi.module != "libmpi") return true;
    const bool is_pmpi = fi.name.rfind("PMPI_", 0) == 0;
    return world_.flavor() == simmpi::Flavor::Lam ? !is_pmpi : is_pmpi;
}

void PerfTool::scan_code_resources() {
    instr::Registry& reg = world_.registry();
    const std::size_t n = reg.function_count();
    for (instr::FuncId f = 0; f < n; ++f) {
        const instr::FunctionInfo& fi = reg.info(f);
        if (!function_visible(fi)) continue;
        const std::string mod_path = "/Code/" + fi.module;
        post({Report::Kind::NewResource, mod_path, ResourceKind::Module, "", ""});
        post({Report::Kind::NewResource, mod_path + "/" + fi.name,
              ResourceKind::Function, "", ""});
    }
}

// ---------------------------------------------------------------------------
// Discovery instrumentation (windows, communicators, names, spawn)
// ---------------------------------------------------------------------------

void PerfTool::install_discovery() {
    instr::Registry& reg = world_.registry();
    const simmpi::FuncIds& f = world_.fids();

    auto node_of = [this](int rank) {
        std::lock_guard lk(mu_);
        const auto it = rank_node_.find(rank);
        return it == rank_node_.end() ? std::string() : it->second;
    };
    (void)node_of;

    // Window discovery: instrument the return of MPI_Win_create to
    // read the new handle (paper 4.2.1).
    reg.insert(f.PMPI_Win_create, instr::Where::Return,
               [this](const instr::CallContext& ctx) {
                   if (ctx.args.size() > 5 && ctx.args[5] >= 0)
                       discover_window(ctx.args[5]);
               });
    // Window retirement at MPI_Win_free entry.
    reg.insert(f.PMPI_Win_free, instr::Where::Entry,
               [this](const instr::CallContext& ctx) {
                   if (!ctx.args.empty()) retire_window(ctx.args[0]);
               });
    // Object naming: update reports travel daemon -> frontend and
    // change the resource display (paper 4.2.3).
    reg.insert(f.PMPI_Comm_set_name, instr::Where::Entry,
               [this](const instr::CallContext& ctx) {
                   if (ctx.args.empty() || ctx.str_args.empty()) return;
                   discover_comm(ctx.args[0], -1);
                   post({Report::Kind::NameUpdate,
                         "/SyncObject/Message/comm_" + std::to_string(ctx.args[0]),
                         ResourceKind::Communicator, std::string(ctx.str_args[0]), ""});
               });
    reg.insert(f.PMPI_Win_set_name, instr::Where::Entry,
               [this](const instr::CallContext& ctx) {
                   if (ctx.args.empty() || ctx.str_args.empty()) return;
                   const std::int64_t uid = window_uid(
                       static_cast<simmpi::Win>(ctx.args[0]));
                   if (uid < 0) return;
                   post({Report::Kind::NameUpdate, window_path(uid),
                         ResourceKind::Window, std::string(ctx.str_args[0]), ""});
                   // LAM stores window names in the window's shadow
                   // communicator, so named windows also surface under
                   // /SyncObject/Message (paper Fig 23).
                   if (world_.flavor() == simmpi::Flavor::Lam) {
                       const simmpi::Comm shadow =
                           world_.win(static_cast<simmpi::Win>(ctx.args[0])).shadow_comm;
                       if (shadow != simmpi::MPI_COMM_NULL) {
                           discover_comm(shadow, -1);
                           post({Report::Kind::NameUpdate,
                                 "/SyncObject/Message/comm_" + std::to_string(shadow),
                                 ResourceKind::Communicator,
                                 std::string(ctx.str_args[0]), ""});
                       }
                   }
               });

    // File discovery (MPI-I/O extension): instrument MPI_File_open's
    // return for the new handle and the filename; retire at close.
    reg.insert(f.PMPI_File_open, instr::Where::Return,
               [this](const instr::CallContext& ctx) {
                   if (ctx.args.size() < 5 || ctx.args[4] < 0) return;
                   const std::string path =
                       "/SyncObject/File/file_" + std::to_string(ctx.args[4]);
                   const std::string display =
                       ctx.str_args.empty() ? "" : std::string(ctx.str_args[0]);
                   post({Report::Kind::NewResource, path, ResourceKind::Category,
                         display, ""});
               });
    reg.insert(f.PMPI_File_close, instr::Where::Entry,
               [this](const instr::CallContext& ctx) {
                   if (ctx.args.empty() || ctx.args[0] < 0) return;
                   post({Report::Kind::Retire,
                         "/SyncObject/File/file_" + std::to_string(ctx.args[0]),
                         ResourceKind::Category, "", ""});
               });

    // Communicator/tag discovery on message-passing entry points.
    struct CommArg {
        instr::FuncId fid;
        int comm_at;
        int tag_at;  ///< -1: no tag
    };
    const CommArg comm_args[] = {
        {f.PMPI_Send, 5, 4},   {f.PMPI_Recv, 5, 4},    {f.PMPI_Isend, 5, 4},
        {f.PMPI_Irecv, 5, 4},  {f.PMPI_Sendrecv, 10, 4}, {f.PMPI_Barrier, 0, -1},
        {f.PMPI_Bcast, 4, -1}, {f.PMPI_Reduce, 6, -1},  {f.PMPI_Allreduce, 5, -1},
    };
    for (const CommArg& ca : comm_args) {
        reg.insert(ca.fid, instr::Where::Entry,
                   [this, ca](const instr::CallContext& ctx) {
                       if (static_cast<std::size_t>(ca.comm_at) >= ctx.args.size())
                           return;
                       std::int64_t tag = -1;
                       if (ca.tag_at >= 0 &&
                           static_cast<std::size_t>(ca.tag_at) < ctx.args.size())
                           tag = ctx.args[static_cast<std::size_t>(ca.tag_at)];
                       discover_comm(ctx.args[static_cast<std::size_t>(ca.comm_at)], tag);
                   });
    }

    // Attach-method spawn discovery: at MPI_Comm_spawn return, ask the
    // MPI Debugging Interface for new processes (paper 4.2.2).  When
    // the implementation does not support MPIR -- as LAM and MPICH2
    // did not at the time -- the attach fails and is counted.
    if (opts_.spawn_method == SpawnMethod::Attach) {
        reg.insert(f.PMPI_Comm_spawn, instr::Where::Return,
                   [this](const instr::CallContext&) { attach_new_processes(); });
    }
}

void PerfTool::discover_window(std::int64_t handle) {
    std::string path;
    {
        std::lock_guard lk(mu_);
        const auto h = static_cast<simmpi::Win>(handle);
        if (win_uid_by_handle_.count(h)) return;
        // The MPI implementation may reuse a window identifier after a
        // previous window was freed, so the resource id is N-M where N
        // is the implementation id and M makes the pair unique.
        const int n = static_cast<int>(world_.win_impl_id(handle));
        if (n < 0) return;
        const int m = win_next_m_[n]++;
        const std::int64_t uid = next_win_uid_++;
        path = "/SyncObject/Window/" + std::to_string(n) + "-" + std::to_string(m);
        win_uid_by_handle_[h] = uid;
        win_path_by_uid_[uid] = path;
    }
    post({Report::Kind::NewResource, path, ResourceKind::Window, "", ""});
}

void PerfTool::retire_window(std::int64_t handle) {
    std::string path;
    {
        std::lock_guard lk(mu_);
        const auto it = win_uid_by_handle_.find(static_cast<simmpi::Win>(handle));
        if (it == win_uid_by_handle_.end()) return;
        path = win_path_by_uid_[it->second];
        // Keep the handle->uid mapping: other ranks' create/free
        // instrumentation for the same window may still fire, and
        // simmpi never reuses handle values (only implementation ids,
        // which the N-M scheme already disambiguates).
    }
    post({Report::Kind::Retire, path, ResourceKind::Window, "", ""});
    world_.trace_event(trace::EventKind::ResourceRetired, -1, "window", handle);
}

void PerfTool::discover_comm(std::int64_t handle, std::int64_t tag) {
    if (handle < 0) return;
    // Reserved high tags are MPI-internal traffic; they are not user
    // synchronization objects.
    const bool user_tag = tag >= 0 && tag < (1 << 28);
    bool new_comm = false;
    bool new_tag = false;
    {
        std::lock_guard lk(mu_);
        const auto c = static_cast<simmpi::Comm>(handle);
        new_comm = known_comms_.insert(c).second;
        if (user_tag) new_tag = known_tags_.insert({c, static_cast<int>(tag)}).second;
    }
    const std::string cpath = "/SyncObject/Message/comm_" + std::to_string(handle);
    if (new_comm) {
        std::string display = world_.object_name_of_comm(static_cast<simmpi::Comm>(handle));
        post({Report::Kind::NewResource, cpath, ResourceKind::Communicator, display, ""});
    }
    if (new_tag)
        post({Report::Kind::NewResource, cpath + "/tag_" + std::to_string(tag),
              ResourceKind::MessageTag, "", ""});
}

// ---------------------------------------------------------------------------
// Window registry queries
// ---------------------------------------------------------------------------

std::int64_t PerfTool::window_uid(simmpi::Win handle) const {
    std::lock_guard lk(mu_);
    const auto it = win_uid_by_handle_.find(handle);
    return it == win_uid_by_handle_.end() ? -1 : it->second;
}

std::string PerfTool::window_path(std::int64_t uid) const {
    std::lock_guard lk(mu_);
    const auto it = win_path_by_uid_.find(uid);
    return it == win_path_by_uid_.end() ? std::string() : it->second;
}

std::int64_t PerfTool::window_uid_of_path(const std::string& path) const {
    std::lock_guard lk(mu_);
    for (const auto& [uid, p] : win_path_by_uid_)
        if (p == path) return uid;
    return -1;
}

simmpi::RmaCounterSnapshot PerfTool::window_rma_counters(simmpi::Win handle) const {
    return world_.win_rma_counters(handle);
}

// ---------------------------------------------------------------------------
// Spawn support
// ---------------------------------------------------------------------------

void PerfTool::wrap_init(simmpi::Rank& rank) {
    // The intercept method's MPI_Init wrapper gathers the information
    // needed to start Paradyn daemons for future spawns (paper 4.2.2).
    std::lock_guard lk(mu_);
    (void)rank;
}

int PerfTool::wrap_spawn(simmpi::Rank& rank, simmpi::SpawnArgs args,
                         simmpi::Comm* intercomm, std::vector<int>* errcodes) {
    // Intercept method: replace the user's command with "paradynd",
    // which starts a daemon stub per child that registers the process
    // with the front end and then runs the real program.  This is
    // simple but inflates the measured spawn cost and starts one
    // daemon per process (the drawbacks the paper calls out).
    const std::string wrapped = "paradynd!" + args.command;
    if (!world_.has_program(wrapped)) {
        simmpi::ProgramFn orig = world_.find_program(args.command);
        if (orig) {
            const double cost = opts_.daemon_start_cost;
            world_.register_program(
                wrapped, [this, orig](simmpi::Rank& r,
                                      const std::vector<std::string>& argv) {
                    {
                        std::lock_guard lk(mu_);
                        ++spawn_stats_.daemons_started;
                    }
                    add_process(r.global_rank());
                    orig(r, argv);
                });
            (void)cost;
        }
    }
    const double t0 = util::wall_seconds();
    const std::string cmd = world_.has_program(wrapped) ? wrapped : args.command;
    // The daemon startups sit on the spawn's critical path: the MPI
    // implementation starts paradynd, which only then starts the real
    // MPI process -- this is precisely why the intercept method
    // "inflates the measured values" of spawn operations (paper 4.2.2).
    int my_rank_in_comm = -1;
    rank.MPI_Comm_rank(args.comm, &my_rank_in_comm);
    if (my_rank_in_comm == args.root)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.daemon_start_cost * args.maxprocs));
    const int rc = rank.PMPI_Comm_spawn(cmd, args.argv, args.maxprocs, args.info,
                                        args.root, args.comm, intercomm, errcodes);
    {
        std::lock_guard lk(mu_);
        ++spawn_stats_.spawns_seen;
        spawn_stats_.intercept_overhead_seconds += util::wall_seconds() - t0;
    }
    return rc;
}

void PerfTool::attach_new_processes() {
    const std::vector<simmpi::MpirProcDesc> table = world_.mpir_proctable();
    {
        std::lock_guard lk(mu_);
        ++spawn_stats_.spawns_seen;
        if (table.empty()) {
            // Neither LAM nor MPICH2 supported the dynamic-process
            // parts of the MPI Debugging Interface at the time: the
            // attach method cannot find the children (paper 4.2.2).
            ++spawn_stats_.attach_failures;
            return;
        }
    }
    for (const simmpi::MpirProcDesc& d : table) {
        bool known;
        {
            std::lock_guard lk(mu_);
            known = known_procs_.count(d.global_rank) != 0;
        }
        if (!known) {
            add_process(d.global_rank);
            std::lock_guard lk(mu_);
            ++spawn_stats_.processes_attached;
        }
    }
}

// ---------------------------------------------------------------------------
// MDL function sets
// ---------------------------------------------------------------------------

std::vector<instr::FuncId> PerfTool::resolve_funcset(const std::string& set) const {
    instr::Registry& reg = world_.registry();
    auto by_names = [&](std::initializer_list<const char*> names) {
        std::vector<instr::FuncId> out;
        for (const char* n : names) {
            const instr::FuncId f = reg.find(n);
            if (f != instr::kInvalidFunc) out.push_back(f);
        }
        return out;
    };
    using instr::Category;

    if (set == "mpi_sync_calls")
        // Message passing, collectives, waits, and (the paper's
        // extension) the RMA synchronization routines, so the PC's
        // ExcessiveSyncWaitingTime hypothesis covers one-sided codes.
        return by_names({"PMPI_Send", "PMPI_Recv", "PMPI_Sendrecv", "PMPI_Barrier",
                         "PMPI_Bcast", "PMPI_Reduce", "PMPI_Allreduce", "PMPI_Wait",
                         "PMPI_Waitall", "PMPI_Win_fence", "PMPI_Win_start",
                         "PMPI_Win_complete", "PMPI_Win_wait", "PMPI_Win_lock",
                         "PMPI_Win_unlock"});
    if (set == "io_calls") {
        // All I/O at PMPI level (the weak-symbol rule) plus the libc
        // transport calls; file access joined this set when MPI-I/O
        // support landed, so ExcessiveIOBlockingTime covers both.
        std::vector<instr::FuncId> out;
        for (instr::FuncId f :
             reg.functions_with(static_cast<std::uint32_t>(Category::Io))) {
            const instr::FunctionInfo& fi = reg.info(f);
            if (fi.module == "libc" || fi.name.rfind("PMPI_", 0) == 0)
                out.push_back(f);
        }
        return out;
    }
    if (set == "app_procedures")
        return reg.functions_with(static_cast<std::uint32_t>(Category::AppCode));
    if (set == "mpi_send_layout12")
        return by_names({"PMPI_Send", "PMPI_Isend", "PMPI_Sendrecv"});
    if (set == "mpi_recv_layout12") return by_names({"PMPI_Recv"});
    if (set == "mpi_comm_at5")
        return by_names({"PMPI_Send", "PMPI_Recv", "PMPI_Isend", "PMPI_Irecv",
                         "PMPI_Allreduce"});
    if (set == "mpi_comm_at10") return by_names({"PMPI_Sendrecv"});
    if (set == "mpi_comm_at0") return by_names({"PMPI_Barrier"});
    if (set == "mpi_comm_at4") return by_names({"PMPI_Bcast"});
    if (set == "mpi_comm_at6") return by_names({"PMPI_Reduce"});
    if (set == "mpi_tag_at4")
        return by_names({"PMPI_Send", "PMPI_Recv", "PMPI_Isend", "PMPI_Irecv"});
    if (set == "mpi_barrier") return by_names({"PMPI_Barrier"});
    if (set == "mpi_put") return by_names({"PMPI_Put"});
    if (set == "mpi_get") return by_names({"PMPI_Get"});
    if (set == "mpi_acc") return by_names({"PMPI_Accumulate"});
    if (set == "mpi_rma_data")
        return by_names({"PMPI_Put", "PMPI_Get", "PMPI_Accumulate"});
    if (set == "mpi_at_rma_sync")
        return by_names({"PMPI_Win_fence", "PMPI_Win_start", "PMPI_Win_complete",
                         "PMPI_Win_wait"});
    if (set == "mpi_pt_rma_sync")
        return by_names({"PMPI_Win_lock", "PMPI_Win_unlock"});
    if (set == "mpi_rma_sync")
        return by_names({"PMPI_Win_fence", "PMPI_Win_create", "PMPI_Win_free",
                         "PMPI_Win_start", "PMPI_Win_complete", "PMPI_Win_wait",
                         "PMPI_Win_lock", "PMPI_Win_unlock", "PMPI_Put", "PMPI_Get",
                         "PMPI_Accumulate"});
    if (set == "mpi_rma_sync_routines")
        return by_names({"PMPI_Win_fence", "PMPI_Win_create", "PMPI_Win_free",
                         "PMPI_Win_start", "PMPI_Win_complete", "PMPI_Win_wait",
                         "PMPI_Win_lock", "PMPI_Win_unlock"});
    if (set == "mpi_win_at7") return by_names({"PMPI_Put", "PMPI_Get"});
    if (set == "mpi_win_at8") return by_names({"PMPI_Accumulate"});
    if (set == "mpi_win_at0")
        return by_names({"PMPI_Win_complete", "PMPI_Win_wait", "PMPI_Win_free"});
    if (set == "mpi_win_at1") return by_names({"PMPI_Win_fence", "PMPI_Win_unlock"});
    if (set == "mpi_win_at2") return by_names({"PMPI_Win_start", "PMPI_Win_post"});
    if (set == "mpi_win_at3") return by_names({"PMPI_Win_lock"});
    if (set == "mpi_file_writes_rw")
        return by_names({"PMPI_File_write", "PMPI_File_write_all",
                         "PMPI_File_write_shared"});
    if (set == "mpi_file_writes_at") return by_names({"PMPI_File_write_at"});
    if (set == "mpi_file_reads_rw")
        return by_names({"PMPI_File_read", "PMPI_File_read_all",
                         "PMPI_File_read_shared"});
    if (set == "mpi_file_reads_at") return by_names({"PMPI_File_read_at"});
    if (set == "mpi_file_data_ops")
        return by_names({"PMPI_File_read", "PMPI_File_write", "PMPI_File_read_at",
                         "PMPI_File_write_at", "PMPI_File_read_all",
                         "PMPI_File_write_all", "PMPI_File_read_shared",
                         "PMPI_File_write_shared"});
    if (set == "mpi_file_all_calls")
        return by_names({"PMPI_File_open", "PMPI_File_close", "PMPI_File_read",
                         "PMPI_File_write", "PMPI_File_read_at", "PMPI_File_write_at",
                         "PMPI_File_read_all", "PMPI_File_write_all",
                         "PMPI_File_read_shared", "PMPI_File_write_shared",
                         "PMPI_File_seek", "PMPI_File_sync", "PMPI_File_delete"});
    if (set == "mpi_file_handle_at0")
        return by_names({"PMPI_File_close", "PMPI_File_read", "PMPI_File_write",
                         "PMPI_File_read_at", "PMPI_File_write_at",
                         "PMPI_File_read_all", "PMPI_File_write_all",
                         "PMPI_File_read_shared", "PMPI_File_write_shared",
                         "PMPI_File_seek", "PMPI_File_sync"});
    if (set == "mpi_all_calls")
        return reg.functions_with(static_cast<std::uint32_t>(Category::MpiApi));
    // focus_procedure / focus_module are bound per instantiation via
    // ConstraintBinding::set_overrides; unresolved they select nothing.
    if (set == "focus_procedure" || set == "focus_module") return {};
    throw mdl::CompileError("unknown MDL function set '" + set + "'");
}

// ---------------------------------------------------------------------------
// Launch helper
// ---------------------------------------------------------------------------

std::vector<int> run_app_async(PerfTool& tool, const std::string& command,
                               const std::vector<std::string>& argv, int nprocs,
                               int procs_per_node) {
    simmpi::World& w = tool.world();
    const int nnodes =
        std::max(1, (nprocs + procs_per_node - 1) / std::max(1, procs_per_node));
    std::vector<simmpi::Node> nodes;
    for (int i = 0; i < nnodes; ++i)
        nodes.push_back({"node" + std::to_string(i), procs_per_node});
    const std::vector<std::string> args = {"-np", std::to_string(nprocs)};
    const simmpi::LaunchPlan plan = w.flavor() == simmpi::Flavor::Lam
                                        ? simmpi::plan_lam(nodes, args)
                                        : simmpi::plan_mpich(nodes, args);
    const std::vector<int> globals = simmpi::launch(w, command, argv, plan);
    tool.on_launch(globals);
    return globals;
}

}  // namespace m2p::core
