// Paradyn's fixed-memory folding histogram (paper section 4 & 5):
// performance data lives in a preset number of bins; when the program
// outlives the array, neighbouring bins are combined pairwise and the
// bin width doubles, freeing half the array.  Over time measurement
// granularity decreases -- the source of the small errors the paper
// discusses (their bins started at 0.2 s and folded up to 0.8 s; ours
// default to 5 ms since workloads are scaled down).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace m2p::core {

class Histogram {
public:
    /// @p origin is the wall-clock time of bin 0's left edge.
    Histogram(double origin, double base_bin_width = 0.005, std::size_t bins = 128);

    /// Accumulates @p v into the bin containing time @p t, folding as
    /// needed.  Thread-safe.  Values before the origin go to bin 0.
    void add(double t, double v);

    double origin() const { return origin_; }
    double bin_width() const;
    std::size_t capacity() const { return capacity_; }
    /// Number of bins touched so far (index of latest + 1).
    std::size_t active_bins() const;
    std::vector<double> values() const;

    /// Exact running total, independent of folding (used by the
    /// Performance Consultant's interval arithmetic).
    double total() const;

    /// Mean per-second rate over the covered interval.  When
    /// @p exclude_endpoints is set, the first and last active bins are
    /// dropped, the error-reduction step the paper applies ("we
    /// eliminated the first and last bins from the calculations").
    double rate(bool exclude_endpoints) const;

    /// Number of folds performed so far.
    int folds() const;

    /// CSV export: "bin_start_seconds,value" rows -- the paper's
    /// workflow ("We exported the data that Paradyn gathered while
    /// making the histogram and calculated the number of bytes...").
    std::string to_csv() const;

private:
    void fold_locked();

    const double origin_;
    const std::size_t capacity_;
    mutable std::mutex mu_;
    double width_;
    std::vector<double> bins_;
    std::size_t hi_ = 0;  ///< highest touched bin + 1
    double total_ = 0.0;
    int folds_ = 0;
};

}  // namespace m2p::core
