// Paradyn's fixed-memory folding histogram (paper section 4 & 5):
// performance data lives in a preset number of bins; when the program
// outlives the array, neighbouring bins are combined pairwise and the
// bin width doubles, freeing half the array.  Over time measurement
// granularity decreases -- the source of the small errors the paper
// discusses (their bins started at 0.2 s and folded up to 0.8 s; ours
// default to 5 ms since workloads are scaled down).
//
// Writes are striped (DESIGN.md "fast path"): add() appends the raw
// (t, v) sample to a per-thread stripe buffer under that stripe's own
// mutex, so snippet fires from different ranks never serialize on one
// lock.  Stripes drain into the folding bins when a buffer fills or on
// any read, replaying samples through the exact binning/folding
// arithmetic -- totals, fold counts, and single-writer bin contents
// are identical to the unstriped implementation.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace m2p::core {

class Histogram {
public:
    /// @p origin is the wall-clock time of bin 0's left edge.
    /// @p stripes controls write-side striping (one buffer per stripe,
    /// threads hash onto stripes); sized for the expected rank count.
    Histogram(double origin, double base_bin_width = 0.005, std::size_t bins = 128,
              std::size_t stripes = 16);

    /// Accumulates @p v into the bin containing time @p t, folding as
    /// needed.  Thread-safe.  Values before the origin go to bin 0.
    void add(double t, double v);

    double origin() const { return origin_; }
    double bin_width() const;
    std::size_t capacity() const { return capacity_; }
    /// Number of bins touched so far (index of latest + 1).
    std::size_t active_bins() const;
    std::vector<double> values() const;

    /// Exact running total, independent of folding (used by the
    /// Performance Consultant's interval arithmetic).  Reflects every
    /// add() that completed before the call, exactly.
    double total() const;

    /// Mean per-second rate over the covered interval.  When
    /// @p exclude_endpoints is set, the first and last active bins are
    /// dropped, the error-reduction step the paper applies ("we
    /// eliminated the first and last bins from the calculations").
    double rate(bool exclude_endpoints) const;

    /// Number of folds performed so far.
    int folds() const;

    /// CSV export: "bin_start_seconds,value" rows -- the paper's
    /// workflow ("We exported the data that Paradyn gathered while
    /// making the histogram and calculated the number of bytes...").
    std::string to_csv() const;

private:
    struct Stripe {
        alignas(64) std::mutex mu;
        std::vector<std::pair<double, double>> buf;
    };

    void add_locked(double t, double v) const;  ///< requires mu_
    void fold_locked() const;                   ///< requires mu_
    void drain_stripes() const;  ///< replay all stripe buffers

    const double origin_;
    const std::size_t capacity_;
    mutable std::mutex mu_;  ///< guards the folding bins below
    mutable double width_;
    mutable std::vector<double> bins_;
    mutable std::size_t hi_ = 0;  ///< highest touched bin + 1
    mutable double total_ = 0.0;
    mutable int folds_ = 0;

    const std::unique_ptr<Stripe[]> stripes_;
    const std::size_t nstripes_;
};

}  // namespace m2p::core
