// Metric-focus instantiation (paper section 4): "Either approach
// results in new instrumentation being inserted into the application,
// specified by metric-focus pairs, where the metric specifies what to
// measure, and the focus specifies what parts of the application ...
// to include in the measurement."
//
// MetricManager resolves a (metric name, Focus) pair into
//  * constraint bindings (module/procedure on the Code axis;
//    communicator / tag / barrier / window on the SyncObject axis),
//  * a native rank gate for the Machine/Process axes, and
//  * MDL-compiled instrumentation feeding a folding Histogram --
// or, for the whole-program "cpu" metric, a sampled native source
// (per-process CPU clocks read by a sampler thread, as Paradyn's
// daemon samples process timers).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/histogram.hpp"
#include "core/resources.hpp"
#include "mdl/eval.hpp"

namespace m2p::core {

class PerfTool;

/// One live metric-focus pair: instrumentation + histogram.
class MetricFocusPair {
public:
    ~MetricFocusPair();
    MetricFocusPair(const MetricFocusPair&) = delete;
    MetricFocusPair& operator=(const MetricFocusPair&) = delete;

    const std::string& metric() const { return metric_; }
    const Focus& focus() const { return focus_; }
    mdl::UnitsType unitstype() const { return unitstype_; }
    Histogram& histogram() { return *hist_; }
    const Histogram& histogram() const { return *hist_; }

    /// Exact accumulated value (seconds for timers, counts for
    /// counters) -- the Performance Consultant differences this over
    /// its evaluation interval.
    double total() const { return hist_->total(); }

private:
    friend class MetricManager;
    MetricFocusPair() = default;

    std::string metric_;
    Focus focus_;
    mdl::UnitsType unitstype_ = mdl::UnitsType::Unnormalized;
    // Shared with snippet sinks so late in-flight events stay safe
    // after release().
    std::shared_ptr<Histogram> hist_;
    bool native_cpu_ = false;
    mdl::CompiledMetric compiled_;
    // Native-cpu sampling state: last CPU reading per rank, plus the
    // last process system-time reading (subtracted so the metric
    // approximates *user* CPU time -- Paradyn's default metrics do not
    // see system time, which is why PPerfMark's system-time program
    // fails, paper Table 2).
    std::map<int, double> cpu_last_;
    double sys_last_ = 0.0;
};

class MetricManager {
public:
    MetricManager(PerfTool& tool, double bin_width, std::size_t bins);
    ~MetricManager();
    MetricManager(const MetricManager&) = delete;
    MetricManager& operator=(const MetricManager&) = delete;

    /// Instantiates a metric on a focus, inserting instrumentation.
    /// Returns nullptr when the metric does not exist or the focus
    /// requires a constraint the metric definition does not allow.
    std::shared_ptr<MetricFocusPair> request(const std::string& metric,
                                             const Focus& focus);
    /// Deletes the pair's instrumentation (Paradyn removes snippets
    /// when an experiment ends).  The pair's histogram stays readable.
    void release(const std::shared_ptr<MetricFocusPair>& pair);

    std::size_t active_pairs() const;
    double bin_width() const { return bin_width_; }

private:
    void sampler_loop();

    PerfTool& tool_;
    double bin_width_;
    std::size_t bins_;
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<MetricFocusPair>> active_;
    bool stop_ = false;
    std::thread sampler_;
};

}  // namespace m2p::core
