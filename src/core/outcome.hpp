// RunOutcome: how a measured application run ended.  A fault-tolerant
// session distinguishes a clean completion from a poisoned world
// (MPI_Abort / MPI_ERRORS_ARE_FATAL) and from a run that finished but
// lost ranks along the way (crashed, hung, or excepted processes whose
// epitaphs the World recorded).
#pragma once

#include <vector>

#include "simmpi/faults.hpp"
#include "simmpi/world.hpp"

namespace m2p::core {

struct RunOutcome {
    enum class Status {
        Completed,  ///< every rank reached MPI_Finalize
        Aborted,    ///< world poisoned (MPI_Abort or a fatal errhandler)
        RanksLost,  ///< run ended, but some ranks died; see epitaphs
        Recovered,  ///< ranks died AND survivors shrank to a fresh comm
    };

    Status status = Status::Completed;
    int abort_code = 0;  ///< poison code when status == Aborted
    std::vector<simmpi::Epitaph> epitaphs;

    bool ok() const { return status == Status::Completed; }
};

/// Classifies a finished (or unwedged) world.  Poison takes precedence
/// over rank loss: an abort usually also leaves epitaphs behind, and
/// the abort is the root cause worth reporting.
inline RunOutcome outcome_from_world(const simmpi::World& world) {
    RunOutcome o;
    o.epitaphs = world.epitaphs();
    if (world.poisoned()) {
        o.status = RunOutcome::Status::Aborted;
        o.abort_code = world.poison_code();
    } else if (!o.epitaphs.empty()) {
        // A completed MPI_Comm_shrink after the losses means survivors
        // rebuilt and kept going -- the run recovered rather than
        // merely surviving.
        o.status = world.recovered() ? RunOutcome::Status::Recovered
                                     : RunOutcome::Status::RanksLost;
    }
    return o;
}

}  // namespace m2p::core
