#include "core/resources.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace m2p::core {

ResourceHierarchy::ResourceHierarchy() {
    nodes_["/"] = Resource{"/", "WholeProgram", "", ResourceKind::Root, false};
    for (const char* p : {"/Code", "/Machine", "/Process", "/SyncObject"})
        nodes_[p] = Resource{p, leaf(p), "", ResourceKind::Category, false};
    // Message, Barrier, and the paper's new Window branch; File is the
    // MPI-I/O extension (shared files are synchronization objects for
    // collective access).
    for (const char* p : {"/SyncObject/Message", "/SyncObject/Barrier",
                          "/SyncObject/Window", "/SyncObject/File"})
        nodes_[p] = Resource{p, leaf(p), "", ResourceKind::Category, false};
}

std::string ResourceHierarchy::leaf(const std::string& path) {
    const std::size_t pos = path.rfind('/');
    return pos == std::string::npos ? path : path.substr(pos + 1);
}

std::string ResourceHierarchy::parent(const std::string& path) {
    const std::size_t pos = path.rfind('/');
    if (pos == std::string::npos || pos == 0) return "/";
    return path.substr(0, pos);
}

bool ResourceHierarchy::add(const std::string& path, ResourceKind kind) {
    std::lock_guard lk(mu_);
    if (path.empty() || path[0] != '/')
        throw std::invalid_argument("resource path must start with '/'");
    if (nodes_.count(path)) return false;
    const std::string par = parent(path);
    if (!nodes_.count(par))
        throw std::invalid_argument("resource parent missing: " + par);
    nodes_[path] = Resource{path, leaf(path), "", kind, false};
    return true;
}

bool ResourceHierarchy::exists(const std::string& path) const {
    std::lock_guard lk(mu_);
    return nodes_.count(path) != 0;
}

Resource ResourceHierarchy::get(const std::string& path) const {
    std::lock_guard lk(mu_);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw std::out_of_range("no such resource: " + path);
    return it->second;
}

void ResourceHierarchy::set_display(const std::string& path, const std::string& display) {
    std::lock_guard lk(mu_);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw std::out_of_range("no such resource: " + path);
    it->second.display = display;
}

void ResourceHierarchy::retire(const std::string& path) {
    std::lock_guard lk(mu_);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw std::out_of_range("no such resource: " + path);
    it->second.retired = true;
}

std::vector<std::string> ResourceHierarchy::children(const std::string& path,
                                                     bool include_retired) const {
    std::lock_guard lk(mu_);
    std::vector<std::string> out;
    const std::string prefix = path == "/" ? "/" : path + "/";
    for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
        const std::string& p = it->first;
        if (p.rfind(prefix, 0) != 0) break;
        if (p.find('/', prefix.size()) != std::string::npos) continue;  // grandchild
        if (!include_retired && it->second.retired) continue;
        out.push_back(p);
    }
    return out;
}

std::size_t ResourceHierarchy::size() const {
    std::lock_guard lk(mu_);
    return nodes_.size();
}

std::string ResourceHierarchy::render(const std::string& root) const {
    std::ostringstream os;
    struct Frame {
        std::string path;
        int depth;
    };
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        Resource r = get(f.path);
        os << std::string(static_cast<std::size_t>(f.depth) * 2, ' ') << r.name;
        if (!r.display.empty()) os << " \"" << r.display << "\"";
        if (r.retired) os << " [retired]";
        os << "\n";
        auto kids = children(f.path);
        std::sort(kids.rbegin(), kids.rend());  // reversed: stack pops in order
        for (const auto& k : kids) stack.push_back({k, f.depth + 1});
    }
    return os.str();
}

bool Focus::is_whole_program() const {
    return code == "/Code" && machine == "/Machine" && process == "/Process" &&
           syncobj == "/SyncObject";
}

std::string Focus::to_string() const {
    std::ostringstream os;
    os << "<" << code << ", " << machine << ", " << process << ", " << syncobj << ">";
    return os.str();
}

}  // namespace m2p::core
