#include "core/session.hpp"

namespace m2p::core {

namespace {
simmpi::World::Config with_flavor(simmpi::World::Config cfg, simmpi::Flavor f) {
    cfg.flavor = f;
    return cfg;
}
}  // namespace

Session::Session(simmpi::Flavor flavor, PerfTool::Options topts,
                 simmpi::World::Config wcfg)
    : world_(reg_, with_flavor(wcfg, flavor)), tool_(world_, std::move(topts)) {}

RunOutcome Session::run(const std::string& command, int nprocs, int procs_per_node) {
    run_app_async(tool_, command, {}, nprocs, procs_per_node);
    world_.join_all();
    tool_.flush();
    return outcome_from_world(world_);
}

PCReport Session::run_with_consultant(const std::string& command, int nprocs,
                                      PerformanceConsultant::Options opts,
                                      int procs_per_node) {
    run_app_async(tool_, command, {}, nprocs, procs_per_node);
    PerformanceConsultant pc(tool_, opts);
    PCReport report = pc.search([this] { return !world_.all_finished(); });
    world_.join_all();
    tool_.flush();
    report.outcome = outcome_from_world(world_);
    return report;
}

}  // namespace m2p::core
