#include "core/session.hpp"

namespace m2p::core {

namespace {
simmpi::World::Config with_flavor(simmpi::World::Config cfg, simmpi::Flavor f) {
    cfg.flavor = f;
    return cfg;
}

RunOutcome record_outcome(simmpi::World& world, RunOutcome o) {
    const char* status = o.status == RunOutcome::Status::Completed   ? "Completed"
                         : o.status == RunOutcome::Status::Aborted   ? "Aborted"
                         : o.status == RunOutcome::Status::Recovered ? "Recovered"
                                                                     : "RanksLost";
    world.trace_event(trace::EventKind::RunOutcome, -1, status, o.abort_code,
                      static_cast<std::int64_t>(o.epitaphs.size()));
    return o;
}
}  // namespace

Session::Session(simmpi::Flavor flavor, PerfTool::Options topts,
                 simmpi::World::Config wcfg)
    : world_(reg_, with_flavor(wcfg, flavor)), tool_(world_, std::move(topts)) {}

RunOutcome Session::run(const std::string& command, int nprocs, int procs_per_node) {
    run_app_async(tool_, command, {}, nprocs, procs_per_node);
    world_.join_all();
    tool_.flush();
    return record_outcome(world_, outcome_from_world(world_));
}

PCReport Session::run_with_consultant(const std::string& command, int nprocs,
                                      PerformanceConsultant::Options opts,
                                      int procs_per_node) {
    run_app_async(tool_, command, {}, nprocs, procs_per_node);
    PerformanceConsultant pc(tool_, opts);
    PCReport report = pc.search([this] { return !world_.all_finished(); });
    world_.join_all();
    tool_.flush();
    report.outcome = record_outcome(world_, outcome_from_world(world_));
    return report;
}

}  // namespace m2p::core
