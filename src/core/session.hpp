// Session: one measured application run -- registry + simulated
// cluster + attached tool -- with helpers to run a registered program
// to completion, optionally under the Performance Consultant.  This is
// the boilerplate every test/bench/experiment shares; it mirrors how a
// Paradyn user session looks (start tool, start MPI job, search).
#pragma once

#include <functional>
#include <string>

#include "core/consultant.hpp"
#include "core/outcome.hpp"
#include "core/tool.hpp"

namespace m2p::core {

/// Default World configuration for tool sessions: the preemptive
/// thread-per-rank engine.  The PPerfMark bottleneck scenarios (paper
/// Table 2) depend on ranks being scheduled preemptively -- a flooded
/// server falls behind its clients only when a client can keep
/// producing while the server is off-CPU.  The cooperative fiber
/// engine's fairness points drain every mailbox as it fills, which on
/// a small worker pool erases exactly the blocking the tool exists to
/// observe.  Callers that want fiber ranks under the tool (the
/// rank-scaling benches) pass an explicit config.
inline simmpi::World::Config tool_world_config() {
    simmpi::World::Config cfg;
    cfg.rank_engine = simmpi::RankEngine::Thread;
    return cfg;
}

class Session {
public:
    explicit Session(simmpi::Flavor flavor, PerfTool::Options topts = {},
                     simmpi::World::Config wcfg = tool_world_config());

    instr::Registry& registry() { return reg_; }
    simmpi::World& world() { return world_; }
    PerfTool& tool() { return tool_; }

    /// Launches @p command on @p nprocs processes (2 per node by
    /// default), waits for completion, flushes discovery reports.
    /// Returns how the run ended: Completed, Aborted (poisoned world),
    /// or RanksLost with the dead ranks' epitaphs.
    RunOutcome run(const std::string& command, int nprocs, int procs_per_node = 2);

    /// Launches @p command and runs the Performance Consultant while
    /// the application executes; returns the findings.  The report's
    /// `outcome` field records whether the run lost ranks mid-search.
    PCReport run_with_consultant(const std::string& command, int nprocs,
                                 PerformanceConsultant::Options opts,
                                 int procs_per_node = 2);

private:
    instr::Registry reg_;
    simmpi::World world_;
    PerfTool tool_;
};

}  // namespace m2p::core
