#include "core/consultant.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>
#include <sstream>
#include <thread>

#include "core/metrics.hpp"
#include "util/clock.hpp"

namespace m2p::core {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

/// Depth of a node's focus (how many refinements were applied); used
/// to bound the search.
int focus_depth(const Focus& f) {
    auto seg = [](const std::string& p) {
        return static_cast<int>(std::count(p.begin(), p.end(), '/')) - 1;
    };
    return seg(f.code) + seg(f.syncobj) + seg(f.process) + seg(f.machine);
}

/// Flight-recorder events outlive the consultant, so experiment events
/// must carry string-literal names, not pointers into hypotheses_.
const char* static_hypothesis_name(const std::string& name) {
    if (name == "ExcessiveSyncWaitingTime") return "ExcessiveSyncWaitingTime";
    if (name == "ExcessiveIOBlockingTime") return "ExcessiveIOBlockingTime";
    if (name == "CPUBound") return "CPUBound";
    return "Hypothesis";
}

}  // namespace

bool PCReport::found(const std::string& hypothesis,
                     const std::string& focus_substr) const {
    std::deque<const PCNode*> q;
    for (const auto& r : roots) q.push_back(r.get());
    while (!q.empty()) {
        const PCNode* n = q.front();
        q.pop_front();
        const bool focus_match =
            focus_substr == "WholeProgram"
                ? n->focus.is_whole_program()
                : n->focus.to_string().find(focus_substr) != std::string::npos;
        if (n->tested_true && n->hypothesis == hypothesis && focus_match) return true;
        for (const auto& c : n->children) q.push_back(c.get());
    }
    return false;
}

PerformanceConsultant::PerformanceConsultant(PerfTool& tool, Options opts)
    : tool_(tool), opts_(opts) {
    const double sync = opts_.sync_threshold >= 0
                            ? opts_.sync_threshold
                            : tool_.tunable("PC_SyncThreshold", 0.2);
    const double io = opts_.io_threshold >= 0 ? opts_.io_threshold
                                              : tool_.tunable("PC_IoThreshold", 0.2);
    const double cpu = opts_.cpu_threshold >= 0 ? opts_.cpu_threshold
                                                : tool_.tunable("PC_CpuThreshold", 0.3);
    hypotheses_ = {
        {"ExcessiveSyncWaitingTime", "sync_wait_inclusive", sync},
        {"ExcessiveIOBlockingTime", "io_wait_inclusive", io},
        {"CPUBound", "cpu", cpu},
    };
}

const PerformanceConsultant::HypothesisDef& PerformanceConsultant::hypothesis(
    const std::string& name) const {
    for (const auto& h : hypotheses_)
        if (h.name == name) return h;
    throw std::out_of_range("unknown hypothesis " + name);
}

PCReport PerformanceConsultant::search(const std::function<bool()>& still_running) {
    PCReport report;
    const double t_begin = util::wall_seconds();

    std::deque<PCNode*> frontier;
    for (const auto& h : hypotheses_) {
        auto n = std::make_unique<PCNode>();
        n->hypothesis = h.name;
        n->threshold = h.threshold;
        frontier.push_back(n.get());
        report.roots.push_back(std::move(n));
    }
    std::set<std::string> visited;

    // Collects false nodes worth retrying: hypothesis roots and false
    // children of true parents.  The Performance Consultant evaluates
    // continually while the application runs -- a hypothesis that was
    // false during startup may become true once the steady state is
    // reached (and vice versa; latest result wins).
    auto collect_retestable = [&report] {
        std::vector<PCNode*> out;
        struct Frame {
            PCNode* node;
            bool parent_true;
        };
        std::deque<Frame> q;
        for (const auto& r : report.roots) q.push_back({r.get(), true});
        while (!q.empty()) {
            Frame f = q.front();
            q.pop_front();
            if (f.parent_true && f.node->tested && !f.node->tested_true)
                out.push_back(f.node);
            for (const auto& c : f.node->children)
                q.push_back({c.get(), f.node->tested_true});
        }
        return out;
    };

    // Survivor re-planning state: the death epoch the current plan was
    // built against.  When it moves, the search re-plans over the
    // survivors instead of carrying truncated results forward.
    std::uint64_t planned_epoch = tool_.world().death_epoch();
    const auto focus_alive = [this](const Focus& f) {
        return !tool_.ranks_for_focus(f).empty();
    };
    // Truncated-but-retestable nodes: their values cover a shrinking
    // process set, so re-measure them over the survivors.
    auto collect_truncated = [&report, &focus_alive] {
        std::vector<PCNode*> out;
        std::deque<PCNode*> q;
        for (const auto& r : report.roots) q.push_back(r.get());
        while (!q.empty()) {
            PCNode* n = q.front();
            q.pop_front();
            if (n->tested && n->truncated && focus_alive(n->focus)) out.push_back(n);
            for (const auto& c : n->children) q.push_back(c.get());
        }
        return out;
    };

    while (still_running() &&
           util::wall_seconds() - t_begin < opts_.max_search_seconds) {
        if (const std::uint64_t epoch = tool_.world().death_epoch();
            epoch != planned_epoch) {
            planned_epoch = epoch;
            // Ranks died since the plan was drawn up: drop queued
            // experiments whose focus has no live rank left (their
            // /Process resources are retired) and re-enqueue truncated
            // results for a clean survivor measurement.
            std::erase_if(frontier,
                          [&](PCNode* n) { return !focus_alive(n->focus); });
            for (PCNode* n : collect_truncated())
                if (std::find(frontier.begin(), frontier.end(), n) == frontier.end())
                    frontier.push_back(n);
        }
        if (frontier.empty()) {
            for (PCNode* n : collect_retestable()) frontier.push_back(n);
            if (frontier.empty()) break;
        }
        std::vector<PCNode*> batch;
        while (!frontier.empty() && static_cast<int>(batch.size()) < opts_.max_batch) {
            batch.push_back(frontier.front());
            frontier.pop_front();
        }
        report.experiments_run += static_cast<int>(batch.size());
        tool_.pc_counters().started.fetch_add(batch.size(),
                                              std::memory_order_relaxed);
        evaluate_batch(batch, still_running);
        for (PCNode* n : batch) {
            if (n->tested && !n->truncated && tool_.world().death_epoch() != 0) {
                ++report.post_loss_experiments;
                tool_.pc_counters().post_loss.fetch_add(1, std::memory_order_relaxed);
            }
        }
        for (PCNode* n : batch) {
            if (!n->tested_true) continue;
            if (focus_depth(n->focus) >= opts_.max_depth) continue;
            for (auto& child : refine(*n)) {
                const std::string key =
                    child->hypothesis + "|" + child->focus.to_string();
                if (!visited.insert(key).second) continue;
                frontier.push_back(child.get());
                n->children.push_back(std::move(child));
            }
        }
    }
    report.search_seconds = util::wall_seconds() - t_begin;
    return report;
}

double PerformanceConsultant::evaluate_batch(
    std::vector<PCNode*>& batch, const std::function<bool()>& still_running) {
    struct Experiment {
        PCNode* node;
        std::shared_ptr<MetricFocusPair> pair;
        double total0 = 0.0;
    };
    std::vector<Experiment> exps;
    MetricManager& mm = tool_.metrics();
    for (PCNode* n : batch) {
        const HypothesisDef& h = hypothesis(n->hypothesis);
        auto pair = mm.request(h.metric, n->focus);
        if (!pair) {
            n->tested = false;  // focus not expressible for this metric
            continue;
        }
        tool_.world().trace_event(trace::EventKind::ExperimentStart, -1,
                                  static_hypothesis_name(n->hypothesis),
                                  focus_depth(n->focus));
        exps.push_back({n, pair, pair->total()});
    }
    // Snapshot the failure state: any death during the evaluation
    // interval means these experiments measured a shrinking process
    // set, so their values are flagged rather than trusted blindly.
    const std::uint64_t deaths0 = tool_.world().death_epoch();
    const double t0 = util::wall_seconds();
    // Sleep in slices so a finished application cuts the wave short.
    while (util::wall_seconds() - t0 < opts_.eval_interval && still_running())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double elapsed = std::max(1e-6, util::wall_seconds() - t0);
    const bool lost_ranks = tool_.world().death_epoch() != deaths0;
    if (lost_ranks)
        tool_.world().trace_event(trace::EventKind::ExperimentTruncated, -1,
                                  "rank_lost_mid_experiment",
                                  static_cast<std::int64_t>(exps.size()));

    for (Experiment& e : exps) {
        // Overwrite, don't accumulate: a clean re-test over the
        // survivors clears the stale truncation verdict.
        e.node->truncated = lost_ranks;
        const double delta = e.pair->total() - e.total0;
        const double cpus = delta / elapsed;
        std::size_t denom =
            std::max<std::size_t>(1, tool_.ranks_for_focus(e.node->focus).size());
        if (e.node->hypothesis == "CPUBound") {
            // CPU consumption is bounded by hardware capacity, not by
            // the process count: on an oversubscribed host (fewer
            // cores than ranks) a fully CPU-bound program still only
            // burns `cores` CPUs.  On the paper's cluster (a core per
            // process) this equals the process count.
            const std::size_t cores =
                std::max<unsigned>(1, std::thread::hardware_concurrency());
            denom = std::min(denom, cores);
        }
        e.node->value = cpus / static_cast<double>(denom);
        e.node->tested = true;
        e.node->tested_true = e.node->value > e.node->threshold;
        PerfTool::PcCounters& pc = tool_.pc_counters();
        pc.completed.fetch_add(1, std::memory_order_relaxed);
        if (lost_ranks) pc.truncated.fetch_add(1, std::memory_order_relaxed);
        if (e.node->tested_true) pc.tested_true.fetch_add(1, std::memory_order_relaxed);
        tool_.world().trace_event(trace::EventKind::ExperimentStop, -1,
                                  static_hypothesis_name(e.node->hypothesis),
                                  e.node->tested_true ? 1 : 0);
        mm.release(e.pair);
    }
    return elapsed;
}

std::vector<std::unique_ptr<PCNode>> PerformanceConsultant::refine(const PCNode& node) {
    // Refinement discipline (keeps the search tree in the shape of the
    // paper's condensed figures and the experiment count bounded):
    //  - the Code axis refines only while the SyncObject axis is
    //    unrefined (drill functions first, then attach the sync
    //    object, as in Fig 3's Gsend_message -> MPI_Send -> comm);
    //  - the SyncObject axis refines anywhere (sync hypothesis only);
    //  - the Process axis refines only for CPUBound and only from the
    //    hypothesis root (Fig 9's "not every process was found to be
    //    CPU bound in waste_time").
    std::vector<std::unique_ptr<PCNode>> out;
    if (node.focus.syncobj == "/SyncObject") refine_code_axis(node, &out);
    if (node.hypothesis == "ExcessiveSyncWaitingTime" ||
        node.hypothesis == "ExcessiveIOBlockingTime")
        refine_syncobj_axis(node, &out);
    if (opts_.refine_processes && node.hypothesis == "CPUBound" &&
        node.focus.code == "/Code" && node.focus.syncobj == "/SyncObject")
        refine_process_axis(node, &out);
    if (opts_.refine_machines && node.focus.code == "/Code" &&
        node.focus.syncobj == "/SyncObject" && node.focus.process == "/Process")
        refine_machine_axis(node, &out);
    return out;
}

void PerformanceConsultant::refine_code_axis(const PCNode& node,
                                             std::vector<std::unique_ptr<PCNode>>* out) {
    instr::Registry& reg = tool_.world().registry();
    std::vector<std::string> candidates;  // full code paths

    const std::string& code = node.focus.code;
    const auto segs = static_cast<int>(std::count(code.begin(), code.end(), '/'));

    // The sync/IO hypotheses drill into the library calls the metric
    // actually covers; instrumenting every library symbol would blow
    // Paradyn's instrumentation-cost budget for no benefit.
    auto add_hypothesis_calls = [&](const std::string& base) {
        const char* set = node.hypothesis == "ExcessiveIOBlockingTime"
                              ? "io_calls"
                              : "mpi_sync_calls";
        for (instr::FuncId f : tool_.resolve_funcset(set)) {
            const instr::FunctionInfo& fi = reg.info(f);
            // Display the implementation-visible symbol (MPI_* on LAM,
            // PMPI_* on MPICH's weak-symbol build -- paper Figs 3 vs 7).
            std::string name = fi.name;
            if (tool_.world().flavor() == simmpi::Flavor::Lam &&
                starts_with(name, "PMPI_"))
                name = name.substr(1);
            candidates.push_back(base + "/" + name);
        }
    };
    auto add_app_functions = [&](const std::string& module, const std::string& base) {
        int added = 0;
        for (instr::FuncId f : reg.functions_in_module(module)) {
            const instr::FunctionInfo& fi = reg.info(f);
            if (!instr::has_category(fi.categories, instr::Category::AppCode)) continue;
            if (added++ >= 2 * opts_.max_children_per_axis) break;
            candidates.push_back(base + "/" + fi.name);
        }
    };

    if (code == "/Code") {
        // Whole program -> modules.  CPU refinement only descends into
        // application code; sync/IO also descend into the libraries.
        for (const std::string& m : reg.modules()) {
            bool has_app = false;
            for (instr::FuncId f : reg.functions_in_module(m))
                has_app = has_app || instr::has_category(reg.info(f).categories,
                                                         instr::Category::AppCode);
            if (node.hypothesis == "CPUBound" && !has_app) continue;
            if (node.hypothesis != "CPUBound" && !has_app && m != "libmpi" &&
                m != "libc")
                continue;
            candidates.push_back("/Code/" + m);
        }
    } else if (segs == 2) {
        // Module -> its functions.
        const std::string module = ResourceHierarchy::leaf(code);
        if (module == "libmpi" || module == "libc") {
            if (node.hypothesis != "CPUBound") add_hypothesis_calls(code);
        } else {
            add_app_functions(module, code);
        }
    } else {
        // Application function -> the MPI / transport calls made
        // inside it.  (CPUBound stops at a function.)
        const std::string leaf = ResourceHierarchy::leaf(code);
        const bool leaf_is_app = reg.find(leaf, "libmpi") == instr::kInvalidFunc &&
                                 reg.find(leaf, "libc") == instr::kInvalidFunc;
        if (!leaf_is_app || node.hypothesis == "CPUBound") return;
        add_hypothesis_calls(code);
    }

    for (const std::string& c : candidates) {
        auto n = std::make_unique<PCNode>();
        n->hypothesis = node.hypothesis;
        n->threshold = node.threshold;
        n->focus = node.focus;
        n->focus.code = c;
        out->push_back(std::move(n));
    }
}

void PerformanceConsultant::refine_syncobj_axis(
    const PCNode& node, std::vector<std::unique_ptr<PCNode>>* out) {
    ResourceHierarchy& rh = tool_.hierarchy();
    std::vector<std::string> candidates;
    const std::string& so = node.focus.syncobj;
    if (so == "/SyncObject") {
        if (node.hypothesis == "ExcessiveIOBlockingTime") {
            // I/O blocking refines over open files (MPI-I/O extension).
            for (const std::string& c : rh.children("/SyncObject/File", false))
                candidates.push_back(c);
        } else {
            // Retired resources (freed windows) are excluded from the
            // search (paper 4.2.3).
            for (const std::string& c : rh.children("/SyncObject/Message", false))
                candidates.push_back(c);
            candidates.push_back("/SyncObject/Barrier");
            for (const std::string& c : rh.children("/SyncObject/Window", false))
                candidates.push_back(c);
        }
    } else if (starts_with(so, "/SyncObject/Message/comm_") &&
               so.find("tag_") == std::string::npos) {
        for (const std::string& c : rh.children(so, false)) candidates.push_back(c);
    }
    int added = 0;
    for (const std::string& c : candidates) {
        if (added++ >= opts_.max_children_per_axis) break;
        auto n = std::make_unique<PCNode>();
        n->hypothesis = node.hypothesis;
        n->threshold = node.threshold;
        n->focus = node.focus;
        n->focus.syncobj = c;
        out->push_back(std::move(n));
    }
}

void PerformanceConsultant::refine_process_axis(
    const PCNode& node, std::vector<std::unique_ptr<PCNode>>* out) {
    if (node.focus.process != "/Process") return;
    int added = 0;
    for (const std::string& c : tool_.hierarchy().children("/Process", false)) {
        if (added++ >= opts_.max_children_per_axis) break;
        auto n = std::make_unique<PCNode>();
        n->hypothesis = node.hypothesis;
        n->threshold = node.threshold;
        n->focus = node.focus;
        n->focus.process = c;
        out->push_back(std::move(n));
    }
}

void PerformanceConsultant::refine_machine_axis(
    const PCNode& node, std::vector<std::unique_ptr<PCNode>>* out) {
    if (node.focus.machine != "/Machine") return;
    int added = 0;
    for (const std::string& c : tool_.hierarchy().children("/Machine", false)) {
        if (added++ >= opts_.max_children_per_axis) break;
        auto n = std::make_unique<PCNode>();
        n->hypothesis = node.hypothesis;
        n->threshold = node.threshold;
        n->focus = node.focus;
        n->focus.machine = c;
        out->push_back(std::move(n));
    }
}

std::string PerformanceConsultant::render_condensed(const PCReport& report,
                                                    bool include_false_roots) {
    std::ostringstream os;
    struct Frame {
        const PCNode* node;
        int depth;
    };
    auto describe = [](const PCNode& n) {
        std::string d;
        if (n.focus.is_whole_program()) return std::string("WholeProgram");
        if (n.focus.code != "/Code") d += n.focus.code;
        if (n.focus.syncobj != "/SyncObject") d += (d.empty() ? "" : " ") + n.focus.syncobj;
        if (n.focus.process != "/Process") d += (d.empty() ? "" : " ") + n.focus.process;
        if (n.focus.machine != "/Machine") d += (d.empty() ? "" : " ") + n.focus.machine;
        return d;
    };
    if (report.outcome.status == RunOutcome::Status::RanksLost)
        os << "(degraded search: " << report.outcome.epitaphs.size()
           << " rank(s) lost during the run; findings cover survivors only)\n";
    else if (report.outcome.status == RunOutcome::Status::Recovered)
        os << "(recovered search: " << report.outcome.epitaphs.size()
           << " rank(s) lost; survivors shrank and the search re-measured "
           << report.post_loss_experiments << " experiment(s) over them)\n";
    else if (report.outcome.status == RunOutcome::Status::Aborted)
        os << "(run aborted, code " << report.outcome.abort_code << ")\n";
    for (const auto& root : report.roots) {
        if (!root->tested_true && !include_false_roots) continue;
        std::vector<Frame> stack{{root.get(), 0}};
        while (!stack.empty()) {
            Frame f = stack.back();
            stack.pop_back();
            os << std::string(static_cast<std::size_t>(f.depth) * 2, ' ');
            if (f.depth == 0) os << f.node->hypothesis << ": ";
            os << describe(*f.node);
            if (!f.node->tested)
                os << "  (untested)";
            else
                os << "  " << (f.node->tested_true ? "TRUE" : "false") << " (value "
                   << f.node->value << ", threshold " << f.node->threshold << ")";
            if (f.node->truncated) os << "  [truncated: rank lost mid-experiment]";
            os << "\n";
            // Children in reverse so the stack pops them in order;
            // only true children appear in the condensed view.
            for (auto it = f.node->children.rbegin(); it != f.node->children.rend();
                 ++it) {
                if ((*it)->tested_true) stack.push_back({it->get(), f.depth + 1});
            }
        }
    }
    return os.str();
}

}  // namespace m2p::core
