// PerfTool: the enhanced-Paradyn reproduction's front end + daemons.
//
// Mirrors the paper's architecture: "Paradyn consists of a front end
// process to collect and visualize data and search for performance
// bottlenecks; and daemons that run on each machine node, inserting
// and deleting instrumentation ... and collecting and forwarding
// performance data."  Here daemons are per-node objects whose
// discovery snippets run on the application's rank threads; they
// forward typed update reports to a front-end thread that owns the
// Resource Hierarchy -- the daemon->frontend update protocol the
// paper adds for MPI-2 object naming and resource retirement
// (section 4.2.3).
//
// The tool implements all four of the paper's MPI-2 features:
//  * RMA window discovery at MPI_Win_create return, N-M unique ids,
//    retirement at MPI_Win_free (section 4.2.1);
//  * dynamic process creation via both the intercept method (a PMPI
//    profiling wrapper that reroutes the spawn through a "paradynd"
//    stub, at measurable extra cost) and the attach method (MPIR
//    debugging-interface lookup at spawn return) (section 4.2.2);
//  * MPI object naming propagated into resource display names
//    (section 4.2.3);
//  * the LAM/MPICH launcher differences (section 4.1) via simmpi's
//    launcher, driven by tool-side run helpers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "core/resources.hpp"
#include "mdl/ast.hpp"
#include "mdl/eval.hpp"
#include "pvar/registry.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::core {

class MetricManager;

enum class SpawnMethod {
    None,       ///< spawned processes go unmeasured
    Intercept,  ///< PMPI wrapper reroutes spawn through paradynd (adds overhead)
    Attach,     ///< discover children via the MPIR interface, attach daemons
};

struct SpawnSupportStats {
    int spawns_seen = 0;
    int daemons_started = 0;       ///< intercept starts one per child
    int processes_attached = 0;    ///< attach-method discoveries
    int attach_failures = 0;       ///< MPIR interface unavailable
    double intercept_overhead_seconds = 0.0;
};

/// One per simulated cluster node (paper: "daemons that run on each
/// machine node").  A daemon owns the ranks placed on its node and
/// counts the update reports it forwards.
struct Daemon {
    std::string node;
    std::vector<int> ranks;
    std::uint64_t reports_sent = 0;
};

class PerfTool final : public simmpi::ProfilingLayer {
public:
    struct Options {
        double bin_width = 0.005;   ///< histogram base granularity (seconds)
        std::size_t bins = 128;     ///< histogram capacity (fold beyond)
        SpawnMethod spawn_method = SpawnMethod::Intercept;
        double daemon_start_cost = 0.002;  ///< intercept per-child cost (s)
        std::string mdl_source;     ///< empty = built-in default metric file
    };

    PerfTool(simmpi::World& world, Options opts);
    explicit PerfTool(simmpi::World& world) : PerfTool(world, Options{}) {}
    ~PerfTool() override;
    PerfTool(const PerfTool&) = delete;
    PerfTool& operator=(const PerfTool&) = delete;

    simmpi::World& world() { return world_; }
    const Options& options() const { return opts_; }
    ResourceHierarchy& hierarchy() { return hierarchy_; }
    MetricManager& metrics() { return *metrics_; }
    const mdl::MdlFile& mdl_file() const { return mdl_; }
    double tunable(const std::string& name, double fallback) const;

    /// Registers the initial application processes (the tool started
    /// them itself, as Paradyn does).  Creates daemons per node.
    void on_launch(const std::vector<int>& global_ranks);
    /// Registers one process (initial or spawned) with its daemon and
    /// the /Process and /Machine hierarchies.
    void add_process(int global_rank);

    /// Blocks until all daemon->frontend update reports are applied.
    void flush();

    // -- Window registry (paper 4.2.1) ------------------------------------
    /// Tool-unique id for a window handle; -1 if not yet discovered.
    std::int64_t window_uid(simmpi::Win handle) const;
    /// Resource path for a window uid ("" if unknown).
    std::string window_path(std::int64_t uid) const;
    /// Uid of the window whose resource path is @p path (-1 unknown).
    std::int64_t window_uid_of_path(const std::string& path) const;
    /// The runtime's epoch-batched Table-1 counter totals for a window
    /// (op/byte counts and sync aggregates; valid after MPI_Win_free
    /// too, so consoles can show final per-window figures).
    simmpi::RmaCounterSnapshot window_rma_counters(simmpi::Win handle) const;

    // -- Focus helpers -----------------------------------------------------
    /// Global ranks selected by the focus's machine/process axes.
    std::vector<int> ranks_for_focus(const Focus& f) const;
    std::vector<Daemon> daemons() const;
    int known_process_count() const;
    /// Resource path of the process with @p global_rank.
    std::string process_path(int global_rank) const;

    // -- MDL plumbing ------------------------------------------------------
    std::shared_ptr<mdl::Services> services() const { return services_; }
    /// Resolves a default-metric-file function-set name.
    std::vector<instr::FuncId> resolve_funcset(const std::string& set) const;
    /// Functions visible in /Code for this MPI implementation: LAM
    /// exposes MPI_* strong symbols, MPICH's weak-symbol build
    /// resolves to PMPI_* (paper section 4.1.1).
    bool function_visible(const instr::FunctionInfo& fi) const;

    // -- Performance Consultant lifecycle tallies (pc.experiments.*) -------
    /// Relaxed counters the consultant bumps as its search runs; the
    /// tool registers them as pvars in the world's registry (detached
    /// again in ~PerfTool, before the world can outlive the storage).
    struct PcCounters {
        std::atomic<std::uint64_t> started{0};      ///< experiments launched
        std::atomic<std::uint64_t> completed{0};    ///< measured to completion
        std::atomic<std::uint64_t> tested_true{0};  ///< hypothesis held
        std::atomic<std::uint64_t> truncated{0};    ///< rank died mid-interval
        std::atomic<std::uint64_t> post_loss{0};    ///< clean runs after a loss
    };
    PcCounters& pc_counters() { return pc_counters_; }

    // -- Spawn support -----------------------------------------------------
    const SpawnSupportStats& spawn_stats() const { return spawn_stats_; }
    int wrap_spawn(simmpi::Rank& rank, simmpi::SpawnArgs args, simmpi::Comm* intercomm,
                   std::vector<int>* errcodes) override;
    void wrap_init(simmpi::Rank& rank) override;

private:
    struct Report {
        enum class Kind { NewResource, NameUpdate, Retire } kind = Kind::NewResource;
        std::string path;
        ResourceKind rkind = ResourceKind::Category;
        std::string display;
        std::string daemon_node;
    };

    void install_discovery();
    void scan_code_resources();
    /// Death observer: retires the dead process's resources so the
    /// hierarchy greys it out and the PC stops refining into it.
    void on_rank_death(const simmpi::Epitaph& e);
    void post(Report r);
    void frontend_loop();
    void discover_window(std::int64_t handle);
    void retire_window(std::int64_t handle);
    void discover_comm(std::int64_t handle, std::int64_t tag);
    void attach_new_processes();

    simmpi::World& world_;
    Options opts_;
    mdl::MdlFile mdl_;
    ResourceHierarchy hierarchy_;
    std::shared_ptr<mdl::Services> services_;
    std::unique_ptr<MetricManager> metrics_;

    mutable std::mutex mu_;
    std::vector<Daemon> daemons_;
    std::map<int, std::string> rank_node_;
    std::map<simmpi::Win, std::int64_t> win_uid_by_handle_;
    std::map<std::int64_t, std::string> win_path_by_uid_;
    std::map<int, int> win_next_m_;  ///< impl id N -> next M
    std::int64_t next_win_uid_ = 0;
    std::set<simmpi::Comm> known_comms_;
    std::set<std::pair<simmpi::Comm, int>> known_tags_;
    std::set<int> known_procs_;
    SpawnSupportStats spawn_stats_;
    PcCounters pc_counters_;
    pvar::ProviderScope pvar_scope_;  ///< pc.experiments.* registrations

    // Daemon -> frontend report channel.
    std::mutex q_mu_;
    std::condition_variable q_cv_;
    std::deque<Report> queue_;
    bool applying_ = false;
    bool stop_ = false;
    /// Retires that arrived before their NewResource (a rank can die
    /// while its discovery reports are still in flight).  Frontend
    /// thread only -- no lock needed.
    std::set<std::string> pending_retires_;
    std::thread frontend_;
};

/// Convenience: parse + launch + attach in one call, as the Paradyn
/// front end does when it starts an MPI job itself.  Returns the
/// global ranks started.
std::vector<int> run_app_async(PerfTool& tool, const std::string& command,
                               const std::vector<std::string>& argv, int nprocs,
                               int procs_per_node = 2);

}  // namespace m2p::core
