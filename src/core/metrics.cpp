#include "core/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "core/tool.hpp"
#include "util/clock.hpp"

namespace m2p::core {

namespace {

std::vector<std::string> split_path(const std::string& path) {
    std::vector<std::string> out;
    std::size_t pos = 1;  // skip leading '/'
    while (pos <= path.size()) {
        const std::size_t next = path.find('/', pos);
        if (next == std::string::npos) {
            if (pos < path.size()) out.push_back(path.substr(pos));
            break;
        }
        out.push_back(path.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

/// Histogram write-stripe count for a new metric-focus pair: one per
/// known rank thread (they are the concurrent writers), clamped so a
/// pair created before launch still gets useful striping and a huge
/// world does not over-allocate buffers.
std::size_t hist_stripes_for(PerfTool& tool) {
    return std::clamp<std::size_t>(
        static_cast<std::size_t>(tool.known_process_count()), 8, 64);
}

}  // namespace

MetricFocusPair::~MetricFocusPair() = default;

MetricManager::MetricManager(PerfTool& tool, double bin_width, std::size_t bins)
    : tool_(tool), bin_width_(bin_width), bins_(bins) {
    sampler_ = std::thread([this] { sampler_loop(); });
}

MetricManager::~MetricManager() {
    {
        std::lock_guard lk(mu_);
        stop_ = true;
    }
    if (sampler_.joinable()) sampler_.join();
    // Remove any instrumentation still installed.
    std::vector<std::shared_ptr<MetricFocusPair>> leftovers;
    {
        std::lock_guard lk(mu_);
        leftovers = active_;
        active_.clear();
    }
    for (auto& p : leftovers)
        mdl::uninstall(tool_.world().registry(), p->compiled_);
}

std::shared_ptr<MetricFocusPair> MetricManager::request(const std::string& metric,
                                                        const Focus& focus) {
    // Whole-program CPU is a sampled native metric (Paradyn's daemon
    // samples process timers); CPU on a Code focus is the MDL
    // proctimer metric cpu_inclusive.
    if (metric == "cpu") {
        if (focus.code != "/Code") return request("cpu_inclusive", focus);
        auto pair = std::shared_ptr<MetricFocusPair>(new MetricFocusPair());
        pair->metric_ = metric;
        pair->focus_ = focus;
        pair->unitstype_ = mdl::UnitsType::Sampled;
        pair->native_cpu_ = true;
        pair->hist_ = std::make_shared<Histogram>(util::wall_seconds(), bin_width_,
                                                  bins_, hist_stripes_for(tool_));
        for (int r : tool_.ranks_for_focus(focus))
            pair->cpu_last_[r] = tool_.world().proc_cpu_seconds(r);
        pair->sys_last_ = util::process_system_seconds();
        std::lock_guard lk(mu_);
        active_.push_back(pair);
        return pair;
    }

    const mdl::MetricDef* def = tool_.mdl_file().find_metric(metric);
    if (!def) return nullptr;

    std::vector<mdl::ConstraintBinding> bindings;
    const mdl::MdlFile& file = tool_.mdl_file();
    instr::Registry& reg = tool_.world().registry();

    auto allows = [&](const char* cid) {
        return std::find(def->constraints.begin(), def->constraints.end(), cid) !=
               def->constraints.end();
    };

    // ---- Code axis -------------------------------------------------------
    if (focus.code != "/Code") {
        const std::vector<std::string> seg = split_path(focus.code);
        // seg = {"Code", module, f1, f2, ...}
        if (seg.size() < 2) return nullptr;
        if (seg.size() == 2) {
            if (!allows("moduleConstraint")) return nullptr;
            const mdl::ConstraintDef* cd = file.find_constraint("moduleConstraint");
            if (!cd) return nullptr;
            mdl::ConstraintBinding b;
            b.def = cd;
            b.set_overrides["focus_module"] = reg.functions_in_module(seg[1]);
            if (b.set_overrides["focus_module"].empty()) return nullptr;
            bindings.push_back(std::move(b));
        } else {
            if (!allows("procedureConstraint")) return nullptr;
            const mdl::ConstraintDef* cd = file.find_constraint("procedureConstraint");
            if (!cd) return nullptr;
            // One nested procedure constraint per path component:
            // /Code/app/Gsend_message/MPI_Send measures inside
            // MPI_Send while inside Gsend_message.
            for (std::size_t i = 2; i < seg.size(); ++i) {
                instr::FuncId f = (i == 2) ? reg.find(seg[i], seg[1]) : reg.find(seg[i]);
                if (f == instr::kInvalidFunc) f = reg.find(seg[i]);
                if (f == instr::kInvalidFunc) return nullptr;
                mdl::ConstraintBinding b;
                b.def = cd;
                b.set_overrides["focus_procedure"] = {f};
                bindings.push_back(std::move(b));
            }
        }
    }

    // ---- SyncObject axis ---------------------------------------------------
    if (focus.syncobj != "/SyncObject") {
        if (focus.syncobj == "/SyncObject/Barrier") {
            if (!allows("mpi_barrierConstraint")) return nullptr;
            const mdl::ConstraintDef* cd = file.find_constraint("mpi_barrierConstraint");
            if (!cd) return nullptr;
            bindings.push_back({cd, {}, {}});
        } else if (starts_with(focus.syncobj, "/SyncObject/Message/comm_")) {
            const std::vector<std::string> seg = split_path(focus.syncobj);
            // seg = {"SyncObject","Message","comm_<h>"[,"tag_<t>"]}
            const std::int64_t handle = std::stoll(seg[2].substr(5));
            if (seg.size() >= 4 && starts_with(seg[3], "tag_")) {
                if (!allows("mpi_msgtagConstraint")) return nullptr;
                const mdl::ConstraintDef* cd =
                    file.find_constraint("mpi_msgtagConstraint");
                if (!cd) return nullptr;
                bindings.push_back({cd, {handle, std::stoll(seg[3].substr(4))}, {}});
            } else {
                if (!allows("mpi_msgConstraint")) return nullptr;
                const mdl::ConstraintDef* cd = file.find_constraint("mpi_msgConstraint");
                if (!cd) return nullptr;
                bindings.push_back({cd, {handle}, {}});
            }
        } else if (starts_with(focus.syncobj, "/SyncObject/Window/")) {
            if (!allows("mpi_windowConstraint")) return nullptr;
            const mdl::ConstraintDef* cd = file.find_constraint("mpi_windowConstraint");
            if (!cd) return nullptr;
            const std::int64_t uid = tool_.window_uid_of_path(focus.syncobj);
            if (uid < 0) return nullptr;
            bindings.push_back({cd, {uid}, {}});
        } else if (starts_with(focus.syncobj, "/SyncObject/File/file_")) {
            if (!allows("mpi_fileConstraint")) return nullptr;
            const mdl::ConstraintDef* cd = file.find_constraint("mpi_fileConstraint");
            if (!cd) return nullptr;
            const std::int64_t handle =
                std::stoll(focus.syncobj.substr(std::string("/SyncObject/File/file_")
                                                    .size()));
            bindings.push_back({cd, {handle}, {}});
        } else if (focus.syncobj == "/SyncObject/Message") {
            // Category-level Message focus: no object to bind; the
            // Performance Consultant refines straight to objects.
        } else {
            return nullptr;
        }
    }

    // ---- Machine / Process axes (native rank gate) ----------------------
    mdl::EventGate gate;
    if (focus.machine != "/Machine" || focus.process != "/Process") {
        std::vector<int> ranks = tool_.ranks_for_focus(focus);
        std::sort(ranks.begin(), ranks.end());
        gate = [ranks = std::move(ranks)](const instr::CallContext& ctx) {
            return std::binary_search(ranks.begin(), ranks.end(), ctx.rank);
        };
    }

    auto pair = std::shared_ptr<MetricFocusPair>(new MetricFocusPair());
    pair->metric_ = metric;
    pair->focus_ = focus;
    pair->unitstype_ = def->unitstype;
    pair->hist_ = std::make_shared<Histogram>(util::wall_seconds(), bin_width_, bins_,
                                              hist_stripes_for(tool_));

    auto sink = [hist = pair->hist_](double now, double delta) {
        hist->add(now, delta);
    };
    auto resolver = [this](const std::string& set) { return tool_.resolve_funcset(set); };

    pair->compiled_ = mdl::compile_metric(reg, *def, bindings, tool_.services(),
                                          resolver, std::move(sink), std::move(gate));
    std::lock_guard lk(mu_);
    active_.push_back(pair);
    return pair;
}

void MetricManager::release(const std::shared_ptr<MetricFocusPair>& pair) {
    if (!pair) return;
    mdl::uninstall(tool_.world().registry(), pair->compiled_);
    std::lock_guard lk(mu_);
    active_.erase(std::remove(active_.begin(), active_.end(), pair), active_.end());
}

std::size_t MetricManager::active_pairs() const {
    std::lock_guard lk(mu_);
    return active_.size();
}

void MetricManager::sampler_loop() {
    const auto tick =
        std::chrono::duration<double>(std::max(0.002, bin_width_ / 2.0));
    for (;;) {
        std::vector<std::shared_ptr<MetricFocusPair>> natives;
        {
            std::lock_guard lk(mu_);
            if (stop_) return;
            for (const auto& p : active_)
                if (p->native_cpu_) natives.push_back(p);
        }
        const double now = util::wall_seconds();
        for (const auto& p : natives) {
            double delta = 0.0;
            const std::vector<int> ranks = tool_.ranks_for_focus(p->focus_);
            for (int r : ranks) {
                const double cur = tool_.world().proc_cpu_seconds(r);
                const auto it = p->cpu_last_.find(r);
                if (it == p->cpu_last_.end()) {
                    p->cpu_last_[r] = cur;  // first sighting: baseline only
                } else {
                    delta += cur - it->second;
                    it->second = cur;
                }
            }
            // Thread CPU clocks include kernel time; subtract the
            // focus's share of process system time so the metric
            // reports user CPU, like Paradyn's.
            const double sys_now = util::process_system_seconds();
            const double sys_delta = sys_now - p->sys_last_;
            p->sys_last_ = sys_now;
            const int total = std::max(1, tool_.known_process_count());
            delta -= sys_delta * static_cast<double>(ranks.size()) /
                     static_cast<double>(total);
            if (delta > 0.0) p->hist_->add(now, delta);
        }
        std::this_thread::sleep_for(tick);
    }
}

}  // namespace m2p::core
