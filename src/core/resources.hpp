// Paradyn's Resource Hierarchy (paper section 4): the tree of
// everything a metric can be focused on.  Root is the Whole Program;
// below it sit Code (modules, functions), Machine (nodes), Process,
// and SyncObject (Message -> communicators -> tags, Barrier, and the
// paper's new Window branch).
//
// Resources carry the MPI-2 features the paper adds: user-friendly
// display names (MPI object naming) and a retired flag (freed windows
// are greyed out and excluded from the Performance Consultant search).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace m2p::core {

enum class ResourceKind {
    Root,
    Category,  ///< /Code, /Machine, /Process, /SyncObject, /SyncObject/Message...
    Module,
    Function,
    Machine,
    Process,
    Communicator,
    MessageTag,
    Window,
};

struct Resource {
    std::string path;     ///< e.g. "/SyncObject/Window/0-1"
    std::string name;     ///< last path component
    std::string display;  ///< user-friendly name (MPI-2 object naming), may be empty
    ResourceKind kind = ResourceKind::Category;
    bool retired = false;
};

/// Thread-safe resource tree keyed by path.
class ResourceHierarchy {
public:
    ResourceHierarchy();

    /// Adds a resource (parents must exist).  Idempotent; returns
    /// false when the path was already present.
    bool add(const std::string& path, ResourceKind kind);
    bool exists(const std::string& path) const;
    Resource get(const std::string& path) const;  ///< throws on missing path

    /// Records the MPI-2 user name for an object; shows as
    /// `name "display"` in renderings.
    void set_display(const std::string& path, const std::string& display);
    /// Greys out a deallocated resource; the Performance Consultant
    /// skips retired resources when refining.
    void retire(const std::string& path);

    /// Direct children, sorted.  @p include_retired keeps greyed-out
    /// entries (the UI shows them; the PC search does not).
    std::vector<std::string> children(const std::string& path,
                                      bool include_retired = true) const;

    std::size_t size() const;

    /// ASCII rendering of the subtree at @p root (the Fig 23 view).
    std::string render(const std::string& root = "/") const;

    /// Last path component of @p path.
    static std::string leaf(const std::string& path);
    /// Parent path ("/" for top-level entries).
    static std::string parent(const std::string& path);

private:
    mutable std::mutex mu_;
    std::map<std::string, Resource> nodes_;
};

/// A focus: one selection per hierarchy axis (paper: "the focus
/// specifies what parts of the application to include").  The Code
/// axis may descend through nested functions
/// ("/Code/app/Gsend_message/MPI_Send" = time in MPI_Send while
/// inside Gsend_message), which is how the Performance Consultant's
/// drill-downs compose.
struct Focus {
    std::string code = "/Code";
    std::string machine = "/Machine";
    std::string process = "/Process";
    std::string syncobj = "/SyncObject";

    bool is_whole_program() const;
    std::string to_string() const;
    bool operator==(const Focus&) const = default;
};

}  // namespace m2p::core
