// The Performance Consultant (paper sections 1, 4, 5): Paradyn's
// automated bottleneck search.  It forms hypotheses (here the three
// the paper's results exercise: ExcessiveSyncWaitingTime,
// ExcessiveIOBlockingTime, CPUBound), tests each on a focus by
// instantiating the corresponding metric-focus pair for an evaluation
// interval, and refines true hypotheses along the resource
// hierarchy's axes -- drilling from Whole Program through modules and
// functions on the Code axis, through communicators / tags / barriers
// / RMA windows on the SyncObject axis, and through processes.
//
// The output is the "condensed form of the PC's findings" the paper's
// figures show: the tree of hypotheses that tested true.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "core/resources.hpp"
#include "core/tool.hpp"

namespace m2p::core {

struct PCNode {
    std::string hypothesis;
    Focus focus;
    double value = 0.0;      ///< measured normalized value (per-process)
    double threshold = 0.0;
    bool tested = false;     ///< program may end before deep nodes run
    bool tested_true = false;
    /// A rank died during this node's evaluation interval, so the
    /// measured value covers a shrinking process set.
    bool truncated = false;
    std::vector<std::unique_ptr<PCNode>> children;
};

struct PCReport {
    std::vector<std::unique_ptr<PCNode>> roots;
    int experiments_run = 0;
    /// Experiments that completed cleanly (no mid-experiment death)
    /// after the run had already lost ranks: the search kept producing
    /// trustworthy survivor measurements instead of truncating.
    int post_loss_experiments = 0;
    double search_seconds = 0.0;
    /// How the measured application run ended (filled by
    /// Session::run_with_consultant; default-Completed otherwise).
    RunOutcome outcome;

    /// True when some true-tested node with @p hypothesis has a focus
    /// whose string contains @p focus_substr (tests/benches use this
    /// to assert the paper's findings).
    bool found(const std::string& hypothesis, const std::string& focus_substr) const;
};

class PerformanceConsultant {
public:
    struct Options {
        double eval_interval = 0.12;  ///< seconds each experiment runs
        int max_batch = 8;            ///< concurrent experiments (cost cap)
        int max_depth = 5;
        bool refine_processes = true;
        /// Also refine along /Machine (the paper's condensed outputs
        /// map hostnames to "node k"); off by default to keep the
        /// condensed tree in the figures' shape.
        bool refine_machines = false;
        int max_children_per_axis = 8;
        /// Thresholds; negative = take from the MDL tunable constants
        /// (PC_SyncThreshold / PC_IoThreshold / PC_CpuThreshold).
        double sync_threshold = -1.0;
        double io_threshold = -1.0;
        double cpu_threshold = -1.0;
        double max_search_seconds = 30.0;
    };

    PerformanceConsultant(PerfTool& tool, Options opts);
    explicit PerformanceConsultant(PerfTool& tool)
        : PerformanceConsultant(tool, Options{}) {}

    /// Runs the search while @p still_running returns true (typically
    /// "the application has not finished").
    PCReport search(const std::function<bool()>& still_running);

    /// The condensed textual findings (the paper's figure format).
    static std::string render_condensed(const PCReport& report,
                                        bool include_false_roots = true);

private:
    struct HypothesisDef {
        std::string name;
        std::string metric;
        double threshold;
    };

    double evaluate_batch(std::vector<PCNode*>& batch,
                          const std::function<bool()>& still_running);
    std::vector<std::unique_ptr<PCNode>> refine(const PCNode& node);
    void refine_code_axis(const PCNode& node, std::vector<std::unique_ptr<PCNode>>* out);
    void refine_syncobj_axis(const PCNode& node,
                             std::vector<std::unique_ptr<PCNode>>* out);
    void refine_process_axis(const PCNode& node,
                             std::vector<std::unique_ptr<PCNode>>* out);
    void refine_machine_axis(const PCNode& node,
                             std::vector<std::unique_ptr<PCNode>>* out);
    const HypothesisDef& hypothesis(const std::string& name) const;

    PerfTool& tool_;
    Options opts_;
    std::vector<HypothesisDef> hypotheses_;
};

}  // namespace m2p::core
