// AST for the Metric Description Language (MDL) and the PCL subset.
//
// MDL is the language Paradyn users extend the tool with; the paper's
// entire RMA metric suite (Table 1) is written in it, and Figure 2
// shows four definitions verbatim.  This module parses that syntax:
//
//   metric mpi_rma_put_ops {
//     name "rma_put_ops"; units ops; aggregateOperator sum;
//     style EventCounter; flavor { mpi }; unitstype unnormalized;
//     constraint moduleConstraint; constraint mpi_windowConstraint;
//     base is counter {
//       foreach func in mpi_put {
//         append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
//       }
//     }
//   }
//
//   constraint mpi_windowConstraint /SyncObject/Window is counter { ... }
//
// plus the PCL daemon/tunable declarations the paper touches (the new
// optional daemon attribute naming the MPI implementation).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace m2p::mdl {

enum class UnitsType { Unnormalized, Normalized, Sampled };
enum class BaseType { Counter, WallTimer, ProcTimer };
enum class PointPos { Entry, Return };
enum class InsertMode { Append, Prepend };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind {
        Number,        ///< 42
        Ident,         ///< counter or timer variable
        Arg,           ///< $arg[k]
        ConstraintArg, ///< $constraint[k]
        Call,          ///< DYNINSTWindow_FindUniqueId($arg[7])
        AddressOf,     ///< &bytes (out-parameter of a call)
        Binary,        ///< a * b, a + b, a == b, a != b
    };
    Kind kind = Kind::Number;
    long long number = 0;
    std::string ident;        ///< Ident / AddressOf / Call callee
    int index = 0;            ///< Arg / ConstraintArg
    std::vector<ExprPtr> call_args;
    std::string op;           ///< Binary operator
    ExprPtr lhs, rhs;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    enum class Kind {
        Increment,  ///< x++;
        Assign,     ///< x = expr;
        AddAssign,  ///< x += expr;
        If,         ///< if (expr) stmt
        Call,       ///< startWallTimer(x); MPI_Type_size($arg[2], &bytes);
    };
    Kind kind = Kind::Increment;
    std::string target;
    ExprPtr value;  ///< Assign/AddAssign rhs, If condition
    StmtPtr body;   ///< If body
    ExprPtr call;   ///< Call expression
};

/// One `append|prepend preinsn func.entry|func.return [constrained] (* ... *)`.
struct InstPoint {
    InsertMode mode = InsertMode::Append;
    PointPos pos = PointPos::Entry;
    bool constrained = false;
    std::vector<StmtPtr> code;
};

/// One `foreach func in <set> { ... }` block.
struct Foreach {
    std::string funcset;
    std::vector<InstPoint> points;
};

struct MetricDef {
    std::string id;          ///< MDL identifier (also the primary variable)
    std::string name;        ///< display name ("rma_put_ops")
    std::string units;
    std::string aggregate_op = "sum";
    std::string style = "EventCounter";
    std::vector<std::string> flavors;
    UnitsType unitstype = UnitsType::Unnormalized;
    std::vector<std::string> constraints;  ///< allowed constraint ids
    std::vector<std::string> counters;     ///< auxiliary counter declarations
    BaseType base = BaseType::Counter;
    std::vector<Foreach> foreachs;
};

struct ConstraintDef {
    std::string id;    ///< also the per-thread flag variable name
    std::string path;  ///< resource hierarchy path, e.g. /SyncObject/Window
    std::vector<Foreach> foreachs;
};

/// PCL daemon definition; the paper adds the optional attribute that
/// names the MPI implementation (for non-shared-filesystem support).
struct DaemonDef {
    std::string id;
    std::map<std::string, std::string> attrs;  ///< command, flavor, mpi_implementation, ...
};

struct MdlFile {
    std::vector<MetricDef> metrics;
    std::vector<ConstraintDef> constraints;
    std::vector<DaemonDef> daemons;
    std::map<std::string, double> tunables;  ///< PCL tunable constants

    const MetricDef* find_metric(const std::string& name_or_id) const;
    const ConstraintDef* find_constraint(const std::string& id) const;
    const DaemonDef* find_daemon(const std::string& id) const;
};

/// Parses MDL/PCL source.  Throws mdl::ParseError with a line-numbered
/// message on malformed input.
MdlFile parse(const std::string& source);

struct ParseError : std::runtime_error {
    explicit ParseError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace m2p::mdl
