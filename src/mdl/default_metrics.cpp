#include "mdl/default_metrics.hpp"

namespace m2p::mdl {

const std::string& default_metrics_source() {
    static const std::string src = R"MDL(
// ===========================================================================
// Default metric definition file (MDL), including the MPI-2 RMA metric
// suite of Table 1 in "Performance Tool Support for MPI-2 on Linux".
// ===========================================================================

// --------------------------------------------------------------------------
// Daemon definitions (PCL).  The optional mpi_implementation attribute is
// the paper's addition for supporting both LAM and MPICH on clusters with
// non-shared filesystems.
// --------------------------------------------------------------------------
daemon pd_lam   { command "paradynd"; flavor mpi; mpi_implementation "lam"; }
daemon pd_mpich { command "paradynd"; flavor mpi; mpi_implementation "mpich"; }

// Performance Consultant tunables.
tunable_constant PC_SyncThreshold 0.2;
tunable_constant PC_IoThreshold 0.2;
tunable_constant PC_CpuThreshold 0.3;

// --------------------------------------------------------------------------
// Resource constraints
// --------------------------------------------------------------------------

// Restrict a metric to one procedure (the focused function).
constraint procedureConstraint /Code is counter {
    foreach func in focus_procedure {
        prepend preinsn func.entry  (* procedureConstraint = 1; *)
        append  preinsn func.return (* procedureConstraint = 0; *)
    }
}

// Restrict a metric to one module.
constraint moduleConstraint /Code is counter {
    foreach func in focus_module {
        prepend preinsn func.entry  (* moduleConstraint = 1; *)
        append  preinsn func.return (* moduleConstraint = 0; *)
    }
}

// Restrict a metric to one communicator ($constraint[0] = comm id).
constraint mpi_msgConstraint /SyncObject/Message is counter {
    foreach func in mpi_comm_at5 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[5]) == $constraint[0]) mpi_msgConstraint = 1; *)
        append  preinsn func.return (* mpi_msgConstraint = 0; *)
    }
    foreach func in mpi_comm_at10 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[10]) == $constraint[0]) mpi_msgConstraint = 1; *)
        append  preinsn func.return (* mpi_msgConstraint = 0; *)
    }
    foreach func in mpi_comm_at0 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[0]) == $constraint[0]) mpi_msgConstraint = 1; *)
        append  preinsn func.return (* mpi_msgConstraint = 0; *)
    }
    foreach func in mpi_comm_at4 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[4]) == $constraint[0]) mpi_msgConstraint = 1; *)
        append  preinsn func.return (* mpi_msgConstraint = 0; *)
    }
    foreach func in mpi_comm_at6 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[6]) == $constraint[0]) mpi_msgConstraint = 1; *)
        append  preinsn func.return (* mpi_msgConstraint = 0; *)
    }
}

// Restrict a metric to one (communicator, message tag) pair
// ($constraint[0] = comm id, $constraint[1] = tag).
constraint mpi_msgtagConstraint /SyncObject/Message is counter {
    foreach func in mpi_tag_at4 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[5]) == $constraint[0])
                   if ($arg[4] == $constraint[1]) mpi_msgtagConstraint = 1; *)
        append  preinsn func.return (* mpi_msgtagConstraint = 0; *)
    }
    foreach func in mpi_comm_at10 {
        prepend preinsn func.entry
            (* if (DYNINSTComm_FindId($arg[10]) == $constraint[0])
                   if ($arg[4] == $constraint[1]) mpi_msgtagConstraint = 1; *)
        append  preinsn func.return (* mpi_msgtagConstraint = 0; *)
    }
}

// Restrict a metric to barrier operations.
constraint mpi_barrierConstraint /SyncObject/Barrier is counter {
    foreach func in mpi_barrier {
        prepend preinsn func.entry  (* mpi_barrierConstraint = 1; *)
        append  preinsn func.return (* mpi_barrierConstraint = 0; *)
    }
}

// Restrict a metric to one RMA window ($constraint[0] = unique window
// id, the paper's Figure 2 constraint).  The window handle position
// differs per routine, hence one foreach per argument layout.
constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_win_at7 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_at8 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[8]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_at0 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[0]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_at1 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[1]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_at2 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[2]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_at3 {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[3]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append  preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}

// --------------------------------------------------------------------------
// MPI-1 metrics
// --------------------------------------------------------------------------

// Wall-clock time in synchronization operations (message passing,
// barriers, collectives, waits) per unit time.
metric mpi_sync_wait {
    name "sync_wait_inclusive";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgtagConstraint;
    constraint mpi_barrierConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_sync_calls {
            append  preinsn func.entry  constrained (* startWallTimer(mpi_sync_wait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_sync_wait); *)
        }
    }
}

// Wall-clock time blocked in I/O calls (read/write) per unit time --
// what makes MPICH's socket transport visible (paper Fig 3).
metric mpi_io_wait {
    name "io_wait_inclusive";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_fileConstraint;
    base is walltimer {
        foreach func in io_calls {
            append  preinsn func.entry  constrained (* startWallTimer(mpi_io_wait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_io_wait); *)
        }
    }
}

// CPU time spent inside the focused procedure (inclusive).
metric cpu_inclusive {
    name "cpu_inclusive";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is proctimer {
        foreach func in app_procedures {
            append  preinsn func.entry  constrained (* startProcTimer(cpu_inclusive); *)
            prepend preinsn func.return constrained (* stopProcTimer(cpu_inclusive); *)
        }
    }
}

// Point-to-point message bytes sent per unit time.
metric mpi_bytes_sent {
    name "msg_bytes_sent";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgtagConstraint;
    counter bytes;
    base is counter {
        foreach func in mpi_send_layout12 {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes); mpi_bytes_sent += bytes * $arg[1]; *)
        }
    }
}

// Point-to-point message bytes received per unit time.
metric mpi_bytes_recv {
    name "msg_bytes_recv";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgtagConstraint;
    counter bytes;
    base is counter {
        foreach func in mpi_recv_layout12 {
            append preinsn func.return constrained
                (* MPI_Type_size($arg[2], &bytes); mpi_bytes_recv += bytes * $arg[1]; *)
        }
        foreach func in mpi_comm_at10 {
            append preinsn func.return constrained
                (* MPI_Type_size($arg[7], &bytes); mpi_bytes_recv += bytes * $arg[6]; *)
        }
    }
}

// Point-to-point messages sent per unit time.
metric mpi_msgs_sent {
    name "msgs_sent";
    units msgs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgtagConstraint;
    base is counter {
        foreach func in mpi_send_layout12 {
            append preinsn func.entry constrained (* mpi_msgs_sent++; *)
        }
    }
}

// --------------------------------------------------------------------------
// MPI-2 RMA metrics (Table 1 of the paper; rma_put_ops, rma_put_bytes
// and rma_sync_wait follow Figure 2)
// --------------------------------------------------------------------------

metric mpi_rma_put_ops {
    name "rma_put_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
        }
    }
}

metric mpi_rma_get_ops {
    name "rma_get_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_get {
            append preinsn func.entry constrained (* mpi_rma_get_ops++; *)
        }
    }
}

metric mpi_rma_acc_ops {
    name "rma_acc_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_acc {
            append preinsn func.entry constrained (* mpi_rma_acc_ops++; *)
        }
    }
}

metric mpi_rma_ops {
    name "rma_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_rma_data {
            append preinsn func.entry constrained (* mpi_rma_ops++; *)
        }
    }
}

metric mpi_rma_put_bytes {
    name "rma_put_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_put_bytes += bytes * count; *)
        }
    }
}

metric mpi_rma_get_bytes {
    name "rma_get_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_get {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_get_bytes += bytes * count; *)
        }
    }
}

metric mpi_rma_acc_bytes {
    name "rma_acc_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_acc {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_acc_bytes += bytes * count; *)
        }
    }
}

metric mpi_rma_bytes {
    name "rma_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_rma_data {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_bytes += bytes * count; *)
        }
    }
}

// Wall clock time in active target RMA synchronization routines.
metric mpi_at_rma_sync_wait {
    name "at_rma_sync_wait";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_at_rma_sync {
            append  preinsn func.entry  constrained (* startWallTimer(mpi_at_rma_sync_wait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_at_rma_sync_wait); *)
        }
    }
}

// Wall clock time in passive target RMA synchronization routines.
metric mpi_pt_rma_sync_wait {
    name "pt_rma_sync_wait";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_pt_rma_sync {
            append  preinsn func.entry  constrained (* startWallTimer(mpi_pt_rma_sync_wait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_pt_rma_sync_wait); *)
        }
    }
}

// Wall clock time in all RMA synchronization routines (Figure 2's
// rma_sync_wait definition).
metric mpi_rma_syncwait {
    name "rma_sync_wait";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint procedureConstraint;
    constraint moduleConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_rma_sync {
            append  preinsn func.entry  constrained (* startWallTimer(mpi_rma_syncwait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpi_rma_syncwait); *)
        }
        foreach func in mpi_all_calls {
        }
    }
}

// --------------------------------------------------------------------------
// MPI-I/O metrics (the remaining MPI-2 feature the paper's conclusion
// lists as in-progress: operation counts, bytes moved, and time blocked
// in parallel file access, constrainable to one file)
// --------------------------------------------------------------------------

// Restrict a metric to one open file ($constraint[0] = file handle id).
constraint mpi_fileConstraint /SyncObject/File is counter {
    foreach func in mpi_file_handle_at0 {
        prepend preinsn func.entry
            (* if ($arg[0] == $constraint[0]) mpi_fileConstraint = 1; *)
        append  preinsn func.return (* mpi_fileConstraint = 0; *)
    }
}

metric mpiio_ops {
    name "mpiio_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_fileConstraint;
    base is counter {
        foreach func in mpi_file_data_ops {
            append preinsn func.entry constrained (* mpiio_ops++; *)
        }
    }
}

metric mpiio_bytes_written {
    name "mpiio_bytes_written";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_fileConstraint;
    counter bytes;
    base is counter {
        foreach func in mpi_file_writes_rw {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[3], &bytes);
                   mpiio_bytes_written += bytes * $arg[2]; *)
        }
        foreach func in mpi_file_writes_at {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[4], &bytes);
                   mpiio_bytes_written += bytes * $arg[3]; *)
        }
    }
}

metric mpiio_bytes_read {
    name "mpiio_bytes_read";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_fileConstraint;
    counter bytes;
    base is counter {
        foreach func in mpi_file_reads_rw {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[3], &bytes);
                   mpiio_bytes_read += bytes * $arg[2]; *)
        }
        foreach func in mpi_file_reads_at {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[4], &bytes);
                   mpiio_bytes_read += bytes * $arg[3]; *)
        }
    }
}

// Wall-clock time in MPI-I/O routines per unit time.
metric mpiio_wait {
    name "mpiio_wait";
    units CPUs;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype normalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_fileConstraint;
    base is walltimer {
        foreach func in mpi_file_all_calls {
            append  preinsn func.entry  constrained (* startWallTimer(mpiio_wait); *)
            prepend preinsn func.return constrained (* stopWallTimer(mpiio_wait); *)
        }
    }
}

// Count of RMA synchronization operations per unit time.
metric mpi_rma_sync_ops {
    name "rma_sync_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_rma_sync_routines {
            append preinsn func.entry constrained (* mpi_rma_sync_ops++; *)
        }
    }
}
)MDL";
    return src;
}

}  // namespace m2p::mdl
