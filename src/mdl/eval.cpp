#include "mdl/eval.hpp"

#include "util/clock.hpp"

namespace m2p::mdl {

CtxKey current_ctx_key() {
    const int r = instr::current_rank();
    if (r >= 0) return CtxKey{r, {}};
    return CtxKey{-1, std::this_thread::get_id()};
}

// ---------------------------------------------------------------------------
// ConstraintInstance
// ---------------------------------------------------------------------------

ConstraintInstance::ConstraintInstance(std::string flag_var,
                                       std::vector<std::int64_t> bindings)
    : flag_var_(std::move(flag_var)), bindings_(std::move(bindings)) {}

std::int64_t ConstraintInstance::binding(int k) const {
    if (k < 0 || static_cast<std::size_t>(k) >= bindings_.size())
        throw CompileError("$constraint[" + std::to_string(k) + "] out of range");
    return bindings_[static_cast<std::size_t>(k)];
}

bool ConstraintInstance::flag() const {
    std::lock_guard lk(mu_);
    const auto it = flags_.find(current_ctx_key());
    return it != flags_.end() && it->second != 0;
}

void ConstraintInstance::set_flag(std::int64_t v) {
    std::lock_guard lk(mu_);
    std::int64_t& depth = flags_[current_ctx_key()];
    if (v != 0)
        ++depth;
    else if (depth > 0)
        --depth;
}

// ---------------------------------------------------------------------------
// MetricInstance
// ---------------------------------------------------------------------------

MetricInstance::MetricInstance(std::string primary_var, BaseType base, MetricSink sink)
    : primary_var_(std::move(primary_var)), base_(base), sink_(std::move(sink)) {}

std::int64_t MetricInstance::get_var(const std::string& name) const {
    std::lock_guard lk(mu_);
    const auto tit = scratch_.find(current_ctx_key());
    if (tit == scratch_.end()) return 0;
    const auto it = tit->second.find(name);
    return it == tit->second.end() ? 0 : it->second;
}

void MetricInstance::set_var(const std::string& name, std::int64_t v) {
    std::lock_guard lk(mu_);
    scratch_[current_ctx_key()][name] = v;
}

void MetricInstance::add_primary(double now, double delta) {
    if (sink_) sink_(now, delta);
}

void MetricInstance::start_timer(const std::string& name, bool proc_time) {
    // rank_cpu_seconds, not thread_cpu_seconds: timer state is keyed
    // per rank (CtxKey) because a fiber rank can migrate workers
    // between start and stop; the clock reads must be per-rank too or
    // the delta subtracts two different threads' CPU clocks.
    const double now = proc_time ? util::rank_cpu_seconds() : util::wall_seconds();
    std::lock_guard lk(mu_);
    TimerState& t = timers_[name][current_ctx_key()];
    if (t.nest++ == 0) t.start = now;
}

void MetricInstance::stop_timer(const std::string& name, bool proc_time) {
    const double now_t = proc_time ? util::rank_cpu_seconds() : util::wall_seconds();
    double delta = -1.0;
    {
        std::lock_guard lk(mu_);
        TimerState& t = timers_[name][current_ctx_key()];
        if (t.nest == 0) return;  // stop without start: ignore
        if (--t.nest == 0) delta = now_t - t.start;
    }
    if (delta >= 0.0 && name == primary_var_) add_primary(util::wall_seconds(), delta);
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {

struct EvalCtx {
    const instr::CallContext* call = nullptr;
    MetricInstance* inst = nullptr;
    /// Set while executing a constraint's own code: assignments to the
    /// constraint id update the per-thread flag.
    ConstraintInstance* self = nullptr;
    Services* services = nullptr;
};

std::int64_t eval_expr(const Expr& e, EvalCtx& cx);

std::int64_t eval_call(const Expr& e, EvalCtx& cx) {
    if (e.ident == "MPI_Type_size") {
        // MPI_Type_size(dtype_expr, &out): out-parameter form.
        if (e.call_args.size() != 2 || e.call_args[1]->kind != Expr::Kind::AddressOf)
            throw CompileError("MPI_Type_size expects (expr, &counter)");
        const std::int64_t v = cx.services->type_size(eval_expr(*e.call_args[0], cx));
        cx.inst->set_var(e.call_args[1]->ident, v);
        return v;
    }
    if (e.ident == "DYNINSTWindow_FindUniqueId" || e.ident == "DYNINSTTWindow_FindUniqueId") {
        if (e.call_args.size() != 1)
            throw CompileError(e.ident + " expects one argument");
        return cx.services->window_unique_id(eval_expr(*e.call_args[0], cx));
    }
    if (e.ident == "DYNINSTComm_FindId") {
        if (e.call_args.size() != 1)
            throw CompileError("DYNINSTComm_FindId expects one argument");
        return cx.services->comm_unique_id(eval_expr(*e.call_args[0], cx));
    }
    const bool start = e.ident == "startWallTimer" || e.ident == "startProcTimer";
    const bool stop = e.ident == "stopWallTimer" || e.ident == "stopProcTimer";
    if (start || stop) {
        if (e.call_args.size() != 1 || e.call_args[0]->kind != Expr::Kind::Ident)
            throw CompileError(e.ident + " expects a timer identifier");
        const bool proc = e.ident == "startProcTimer" || e.ident == "stopProcTimer";
        if (start)
            cx.inst->start_timer(e.call_args[0]->ident, proc);
        else
            cx.inst->stop_timer(e.call_args[0]->ident, proc);
        return 0;
    }
    throw CompileError("unknown MDL call '" + e.ident + "'");
}

std::int64_t eval_expr(const Expr& e, EvalCtx& cx) {
    switch (e.kind) {
        case Expr::Kind::Number: return e.number;
        case Expr::Kind::Ident: return cx.inst->get_var(e.ident);
        case Expr::Kind::Arg: {
            const auto& args = cx.call->args;
            if (e.index < 0 || static_cast<std::size_t>(e.index) >= args.size())
                return 0;  // instrumented call carries fewer args: benign zero
            return args[static_cast<std::size_t>(e.index)];
        }
        case Expr::Kind::ConstraintArg:
            if (!cx.self) throw CompileError("$constraint[] outside constraint code");
            return cx.self->binding(e.index);
        case Expr::Kind::Call: return eval_call(e, cx);
        case Expr::Kind::AddressOf:
            throw CompileError("'&' only valid as a call out-parameter");
        case Expr::Kind::Binary: {
            const std::int64_t l = eval_expr(*e.lhs, cx);
            const std::int64_t r = eval_expr(*e.rhs, cx);
            if (e.op == "*") return l * r;
            if (e.op == "+") return l + r;
            if (e.op == "==") return l == r ? 1 : 0;
            if (e.op == "!=") return l != r ? 1 : 0;
            throw CompileError("unknown operator '" + e.op + "'");
        }
    }
    return 0;
}

void exec_stmt(const Stmt& s, EvalCtx& cx) {
    switch (s.kind) {
        case Stmt::Kind::Increment:
            if (s.target == cx.inst->primary_var())
                cx.inst->add_primary(util::wall_seconds(), 1.0);
            else if (cx.self && s.target == cx.self->flag_var())
                cx.self->set_flag(1);
            else
                cx.inst->set_var(s.target, cx.inst->get_var(s.target) + 1);
            break;
        case Stmt::Kind::Assign: {
            const std::int64_t v = eval_expr(*s.value, cx);
            if (cx.self && s.target == cx.self->flag_var())
                cx.self->set_flag(v);
            else if (s.target == cx.inst->primary_var())
                cx.inst->add_primary(util::wall_seconds(), static_cast<double>(v));
            else
                cx.inst->set_var(s.target, v);
            break;
        }
        case Stmt::Kind::AddAssign: {
            const std::int64_t v = eval_expr(*s.value, cx);
            if (s.target == cx.inst->primary_var())
                cx.inst->add_primary(util::wall_seconds(), static_cast<double>(v));
            else if (cx.self && s.target == cx.self->flag_var())
                cx.self->set_flag(v);
            else
                cx.inst->set_var(s.target, cx.inst->get_var(s.target) + v);
            break;
        }
        case Stmt::Kind::If:
            if (eval_expr(*s.value, cx) != 0) exec_stmt(*s.body, cx);
            break;
        case Stmt::Kind::Call: eval_call(*s.call, cx); break;
    }
}

/// Compile-time validation pass: surfaces unknown calls/operators
/// before any instrumentation is inserted.
void validate_stmt(const Stmt& s);

void validate_expr(const Expr& e) {
    switch (e.kind) {
        case Expr::Kind::Call: {
            static const char* known[] = {"MPI_Type_size",
                                          "DYNINSTWindow_FindUniqueId",
                                          "DYNINSTTWindow_FindUniqueId",
                                          "DYNINSTComm_FindId",
                                          "startWallTimer",
                                          "stopWallTimer",
                                          "startProcTimer",
                                          "stopProcTimer"};
            bool ok = false;
            for (const char* k : known) ok = ok || e.ident == k;
            if (!ok) throw CompileError("unknown MDL call '" + e.ident + "'");
            for (const auto& a : e.call_args)
                if (a->kind != Expr::Kind::AddressOf) validate_expr(*a);
            break;
        }
        case Expr::Kind::Binary:
            validate_expr(*e.lhs);
            validate_expr(*e.rhs);
            break;
        default: break;
    }
}

void validate_stmt(const Stmt& s) {
    if (s.value) validate_expr(*s.value);
    if (s.call) validate_expr(*s.call);
    if (s.body) validate_stmt(*s.body);
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

CompiledMetric compile_metric(instr::Registry& reg, const MetricDef& metric,
                              const std::vector<ConstraintBinding>& bindings,
                              std::shared_ptr<Services> services,
                              const FuncSetResolver& resolver, MetricSink sink,
                              EventGate gate) {
    for (const auto& fe : metric.foreachs)
        for (const auto& p : fe.points)
            for (const auto& st : p.code) validate_stmt(*st);
    for (const auto& b : bindings)
        for (const auto& fe : b.def->foreachs)
            for (const auto& p : fe.points)
                for (const auto& st : p.code) validate_stmt(*st);

    CompiledMetric cm;
    cm.instance =
        std::make_shared<MetricInstance>(metric.id, metric.base, std::move(sink));

    // Instantiate constraints first so their flag-setting snippets are
    // in place before metric code consults them.
    for (const auto& b : bindings) {
        auto ci = std::make_shared<ConstraintInstance>(b.def->id, b.values);
        cm.constraints.push_back(ci);
        for (const auto& fe : b.def->foreachs) {
            const auto ov = b.set_overrides.find(fe.funcset);
            const std::vector<instr::FuncId> funcs =
                ov != b.set_overrides.end() ? ov->second : resolver(fe.funcset);
            for (const auto& p : fe.points) {
                for (instr::FuncId f : funcs) {
                    auto snip = [inst = cm.instance, ci, services,
                                 stmts = &p.code](const instr::CallContext& ctx) {
                        EvalCtx cx{&ctx, inst.get(), ci.get(), services.get()};
                        for (const auto& st : *stmts) exec_stmt(*st, cx);
                    };
                    cm.handles.push_back(
                        reg.insert(f,
                                   p.pos == PointPos::Entry ? instr::Where::Entry
                                                            : instr::Where::Return,
                                   std::move(snip), p.mode == InsertMode::Prepend));
                }
            }
        }
    }

    for (const auto& fe : metric.foreachs) {
        const std::vector<instr::FuncId> funcs = resolver(fe.funcset);
        for (const auto& p : fe.points) {
            for (instr::FuncId f : funcs) {
                auto snip = [inst = cm.instance, services, gate,
                             gates = p.constrained ? cm.constraints
                                                   : std::vector<std::shared_ptr<
                                                         ConstraintInstance>>{},
                             constrained = p.constrained,
                             stmts = &p.code](const instr::CallContext& ctx) {
                    if (gate && !gate(ctx)) return;
                    if (constrained) {
                        for (const auto& ci : gates)
                            if (!ci->flag()) return;
                    }
                    EvalCtx cx{&ctx, inst.get(), nullptr, services.get()};
                    for (const auto& st : *stmts) exec_stmt(*st, cx);
                };
                cm.handles.push_back(
                    reg.insert(f,
                               p.pos == PointPos::Entry ? instr::Where::Entry
                                                        : instr::Where::Return,
                               std::move(snip), p.mode == InsertMode::Prepend));
            }
        }
    }
    return cm;
}

void uninstall(instr::Registry& reg, CompiledMetric& cm) {
    for (const auto& h : cm.handles) reg.remove(h);
    cm.handles.clear();
}

}  // namespace m2p::mdl
