// MDL compilation: turns a parsed MetricDef plus constraint bindings
// into instrumentation snippets inserted into the Registry, exactly
// Paradyn's metric-focus instantiation step.  The metric's primary
// variable feeds a MetricSink (the tool connects it to a folding
// histogram); constraint code maintains per-thread flags that gate
// `constrained` metric code, as in the paper's Figure 2.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "instr/registry.hpp"
#include "mdl/ast.hpp"

namespace m2p::mdl {

struct CompileError : std::runtime_error {
    explicit CompileError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Runtime services MDL built-in calls resolve against.  Implemented
/// by the tool daemon on top of simmpi.
class Services {
public:
    virtual ~Services() = default;
    /// MPI_Type_size($arg[k], &bytes)
    virtual std::int64_t type_size(std::int64_t datatype_handle) const = 0;
    /// DYNINSTWindow_FindUniqueId($arg[k]) -- the tool-unique id of an
    /// RMA window handle (paper section 4.2.1's N-M scheme).
    virtual std::int64_t window_unique_id(std::int64_t win_handle) const = 0;
    /// DYNINSTComm_FindId($arg[k]) -- identity of a communicator handle.
    virtual std::int64_t comm_unique_id(std::int64_t comm_handle) const = 0;
};

/// Receives primary-variable deltas: (wall-clock now, delta).
using MetricSink = std::function<void(double now, double delta)>;

/// Native gate evaluated before metric code runs; the tool uses it for
/// process/machine foci (filter by executing rank).  May be empty.
using EventGate = std::function<bool(const instr::CallContext&)>;

/// Resolves MDL function-set names ("mpi_put", "mpi_rma_sync", ...) to
/// registered functions.  The tool owns the set definitions.
using FuncSetResolver = std::function<std::vector<instr::FuncId>(const std::string&)>;

/// Key identifying the execution context that owns per-context MDL
/// state (constraint nesting flags, scratch variables, timer nests).
/// simmpi ranks run as fibers migrating across scheduler worker
/// threads, so thread identity alone would both mix two ranks sharing
/// a worker and lose a rank's state when it moves.  Rank identity
/// (carried in the fiber's migrated instr context) keys rank state;
/// non-rank tool threads fall back to their thread id.
struct CtxKey {
    int rank = -1;
    std::thread::id tid{};
    bool operator<(const CtxKey& o) const {
        return rank != o.rank ? rank < o.rank : tid < o.tid;
    }
};

/// The calling context's key: {rank, default id} on a rank, {-1,
/// this thread's id} elsewhere.
CtxKey current_ctx_key();

/// Per-context flag state of one instantiated resource constraint.
///
/// Flags are nesting *depths*: MDL's `X = 1` at a function entry
/// increments and `X = 0` at its return decrements (clamped at zero),
/// so a module constraint stays set across nested library calls
/// (MPI_Win_fence -> PMPI_Barrier -> PMPI_Sendrecv) and clears only
/// when the outermost constrained frame returns.
class ConstraintInstance {
public:
    ConstraintInstance(std::string flag_var, std::vector<std::int64_t> bindings);

    const std::string& flag_var() const { return flag_var_; }
    std::int64_t binding(int k) const;  ///< $constraint[k]
    bool flag() const;                  ///< this context's depth > 0
    /// Nonzero v: push one nesting level; zero: pop one (clamped).
    void set_flag(std::int64_t v);

private:
    std::string flag_var_;
    std::vector<std::int64_t> bindings_;
    mutable std::mutex mu_;
    std::map<CtxKey, std::int64_t> flags_;
};

/// Counter / timer environment of one instantiated metric.
class MetricInstance {
public:
    MetricInstance(std::string primary_var, BaseType base, MetricSink sink);

    const std::string& primary_var() const { return primary_var_; }
    BaseType base() const { return base_; }

    // Scratch counters are per-context (each rank computes its own
    // `bytes`/`count` temporaries).
    std::int64_t get_var(const std::string& name) const;
    void set_var(const std::string& name, std::int64_t v);
    void add_primary(double now, double delta);

    void start_timer(const std::string& name, bool proc_time);
    void stop_timer(const std::string& name, bool proc_time);

private:
    struct TimerState {
        int nest = 0;
        double start = 0.0;
    };

    std::string primary_var_;
    BaseType base_;
    MetricSink sink_;
    mutable std::mutex mu_;
    std::map<CtxKey, std::map<std::string, std::int64_t>> scratch_;
    std::map<std::string, std::map<CtxKey, TimerState>> timers_;
};

/// A constraint to instantiate alongside a metric: the definition plus
/// the focus-resolved $constraint[] values.  `set_overrides` lets the
/// caller bind focus-dependent function sets (e.g. `focus_procedure`)
/// differently per binding, which is how nested Code-axis drill-downs
/// ("time in MPI_Send while inside Gsend_message") instantiate the
/// same procedureConstraint twice.
struct ConstraintBinding {
    const ConstraintDef* def = nullptr;
    std::vector<std::int64_t> values;
    std::map<std::string, std::vector<instr::FuncId>> set_overrides;
};

/// Everything a live metric-focus instantiation owns.  Destroying it
/// does NOT remove instrumentation; call uninstall() first (Paradyn's
/// instrumentation deletion).
struct CompiledMetric {
    std::vector<instr::SnippetHandle> handles;
    std::shared_ptr<MetricInstance> instance;
    std::vector<std::shared_ptr<ConstraintInstance>> constraints;
};

/// Compiles and inserts instrumentation for @p metric constrained by
/// @p bindings.  Throws CompileError on unknown calls or function sets.
CompiledMetric compile_metric(instr::Registry& reg, const MetricDef& metric,
                              const std::vector<ConstraintBinding>& bindings,
                              std::shared_ptr<Services> services,
                              const FuncSetResolver& resolver, MetricSink sink,
                              EventGate gate = {});

/// Removes every snippet the compilation inserted.
void uninstall(instr::Registry& reg, CompiledMetric& cm);

}  // namespace m2p::mdl
