// Hand-written lexer + recursive-descent parser for MDL/PCL.
#include <cctype>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "mdl/ast.hpp"

namespace m2p::mdl {

namespace {

enum class Tok {
    End,
    Ident,
    Number,
    String,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Amp,
    Star,
    Plus,
    Eq,        // =
    EqEq,      // ==
    NotEq,     // !=
    PlusPlus,  // ++
    PlusEq,    // +=
    Dollar,
    CodeOpen,   // (*
    CodeClose,  // *)
};

struct Token {
    Tok kind = Tok::End;
    std::string text;
    long long number = 0;
    double real = 0.0;  ///< decimal value (tunable constants allow fractions)
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& src) : src_(src) {}

    Token next() {
        skip_ws_and_comments();
        Token t;
        t.line = line_;
        if (pos_ >= src_.size()) return t;
        const char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                ++pos_;
            t.kind = Tok::Ident;
            t.text = src_.substr(start, pos_ - start);
            return t;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_])))
                ++pos_;
            if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
                std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
                ++pos_;
                while (pos_ < src_.size() &&
                       std::isdigit(static_cast<unsigned char>(src_[pos_])))
                    ++pos_;
            }
            t.kind = Tok::Number;
            t.text = src_.substr(start, pos_ - start);
            t.real = std::stod(t.text);
            t.number = static_cast<long long>(t.real);
            return t;
        }
        if (c == '"') {
            ++pos_;
            std::size_t start = pos_;
            while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
            if (pos_ >= src_.size()) fail("unterminated string literal");
            t.kind = Tok::String;
            t.text = src_.substr(start, pos_ - start);
            ++pos_;
            return t;
        }
        // Resource hierarchy paths appear bare in constraint headers:
        //   constraint mpi_windowConstraint /SyncObject/Window is counter
        if (c == '/') {
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '/' || src_[pos_] == '_'))
                ++pos_;
            t.kind = Tok::Ident;
            t.text = src_.substr(start, pos_ - start);
            return t;
        }
        auto two = [&](char a, char b) {
            return c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
        };
        if (two('(', '*')) {
            pos_ += 2;
            t.kind = Tok::CodeOpen;
            return t;
        }
        if (two('*', ')')) {
            pos_ += 2;
            t.kind = Tok::CodeClose;
            return t;
        }
        if (two('+', '+')) {
            pos_ += 2;
            t.kind = Tok::PlusPlus;
            return t;
        }
        if (two('+', '=')) {
            pos_ += 2;
            t.kind = Tok::PlusEq;
            return t;
        }
        if (two('=', '=')) {
            pos_ += 2;
            t.kind = Tok::EqEq;
            return t;
        }
        if (two('!', '=')) {
            pos_ += 2;
            t.kind = Tok::NotEq;
            return t;
        }
        ++pos_;
        switch (c) {
            case '{': t.kind = Tok::LBrace; return t;
            case '}': t.kind = Tok::RBrace; return t;
            case '(': t.kind = Tok::LParen; return t;
            case ')': t.kind = Tok::RParen; return t;
            case '[': t.kind = Tok::LBracket; return t;
            case ']': t.kind = Tok::RBracket; return t;
            case ';': t.kind = Tok::Semi; return t;
            case ',': t.kind = Tok::Comma; return t;
            case '.': t.kind = Tok::Dot; return t;
            case '&': t.kind = Tok::Amp; return t;
            case '*': t.kind = Tok::Star; return t;
            case '+': t.kind = Tok::Plus; return t;
            case '=': t.kind = Tok::Eq; return t;
            case '$': t.kind = Tok::Dollar; return t;
            default: fail(std::string("unexpected character '") + c + "'");
        }
        return t;  // unreachable
    }

    [[noreturn]] void fail(const std::string& msg) const {
        std::ostringstream os;
        os << "MDL parse error (line " << line_ << "): " << msg;
        throw ParseError(os.str());
    }

    int line() const { return line_; }

private:
    void skip_ws_and_comments() {
        for (;;) {
            while (pos_ < src_.size() &&
                   std::isspace(static_cast<unsigned char>(src_[pos_]))) {
                if (src_[pos_] == '\n') ++line_;
                ++pos_;
            }
            if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
                continue;
            }
            if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
                pos_ += 2;
                while (pos_ + 1 < src_.size() &&
                       !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
                    if (src_[pos_] == '\n') ++line_;
                    ++pos_;
                }
                if (pos_ + 1 >= src_.size()) fail("unterminated /* comment");
                pos_ += 2;
                continue;
            }
            return;
        }
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

class Parser {
public:
    explicit Parser(const std::string& src) : lex_(src) { advance(); }

    MdlFile parse_file() {
        MdlFile f;
        while (cur_.kind != Tok::End) {
            const std::string kw = expect_ident("top-level keyword");
            if (kw == "metric") {
                f.metrics.push_back(parse_metric());
            } else if (kw == "constraint") {
                f.constraints.push_back(parse_constraint());
            } else if (kw == "daemon") {
                f.daemons.push_back(parse_daemon());
            } else if (kw == "tunable_constant") {
                const std::string name = expect_ident("tunable name");
                const Token v = expect(Tok::Number, "tunable value");
                f.tunables[name] = v.real;
                expect(Tok::Semi, "';' after tunable");
            } else {
                lex_.fail("unknown top-level keyword '" + kw + "'");
            }
        }
        return f;
    }

private:
    void advance() { cur_ = lex_.next(); }

    Token expect(Tok kind, const std::string& what) {
        if (cur_.kind != kind) lex_.fail("expected " + what);
        Token t = cur_;
        advance();
        return t;
    }

    std::string expect_ident(const std::string& what) {
        return expect(Tok::Ident, what).text;
    }

    bool accept(Tok kind) {
        if (cur_.kind != kind) return false;
        advance();
        return true;
    }

    bool accept_ident(const std::string& word) {
        if (cur_.kind != Tok::Ident || cur_.text != word) return false;
        advance();
        return true;
    }

    MetricDef parse_metric() {
        MetricDef m;
        m.id = expect_ident("metric identifier");
        expect(Tok::LBrace, "'{' after metric id");
        while (!accept(Tok::RBrace)) {
            const std::string kw = expect_ident("metric attribute");
            if (kw == "name") {
                m.name = expect(Tok::String, "metric display name").text;
                expect(Tok::Semi, "';'");
            } else if (kw == "units") {
                m.units = expect_ident("units");
                expect(Tok::Semi, "';'");
            } else if (kw == "aggregateOperator" || kw == "aggregateoperator") {
                m.aggregate_op = expect_ident("aggregate operator");
                expect(Tok::Semi, "';'");
            } else if (kw == "style") {
                m.style = expect_ident("style");
                expect(Tok::Semi, "';'");
            } else if (kw == "flavor") {
                expect(Tok::LBrace, "'{'");
                m.flavors.push_back(expect_ident("flavor"));
                while (accept(Tok::Comma)) m.flavors.push_back(expect_ident("flavor"));
                expect(Tok::RBrace, "'}'");
                expect(Tok::Semi, "';'");
            } else if (kw == "unitstype") {
                const std::string u = expect_ident("unitstype value");
                if (u == "normalized")
                    m.unitstype = UnitsType::Normalized;
                else if (u == "unnormalized")
                    m.unitstype = UnitsType::Unnormalized;
                else if (u == "sampled")
                    m.unitstype = UnitsType::Sampled;
                else
                    lex_.fail("bad unitstype '" + u + "'");
                expect(Tok::Semi, "';'");
            } else if (kw == "constraint") {
                m.constraints.push_back(expect_ident("constraint id"));
                expect(Tok::Semi, "';'");
            } else if (kw == "counter") {
                m.counters.push_back(expect_ident("counter name"));
                expect(Tok::Semi, "';'");
            } else if (kw == "base") {
                if (!accept_ident("is")) lex_.fail("expected 'is' after base");
                const std::string b = expect_ident("base type");
                if (b == "counter")
                    m.base = BaseType::Counter;
                else if (b == "walltimer" || b == "wallTimer")
                    m.base = BaseType::WallTimer;
                else if (b == "proctimer" || b == "procTimer" || b == "processtimer")
                    m.base = BaseType::ProcTimer;
                else
                    lex_.fail("bad base type '" + b + "'");
                expect(Tok::LBrace, "'{'");
                while (!accept(Tok::RBrace)) m.foreachs.push_back(parse_foreach());
            } else {
                lex_.fail("unknown metric attribute '" + kw + "'");
            }
        }
        return m;
    }

    ConstraintDef parse_constraint() {
        ConstraintDef c;
        c.id = expect_ident("constraint identifier");
        const std::string path = expect_ident("resource path");
        if (path.empty() || path[0] != '/')
            lex_.fail("constraint path must start with '/'");
        c.path = path;
        if (!accept_ident("is")) lex_.fail("expected 'is' in constraint");
        if (!accept_ident("counter")) lex_.fail("expected 'counter' in constraint");
        expect(Tok::LBrace, "'{'");
        while (!accept(Tok::RBrace)) c.foreachs.push_back(parse_foreach());
        return c;
    }

    DaemonDef parse_daemon() {
        DaemonDef d;
        d.id = expect_ident("daemon identifier");
        expect(Tok::LBrace, "'{'");
        while (!accept(Tok::RBrace)) {
            const std::string key = expect_ident("daemon attribute");
            std::string value;
            if (cur_.kind == Tok::String)
                value = expect(Tok::String, "value").text;
            else if (cur_.kind == Tok::Ident)
                value = expect_ident("value");
            else if (cur_.kind == Tok::Number)
                value = expect(Tok::Number, "value").text;
            else
                lex_.fail("expected attribute value");
            expect(Tok::Semi, "';'");
            d.attrs[key] = value;
        }
        return d;
    }

    Foreach parse_foreach() {
        if (!accept_ident("foreach")) lex_.fail("expected 'foreach'");
        if (!accept_ident("func")) lex_.fail("expected 'func'");
        if (!accept_ident("in")) lex_.fail("expected 'in'");
        Foreach fe;
        fe.funcset = expect_ident("function set name");
        expect(Tok::LBrace, "'{'");
        while (!accept(Tok::RBrace)) fe.points.push_back(parse_inst_point());
        return fe;
    }

    InstPoint parse_inst_point() {
        InstPoint p;
        const std::string mode = expect_ident("append/prepend");
        if (mode == "append")
            p.mode = InsertMode::Append;
        else if (mode == "prepend")
            p.mode = InsertMode::Prepend;
        else
            lex_.fail("expected 'append' or 'prepend'");
        if (!accept_ident("preinsn")) lex_.fail("expected 'preinsn'");
        if (!accept_ident("func")) lex_.fail("expected 'func'");
        expect(Tok::Dot, "'.'");
        const std::string pos = expect_ident("entry/return");
        if (pos == "entry")
            p.pos = PointPos::Entry;
        else if (pos == "return")
            p.pos = PointPos::Return;
        else
            lex_.fail("expected 'entry' or 'return'");
        if (accept_ident("constrained")) p.constrained = true;
        expect(Tok::CodeOpen, "'(*'");
        while (!accept(Tok::CodeClose)) p.code.push_back(parse_stmt());
        return p;
    }

    StmtPtr parse_stmt() {
        auto s = std::make_unique<Stmt>();
        if (accept_ident("if")) {
            s->kind = Stmt::Kind::If;
            expect(Tok::LParen, "'('");
            s->value = parse_expr();
            expect(Tok::RParen, "')'");
            s->body = parse_stmt();
            return s;
        }
        const std::string id = expect_ident("statement");
        if (cur_.kind == Tok::LParen) {
            // Call statement: startWallTimer(x); MPI_Type_size(...);
            s->kind = Stmt::Kind::Call;
            s->call = parse_call_after_callee(id);
            expect(Tok::Semi, "';'");
            return s;
        }
        s->target = id;
        if (accept(Tok::PlusPlus)) {
            s->kind = Stmt::Kind::Increment;
        } else if (accept(Tok::PlusEq)) {
            s->kind = Stmt::Kind::AddAssign;
            s->value = parse_expr();
        } else if (accept(Tok::Eq)) {
            s->kind = Stmt::Kind::Assign;
            s->value = parse_expr();
        } else {
            lex_.fail("expected '++', '=', '+=' or '(' after identifier");
        }
        expect(Tok::Semi, "';'");
        return s;
    }

    ExprPtr parse_call_after_callee(const std::string& callee) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Call;
        e->ident = callee;
        expect(Tok::LParen, "'('");
        if (cur_.kind != Tok::RParen) {
            e->call_args.push_back(parse_expr());
            while (accept(Tok::Comma)) e->call_args.push_back(parse_expr());
        }
        expect(Tok::RParen, "')'");
        return e;
    }

    // Precedence: * binds tighter than +, which binds tighter than ==/!=.
    ExprPtr parse_expr() { return parse_equality(); }

    ExprPtr parse_equality() {
        ExprPtr lhs = parse_additive();
        while (cur_.kind == Tok::EqEq || cur_.kind == Tok::NotEq) {
            const std::string op = cur_.kind == Tok::EqEq ? "==" : "!=";
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = op;
            e->lhs = std::move(lhs);
            e->rhs = parse_additive();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr parse_additive() {
        ExprPtr lhs = parse_multiplicative();
        while (cur_.kind == Tok::Plus) {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = "+";
            e->lhs = std::move(lhs);
            e->rhs = parse_multiplicative();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr parse_multiplicative() {
        ExprPtr lhs = parse_primary();
        while (cur_.kind == Tok::Star) {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = "*";
            e->lhs = std::move(lhs);
            e->rhs = parse_primary();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr parse_primary() {
        auto e = std::make_unique<Expr>();
        if (cur_.kind == Tok::Number) {
            e->kind = Expr::Kind::Number;
            e->number = cur_.number;
            advance();
            return e;
        }
        if (accept(Tok::Dollar)) {
            const std::string what = expect_ident("arg/constraint after '$'");
            expect(Tok::LBracket, "'['");
            const Token idx = expect(Tok::Number, "index");
            expect(Tok::RBracket, "']'");
            if (what == "arg")
                e->kind = Expr::Kind::Arg;
            else if (what == "constraint")
                e->kind = Expr::Kind::ConstraintArg;
            else
                lex_.fail("expected $arg or $constraint");
            e->index = static_cast<int>(idx.number);
            return e;
        }
        if (accept(Tok::Amp)) {
            e->kind = Expr::Kind::AddressOf;
            e->ident = expect_ident("identifier after '&'");
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr inner = parse_expr();
            expect(Tok::RParen, "')'");
            return inner;
        }
        if (cur_.kind == Tok::Ident) {
            const std::string id = cur_.text;
            advance();
            if (cur_.kind == Tok::LParen) return parse_call_after_callee(id);
            e->kind = Expr::Kind::Ident;
            e->ident = id;
            return e;
        }
        lex_.fail("expected expression");
        return e;  // unreachable
    }

    Lexer lex_;
    Token cur_;
};

}  // namespace

const MetricDef* MdlFile::find_metric(const std::string& name_or_id) const {
    for (const MetricDef& m : metrics)
        if (m.id == name_or_id || m.name == name_or_id) return &m;
    return nullptr;
}

const ConstraintDef* MdlFile::find_constraint(const std::string& id) const {
    for (const ConstraintDef& c : constraints)
        if (c.id == id) return &c;
    return nullptr;
}

const DaemonDef* MdlFile::find_daemon(const std::string& id) const {
    for (const DaemonDef& d : daemons)
        if (d.id == id) return &d;
    return nullptr;
}

MdlFile parse(const std::string& source) { return Parser(source).parse_file(); }

}  // namespace m2p::mdl
