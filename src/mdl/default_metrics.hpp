// The tool's default metric definition file, written in MDL.
//
// It contains the paper's complete Table 1 RMA metric suite (with the
// rma_put_ops / rma_put_bytes / rma_sync_wait definitions following
// Figure 2), the MPI-1 metrics the Performance Consultant needs
// (sync waiting time, I/O blocking time, CPU inclusive time, message
// byte counters), the resource constraints (window, message,
// message-tag, barrier, module, procedure), the PCL daemon
// definitions with the paper's new `mpi_implementation` attribute,
// and the Performance Consultant threshold tunables.
//
// Function-set names are resolved by the tool (core::FuncSets);
// every set resolves to PMPI-level symbols, mirroring how MPICH's
// weak-symbol scheme makes PMPI_* the symbols that actually execute
// (the paper's section 4.1.1 fixed Paradyn's metric definitions for
// exactly this reason).
#pragma once

#include <string>

namespace m2p::mdl {

/// MDL source of the default metric file (embedded so the tool works
/// without a shared filesystem; also installed as config/default_metrics.mdl).
const std::string& default_metrics_source();

}  // namespace m2p::mdl
