// Dynamic-instrumentation substrate (the reproduction's stand-in for
// Dyninst, see DESIGN.md section 2).
//
// Paradyn's model: every function in the application image exposes
// instrumentation *points* (entry, return); at run time the tool
// inserts or deletes *snippets* (small code fragments compiled from
// MDL) at those points.  Here a function is anything registered with
// the Registry -- all simmpi MPI entry points register themselves, and
// application functions opt in with one INSTR_FUNC guard line.
//
// Snippets receive a CallContext giving them the MDL "$arg[k]" view of
// the call plus the executing rank, so metric code like
//     MPI_Type_size($arg[2], &bytes); mpi_rma_put_bytes += bytes * $arg[1];
// compiles to an ordinary closure over this structure.
//
// The dispatch path is the tool-perturbation knob the paper's whole
// evaluation depends on, so it is lock-free (DESIGN.md "fast path"):
// the function table is append-only chunked storage resolved with one
// acquire load, snippet lists are RCU-published snapshot pointers
// reclaimed through hazard pointers, and dispatch statistics are
// sharded into per-thread slots aggregated by stats().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace m2p::instr {

using FuncId = std::uint32_t;
inline constexpr FuncId kInvalidFunc = static_cast<FuncId>(-1);

/// Coarse classification used to resolve MDL function sets
/// ("foreach func in mpi_put { ... }") against the symbol table.
enum class Category : std::uint32_t {
    None = 0,
    MsgSend = 1u << 0,       ///< point-to-point sends (MPI_Send, MPI_Isend, ...)
    MsgRecv = 1u << 1,       ///< point-to-point receives
    MsgSync = 1u << 2,       ///< any blocking message op (sync-wait metric)
    Barrier = 1u << 3,       ///< MPI_Barrier
    Collective = 1u << 4,    ///< collectives (allreduce, bcast, ...)
    RmaPut = 1u << 5,        ///< MPI_Put
    RmaGet = 1u << 6,        ///< MPI_Get
    RmaAcc = 1u << 7,        ///< MPI_Accumulate
    RmaActiveSync = 1u << 8, ///< fence/start/complete/post/wait
    RmaPassiveSync = 1u << 9,///< lock/unlock
    RmaLifetime = 1u << 10,  ///< win_create/win_free
    Io = 1u << 11,           ///< read/write-style transport (MPICH sockets)
    AppCode = 1u << 12,      ///< user application function
    Spawn = 1u << 13,        ///< MPI_Comm_spawn
    MpiApi = 1u << 14,       ///< any MPI_* entry point
    WaitOp = 1u << 15,       ///< MPI_Wait/MPI_Waitall
    UserBoundary = 1u << 16, ///< user-facing MPI_* trampoline (flight-recorder boundary)
};

constexpr std::uint32_t operator|(Category a, Category b) {
    return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, Category b) {
    return a | static_cast<std::uint32_t>(b);
}
constexpr bool has_category(std::uint32_t mask, Category c) {
    return (mask & static_cast<std::uint32_t>(c)) != 0;
}

struct FunctionInfo {
    FuncId id = kInvalidFunc;
    std::string name;
    std::string module;  ///< "libmpi", "liblam", "libmpich", or executable name
    std::uint32_t categories = 0;
};

/// The $arg[k] view of one in-flight call.  Handles (communicators,
/// windows, datatypes) travel as int64 so MDL snippets can pass them
/// back to runtime services (MPI_Type_size, DYNINSTWindow_FindUniqueId).
struct CallContext {
    FuncId func = kInvalidFunc;
    const FunctionInfo* info = nullptr;
    int rank = -1;  ///< executing MPI rank (global), -1 outside MPI
    std::span<const std::int64_t> args;
    /// String-typed arguments (object names, spawn commands).
    std::span<const std::string_view> str_args;
    std::int64_t return_value = 0;
};

enum class Where { Entry, Return };

using Snippet = std::function<void(const CallContext&)>;
using SnippetId = std::uint64_t;

struct SnippetHandle {
    FuncId func = kInvalidFunc;
    Where where = Where::Entry;
    SnippetId id = 0;
    bool valid() const { return func != kInvalidFunc && id != 0; }
};

/// Per-dispatch bookkeeping for the instrumentation-overhead ablation.
struct DispatchStats {
    std::uint64_t events = 0;           ///< entry+return events observed
    std::uint64_t snippets_executed = 0;
};

/// Thread-local identity of the executing simulated MPI rank.
/// simmpi sets this when a rank thread starts; -1 elsewhere.
int current_rank();
void set_current_rank(int rank);

/// Call-boundary trace seam: a per-thread sink notified once per
/// completed Category::UserBoundary call with the FunctionGuard's
/// construction/destruction tick stamps.  The flight recorder
/// registers here on each rank thread; with no sink installed (the
/// default) the guard pays one thread-local load and a branch.
class CallTraceSink {
public:
    virtual ~CallTraceSink() = default;
    virtual void on_boundary_call(const FunctionInfo& info, int rank,
                                  std::uint64_t t0_ticks,
                                  std::uint64_t t1_ticks) noexcept = 0;
};
CallTraceSink* thread_call_sink();
void set_thread_call_sink(CallTraceSink* sink);

/// One data-plane payload folded into the current user-boundary call.
///
/// A pt2pt transfer inside MPI_Send would otherwise cost the recorder a
/// second ring event and a third timestamp; instead the data plane
/// parks {kind, a, b, c} here and the sink consumes it when the guard
/// closes, emitting a single kinded span.  `kind` is the trace-layer
/// EventKind value (0 = none); instr stays ignorant of its meaning.
struct BoundaryPayload {
    std::uint32_t kind = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t c = 0;
};

namespace detail {
extern thread_local BoundaryPayload t_boundary_payload;
extern thread_local bool t_boundary_active;
}  // namespace detail

/// Attach a payload to the enclosing user-boundary call.  No-op unless
/// the calling thread is inside a traced boundary guard, so internal
/// traffic issued outside any MPI_ trampoline stays invisible.
/// Last-writer-wins within one call (MPI_Sendrecv keeps the recv side).
inline void set_boundary_payload(std::uint32_t kind, std::int64_t a,
                                 std::int64_t b, std::int64_t c) noexcept {
    if (detail::t_boundary_active) detail::t_boundary_payload = {kind, a, b, c};
}

/// Consume (and clear) the pending payload; kind == 0 means none.
inline BoundaryPayload take_boundary_payload() noexcept {
    BoundaryPayload p = detail::t_boundary_payload;
    detail::t_boundary_payload.kind = 0;
    return p;
}

/// The per-thread instrumentation state that travels with a simmpi
/// fiber when it migrates between scheduler workers: the rank
/// identity, the call-trace sink, and any in-flight boundary payload
/// (a FunctionGuard span can straddle a park).  Hazard pointers and
/// the stat-shard cache deliberately stay per-OS-thread: dispatch
/// never parks, so they can never be observed mid-migration.
struct ThreadContext {
    int rank = -1;
    CallTraceSink* sink = nullptr;
    BoundaryPayload payload{};
    bool boundary_active = false;
};

/// Atomically (with respect to this thread) swap the migration-visible
/// TLS for @p next and return the previous values.  Scheduler workers
/// call this at fiber switch-in/switch-out.
ThreadContext exchange_thread_context(const ThreadContext& next);

class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Registers (or finds) a function.  Idempotent by (module, name);
    /// categories are OR-merged, so a later registration may refine an
    /// earlier one.
    FuncId register_function(std::string_view name, std::string_view module,
                             std::uint32_t categories);

    FuncId find(std::string_view name) const;  ///< first match by name
    FuncId find(std::string_view name, std::string_view module) const;
    const FunctionInfo& info(FuncId f) const;
    std::size_t function_count() const;

    /// All functions carrying every bit of @p all_of (symbol-table query).
    std::vector<FuncId> functions_with(std::uint32_t all_of) const;
    /// All functions belonging to @p module.
    std::vector<FuncId> functions_in_module(std::string_view module) const;
    std::vector<std::string> modules() const;

    /// Inserts a snippet at a point.  @p prepend places it before all
    /// existing snippets (MDL "prepend preinsn"), otherwise it appends.
    SnippetHandle insert(FuncId f, Where w, Snippet s, bool prepend = false);
    /// Deletes a previously inserted snippet; returns false if already gone.
    bool remove(const SnippetHandle& h);
    /// Number of live snippets at a point (tests / ablation).
    std::size_t snippet_count(FuncId f, Where w) const;

    /// Fired by trampolines.  Lock-free; one load + branch when no
    /// snippets are installed (the overwhelmingly common case).
    void dispatch(FuncId f, Where w, CallContext& ctx);

    /// Lock-free Category::UserBoundary test: one word load from a flat
    /// bitmap, no FunctionInfo cache-line touch.  FunctionGuard probes
    /// this on *every* guarded call whenever a trace sink is installed,
    /// so it must stay cheaper than the chunked info() pointer chase.
    bool is_user_boundary(FuncId f) const noexcept {
        return f < kMaxChunks * kChunkSize &&
               ((boundary_bits_[f >> 6].load(std::memory_order_relaxed) >>
                 (f & 63)) &
                1u) != 0;
    }

    DispatchStats stats() const;
    void reset_stats();

private:
    struct PointImpl;
    struct FuncImpl;
    struct StatSlot;
    using SnippetVec = std::vector<std::pair<SnippetId, Snippet>>;

    // Append-only chunked function table: FuncImpl addresses are stable
    // for the Registry's lifetime, so dispatch resolves a FuncId with a
    // bounds check against count_ (acquire) and two relaxed loads --
    // no registry-wide lock.
    static constexpr std::size_t kChunkShift = 9;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;
    static constexpr std::size_t kMaxChunks = 1024;

    FuncImpl& func_impl(FuncId f) const;  ///< lock-free; throws on bad id
    StatSlot& stat_slot() const;          ///< this thread's counter shard
    void retire(const SnippetVec* old) const;  ///< hazard-checked reclaim

    mutable std::mutex mu_;  ///< guards registration + symbol queries
    std::atomic<FuncImpl*> chunks_[kMaxChunks] = {};
    std::atomic<std::uint32_t> count_{0};
    /// One bit per possible FuncId: set iff the function carries
    /// Category::UserBoundary.  Written under mu_ at registration,
    /// read lock-free by is_user_boundary().
    std::unique_ptr<std::atomic<std::uint64_t>[]> boundary_bits_;
    /// (module, '\0', name) -> id and name -> first id indexes.
    std::unordered_map<std::string, FuncId> by_module_name_;
    std::unordered_map<std::string, FuncId> by_name_;

    std::atomic<SnippetId> next_snippet_{1};

    /// Retired snippet snapshots not yet proven unreferenced.
    mutable std::mutex retire_mu_;
    mutable std::vector<const SnippetVec*> retired_;

    /// Per-thread counter shards (see stats()); slots are owned here and
    /// located by dispatching threads through a thread-local cache keyed
    /// on the registry's process-unique id.
    const std::uint64_t reg_uid_;
    mutable std::mutex slots_mu_;
    mutable std::vector<std::unique_ptr<StatSlot>> slots_;
};

/// RAII guard that makes one application function visible to the tool:
/// fires the entry point on construction and the return point on
/// destruction.  This is the reproduction's stand-in for Dyninst's
/// base-trampoline in an instrumented function.
class FunctionGuard {
public:
    FunctionGuard(Registry& reg, FuncId f);
    FunctionGuard(Registry& reg, FuncId f, std::span<const std::int64_t> args,
                  std::span<const std::string_view> str_args = {});
    ~FunctionGuard();
    FunctionGuard(const FunctionGuard&) = delete;
    FunctionGuard& operator=(const FunctionGuard&) = delete;

private:
    Registry& reg_;
    CallContext ctx_;
    // Trace seam state: set only when this thread has a CallTraceSink
    // installed and the function is a user-boundary trampoline.
    CallTraceSink* sink_ = nullptr;
    const FunctionInfo* sink_info_ = nullptr;
    std::uint64_t t0_ticks_ = 0;
};

}  // namespace m2p::instr
