// Dynamic-instrumentation substrate (the reproduction's stand-in for
// Dyninst, see DESIGN.md section 2).
//
// Paradyn's model: every function in the application image exposes
// instrumentation *points* (entry, return); at run time the tool
// inserts or deletes *snippets* (small code fragments compiled from
// MDL) at those points.  Here a function is anything registered with
// the Registry -- all simmpi MPI entry points register themselves, and
// application functions opt in with one INSTR_FUNC guard line.
//
// Snippets receive a CallContext giving them the MDL "$arg[k]" view of
// the call plus the executing rank, so metric code like
//     MPI_Type_size($arg[2], &bytes); mpi_rma_put_bytes += bytes * $arg[1];
// compiles to an ordinary closure over this structure.
//
// The dispatch path is the tool-perturbation knob the paper's whole
// evaluation depends on, so it is lock-free (DESIGN.md "fast path"):
// the function table is append-only chunked storage resolved with one
// acquire load, snippet lists are RCU-published snapshot pointers
// reclaimed through hazard pointers, and dispatch statistics are
// sharded into per-thread slots aggregated by stats().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace m2p::instr {

using FuncId = std::uint32_t;
inline constexpr FuncId kInvalidFunc = static_cast<FuncId>(-1);

/// Coarse classification used to resolve MDL function sets
/// ("foreach func in mpi_put { ... }") against the symbol table.
enum class Category : std::uint32_t {
    None = 0,
    MsgSend = 1u << 0,       ///< point-to-point sends (MPI_Send, MPI_Isend, ...)
    MsgRecv = 1u << 1,       ///< point-to-point receives
    MsgSync = 1u << 2,       ///< any blocking message op (sync-wait metric)
    Barrier = 1u << 3,       ///< MPI_Barrier
    Collective = 1u << 4,    ///< collectives (allreduce, bcast, ...)
    RmaPut = 1u << 5,        ///< MPI_Put
    RmaGet = 1u << 6,        ///< MPI_Get
    RmaAcc = 1u << 7,        ///< MPI_Accumulate
    RmaActiveSync = 1u << 8, ///< fence/start/complete/post/wait
    RmaPassiveSync = 1u << 9,///< lock/unlock
    RmaLifetime = 1u << 10,  ///< win_create/win_free
    Io = 1u << 11,           ///< read/write-style transport (MPICH sockets)
    AppCode = 1u << 12,      ///< user application function
    Spawn = 1u << 13,        ///< MPI_Comm_spawn
    MpiApi = 1u << 14,       ///< any MPI_* entry point
    WaitOp = 1u << 15,       ///< MPI_Wait/MPI_Waitall
};

constexpr std::uint32_t operator|(Category a, Category b) {
    return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, Category b) {
    return a | static_cast<std::uint32_t>(b);
}
constexpr bool has_category(std::uint32_t mask, Category c) {
    return (mask & static_cast<std::uint32_t>(c)) != 0;
}

struct FunctionInfo {
    FuncId id = kInvalidFunc;
    std::string name;
    std::string module;  ///< "libmpi", "liblam", "libmpich", or executable name
    std::uint32_t categories = 0;
};

/// The $arg[k] view of one in-flight call.  Handles (communicators,
/// windows, datatypes) travel as int64 so MDL snippets can pass them
/// back to runtime services (MPI_Type_size, DYNINSTWindow_FindUniqueId).
struct CallContext {
    FuncId func = kInvalidFunc;
    const FunctionInfo* info = nullptr;
    int rank = -1;  ///< executing MPI rank (global), -1 outside MPI
    std::span<const std::int64_t> args;
    /// String-typed arguments (object names, spawn commands).
    std::span<const std::string_view> str_args;
    std::int64_t return_value = 0;
};

enum class Where { Entry, Return };

using Snippet = std::function<void(const CallContext&)>;
using SnippetId = std::uint64_t;

struct SnippetHandle {
    FuncId func = kInvalidFunc;
    Where where = Where::Entry;
    SnippetId id = 0;
    bool valid() const { return func != kInvalidFunc && id != 0; }
};

/// Per-dispatch bookkeeping for the instrumentation-overhead ablation.
struct DispatchStats {
    std::uint64_t events = 0;           ///< entry+return events observed
    std::uint64_t snippets_executed = 0;
};

/// Thread-local identity of the executing simulated MPI rank.
/// simmpi sets this when a rank thread starts; -1 elsewhere.
int current_rank();
void set_current_rank(int rank);

class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Registers (or finds) a function.  Idempotent by (module, name);
    /// categories are OR-merged, so a later registration may refine an
    /// earlier one.
    FuncId register_function(std::string_view name, std::string_view module,
                             std::uint32_t categories);

    FuncId find(std::string_view name) const;  ///< first match by name
    FuncId find(std::string_view name, std::string_view module) const;
    const FunctionInfo& info(FuncId f) const;
    std::size_t function_count() const;

    /// All functions carrying every bit of @p all_of (symbol-table query).
    std::vector<FuncId> functions_with(std::uint32_t all_of) const;
    /// All functions belonging to @p module.
    std::vector<FuncId> functions_in_module(std::string_view module) const;
    std::vector<std::string> modules() const;

    /// Inserts a snippet at a point.  @p prepend places it before all
    /// existing snippets (MDL "prepend preinsn"), otherwise it appends.
    SnippetHandle insert(FuncId f, Where w, Snippet s, bool prepend = false);
    /// Deletes a previously inserted snippet; returns false if already gone.
    bool remove(const SnippetHandle& h);
    /// Number of live snippets at a point (tests / ablation).
    std::size_t snippet_count(FuncId f, Where w) const;

    /// Fired by trampolines.  Lock-free; one load + branch when no
    /// snippets are installed (the overwhelmingly common case).
    void dispatch(FuncId f, Where w, CallContext& ctx);

    DispatchStats stats() const;
    void reset_stats();

private:
    struct PointImpl;
    struct FuncImpl;
    struct StatSlot;
    using SnippetVec = std::vector<std::pair<SnippetId, Snippet>>;

    // Append-only chunked function table: FuncImpl addresses are stable
    // for the Registry's lifetime, so dispatch resolves a FuncId with a
    // bounds check against count_ (acquire) and two relaxed loads --
    // no registry-wide lock.
    static constexpr std::size_t kChunkShift = 9;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;
    static constexpr std::size_t kMaxChunks = 1024;

    FuncImpl& func_impl(FuncId f) const;  ///< lock-free; throws on bad id
    StatSlot& stat_slot() const;          ///< this thread's counter shard
    void retire(const SnippetVec* old) const;  ///< hazard-checked reclaim

    mutable std::mutex mu_;  ///< guards registration + symbol queries
    std::atomic<FuncImpl*> chunks_[kMaxChunks] = {};
    std::atomic<std::uint32_t> count_{0};
    /// (module, '\0', name) -> id and name -> first id indexes.
    std::unordered_map<std::string, FuncId> by_module_name_;
    std::unordered_map<std::string, FuncId> by_name_;

    std::atomic<SnippetId> next_snippet_{1};

    /// Retired snippet snapshots not yet proven unreferenced.
    mutable std::mutex retire_mu_;
    mutable std::vector<const SnippetVec*> retired_;

    /// Per-thread counter shards (see stats()); slots are owned here and
    /// located by dispatching threads through a thread-local cache keyed
    /// on the registry's process-unique id.
    const std::uint64_t reg_uid_;
    mutable std::mutex slots_mu_;
    mutable std::vector<std::unique_ptr<StatSlot>> slots_;
};

/// RAII guard that makes one application function visible to the tool:
/// fires the entry point on construction and the return point on
/// destruction.  This is the reproduction's stand-in for Dyninst's
/// base-trampoline in an instrumented function.
class FunctionGuard {
public:
    FunctionGuard(Registry& reg, FuncId f);
    FunctionGuard(Registry& reg, FuncId f, std::span<const std::int64_t> args,
                  std::span<const std::string_view> str_args = {});
    ~FunctionGuard();
    FunctionGuard(const FunctionGuard&) = delete;
    FunctionGuard& operator=(const FunctionGuard&) = delete;

private:
    Registry& reg_;
    CallContext ctx_;
};

}  // namespace m2p::instr
