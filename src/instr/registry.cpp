#include "instr/registry.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <stdexcept>

namespace m2p::instr {

namespace {
thread_local int t_current_rank = -1;
}

int current_rank() { return t_current_rank; }
void set_current_rank(int rank) { t_current_rank = rank; }

struct Registry::PointImpl {
    // Copy-on-write snippet list: dispatch takes a shared_ptr snapshot
    // under a short lock; insert/remove replace the vector wholesale.
    std::shared_ptr<const std::vector<std::pair<SnippetId, Snippet>>> snippets;
};

struct Registry::FuncImpl {
    FunctionInfo info;
    PointImpl points[2];
    mutable std::shared_mutex mu;
};

Registry::Registry() = default;
Registry::~Registry() = default;

FuncId Registry::register_function(std::string_view name, std::string_view module,
                                   std::uint32_t categories) {
    std::unique_lock lk(mu_);
    for (auto& f : funcs_) {
        if (f->info.name == name && f->info.module == module) {
            f->info.categories |= categories;
            return f->info.id;
        }
    }
    auto f = std::make_unique<FuncImpl>();
    f->info.id = static_cast<FuncId>(funcs_.size());
    f->info.name = std::string(name);
    f->info.module = std::string(module);
    f->info.categories = categories;
    funcs_.push_back(std::move(f));
    return funcs_.back()->info.id;
}

FuncId Registry::find(std::string_view name) const {
    std::shared_lock lk(mu_);
    for (const auto& f : funcs_)
        if (f->info.name == name) return f->info.id;
    return kInvalidFunc;
}

FuncId Registry::find(std::string_view name, std::string_view module) const {
    std::shared_lock lk(mu_);
    for (const auto& f : funcs_)
        if (f->info.name == name && f->info.module == module) return f->info.id;
    return kInvalidFunc;
}

const FunctionInfo& Registry::info(FuncId f) const { return func_impl(f).info; }

std::size_t Registry::function_count() const {
    std::shared_lock lk(mu_);
    return funcs_.size();
}

std::vector<FuncId> Registry::functions_with(std::uint32_t all_of) const {
    std::shared_lock lk(mu_);
    std::vector<FuncId> out;
    for (const auto& f : funcs_)
        if ((f->info.categories & all_of) == all_of) out.push_back(f->info.id);
    return out;
}

std::vector<FuncId> Registry::functions_in_module(std::string_view module) const {
    std::shared_lock lk(mu_);
    std::vector<FuncId> out;
    for (const auto& f : funcs_)
        if (f->info.module == module) out.push_back(f->info.id);
    return out;
}

std::vector<std::string> Registry::modules() const {
    std::shared_lock lk(mu_);
    std::vector<std::string> out;
    for (const auto& f : funcs_)
        if (std::find(out.begin(), out.end(), f->info.module) == out.end())
            out.push_back(f->info.module);
    return out;
}

Registry::FuncImpl& Registry::func_impl(FuncId f) {
    std::shared_lock lk(mu_);
    if (f >= funcs_.size()) throw std::out_of_range("instr: bad FuncId");
    return *funcs_[f];
}

const Registry::FuncImpl& Registry::func_impl(FuncId f) const {
    std::shared_lock lk(mu_);
    if (f >= funcs_.size()) throw std::out_of_range("instr: bad FuncId");
    return *funcs_[f];
}

SnippetHandle Registry::insert(FuncId f, Where w, Snippet s, bool prepend) {
    FuncImpl& fi = func_impl(f);
    const SnippetId id = next_snippet_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lk(fi.mu);
    auto& pt = fi.points[static_cast<int>(w)];
    auto next = pt.snippets
                    ? std::make_shared<std::vector<std::pair<SnippetId, Snippet>>>(*pt.snippets)
                    : std::make_shared<std::vector<std::pair<SnippetId, Snippet>>>();
    if (prepend)
        next->insert(next->begin(), {id, std::move(s)});
    else
        next->emplace_back(id, std::move(s));
    pt.snippets = std::move(next);
    return SnippetHandle{f, w, id};
}

bool Registry::remove(const SnippetHandle& h) {
    if (!h.valid()) return false;
    FuncImpl& fi = func_impl(h.func);
    std::unique_lock lk(fi.mu);
    auto& pt = fi.points[static_cast<int>(h.where)];
    if (!pt.snippets) return false;
    auto next = std::make_shared<std::vector<std::pair<SnippetId, Snippet>>>(*pt.snippets);
    const auto it = std::find_if(next->begin(), next->end(),
                                 [&](const auto& p) { return p.first == h.id; });
    if (it == next->end()) return false;
    next->erase(it);
    pt.snippets = std::move(next);
    return true;
}

std::size_t Registry::snippet_count(FuncId f, Where w) const {
    const FuncImpl& fi = func_impl(f);
    std::shared_lock lk(fi.mu);
    const auto& pt = fi.points[static_cast<int>(w)];
    return pt.snippets ? pt.snippets->size() : 0;
}

void Registry::dispatch(FuncId f, Where w, CallContext& ctx) {
    FuncImpl& fi = func_impl(f);
    std::shared_ptr<const std::vector<std::pair<SnippetId, Snippet>>> snap;
    {
        std::shared_lock lk(fi.mu);
        snap = fi.points[static_cast<int>(w)].snippets;
    }
    events_.fetch_add(1, std::memory_order_relaxed);
    if (!snap || snap->empty()) return;
    ctx.func = f;
    ctx.info = &fi.info;
    ctx.rank = t_current_rank;
    for (const auto& [id, s] : *snap) {
        s(ctx);
        executed_.fetch_add(1, std::memory_order_relaxed);
    }
}

DispatchStats Registry::stats() const {
    return DispatchStats{events_.load(std::memory_order_relaxed),
                         executed_.load(std::memory_order_relaxed)};
}

void Registry::reset_stats() {
    events_.store(0, std::memory_order_relaxed);
    executed_.store(0, std::memory_order_relaxed);
}

FunctionGuard::FunctionGuard(Registry& reg, FuncId f) : FunctionGuard(reg, f, {}, {}) {}

FunctionGuard::FunctionGuard(Registry& reg, FuncId f, std::span<const std::int64_t> args,
                             std::span<const std::string_view> str_args)
    : reg_(reg) {
    ctx_.func = f;
    ctx_.args = args;
    ctx_.str_args = str_args;
    reg_.dispatch(f, Where::Entry, ctx_);
}

FunctionGuard::~FunctionGuard() { reg_.dispatch(ctx_.func, Where::Return, ctx_); }

}  // namespace m2p::instr
