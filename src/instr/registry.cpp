#include "instr/registry.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "util/clock.hpp"

namespace m2p::instr {

namespace {

thread_local int t_current_rank = -1;
thread_local CallTraceSink* t_call_sink = nullptr;

}  // namespace

namespace detail {
thread_local BoundaryPayload t_boundary_payload;
thread_local bool t_boundary_active = false;
}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Hazard-pointer domain shared by all Registries.
//
// dispatch() publishes the snippet-snapshot pointer it is about to walk
// into a per-thread hazard slot; retire() only frees a retired snapshot
// once no slot holds it.  The classic seq_cst protocol applies: the
// reader's hazard store and head re-check, and the writer's head
// exchange and slot scan, are all seq_cst, so either the writer sees
// the hazard (and keeps the snapshot) or the reader sees the new head
// (and retries without dereferencing).  Records are never freed --
// a thread releases its record on exit and a later thread reuses it --
// so the domain leaks at most one record per peak concurrent thread.
// ---------------------------------------------------------------------------

constexpr int kHazardDepth = 4;  ///< max nested dispatch from inside a snippet

struct HazardRec {
    std::atomic<const void*> slots[kHazardDepth] = {};
    std::atomic<bool> in_use{false};
    HazardRec* next = nullptr;
};

std::atomic<HazardRec*> g_hazard_head{nullptr};

HazardRec* hazard_acquire_rec() {
    for (HazardRec* r = g_hazard_head.load(std::memory_order_acquire); r;
         r = r->next) {
        bool expected = false;
        // seq_cst: the retire scan skips records whose in_use it reads
        // as false, so acquisition must be globally ordered against the
        // scan (see hazard_pinned) for the skip to be sound.
        if (!r->in_use.load(std::memory_order_relaxed) &&
            r->in_use.compare_exchange_strong(expected, true,
                                              std::memory_order_seq_cst))
            return r;
    }
    auto* r = new HazardRec;
    r->in_use.store(true, std::memory_order_relaxed);
    r->next = g_hazard_head.load(std::memory_order_relaxed);
    while (!g_hazard_head.compare_exchange_weak(r->next, r,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
    }
    return r;
}

struct HazardOwner {
    HazardRec* rec = nullptr;
    int depth = 0;
    ~HazardOwner() {
        if (!rec) return;
        for (auto& s : rec->slots) s.store(nullptr, std::memory_order_relaxed);
        rec->in_use.store(false, std::memory_order_release);
    }
};

thread_local HazardOwner t_hazard;

/// True while any live thread's hazard slot pins @p p.
bool hazard_pinned(const void* p) {
    for (HazardRec* r = g_hazard_head.load(std::memory_order_acquire); r;
         r = r->next) {
        if (!r->in_use.load(std::memory_order_seq_cst)) continue;
        for (const auto& s : r->slots)
            if (s.load(std::memory_order_seq_cst) == p) return true;
    }
    return false;
}

std::atomic<std::uint64_t> g_next_registry_uid{1};

}  // namespace

int current_rank() { return t_current_rank; }
void set_current_rank(int rank) { t_current_rank = rank; }

CallTraceSink* thread_call_sink() { return t_call_sink; }
void set_thread_call_sink(CallTraceSink* sink) { t_call_sink = sink; }

ThreadContext exchange_thread_context(const ThreadContext& next) {
    ThreadContext prev;
    prev.rank = t_current_rank;
    prev.sink = t_call_sink;
    prev.payload = detail::t_boundary_payload;
    prev.boundary_active = detail::t_boundary_active;
    t_current_rank = next.rank;
    t_call_sink = next.sink;
    detail::t_boundary_payload = next.payload;
    detail::t_boundary_active = next.boundary_active;
    return prev;
}

struct Registry::PointImpl {
    // RCU-published snippet snapshot.  nullptr means "no snippets": the
    // dispatch fast path is one acquire load and a branch.  Writers
    // (insert/remove) build a fresh vector copy-on-write under the
    // function's write mutex, publish it here, and retire the old one.
    std::atomic<const SnippetVec*> head{nullptr};
};

struct Registry::FuncImpl {
    FunctionInfo info;
    PointImpl points[2];
    std::mutex write_mu;  ///< serializes insert/remove on this function
};

/// One thread's shard of the dispatch statistics.  Only the owning
/// thread writes (plain load/store: no RMW, no shared cache line);
/// stats() readers sum all shards with relaxed loads.
struct Registry::StatSlot {
    alignas(64) std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> executed{0};
};

namespace {
/// Per-thread map from registry uid to that registry's StatSlot,
/// move-to-front so the hot registry costs one comparison.  Entries for
/// destroyed registries never match again (uids are process-unique) and
/// are evicted from the tail once the cache outgrows kStatCacheMax.
constexpr std::size_t kStatCacheMax = 16;
thread_local std::vector<std::pair<std::uint64_t, void*>>* t_stat_cache_storage =
    nullptr;
}  // namespace

Registry::Registry()
    : boundary_bits_(new std::atomic<std::uint64_t>[kMaxChunks * kChunkSize / 64]()),
      reg_uid_(g_next_registry_uid.fetch_add(1)) {}

Registry::~Registry() {
    // Precondition (unchanged from the locked design): no dispatch may
    // be in flight at destruction, so everything can be freed directly.
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
        FuncImpl& fi = *(chunks_[i >> kChunkShift].load(std::memory_order_relaxed) +
                         (i & kChunkMask));
        for (auto& pt : fi.points)
            delete pt.head.load(std::memory_order_relaxed);
    }
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
    for (const SnippetVec* v : retired_) delete v;
}

FuncId Registry::register_function(std::string_view name, std::string_view module,
                                   std::uint32_t categories) {
    std::string key;
    key.reserve(module.size() + 1 + name.size());
    key.append(module).push_back('\0');
    key.append(name);

    const auto publish_boundary_bit = [this](FuncId id, std::uint32_t cats) {
        if (has_category(cats, Category::UserBoundary))
            boundary_bits_[id >> 6].fetch_or(std::uint64_t{1} << (id & 63),
                                             std::memory_order_relaxed);
    };

    std::unique_lock lk(mu_);
    if (const auto it = by_module_name_.find(key); it != by_module_name_.end()) {
        func_impl(it->second).info.categories |= categories;
        publish_boundary_bit(it->second, categories);
        return it->second;
    }
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    const std::size_t chunk = id >> kChunkShift;
    if (chunk >= kMaxChunks) throw std::length_error("instr: function table full");
    FuncImpl* base = chunks_[chunk].load(std::memory_order_relaxed);
    if (!base) {
        base = new FuncImpl[kChunkSize];
        chunks_[chunk].store(base, std::memory_order_release);
    }
    FuncImpl& f = base[id & kChunkMask];
    f.info.id = id;
    f.info.name = std::string(name);
    f.info.module = std::string(module);
    f.info.categories = categories;
    publish_boundary_bit(id, categories);
    by_module_name_.emplace(std::move(key), id);
    by_name_.emplace(f.info.name, id);  // keeps the first id: find() order
    // Publish: readers that see the new count see the initialized slot.
    count_.store(id + 1, std::memory_order_release);
    return id;
}

FuncId Registry::find(std::string_view name) const {
    std::unique_lock lk(mu_);
    const auto it = by_name_.find(std::string(name));
    return it != by_name_.end() ? it->second : kInvalidFunc;
}

FuncId Registry::find(std::string_view name, std::string_view module) const {
    std::string key;
    key.reserve(module.size() + 1 + name.size());
    key.append(module).push_back('\0');
    key.append(name);
    std::unique_lock lk(mu_);
    const auto it = by_module_name_.find(key);
    return it != by_module_name_.end() ? it->second : kInvalidFunc;
}

const FunctionInfo& Registry::info(FuncId f) const { return func_impl(f).info; }

std::size_t Registry::function_count() const {
    return count_.load(std::memory_order_acquire);
}

std::vector<FuncId> Registry::functions_with(std::uint32_t all_of) const {
    std::unique_lock lk(mu_);
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    std::vector<FuncId> out;
    for (std::uint32_t i = 0; i < n; ++i)
        if ((func_impl(i).info.categories & all_of) == all_of) out.push_back(i);
    return out;
}

std::vector<FuncId> Registry::functions_in_module(std::string_view module) const {
    std::unique_lock lk(mu_);
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    std::vector<FuncId> out;
    for (std::uint32_t i = 0; i < n; ++i)
        if (func_impl(i).info.module == module) out.push_back(i);
    return out;
}

std::vector<std::string> Registry::modules() const {
    std::unique_lock lk(mu_);
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    std::set<std::string_view> seen;
    std::vector<std::string> out;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::string& m = func_impl(i).info.module;
        if (seen.insert(m).second) out.push_back(m);
    }
    return out;
}

Registry::FuncImpl& Registry::func_impl(FuncId f) const {
    if (f >= count_.load(std::memory_order_acquire))
        throw std::out_of_range("instr: bad FuncId");
    return *(chunks_[f >> kChunkShift].load(std::memory_order_relaxed) +
             (f & kChunkMask));
}

Registry::StatSlot& Registry::stat_slot() const {
    auto*& cache = t_stat_cache_storage;
    if (!cache)
        cache = new std::vector<std::pair<std::uint64_t, void*>>();  // leaked
    for (std::size_t i = 0; i < cache->size(); ++i) {
        if ((*cache)[i].first == reg_uid_) {
            if (i != 0) std::swap((*cache)[0], (*cache)[i]);
            return *static_cast<StatSlot*>((*cache)[0].second);
        }
    }
    std::unique_lock lk(slots_mu_);
    slots_.push_back(std::make_unique<StatSlot>());
    StatSlot* slot = slots_.back().get();
    lk.unlock();
    if (cache->size() >= kStatCacheMax) cache->pop_back();
    cache->insert(cache->begin(), {reg_uid_, slot});
    return *slot;
}

void Registry::retire(const SnippetVec* old) const {
    if (!old) return;
    std::lock_guard lk(retire_mu_);
    retired_.push_back(old);
    std::erase_if(retired_, [](const SnippetVec* v) {
        if (hazard_pinned(v)) return false;
        delete v;
        return true;
    });
}

SnippetHandle Registry::insert(FuncId f, Where w, Snippet s, bool prepend) {
    FuncImpl& fi = func_impl(f);
    const SnippetId id = next_snippet_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(fi.write_mu);
    auto& pt = fi.points[static_cast<int>(w)];
    const SnippetVec* old = pt.head.load(std::memory_order_relaxed);
    auto* next = old ? new SnippetVec(*old) : new SnippetVec();
    if (prepend)
        next->insert(next->begin(), {id, std::move(s)});
    else
        next->emplace_back(id, std::move(s));
    pt.head.store(next, std::memory_order_seq_cst);
    retire(old);
    return SnippetHandle{f, w, id};
}

bool Registry::remove(const SnippetHandle& h) {
    if (!h.valid()) return false;
    FuncImpl& fi = func_impl(h.func);
    std::lock_guard lk(fi.write_mu);
    auto& pt = fi.points[static_cast<int>(h.where)];
    const SnippetVec* old = pt.head.load(std::memory_order_relaxed);
    if (!old) return false;
    const auto it = std::find_if(old->begin(), old->end(),
                                 [&](const auto& p) { return p.first == h.id; });
    if (it == old->end()) return false;
    const SnippetVec* next = nullptr;
    if (old->size() > 1) {
        auto* copy = new SnippetVec(*old);
        copy->erase(copy->begin() + (it - old->begin()));
        next = copy;
    }
    pt.head.store(next, std::memory_order_seq_cst);
    retire(old);
    return true;
}

std::size_t Registry::snippet_count(FuncId f, Where w) const {
    FuncImpl& fi = func_impl(f);
    // The write mutex keeps the current head alive (only a later writer
    // could retire it, and writers serialize on this mutex).
    std::lock_guard lk(fi.write_mu);
    const SnippetVec* v =
        fi.points[static_cast<int>(w)].head.load(std::memory_order_acquire);
    return v ? v->size() : 0;
}

void Registry::dispatch(FuncId f, Where w, CallContext& ctx) {
    FuncImpl& fi = func_impl(f);
    StatSlot& ss = stat_slot();
    // Single-writer shard: plain add, no RMW, no cross-thread line.
    ss.events.store(ss.events.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    auto& pt = fi.points[static_cast<int>(w)];
    const SnippetVec* snap = pt.head.load(std::memory_order_acquire);
    if (!snap) return;  // uninstrumented: the whole fast path

    ctx.func = f;
    ctx.info = &fi.info;
    ctx.rank = t_current_rank;
    std::uint64_t ran = 0;

    HazardOwner& hz = t_hazard;
    if (!hz.rec) hz.rec = hazard_acquire_rec();
    if (hz.depth >= kHazardDepth) {
        // Pathological nesting (snippet dispatching inside a snippet
        // beyond kHazardDepth): fall back to a private copy made under
        // the write mutex.  Correct, just not lock-free.
        SnippetVec local;
        {
            std::lock_guard lk(fi.write_mu);
            const SnippetVec* cur = pt.head.load(std::memory_order_acquire);
            if (!cur) return;
            local = *cur;
        }
        for (const auto& [id, s] : local) {
            s(ctx);
            ++ran;
        }
    } else {
        std::atomic<const void*>& slot = hz.rec->slots[hz.depth];
        for (;;) {
            slot.store(snap, std::memory_order_seq_cst);
            const SnippetVec* cur = pt.head.load(std::memory_order_seq_cst);
            if (cur == snap) break;
            snap = cur;
            if (!snap) {
                slot.store(nullptr, std::memory_order_seq_cst);
                return;
            }
        }
        ++hz.depth;
        for (const auto& [id, s] : *snap) {
            s(ctx);
            ++ran;
        }
        --hz.depth;
        slot.store(nullptr, std::memory_order_seq_cst);
    }
    ss.executed.store(ss.executed.load(std::memory_order_relaxed) + ran,
                      std::memory_order_relaxed);
}

DispatchStats Registry::stats() const {
    std::lock_guard lk(slots_mu_);
    DispatchStats out;
    for (const auto& s : slots_) {
        out.events += s->events.load(std::memory_order_relaxed);
        out.snippets_executed += s->executed.load(std::memory_order_relaxed);
    }
    return out;
}

void Registry::reset_stats() {
    std::lock_guard lk(slots_mu_);
    for (const auto& s : slots_) {
        s->events.store(0, std::memory_order_relaxed);
        s->executed.store(0, std::memory_order_relaxed);
    }
}

FunctionGuard::FunctionGuard(Registry& reg, FuncId f) : FunctionGuard(reg, f, {}, {}) {}

FunctionGuard::FunctionGuard(Registry& reg, FuncId f, std::span<const std::int64_t> args,
                             std::span<const std::string_view> str_args)
    : reg_(reg) {
    if (CallTraceSink* sink = t_call_sink) {
        // Bitmap probe, not info(): with a sink installed every guarded
        // call pays this test, and the inner PMPI_/transport guards of a
        // single MPI_ call are the common case, not the boundary itself.
        if (reg.is_user_boundary(f)) {
            sink_ = sink;
            sink_info_ = &reg.info(f);
            detail::t_boundary_active = true;
            detail::t_boundary_payload.kind = 0;
            t0_ticks_ = util::ticks();
        }
    }
    ctx_.func = f;
    ctx_.args = args;
    ctx_.str_args = str_args;
    reg_.dispatch(f, Where::Entry, ctx_);
}

FunctionGuard::~FunctionGuard() {
    reg_.dispatch(ctx_.func, Where::Return, ctx_);
    if (sink_) {
        detail::t_boundary_active = false;
        sink_->on_boundary_call(*sink_info_, t_current_rank, t0_ticks_, util::ticks());
    }
}

}  // namespace m2p::instr
