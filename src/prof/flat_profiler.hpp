// gprof-style flat profiler (paper Fig 19): the paper validates
// Paradyn's CPU findings for hot-procedure against gprof's flat
// profile.  This profiler measures exact per-function CPU time through
// the instrumentation substrate (entry/exit, per-thread shadow stack)
// and renders the classic columns:
//
//   %time  cumulative  self  calls  us/call  name
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "instr/registry.hpp"

namespace m2p::prof {

struct ProfileRow {
    std::string name;
    double pct_time = 0.0;
    double cumulative_seconds = 0.0;
    double self_seconds = 0.0;
    std::uint64_t calls = 0;
    double us_per_call = 0.0;  ///< self microseconds per call
};

class FlatProfiler {
public:
    /// Instruments every function of @p module (default: all
    /// application code).  Removes instrumentation on destruction.
    explicit FlatProfiler(instr::Registry& reg, const std::string& module = "");
    ~FlatProfiler();
    FlatProfiler(const FlatProfiler&) = delete;
    FlatProfiler& operator=(const FlatProfiler&) = delete;

    /// Rows sorted by self time, descending (gprof's default order).
    std::vector<ProfileRow> report() const;
    /// gprof-like text rendering.
    std::string render() const;

private:
    struct Frame {
        instr::FuncId func;
        double cpu_start = 0.0;
        double child_time = 0.0;
    };
    struct FuncTotals {
        double self = 0.0;
        std::uint64_t calls = 0;
    };

    void on_entry(instr::FuncId f);
    void on_return(instr::FuncId f);

    instr::Registry& reg_;
    std::vector<instr::SnippetHandle> handles_;
    mutable std::mutex mu_;
    /// Shadow stacks keyed by rank when on a rank context (fiber ranks
    /// migrate across worker threads mid-call, so thread identity is
    /// not rank identity), by thread id otherwise.
    using StackKey = std::pair<int, std::thread::id>;
    static StackKey current_stack_key();
    std::map<StackKey, std::vector<Frame>> stacks_;
    std::map<instr::FuncId, FuncTotals> totals_;
};

}  // namespace m2p::prof
