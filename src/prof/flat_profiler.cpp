#include "prof/flat_profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/clock.hpp"

namespace m2p::prof {

FlatProfiler::FlatProfiler(instr::Registry& reg, const std::string& module)
    : reg_(reg) {
    const std::vector<instr::FuncId> funcs =
        module.empty()
            ? reg.functions_with(static_cast<std::uint32_t>(instr::Category::AppCode))
            : reg.functions_in_module(module);
    for (instr::FuncId f : funcs) {
        handles_.push_back(reg.insert(
            f, instr::Where::Entry,
            [this, f](const instr::CallContext&) { on_entry(f); }));
        handles_.push_back(reg.insert(
            f, instr::Where::Return,
            [this, f](const instr::CallContext&) { on_return(f); }));
    }
}

FlatProfiler::~FlatProfiler() {
    for (const auto& h : handles_) reg_.remove(h);
}

FlatProfiler::StackKey FlatProfiler::current_stack_key() {
    const int r = instr::current_rank();
    if (r >= 0) return {r, {}};
    return {-1, std::this_thread::get_id()};
}

void FlatProfiler::on_entry(instr::FuncId f) {
    // rank_cpu_seconds: on a fiber rank the entry and return reads
    // must charge the rank's own clock, not whichever worker thread
    // happens to run each half.
    const double cpu = util::rank_cpu_seconds();
    std::lock_guard lk(mu_);
    stacks_[current_stack_key()].push_back({f, cpu, 0.0});
}

void FlatProfiler::on_return(instr::FuncId f) {
    const double cpu = util::rank_cpu_seconds();
    std::lock_guard lk(mu_);
    auto& stack = stacks_[current_stack_key()];
    if (stack.empty() || stack.back().func != f) return;  // unbalanced: drop
    const Frame frame = stack.back();
    stack.pop_back();
    const double inclusive = cpu - frame.cpu_start;
    FuncTotals& t = totals_[f];
    t.self += std::max(0.0, inclusive - frame.child_time);
    ++t.calls;
    if (!stack.empty()) stack.back().child_time += inclusive;
}

std::vector<ProfileRow> FlatProfiler::report() const {
    std::lock_guard lk(mu_);
    double total = 0.0;
    for (const auto& [f, t] : totals_) total += t.self;
    std::vector<ProfileRow> rows;
    double cum = 0.0;
    std::vector<std::pair<instr::FuncId, FuncTotals>> sorted(totals_.begin(),
                                                             totals_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second.self > b.second.self; });
    for (const auto& [f, t] : sorted) {
        ProfileRow r;
        r.name = reg_.info(f).name;
        r.self_seconds = t.self;
        cum += t.self;
        r.cumulative_seconds = cum;
        r.calls = t.calls;
        r.pct_time = total > 0.0 ? 100.0 * t.self / total : 0.0;
        r.us_per_call = t.calls > 0 ? 1e6 * t.self / static_cast<double>(t.calls) : 0.0;
        rows.push_back(std::move(r));
    }
    return rows;
}

std::string FlatProfiler::render() const {
    std::ostringstream os;
    os << "  %   cumulative   self              self\n"
          " time   seconds   seconds    calls  us/call  name\n";
    char buf[160];
    for (const ProfileRow& r : report()) {
        std::snprintf(buf, sizeof buf, "%5.2f %9.2f %9.2f %8llu %8.2f  %s\n",
                      r.pct_time, r.cumulative_seconds, r.self_seconds,
                      static_cast<unsigned long long>(r.calls), r.us_per_call,
                      r.name.c_str());
        os << buf;
    }
    return os.str();
}

}  // namespace m2p::prof
