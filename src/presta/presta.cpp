#include "presta/presta.hpp"

#include <vector>

#include "simmpi/rank.hpp"
#include "util/clock.hpp"

namespace m2p::presta {

void ResultSink::add(RmaResult r) {
    std::lock_guard lk(mu_);
    results_.push_back(std::move(r));
}

std::vector<RmaResult> ResultSink::results() const {
    std::lock_guard lk(mu_);
    return results_;
}

namespace {

using simmpi::Comm;
using simmpi::Rank;
using simmpi::Win;
using simmpi::MPI_BYTE;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_WIN_NULL;

void run_mode(Rank& r, Win win, const RmaConfig& cfg, const std::string& mode, int me,
              ResultSink* sink) {
    const bool bidirectional = mode.rfind("bi", 0) == 0;
    const bool is_put = mode.find("put") != std::string::npos;
    const bool active = bidirectional || me == 0;
    const int target = 1 - me;
    std::vector<char> local(static_cast<std::size_t>(cfg.bytes), 'p');

    r.MPI_Win_fence(0, win);
    const double t0 = r.MPI_Wtime();
    for (int e = 0; e < cfg.epochs; ++e) {
        if (active) {
            for (int i = 0; i < cfg.ops_per_epoch; ++i) {
                if (is_put)
                    r.MPI_Put(local.data(), cfg.bytes, MPI_BYTE, target, 0, cfg.bytes,
                              MPI_BYTE, win);
                else
                    r.MPI_Get(local.data(), cfg.bytes, MPI_BYTE, target, 0, cfg.bytes,
                              MPI_BYTE, win);
            }
        }
        r.MPI_Win_fence(0, win);
    }
    const double t1 = r.MPI_Wtime();

    if (me == 0 && sink) {
        RmaResult res;
        res.test = mode;
        const long long per_origin =
            static_cast<long long>(cfg.epochs) * cfg.ops_per_epoch;
        res.ops = bidirectional ? 2 * per_origin : per_origin;
        res.bytes = res.ops * cfg.bytes;
        res.seconds = t1 - t0;
        res.throughput_mb_s =
            res.seconds > 0 ? static_cast<double>(res.bytes) / res.seconds / 1e6 : 0.0;
        res.us_per_op =
            res.ops > 0 ? 1e6 * res.seconds / static_cast<double>(res.ops) : 0.0;
        sink->add(res);
    }
}

}  // namespace

std::shared_ptr<ResultSink> register_program(simmpi::World& world, RmaConfig cfg) {
    auto sink = std::make_shared<ResultSink>();
    world.register_program(
        kPrestaRma, [cfg, sink](Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            const Comm comm = r.MPI_COMM_WORLD();
            int me = 0, n = 0;
            r.MPI_Comm_rank(comm, &me);
            r.MPI_Comm_size(comm, &n);
            if (n != 2) {
                r.MPI_Finalize();
                return;
            }
            std::vector<char> mem(static_cast<std::size_t>(cfg.bytes), 0);
            Win win = MPI_WIN_NULL;
            r.MPI_Win_create(mem.data(), cfg.bytes, 1, MPI_INFO_NULL, comm, &win);
            for (const char* mode : {"uni-put", "uni-get", "bi-put", "bi-get"})
                run_mode(r, win, cfg, mode, me, sink.get());
            r.MPI_Win_free(&win);
            r.MPI_Finalize();
        });
    return sink;
}

}  // namespace m2p::presta
