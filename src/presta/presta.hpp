// Reimplementation of the ASCI Purple Presta Stress Test Benchmark's
// `rma` program (paper section 5.2.1.3): it measures the throughput of
// MPI_Put / MPI_Get and the time per RMA operation for unidirectional
// put, unidirectional get, bidirectional put, and bidirectional get,
// reporting its own numbers.  The paper validates the tool by
// comparing Paradyn's rma_{put,get}_{ops,bytes} measurements (and the
// throughput / per-op times derived from them) against Presta's
// self-reported values, testing the differences for statistical
// significance.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simmpi/world.hpp"

namespace m2p::presta {

struct RmaConfig {
    int bytes = 1024;        ///< per-operation transfer size
    int ops_per_epoch = 200; ///< operations between fences
    int epochs = 20;
};

struct RmaResult {
    std::string test;  ///< "uni-put", "uni-get", "bi-put", "bi-get"
    long long ops = 0;
    long long bytes = 0;
    double seconds = 0.0;
    double throughput_mb_s = 0.0;
    double us_per_op = 0.0;
};

inline constexpr const char* kPrestaRma = "presta-rma";

/// Registers the "presta-rma" program (exactly two MPI processes) with
/// @p world.  Self-reported results accumulate in the returned sink;
/// read them after the run completes.
class ResultSink {
public:
    void add(RmaResult r);
    std::vector<RmaResult> results() const;

private:
    mutable std::mutex mu_;
    std::vector<RmaResult> results_;
};

std::shared_ptr<ResultSink> register_program(simmpi::World& world, RmaConfig cfg);

}  // namespace m2p::presta
