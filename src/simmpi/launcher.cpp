#include "simmpi/launcher.hpp"

#include <cctype>
#include <sstream>

namespace m2p::simmpi {

namespace {

/// Expands "R[,R]*" where R is "k" or "k-m" into indices; bounds are
/// [0, limit).  Returns false on malformed input or out-of-range.
bool expand_ranges(const std::string& spec, std::size_t limit, std::vector<int>* out,
                   std::string* error) {
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part.empty()) {
            *error = "empty range in '" + spec + "'";
            return false;
        }
        std::size_t dash = part.find('-');
        try {
            if (dash == std::string::npos) {
                const int k = std::stoi(part);
                if (k < 0 || static_cast<std::size_t>(k) >= limit) {
                    *error = "index " + part + " out of range";
                    return false;
                }
                out->push_back(k);
            } else {
                const int lo = std::stoi(part.substr(0, dash));
                const int hi = std::stoi(part.substr(dash + 1));
                if (lo < 0 || hi < lo || static_cast<std::size_t>(hi) >= limit) {
                    *error = "range " + part + " out of bounds";
                    return false;
                }
                for (int k = lo; k <= hi; ++k) out->push_back(k);
            }
        } catch (const std::exception&) {
            *error = "malformed range '" + part + "'";
            return false;
        }
    }
    return true;
}

/// Flattens nodes into one entry per processor ("the first n
/// processors" view LAM's -np and C options use).
std::vector<std::string> processor_list(const std::vector<Node>& nodes) {
    std::vector<std::string> cpus;
    for (const Node& n : nodes)
        for (int i = 0; i < n.cpus; ++i) cpus.push_back(n.name);
    return cpus;
}

bool looks_like_node_spec(const std::string& s) {
    return s.size() > 1 && s[0] == 'n' && (std::isdigit(s[1]) != 0);
}

bool looks_like_cpu_spec(const std::string& s) {
    return s.size() > 1 && s[0] == 'c' && (std::isdigit(s[1]) != 0);
}

}  // namespace

std::vector<Node> parse_machinefile(const std::string& content) {
    std::vector<Node> nodes;
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::stringstream ls(line);
        std::string host;
        if (!(ls >> host)) continue;
        Node n;
        // MPICH machine files use "host:ncpus".
        const std::size_t colon = host.find(':');
        if (colon != std::string::npos) {
            n.name = host.substr(0, colon);
            try {
                n.cpus = std::max(1, std::stoi(host.substr(colon + 1)));
            } catch (const std::exception&) {
                n.cpus = 1;
            }
        } else {
            n.name = host;
        }
        // LAM machine files use "host cpu=N".
        std::string attr;
        while (ls >> attr) {
            if (attr.rfind("cpu=", 0) == 0) {
                try {
                    n.cpus = std::max(1, std::stoi(attr.substr(4)));
                } catch (const std::exception&) {
                }
            }
        }
        nodes.push_back(std::move(n));
    }
    return nodes;
}

LaunchPlan plan_lam(const std::vector<Node>& nodes,
                    const std::vector<std::string>& args) {
    LaunchPlan plan;
    if (nodes.empty()) {
        plan.ok = false;
        plan.error = "no nodes booted (empty LAM session)";
        return plan;
    }
    const std::vector<std::string> cpus = processor_list(nodes);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "-np") {
            if (i + 1 >= args.size()) {
                plan.ok = false;
                plan.error = "-np requires a count";
                return plan;
            }
            int n = 0;
            try {
                n = std::stoi(args[++i]);
            } catch (const std::exception&) {
                n = -1;
            }
            if (n <= 0) {
                plan.ok = false;
                plan.error = "invalid -np count '" + args[i] + "'";
                return plan;
            }
            // "-np n simply denotes that n processes be started on the
            // first n processors" (paper 4.1.2); wrap if oversubscribed.
            for (int k = 0; k < n; ++k) plan.placements.push_back(cpus[k % cpus.size()]);
        } else if (a == "N") {
            for (const Node& n : nodes) plan.placements.push_back(n.name);
        } else if (a == "C") {
            for (const std::string& c : cpus) plan.placements.push_back(c);
        } else if (looks_like_node_spec(a)) {
            std::vector<int> idx;
            if (!expand_ranges(a.substr(1), nodes.size(), &idx, &plan.error)) {
                plan.ok = false;
                return plan;
            }
            for (int k : idx) plan.placements.push_back(nodes[static_cast<std::size_t>(k)].name);
        } else if (looks_like_cpu_spec(a)) {
            std::vector<int> idx;
            if (!expand_ranges(a.substr(1), cpus.size(), &idx, &plan.error)) {
                plan.ok = false;
                return plan;
            }
            for (int k : idx) plan.placements.push_back(cpus[static_cast<std::size_t>(k)]);
        } else {
            plan.ok = false;
            plan.error = "unrecognized LAM mpirun argument '" + a + "'";
            return plan;
        }
    }
    if (plan.placements.empty()) {
        plan.ok = false;
        plan.error = "no processes requested";
    }
    return plan;
}

LaunchPlan plan_mpich(const std::vector<Node>& nodes,
                      const std::vector<std::string>& args) {
    LaunchPlan plan;
    std::vector<Node> machine = nodes;
    int np = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "-np") {
            if (i + 1 >= args.size()) {
                plan.ok = false;
                plan.error = "-np requires a count";
                return plan;
            }
            try {
                np = std::stoi(args[++i]);
            } catch (const std::exception&) {
                np = -1;
            }
            if (np <= 0) {
                plan.ok = false;
                plan.error = "invalid -np count '" + args[i] + "'";
                return plan;
            }
        } else if (a == "-m" || a == "-machinefile") {
            if (i + 1 >= args.size()) {
                plan.ok = false;
                plan.error = a + " requires a file";
                return plan;
            }
            machine = parse_machinefile(args[++i]);
        } else if (a == "-wdir") {
            if (i + 1 >= args.size()) {
                plan.ok = false;
                plan.error = "-wdir requires a directory";
                return plan;
            }
            plan.wdir = args[++i];
        } else {
            plan.ok = false;
            plan.error = "unrecognized MPICH mpirun argument '" + a + "'";
            return plan;
        }
    }
    if (np <= 0) {
        plan.ok = false;
        plan.error = "no -np given";
        return plan;
    }
    if (machine.empty()) {
        plan.ok = false;
        plan.error = "no machines available";
        return plan;
    }
    const std::vector<std::string> cpus = processor_list(machine);
    for (int k = 0; k < np; ++k) plan.placements.push_back(cpus[static_cast<std::size_t>(k) % cpus.size()]);
    return plan;
}

std::vector<int> launch(World& world, const std::string& command,
                        const std::vector<std::string>& argv, const LaunchPlan& plan) {
    if (!plan.ok || plan.placements.empty())
        throw std::invalid_argument("simmpi: invalid launch plan: " + plan.error);
    // Validate up front, on the launching thread: an unknown program
    // discovered later (inside a rank thread) could only surface as a
    // spawn failure or a terminate, never as a catchable error here.
    if (!world.has_program(command))
        throw std::invalid_argument("simmpi: unknown program '" + command + "'");
    std::vector<int> globals;
    globals.reserve(plan.placements.size());
    std::vector<std::string> pool;
    for (const std::string& node : plan.placements) {
        globals.push_back(world.create_proc(node, command));
        pool.push_back(node);
    }
    world.set_node_pool(pool);  // spawn places children over the same nodes
    const Comm cw = world.create_comm(globals);
    for (int g : globals) world.set_proc_comm_world(g, cw);
    for (int g : globals) world.start_proc(g, argv);
    return globals;
}

}  // namespace m2p::simmpi
