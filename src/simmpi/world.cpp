#include "simmpi/world.hpp"

#include <pthread.h>
#include <time.h>

#include <chrono>
#include <stdexcept>

#include "simmpi/rank.hpp"

namespace m2p::simmpi {

const char* flavor_name(Flavor f) { return f == Flavor::Lam ? "LAM/MPI" : "MPICH"; }

namespace {
using instr::Category;
constexpr std::uint32_t cat(Category c) { return static_cast<std::uint32_t>(c); }
}  // namespace

World::World(instr::Registry& reg, Config cfg) : reg_(reg), cfg_(std::move(cfg)) {
    register_mpi_functions();
}

World::~World() { join_all(); }

void World::register_mpi_functions() {
    struct Row {
        instr::FuncId FuncIds::*mpi;
        instr::FuncId FuncIds::*pmpi;
        const char* name;
        std::uint32_t cats;
    };
    const std::uint32_t msg_send = Category::MsgSend | Category::MsgSync;
    const std::uint32_t msg_recv = Category::MsgRecv | Category::MsgSync;
    const Row rows[] = {
        {&FuncIds::MPI_Init, &FuncIds::PMPI_Init, "Init", 0},
        {&FuncIds::MPI_Finalize, &FuncIds::PMPI_Finalize, "Finalize", 0},
        {&FuncIds::MPI_Send, &FuncIds::PMPI_Send, "Send", msg_send},
        {&FuncIds::MPI_Ssend, &FuncIds::PMPI_Ssend, "Ssend", msg_send},
        {&FuncIds::MPI_Recv, &FuncIds::PMPI_Recv, "Recv", msg_recv},
        {&FuncIds::MPI_Isend, &FuncIds::PMPI_Isend, "Isend", cat(Category::MsgSend)},
        {&FuncIds::MPI_Irecv, &FuncIds::PMPI_Irecv, "Irecv", cat(Category::MsgRecv)},
        {&FuncIds::MPI_Wait, &FuncIds::PMPI_Wait, "Wait",
         Category::WaitOp | Category::MsgSync},
        {&FuncIds::MPI_Waitall, &FuncIds::PMPI_Waitall, "Waitall",
         Category::WaitOp | Category::MsgSync},
        {&FuncIds::MPI_Sendrecv, &FuncIds::PMPI_Sendrecv, "Sendrecv",
         msg_send | Category::MsgRecv},
        {&FuncIds::MPI_Barrier, &FuncIds::PMPI_Barrier, "Barrier",
         Category::Barrier | Category::MsgSync},
        {&FuncIds::MPI_Bcast, &FuncIds::PMPI_Bcast, "Bcast",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Reduce, &FuncIds::PMPI_Reduce, "Reduce",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Allreduce, &FuncIds::PMPI_Allreduce, "Allreduce",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Gather, &FuncIds::PMPI_Gather, "Gather",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Scatter, &FuncIds::PMPI_Scatter, "Scatter",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Allgather, &FuncIds::PMPI_Allgather, "Allgather",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Win_create, &FuncIds::PMPI_Win_create, "Win_create",
         cat(Category::RmaLifetime)},
        {&FuncIds::MPI_Win_free, &FuncIds::PMPI_Win_free, "Win_free",
         cat(Category::RmaLifetime)},
        {&FuncIds::MPI_Win_fence, &FuncIds::PMPI_Win_fence, "Win_fence",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_start, &FuncIds::PMPI_Win_start, "Win_start",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_complete, &FuncIds::PMPI_Win_complete, "Win_complete",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_post, &FuncIds::PMPI_Win_post, "Win_post",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_wait, &FuncIds::PMPI_Win_wait, "Win_wait",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_lock, &FuncIds::PMPI_Win_lock, "Win_lock",
         cat(Category::RmaPassiveSync)},
        {&FuncIds::MPI_Win_unlock, &FuncIds::PMPI_Win_unlock, "Win_unlock",
         cat(Category::RmaPassiveSync)},
        {&FuncIds::MPI_Put, &FuncIds::PMPI_Put, "Put", cat(Category::RmaPut)},
        {&FuncIds::MPI_Get, &FuncIds::PMPI_Get, "Get", cat(Category::RmaGet)},
        {&FuncIds::MPI_Accumulate, &FuncIds::PMPI_Accumulate, "Accumulate",
         cat(Category::RmaAcc)},
        {&FuncIds::MPI_Comm_spawn, &FuncIds::PMPI_Comm_spawn, "Comm_spawn",
         cat(Category::Spawn)},
        {&FuncIds::MPI_Comm_get_parent, &FuncIds::PMPI_Comm_get_parent,
         "Comm_get_parent", 0},
        {&FuncIds::MPI_Comm_set_name, &FuncIds::PMPI_Comm_set_name, "Comm_set_name", 0},
        {&FuncIds::MPI_Win_set_name, &FuncIds::PMPI_Win_set_name, "Win_set_name", 0},
    };
    for (const Row& r : rows) {
        const std::uint32_t base = r.cats | Category::MpiApi;
        fids_.*(r.mpi) =
            reg_.register_function(std::string("MPI_") + r.name, "libmpi", base);
        fids_.*(r.pmpi) =
            reg_.register_function(std::string("PMPI_") + r.name, "libmpi", base);
    }
    // MPI-I/O entry points.  They carry the Io category so the
    // default I/O-blocking metrics (and the Performance Consultant's
    // ExcessiveIOBlockingTime hypothesis) cover file access.
    const Row io_rows[] = {
        {&FuncIds::MPI_File_open, &FuncIds::PMPI_File_open, "File_open",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_close, &FuncIds::PMPI_File_close, "File_close",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_read, &FuncIds::PMPI_File_read, "File_read",
         cat(Category::Io)},
        {&FuncIds::MPI_File_write, &FuncIds::PMPI_File_write, "File_write",
         cat(Category::Io)},
        {&FuncIds::MPI_File_read_at, &FuncIds::PMPI_File_read_at, "File_read_at",
         cat(Category::Io)},
        {&FuncIds::MPI_File_write_at, &FuncIds::PMPI_File_write_at, "File_write_at",
         cat(Category::Io)},
        {&FuncIds::MPI_File_read_all, &FuncIds::PMPI_File_read_all, "File_read_all",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_write_all, &FuncIds::PMPI_File_write_all, "File_write_all",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_read_shared, &FuncIds::PMPI_File_read_shared,
         "File_read_shared", cat(Category::Io)},
        {&FuncIds::MPI_File_write_shared, &FuncIds::PMPI_File_write_shared,
         "File_write_shared", cat(Category::Io)},
        {&FuncIds::MPI_File_seek, &FuncIds::PMPI_File_seek, "File_seek",
         cat(Category::Io)},
        {&FuncIds::MPI_File_sync, &FuncIds::PMPI_File_sync, "File_sync",
         cat(Category::Io)},
        {&FuncIds::MPI_File_delete, &FuncIds::PMPI_File_delete, "File_delete",
         cat(Category::Io)},
    };
    for (const Row& r : io_rows) {
        const std::uint32_t base = r.cats | Category::MpiApi;
        fids_.*(r.mpi) =
            reg_.register_function(std::string("MPI_") + r.name, "libmpi", base);
        fids_.*(r.pmpi) =
            reg_.register_function(std::string("PMPI_") + r.name, "libmpi", base);
    }

    // Transport-level functions.  MPICH ch_p4mpd moves messages with
    // socket read/write, which Paradyn's I/O metrics include -- the
    // source of the ExcessiveIOBlockingTime findings (paper Fig 3).
    fids_.io_read = reg_.register_function("read", "libc", cat(Category::Io));
    fids_.io_write = reg_.register_function("write", "libc", cat(Category::Io));
    fids_.sysv_recv = reg_.register_function("lam_ssi_rpi_sysv_recv", "liblam", 0);
    fids_.sysv_send = reg_.register_function("lam_ssi_rpi_sysv_send", "liblam", 0);
}

// ---------------------------------------------------------------------------
// Program registry
// ---------------------------------------------------------------------------

void World::register_program(const std::string& command, ProgramFn fn) {
    std::lock_guard lk(mu_);
    programs_[command] = std::move(fn);
}

bool World::has_program(const std::string& command) const {
    std::lock_guard lk(mu_);
    return programs_.count(command) != 0;
}

ProgramFn World::find_program(const std::string& command) const {
    std::lock_guard lk(mu_);
    const auto it = programs_.find(command);
    return it == programs_.end() ? ProgramFn{} : it->second;
}

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

int World::create_proc(const std::string& node, const std::string& command) {
    std::lock_guard lk(mu_);
    const int g = static_cast<int>(procs_.size());
    auto p = std::make_unique<ProcData>();
    p->global_rank = g;
    p->node = node;
    p->program = command;
    procs_.push_back(std::move(p));
    mailboxes_.push_back(std::make_unique<Mailbox>());
    return g;
}

void World::set_proc_comm_world(int global_rank, Comm cw, Comm parent) {
    std::lock_guard lk(mu_);
    procs_.at(static_cast<std::size_t>(global_rank))->comm_world = cw;
    procs_.at(static_cast<std::size_t>(global_rank))->parent_intercomm = parent;
}

void World::start_proc(int global_rank, std::vector<std::string> argv) {
    ProgramFn fn;
    {
        std::lock_guard lk(mu_);
        ProcData& p = *procs_.at(static_cast<std::size_t>(global_rank));
        auto it = programs_.find(p.program);
        if (it == programs_.end())
            throw std::runtime_error("simmpi: unknown program '" + p.program + "'");
        fn = it->second;
    }
    std::lock_guard lk(mu_);
    threads_.emplace_back([this, global_rank, argv = std::move(argv), fn = std::move(fn)] {
        ProcData* p = nullptr;
        {
            std::lock_guard lk2(mu_);
            p = procs_.at(static_cast<std::size_t>(global_rank)).get();
            pthread_getcpuclockid(pthread_self(), &p->cpu_clock);
            p->cpu_clock_ready = true;
        }
        if (cfg_.start_paused) {
            std::unique_lock lk(mu_);
            start_cv_.wait(lk, [this] { return start_released_; });
        }
        instr::set_current_rank(global_rank);
        Rank rank(*this, global_rank);
        fn(rank, argv);
        {
            std::lock_guard lk2(mu_);
            timespec ts{};
            if (clock_gettime(p->cpu_clock, &ts) == 0)
                p->final_cpu_seconds = static_cast<double>(ts.tv_sec) +
                                       static_cast<double>(ts.tv_nsec) * 1e-9;
            p->finished = true;
        }
        instr::set_current_rank(-1);
    });
}

void World::release_start_gate() {
    {
        std::lock_guard lk(mu_);
        start_released_ = true;
        cfg_.start_paused = false;  // late starters run immediately
    }
    start_cv_.notify_all();
}

void World::join_all() {
    for (;;) {
        std::thread* t = nullptr;
        {
            std::lock_guard lk(mu_);
            if (joined_ >= threads_.size()) break;
            t = &threads_[joined_];
            ++joined_;
        }
        if (t->joinable()) t->join();
    }
    // Spawn may have appended more threads while we joined; drain.
    {
        std::lock_guard lk(mu_);
        if (joined_ >= threads_.size()) return;
    }
    join_all();
}

std::size_t World::proc_count() const {
    std::lock_guard lk(mu_);
    return procs_.size();
}

const ProcData& World::proc(int global_rank) const {
    std::lock_guard lk(mu_);
    return *procs_.at(static_cast<std::size_t>(global_rank));
}

std::vector<int> World::live_procs() const {
    std::lock_guard lk(mu_);
    std::vector<int> out;
    for (const auto& p : procs_)
        if (!p->finished) out.push_back(p->global_rank);
    return out;
}

bool World::all_finished() const {
    std::lock_guard lk(mu_);
    for (const auto& p : procs_)
        if (!p->finished) return false;
    return !procs_.empty();
}

double World::proc_cpu_seconds(int global_rank) const {
    clockid_t id{};
    {
        std::lock_guard lk(mu_);
        const ProcData& p = *procs_.at(static_cast<std::size_t>(global_rank));
        if (!p.cpu_clock_ready) return 0.0;
        if (p.finished) return p.final_cpu_seconds;  // the clock died with the thread
        id = p.cpu_clock;
    }
    timespec ts{};
    if (clock_gettime(id, &ts) != 0) return 0.0;
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------------------
// Handle tables
// ---------------------------------------------------------------------------

Comm World::create_comm(std::vector<int> group, std::vector<int> remote, bool is_inter) {
    std::lock_guard lk(mu_);
    auto c = std::make_unique<CommData>();
    c->handle = next_comm_++;
    c->context = next_context_;
    next_context_ += 4;  // room for collective side-channels
    c->group = std::move(group);
    c->remote_group = std::move(remote);
    c->is_inter = is_inter;
    const Comm h = c->handle;
    comms_[h] = std::move(c);
    return h;
}

CommData& World::comm(Comm c) {
    std::lock_guard lk(mu_);
    auto it = comms_.find(c);
    if (it == comms_.end()) throw std::out_of_range("simmpi: bad communicator handle");
    return *it->second;
}

bool World::comm_valid(Comm c) const {
    std::lock_guard lk(mu_);
    auto it = comms_.find(c);
    return it != comms_.end() && !it->second->freed;
}

Group World::create_group(std::vector<int> global_ranks) {
    std::lock_guard lk(mu_);
    auto g = std::make_unique<GroupData>();
    g->handle = next_group_++;
    g->global_ranks = std::move(global_ranks);
    const Group h = g->handle;
    groups_[h] = std::move(g);
    return h;
}

GroupData& World::group(Group g) {
    std::lock_guard lk(mu_);
    auto it = groups_.find(g);
    if (it == groups_.end()) throw std::out_of_range("simmpi: bad group handle");
    return *it->second;
}

bool World::group_valid(Group g) const {
    std::lock_guard lk(mu_);
    auto it = groups_.find(g);
    return it != groups_.end() && !it->second->freed;
}

Info World::create_info() {
    std::lock_guard lk(mu_);
    auto i = std::make_unique<InfoData>();
    i->handle = next_info_++;
    const Info h = i->handle;
    infos_[h] = std::move(i);
    return h;
}

InfoData& World::info(Info i) {
    std::lock_guard lk(mu_);
    auto it = infos_.find(i);
    if (it == infos_.end()) throw std::out_of_range("simmpi: bad info handle");
    return *it->second;
}

bool World::info_valid(Info i) const {
    std::lock_guard lk(mu_);
    auto it = infos_.find(i);
    return it != infos_.end() && !it->second->freed;
}

Win World::create_win(Comm c) {
    std::lock_guard lk(mu_);
    auto w = std::make_unique<WinData>();
    w->handle = next_win_++;
    w->comm = c;
    // Real MPI implementations recycle window identifiers after
    // MPI_Win_free; we do the same so the tool's N-M uniqueness scheme
    // is actually exercised (paper section 4.2.1).
    if (!free_win_impl_ids_.empty()) {
        w->impl_id = free_win_impl_ids_.back();
        free_win_impl_ids_.pop_back();
    } else {
        w->impl_id = next_win_impl_id_++;
    }
    const Win h = w->handle;
    wins_[h] = std::move(w);
    return h;
}

WinData& World::win(Win w) {
    std::lock_guard lk(mu_);
    auto it = wins_.find(w);
    if (it == wins_.end()) throw std::out_of_range("simmpi: bad window handle");
    return *it->second;
}

bool World::win_valid(Win w) const {
    std::lock_guard lk(mu_);
    auto it = wins_.find(w);
    return it != wins_.end() && !it->second->freed;
}

void World::release_win_impl_id(int impl_id) {
    std::lock_guard lk(mu_);
    free_win_impl_ids_.push_back(impl_id);
}

Request World::create_request(RequestData rd) {
    std::lock_guard lk(mu_);
    rd.handle = next_request_++;
    const Request h = rd.handle;
    requests_[h] = std::make_unique<RequestData>(std::move(rd));
    return h;
}

RequestData& World::request(Request r) {
    std::lock_guard lk(mu_);
    auto it = requests_.find(r);
    if (it == requests_.end()) throw std::out_of_range("simmpi: bad request handle");
    return *it->second;
}

bool World::request_valid(Request r) const {
    std::lock_guard lk(mu_);
    return requests_.count(r) != 0;
}

void World::free_request(Request r) {
    std::lock_guard lk(mu_);
    requests_.erase(r);
}

Mailbox& World::mailbox(int global_rank) {
    std::lock_guard lk(mu_);
    return *mailboxes_.at(static_cast<std::size_t>(global_rank));
}

// ---------------------------------------------------------------------------
// Simulated parallel filesystem
// ---------------------------------------------------------------------------

std::shared_ptr<StoredFile> World::fs_lookup(const std::string& filename, bool create) {
    std::lock_guard lk(mu_);
    const auto it = filesystem_.find(filename);
    if (it != filesystem_.end()) return it->second;
    if (!create) return nullptr;
    auto f = std::make_shared<StoredFile>();
    filesystem_[filename] = f;
    return f;
}

bool World::fs_exists(const std::string& filename) const {
    std::lock_guard lk(mu_);
    return filesystem_.count(filename) != 0;
}

bool World::fs_delete(const std::string& filename) {
    std::lock_guard lk(mu_);
    return filesystem_.erase(filename) != 0;
}

File World::create_file(std::string filename, std::shared_ptr<StoredFile> store,
                        Comm comm, int amode, bool delete_on_close) {
    std::lock_guard lk(mu_);
    auto owned = std::make_unique<FileData>();
    owned->handle = next_file_++;
    owned->filename = std::move(filename);
    owned->store = std::move(store);
    owned->comm = comm;
    owned->amode = amode;
    owned->delete_on_close = delete_on_close;
    const File h = owned->handle;
    files_[h] = std::move(owned);
    return h;
}

FileData& World::file(File f) {
    std::lock_guard lk(mu_);
    const auto it = files_.find(f);
    if (it == files_.end()) throw std::out_of_range("simmpi: bad file handle");
    return *it->second;
}

bool World::file_valid(File f) const {
    std::lock_guard lk(mu_);
    const auto it = files_.find(f);
    return it != files_.end() && !it->second->closed;
}

// ---------------------------------------------------------------------------
// Runtime services
// ---------------------------------------------------------------------------

std::int64_t World::win_impl_id(std::int64_t handle) const {
    std::lock_guard lk(mu_);
    auto it = wins_.find(static_cast<Win>(handle));
    return it == wins_.end() ? -1 : it->second->impl_id;
}

std::int64_t World::comm_context(std::int64_t handle) const {
    std::lock_guard lk(mu_);
    auto it = comms_.find(static_cast<Comm>(handle));
    return it == comms_.end() ? -1 : it->second->context;
}

std::string World::object_name_of_win(Win w) const {
    std::lock_guard lk(mu_);
    auto it = wins_.find(w);
    return it == wins_.end() ? std::string() : it->second->name;
}

std::string World::object_name_of_comm(Comm c) const {
    std::lock_guard lk(mu_);
    auto it = comms_.find(c);
    return it == comms_.end() ? std::string() : it->second->name;
}

void World::set_type_name(Datatype dt, std::string name) {
    std::lock_guard lk(mu_);
    type_names_[dt] = std::move(name);
}

std::string World::type_name(Datatype dt) const {
    std::lock_guard lk(mu_);
    const auto it = type_names_.find(dt);
    return it == type_names_.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// Spawn
// ---------------------------------------------------------------------------

void World::set_node_pool(std::vector<std::string> nodes) {
    std::lock_guard lk(mu_);
    if (!nodes.empty()) nodes_ = std::move(nodes);
}

Comm World::do_spawn(const std::string& command, const std::vector<std::string>& argv,
                     int maxprocs, Comm parent_comm) {
    // Simulated process-creation overhead: the paper calls out spawn
    // cost as something programmers will want to measure.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg_.spawn_base_cost * maxprocs));

    std::vector<int> children;
    children.reserve(static_cast<std::size_t>(maxprocs));
    for (int i = 0; i < maxprocs; ++i) {
        std::string node;
        {
            std::lock_guard lk(mu_);
            node = nodes_[next_node_ % nodes_.size()];
            ++next_node_;
        }
        children.push_back(create_proc(node, command));
    }
    const Comm child_world = create_comm(children);
    std::vector<int> parent_group = comm(parent_comm).group;
    const Comm inter = create_comm(parent_group, children, /*is_inter=*/true);
    for (int g : children) {
        set_proc_comm_world(g, child_world, inter);
        start_proc(g, argv);
    }
    return inter;
}

std::vector<MpirProcDesc> World::mpir_proctable() const {
    std::lock_guard lk(mu_);
    std::vector<MpirProcDesc> out;
    if (!cfg_.mpir_enabled) return out;
    for (const auto& p : procs_)
        out.push_back({p->node, p->program, p->global_rank});
    return out;
}

}  // namespace m2p::simmpi
