#include "simmpi/world.hpp"

#include <pthread.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "pvar/export.hpp"
#include "simmpi/rank.hpp"

namespace m2p::simmpi {

const char* flavor_name(Flavor f) { return f == Flavor::Lam ? "LAM/MPI" : "MPICH"; }

namespace {
using instr::Category;
constexpr std::uint32_t cat(Category c) { return static_cast<std::uint32_t>(c); }
}  // namespace

World::World(instr::Registry& reg, Config cfg) : reg_(reg), cfg_(std::move(cfg)) {
    register_mpi_functions();
    if (cfg_.trace_enabled) {
        trace::FlightRecorder::Options opt;
        opt.ring_capacity = cfg_.trace_ring_capacity;
        recorder_ = std::make_unique<trace::FlightRecorder>(opt);
    }
    // Eager scheduler construction keeps sched_ immutable for the
    // world's whole life, so the death/poison broadcast paths can read
    // it without mu_.
    if (cfg_.rank_engine == RankEngine::Fiber)
        sched_ = std::make_unique<sched::Scheduler>(cfg_.sched_workers);
    register_pvars();
    exporter_ = pvar::ExportWriter::from_env(pvars_);
}

World::~World() { join_all(); }

void World::register_pvars() {
    // Every variable is a reader over storage its plane already
    // maintains -- registration adds nothing to any hot path.
    //
    // Dispatch plane (per-thread stat-slot shards, summed on poll).
    pvars_.add_counter(
        "instr.dispatch.events",
        [this] { return static_cast<std::uint64_t>(reg_.stats().events); }, "events",
        "instrumented dispatch-boundary calls");
    pvars_.add_counter(
        "instr.dispatch.snippets",
        [this] { return static_cast<std::uint64_t>(reg_.stats().snippets_executed); },
        "snippets", "MDL snippet executions at dispatch");

    // Transport plane.  delivered_* are registered BEFORE the queued
    // counters deliberately: a snapshot pass polls variables in id
    // order, and delivered <= queued holds at every instant with both
    // sides monotone, so reading delivered first keeps the invariant
    // true inside every published snapshot even under churn.
    pvars_.add_counter(
        "simmpi.mailbox.delivered_msgs",
        [this] { return mailbox_stats().delivered_msgs; }, "events",
        "envelopes drained by receivers");
    pvars_.add_counter(
        "simmpi.mailbox.delivered_bytes",
        [this] { return mailbox_stats().delivered_bytes; }, "bytes",
        "payload bytes drained by receivers");
    pvars_.add_counter(
        "simmpi.mailbox.eager_msgs", [this] { return mailbox_stats().eager_msgs; },
        "events", "envelopes queued under the eager protocol");
    pvars_.add_counter(
        "simmpi.mailbox.rendezvous_msgs",
        [this] { return mailbox_stats().rendezvous_msgs; }, "events",
        "envelopes queued with a rendezvous token");
    pvars_.add_counter(
        "simmpi.mailbox.flow_stalls", [this] { return mailbox_stats().flow_stalls; },
        "events", "sender parks waiting for eager headroom");
    pvars_.add_gauge(
        "simmpi.mailbox.bytes_queued", [this] { return mailbox_stats().bytes_queued; },
        "bytes", "bytes currently queued across mailboxes");
    pvars_.add_watermark(
        "simmpi.mailbox.bytes_queued_hwm",
        [this] { return mailbox_stats().bytes_queued_hwm; }, "bytes",
        "deepest mailbox backlog seen");

    // Trace plane (per-thread ring head counters).
    if (recorder_) {
        trace::FlightRecorder* fr = recorder_.get();
        pvars_.add_counter(
            "trace.ring.written", [fr] { return fr->stats().written; }, "events",
            "events pushed into flight-recorder rings");
        pvars_.add_counter(
            "trace.ring.kept", [fr] { return fr->stats().kept; }, "events",
            "events currently retained across rings");
        pvars_.add_counter(
            "trace.ring.dropped", [fr] { return fr->stats().dropped; }, "events",
            "events overwritten by ring wrap-around");
        pvars_.add_gauge(
            "trace.ring.capacity",
            [fr] { return static_cast<std::uint64_t>(fr->ring_capacity()); }, "events",
            "configured events per ring");
    }

    // Fault plane.
    pvars_.add_counter(
        "faults.epitaphs", [this] { return epitaph_count(); }, "deaths",
        "epitaphs recorded (rank deaths)");
}

World::MailboxStats World::mailbox_stats() const {
    MailboxStats s;
    const int n = static_cast<int>(mailboxes_.size());
    for (int g = 0; g < n; ++g) {
        Mailbox& mb = *const_cast<World*>(this)->mailboxes_.find(g);
        s.eager_msgs += mb.eager_msgs.load(std::memory_order_relaxed);
        s.rendezvous_msgs += mb.rendezvous_msgs.load(std::memory_order_relaxed);
        s.delivered_msgs += mb.delivered_msgs.load(std::memory_order_relaxed);
        s.delivered_bytes += mb.delivered_bytes.load(std::memory_order_relaxed);
        s.flow_stalls += mb.flow_stalls.load(std::memory_order_relaxed);
        const std::uint64_t hwm = mb.bytes_queued_hwm.load(std::memory_order_relaxed);
        if (hwm > s.bytes_queued_hwm) s.bytes_queued_hwm = hwm;
        {
            // bytes_queued is plain state under mu; the gauge takes the
            // brief lock (snapshot cadence, never the data path).
            std::lock_guard lk(mb.mu);
            s.bytes_queued += mb.bytes_queued;
        }
    }
    return s;
}

void World::register_mpi_functions() {
    struct Row {
        instr::FuncId FuncIds::*mpi;
        instr::FuncId FuncIds::*pmpi;
        const char* name;
        std::uint32_t cats;
    };
    const std::uint32_t msg_send = Category::MsgSend | Category::MsgSync;
    const std::uint32_t msg_recv = Category::MsgRecv | Category::MsgSync;
    const Row rows[] = {
        {&FuncIds::MPI_Init, &FuncIds::PMPI_Init, "Init", 0},
        {&FuncIds::MPI_Finalize, &FuncIds::PMPI_Finalize, "Finalize", 0},
        {&FuncIds::MPI_Send, &FuncIds::PMPI_Send, "Send", msg_send},
        {&FuncIds::MPI_Ssend, &FuncIds::PMPI_Ssend, "Ssend", msg_send},
        {&FuncIds::MPI_Recv, &FuncIds::PMPI_Recv, "Recv", msg_recv},
        {&FuncIds::MPI_Isend, &FuncIds::PMPI_Isend, "Isend", cat(Category::MsgSend)},
        {&FuncIds::MPI_Irecv, &FuncIds::PMPI_Irecv, "Irecv", cat(Category::MsgRecv)},
        {&FuncIds::MPI_Wait, &FuncIds::PMPI_Wait, "Wait",
         Category::WaitOp | Category::MsgSync},
        {&FuncIds::MPI_Waitall, &FuncIds::PMPI_Waitall, "Waitall",
         Category::WaitOp | Category::MsgSync},
        {&FuncIds::MPI_Sendrecv, &FuncIds::PMPI_Sendrecv, "Sendrecv",
         msg_send | Category::MsgRecv},
        {&FuncIds::MPI_Barrier, &FuncIds::PMPI_Barrier, "Barrier",
         Category::Barrier | Category::MsgSync},
        {&FuncIds::MPI_Bcast, &FuncIds::PMPI_Bcast, "Bcast",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Reduce, &FuncIds::PMPI_Reduce, "Reduce",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Allreduce, &FuncIds::PMPI_Allreduce, "Allreduce",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Gather, &FuncIds::PMPI_Gather, "Gather",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Scatter, &FuncIds::PMPI_Scatter, "Scatter",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Allgather, &FuncIds::PMPI_Allgather, "Allgather",
         Category::Collective | Category::MsgSync},
        {&FuncIds::MPI_Win_create, &FuncIds::PMPI_Win_create, "Win_create",
         cat(Category::RmaLifetime)},
        {&FuncIds::MPI_Win_free, &FuncIds::PMPI_Win_free, "Win_free",
         cat(Category::RmaLifetime)},
        {&FuncIds::MPI_Win_fence, &FuncIds::PMPI_Win_fence, "Win_fence",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_start, &FuncIds::PMPI_Win_start, "Win_start",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_complete, &FuncIds::PMPI_Win_complete, "Win_complete",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_post, &FuncIds::PMPI_Win_post, "Win_post",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_wait, &FuncIds::PMPI_Win_wait, "Win_wait",
         cat(Category::RmaActiveSync)},
        {&FuncIds::MPI_Win_lock, &FuncIds::PMPI_Win_lock, "Win_lock",
         cat(Category::RmaPassiveSync)},
        {&FuncIds::MPI_Win_unlock, &FuncIds::PMPI_Win_unlock, "Win_unlock",
         cat(Category::RmaPassiveSync)},
        {&FuncIds::MPI_Put, &FuncIds::PMPI_Put, "Put", cat(Category::RmaPut)},
        {&FuncIds::MPI_Get, &FuncIds::PMPI_Get, "Get", cat(Category::RmaGet)},
        {&FuncIds::MPI_Accumulate, &FuncIds::PMPI_Accumulate, "Accumulate",
         cat(Category::RmaAcc)},
        {&FuncIds::MPI_Comm_spawn, &FuncIds::PMPI_Comm_spawn, "Comm_spawn",
         cat(Category::Spawn)},
        {&FuncIds::MPI_Comm_get_parent, &FuncIds::PMPI_Comm_get_parent,
         "Comm_get_parent", 0},
        {&FuncIds::MPI_Comm_set_name, &FuncIds::PMPI_Comm_set_name, "Comm_set_name", 0},
        {&FuncIds::MPI_Win_set_name, &FuncIds::PMPI_Win_set_name, "Win_set_name", 0},
        {&FuncIds::MPI_Abort, &FuncIds::PMPI_Abort, "Abort", 0},
    };
    // The MPI_ (user-boundary) name additionally carries UserBoundary
    // so FunctionGuard feeds the flight recorder exactly one span per
    // user-level call; PMPI_ internals stay invisible to the trace.
    for (const Row& r : rows) {
        const std::uint32_t base = r.cats | Category::MpiApi;
        fids_.*(r.mpi) = reg_.register_function(std::string("MPI_") + r.name, "libmpi",
                                                base | Category::UserBoundary);
        fids_.*(r.pmpi) =
            reg_.register_function(std::string("PMPI_") + r.name, "libmpi", base);
    }
    // MPI-I/O entry points.  They carry the Io category so the
    // default I/O-blocking metrics (and the Performance Consultant's
    // ExcessiveIOBlockingTime hypothesis) cover file access.
    const Row io_rows[] = {
        {&FuncIds::MPI_File_open, &FuncIds::PMPI_File_open, "File_open",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_close, &FuncIds::PMPI_File_close, "File_close",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_read, &FuncIds::PMPI_File_read, "File_read",
         cat(Category::Io)},
        {&FuncIds::MPI_File_write, &FuncIds::PMPI_File_write, "File_write",
         cat(Category::Io)},
        {&FuncIds::MPI_File_read_at, &FuncIds::PMPI_File_read_at, "File_read_at",
         cat(Category::Io)},
        {&FuncIds::MPI_File_write_at, &FuncIds::PMPI_File_write_at, "File_write_at",
         cat(Category::Io)},
        {&FuncIds::MPI_File_read_all, &FuncIds::PMPI_File_read_all, "File_read_all",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_write_all, &FuncIds::PMPI_File_write_all, "File_write_all",
         Category::Io | Category::Collective},
        {&FuncIds::MPI_File_read_shared, &FuncIds::PMPI_File_read_shared,
         "File_read_shared", cat(Category::Io)},
        {&FuncIds::MPI_File_write_shared, &FuncIds::PMPI_File_write_shared,
         "File_write_shared", cat(Category::Io)},
        {&FuncIds::MPI_File_seek, &FuncIds::PMPI_File_seek, "File_seek",
         cat(Category::Io)},
        {&FuncIds::MPI_File_sync, &FuncIds::PMPI_File_sync, "File_sync",
         cat(Category::Io)},
        {&FuncIds::MPI_File_delete, &FuncIds::PMPI_File_delete, "File_delete",
         cat(Category::Io)},
    };
    for (const Row& r : io_rows) {
        const std::uint32_t base = r.cats | Category::MpiApi;
        fids_.*(r.mpi) = reg_.register_function(std::string("MPI_") + r.name, "libmpi",
                                                base | Category::UserBoundary);
        fids_.*(r.pmpi) =
            reg_.register_function(std::string("PMPI_") + r.name, "libmpi", base);
    }

    // Transport-level functions.  MPICH ch_p4mpd moves messages with
    // socket read/write, which Paradyn's I/O metrics include -- the
    // source of the ExcessiveIOBlockingTime findings (paper Fig 3).
    fids_.io_read = reg_.register_function("read", "libc", cat(Category::Io));
    fids_.io_write = reg_.register_function("write", "libc", cat(Category::Io));
    fids_.sysv_recv = reg_.register_function("lam_ssi_rpi_sysv_recv", "liblam", 0);
    fids_.sysv_send = reg_.register_function("lam_ssi_rpi_sysv_send", "liblam", 0);
}

// ---------------------------------------------------------------------------
// Program registry
// ---------------------------------------------------------------------------

void World::register_program(const std::string& command, ProgramFn fn) {
    std::lock_guard lk(mu_);
    programs_[command] = std::move(fn);
}

bool World::has_program(const std::string& command) const {
    std::lock_guard lk(mu_);
    return programs_.count(command) != 0;
}

ProgramFn World::find_program(const std::string& command) const {
    std::lock_guard lk(mu_);
    const auto it = programs_.find(command);
    return it == programs_.end() ? ProgramFn{} : it->second;
}

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

int World::create_proc(const std::string& node, const std::string& command) {
    // mu_ keeps the two tables' indices aligned across concurrent
    // spawns; the mailbox goes in first so any proc a lock-free reader
    // can see already has its mailbox.
    std::lock_guard lk(mu_);
    mailboxes_.append([](Mailbox&, std::int32_t) {});
    return procs_.append([&](ProcData& p, std::int32_t h) {
        p.global_rank = h;
        p.node = node;
        p.program = command;
    });
}

void World::set_proc_comm_world(int global_rank, Comm cw, Comm parent) {
    // Runs before start_proc; the thread-creation handoff publishes it.
    ProcData& p = procs_.at(global_rank, "simmpi: bad proc rank");
    p.comm_world = cw;
    p.parent_intercomm = parent;
}

void World::run_rank_body(int global_rank, std::vector<std::string> argv,
                          ProgramFn fn) {
    ProcData& p = procs_.at(global_rank, "simmpi: bad proc rank");
    const bool on_fiber = sched::on_fiber();
    if (!on_fiber) {
        // Thread engine: the proc slot is this thread's own; only the
        // publish flags need ordering.
        pthread_getcpuclockid(pthread_self(), &p.cpu_clock);
        p.cpu_clock_ready = true;
        instr::set_current_rank(global_rank);
        instr::set_thread_call_sink(recorder_.get());
    }
    // Start gate: park until released.  Fibers park on their token
    // (release unparks the collected waiters); thread-mode tokens fall
    // back to 5 ms cv slices internally, so the same loop serves both.
    {
        std::unique_lock lk2(mu_);
        while (!(start_released_ || !cfg_.start_paused)) {
            const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
            start_waiters_.push_back(tok);
            lk2.unlock();
            tok->park_until(std::chrono::steady_clock::time_point::max());
            lk2.lock();
            start_waiters_.erase(
                std::remove(start_waiters_.begin(), start_waiters_.end(), tok),
                start_waiters_.end());
        }
    }
    {
        Rank rank(*this, global_rank);
        // A killed/poisoned rank unwinds here instead of returning;
        // the world records its epitaph and the context still exits
        // cleanly (finished stays the publish flag peers and the tool
        // watch).
        try {
            fn(rank, argv);
        } catch (const RankKilled& rk) {
            if (!rk.recorded) {
                Epitaph e;
                e.global_rank = global_rank;
                e.cause = rk.cause;
                e.detail = rk.detail;
                const char* lc = p.last_call.load(std::memory_order_relaxed);
                e.last_call = lc ? lc : "";
                e.calls_made = p.calls_made.load(std::memory_order_relaxed);
                record_death(std::move(e));
            }
        } catch (const std::exception& ex) {
            Epitaph e;
            e.global_rank = global_rank;
            e.cause = Epitaph::Cause::Exception;
            e.detail = ex.what();
            const char* lc = p.last_call.load(std::memory_order_relaxed);
            e.last_call = lc ? lc : "";
            e.calls_made = p.calls_made.load(std::memory_order_relaxed);
            record_death(std::move(e));
        }
    }
    if (on_fiber) {
        // Accumulated slices plus the in-progress one: exact at exit.
        p.final_cpu_seconds =
            static_cast<double>(p.cpu_ns.load(std::memory_order_relaxed) +
                                sched::current_slice_cpu_ns()) *
            1e-9;
    } else {
        timespec ts{};
        if (clock_gettime(p.cpu_clock, &ts) == 0)
            p.final_cpu_seconds = static_cast<double>(ts.tv_sec) +
                                  static_cast<double>(ts.tv_nsec) * 1e-9;
    }
    p.finished = true;  // publishes final_cpu_seconds
    if (!on_fiber) {
        instr::set_thread_call_sink(nullptr);
        instr::set_current_rank(-1);
    }
    // Completion notification for join_all (satellite of DESIGN.md 12:
    // no teardown polling).  The decrement happens INSIDE the join_mu_
    // critical section: join_all only reads unfinished_ under the same
    // lock, so it cannot observe zero, return, and let ~World destroy
    // join_mu_/join_cv_ while this context is still between the
    // decrement and the notify.
    {
        std::lock_guard lk(join_mu_);
        if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            join_cv_.notify_all();
    }
}

sched::Scheduler* World::scheduler_locked() {
    if (!sched_)
        throw std::runtime_error("simmpi: fiber engine without a scheduler");
    return sched_.get();
}

void World::start_proc(int global_rank, std::vector<std::string> argv) {
    ProcData& p = procs_.at(global_rank, "simmpi: bad proc rank");
    ProgramFn fn = find_program(p.program);
    if (!fn) throw std::runtime_error("simmpi: unknown program '" + p.program + "'");
    auto body = [this, global_rank, argv = std::move(argv), fn = std::move(fn)]() mutable {
        run_rank_body(global_rank, std::move(argv), std::move(fn));
    };
    std::lock_guard lk(mu_);
    // The increment must precede the spawn (the body may finish and
    // decrement before spawn returns), but a failed spawn must roll it
    // back or join_all stalls until the watchdog aborts the process.
    unfinished_.fetch_add(1, std::memory_order_acq_rel);
    try {
        if (cfg_.rank_engine == RankEngine::Fiber) {
            // The fiber's instr context carries the rank identity and
            // the recorder sink; workers install it at every switch-in.
            instr::ThreadContext ictx;
            ictx.rank = global_rank;
            ictx.sink = recorder_.get();
            scheduler_locked()->spawn(std::move(body), cfg_.fiber_stack_bytes,
                                      &p.cpu_ns, ictx);
        } else {
            threads_.emplace_back(std::move(body));
        }
    } catch (...) {
        unfinished_.fetch_sub(1, std::memory_order_acq_rel);
        throw;
    }
    ++started_;
}

void World::release_start_gate() {
    std::vector<std::shared_ptr<sched::WaitToken>> waiters;
    {
        std::lock_guard lk(mu_);
        start_released_ = true;
        cfg_.start_paused = false;  // late starters run immediately
        waiters = std::move(start_waiters_);
        start_waiters_.clear();
    }
    for (auto& w : waiters) w->unpark();
}

void World::join_all() {
    // Watchdog phase: wait for every rank body to come home, woken by
    // the last finisher's notify instead of a polling loop.  On
    // deadline expiry the per-rank state goes to stderr -- turning a
    // silent CI hang into a diagnosable dump -- then the world is
    // poisoned so liveness-checked waits unwedge; a grace period later
    // the process is aborted if ranks still have not come home.
    using clock = std::chrono::steady_clock;
    auto deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                       std::chrono::duration<double>(
                                           cfg_.join_deadline_seconds));
    bool dumped = false;
    {
        std::unique_lock lk(join_mu_);
        while (unfinished_.load(std::memory_order_acquire) != 0) {
            if (join_cv_.wait_until(lk, deadline) != std::cv_status::timeout)
                continue;
            if (clock::now() < deadline) continue;  // spurious
            lk.unlock();
            if (dumped) {
                dump_state("join_all grace period expired; aborting");
                emit_postmortem("join_all grace period expired; aborting");
                std::abort();
            }
            dump_state("join_all deadline expired; poisoning world");
            poison(MPI_ERR_OTHER);  // poison() emits the postmortem
            dumped = true;
            deadline = clock::now() + std::chrono::seconds(10);
            lk.lock();
        }
    }
    // Thread-engine join phase; re-checking threads_.size() each pass
    // also drains threads that spawn appended while we were joining.
    // (Fiber bodies need no join: unfinished_ reaching zero is the
    // completion publication.)
    for (;;) {
        std::thread* t = nullptr;
        {
            std::lock_guard lk(mu_);
            if (joined_ >= threads_.size()) return;
            t = &threads_[joined_];
            ++joined_;
        }
        if (t->joinable()) t->join();
    }
}

std::size_t World::proc_count() const { return procs_.size(); }

const ProcData& World::proc(int global_rank) const {
    return procs_.at(global_rank, "simmpi: bad proc rank");
}

ProcData& World::proc_data(int global_rank) {
    return procs_.at(global_rank, "simmpi: bad proc rank");
}

// ---------------------------------------------------------------------------
// Failure plane
// ---------------------------------------------------------------------------

bool World::rank_dead(int global_rank) const {
    const ProcData* p = procs_.find(global_rank);
    return p && p->dead.load(std::memory_order_acquire);
}

bool World::rank_unreachable(int global_rank) const {
    const ProcData* p = procs_.find(global_rank);
    return p && (p->dead.load(std::memory_order_acquire) ||
                 p->finished.load(std::memory_order_acquire));
}

void World::record_death(Epitaph e) {
    ProcData* p = procs_.find(e.global_rank);
    if (!p) return;
    if (p->dead.exchange(true, std::memory_order_acq_rel)) return;  // first death wins
    // cause_name returns a string literal, so the recorded pointer
    // outlives the world.
    trace_event(trace::EventKind::Death, e.global_rank, cause_name(e.cause),
                static_cast<std::int64_t>(e.calls_made));
    {
        std::lock_guard lk(epitaph_mu_);
        epitaphs_.push_back(e);
        epitaph_count_.store(epitaphs_.size(), std::memory_order_release);
    }
    death_epoch_.fetch_add(1, std::memory_order_acq_rel);
    // Parked fibers get an explicit broadcast so their abandon
    // predicates (dead peer / poisoned world) re-run now; thread-mode
    // waits still notice within one 5 ms slice on their own.
    if (sched_) sched_->unpark_all_parked();
    {
        std::lock_guard lk(observer_mu_);
        if (death_observer_) death_observer_(e);
    }
    // Nudge the exporter so an attached sampler sees the death
    // (faults.epitaphs and the terminal counter state) promptly; the
    // close() snapshot covers runs that end before the pass fires.
    // Asynchronous on purpose: record_death can run while the caller
    // holds a mailbox or shard mutex, and a synchronous publish would
    // re-take mailbox mutexes via the simmpi.mailbox.* gauges.
    if (exporter_) exporter_->request_flush();
}

std::vector<Epitaph> World::epitaphs() const {
    std::lock_guard lk(epitaph_mu_);
    return epitaphs_;
}

void World::poison(int errorcode) {
    int expected = MPI_SUCCESS;
    poison_code_.compare_exchange_strong(expected, errorcode);
    poisoned_.store(true, std::memory_order_release);
    death_epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (sched_) sched_->unpark_all_parked();
    trace_event(trace::EventKind::Poison, -1, "world_poisoned", errorcode);
    emit_postmortem("world poisoned");
    // Asynchronous for the same reason as in record_death: poison() is
    // reachable from error paths that hold transport locks.
    if (exporter_) exporter_->request_flush();
}

bool World::any_dead(const std::vector<int>& global_ranks) const {
    for (int g : global_ranks) {
        const ProcData* p = procs_.find(g);
        if (p && p->dead.load(std::memory_order_acquire)) return true;
    }
    return false;
}

bool World::comm_has_dead_member(const CommData& cd) const {
    return any_dead(cd.group) || any_dead(cd.remote_group);
}

void World::revoke_comm(Comm c, int by_global_rank) {
    if (!comm_valid(c)) return;
    CommData& cd = comm(c);
    if (cd.revoked.exchange(true, std::memory_order_acq_rel)) return;  // idempotent
    trace_event(trace::EventKind::Revoke, by_global_rank, "MPI_Comm_revoke", c,
                static_cast<std::int64_t>(death_epoch()));
    // Same broadcast record_death uses: parked fibers re-run their
    // abandon predicates (which now see the revoked flag) immediately
    // instead of waiting out a thread-mode 5 ms slice.
    if (sched_) sched_->unpark_all_parked();
}

void World::mark_recovered() {
    bool lost;
    {
        std::lock_guard lk(epitaph_mu_);
        lost = !epitaphs_.empty();
    }
    if (lost) recovered_.store(true, std::memory_order_release);
}

void World::set_death_observer(std::function<void(const Epitaph&)> obs) {
    std::lock_guard lk(observer_mu_);
    death_observer_ = std::move(obs);
}

void World::dump_state(const char* why) const {
    std::fprintf(stderr, "simmpi: %s\n", why);
    const int n = static_cast<int>(procs_.size());
    for (int g = 0; g < n; ++g) {
        const ProcData& p = *procs_.find(g);
        const char* lc = p.last_call.load(std::memory_order_relaxed);
        std::size_t depth = 0, bytes = 0;
        int msg_w = 0, space_w = 0;
        {
            Mailbox& mb = const_cast<World*>(this)->mailbox(g);
            std::lock_guard lk(mb.mu);
            depth = mb.queue.size();
            bytes = mb.bytes_queued;
            msg_w = mb.msg_waiters;
            space_w = mb.space_waiters;
        }
        std::fprintf(stderr,
                     "  rank %d (%s on %s): %s, last call %s (#%llu), "
                     "mailbox %zu msgs / %zu bytes, waiters msg=%d space=%d\n",
                     g, p.program.c_str(), p.node.c_str(),
                     p.dead.load() ? "DEAD" : (p.finished.load() ? "finished" : "running"),
                     lc ? lc : "<none>",
                     static_cast<unsigned long long>(p.calls_made.load()), depth, bytes,
                     msg_w, space_w);
    }
    if (poisoned())
        std::fprintf(stderr, "  world poisoned with error code %d\n", poison_code());
}

void World::emit_postmortem(const char* why) {
    if (!recorder_) return;
    if (postmortem_emitted_.exchange(true, std::memory_order_acq_rel)) return;
    // Mirror of trace::notes_from_world, inlined here because the
    // flight-recorder layer must stay simmpi-free (see src/trace/
    // CMakeLists.txt) while the World still owns the poison/watchdog
    // emit points.
    std::vector<trace::PostmortemNote> notes;
    const std::vector<Epitaph> eps = epitaphs();
    const int n = static_cast<int>(procs_.size());
    for (int g = 0; g < n; ++g) {
        const ProcData& p = *procs_.find(g);
        trace::PostmortemNote note;
        note.rank = g;
        if (p.dead.load(std::memory_order_acquire)) {
            note.status = "DEAD";
            for (const Epitaph& e : eps) {
                if (e.global_rank != g) continue;
                note.status = std::string("DEAD: ") + cause_name(e.cause) +
                              (e.detail.empty() ? "" : " - " + e.detail);
                note.last_call = e.last_call;
                break;
            }
        } else if (p.finished.load(std::memory_order_acquire)) {
            note.status = "finished";
        } else {
            note.status = "running";
            const char* lc = p.last_call.load(std::memory_order_relaxed);
            if (lc) note.last_call = lc;
        }
        notes.push_back(std::move(note));
    }
    const std::string dump = trace::render_postmortem(*recorder_, notes, why);
    std::fwrite(dump.data(), 1, dump.size(), stderr);
    if (const char* dir = std::getenv("M2P_POSTMORTEM_DIR")) {
        static std::atomic<int> counter{0};
        char stem[96];
        std::snprintf(stem, sizeof stem, "%s/postmortem_%ld_%d", dir,
                      static_cast<long>(::getpid()),
                      counter.fetch_add(1, std::memory_order_relaxed));
        auto write_one = [](const std::string& path, const std::string& body) {
            if (std::FILE* f = std::fopen(path.c_str(), "w")) {
                std::fwrite(body.data(), 1, body.size(), f);
                std::fclose(f);
            }
        };
        write_one(std::string(stem) + ".txt", dump);
        write_one(std::string(stem) + ".trace.json", trace::render_chrome_json(*recorder_));
    }
}

std::vector<int> World::live_procs() const {
    std::vector<int> out;
    const int n = static_cast<int>(procs_.size());
    for (int g = 0; g < n; ++g)
        if (!procs_.find(g)->finished) out.push_back(g);
    return out;
}

bool World::all_finished() const {
    const int n = static_cast<int>(procs_.size());
    for (int g = 0; g < n; ++g)
        if (!procs_.find(g)->finished) return false;
    return n != 0;
}

double World::proc_cpu_seconds(int global_rank) const {
    const ProcData* p = procs_.find(global_rank);
    if (!p) return 0.0;
    if (p->finished) return p->final_cpu_seconds;
    if (cfg_.rank_engine == RankEngine::Fiber)
        // Slices are charged at every fiber switch-out; a rank between
        // MPI calls lags by at most its current slice.
        return static_cast<double>(p->cpu_ns.load(std::memory_order_relaxed)) * 1e-9;
    if (!p->cpu_clock_ready) return 0.0;
    timespec ts{};
    if (clock_gettime(p->cpu_clock, &ts) != 0)
        // The thread may have exited between the finished check and the
        // clock read; its final tally is published in that case.
        return p->finished ? p->final_cpu_seconds : 0.0;
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------------------
// Handle tables
// ---------------------------------------------------------------------------

Comm World::create_comm(std::vector<int> group, std::vector<int> remote, bool is_inter) {
    const std::int64_t ctx =
        next_context_.fetch_add(4);  // room for collective side-channels
    return comms_.append([&](CommData& c, std::int32_t h) {
        c.handle = h;
        c.context = ctx;
        c.group = std::move(group);
        c.remote_group = std::move(remote);
        c.is_inter = is_inter;
        c.errhandler.store(cfg_.default_errhandler, std::memory_order_relaxed);
    });
}

CommData& World::comm(Comm c) { return comms_.at(c, "simmpi: bad communicator handle"); }

bool World::comm_valid(Comm c) const {
    const CommData* cd = comms_.find(c);
    return cd && !cd->freed;
}

void World::release_comm_member(Comm c) {
    CommData* cd = comms_.find(c);
    if (!cd || cd->freed) return;
    const int total = static_cast<int>(cd->group.size() + cd->remote_group.size());
    if (cd->free_count.fetch_add(1, std::memory_order_acq_rel) + 1 < total) return;
    // Last member out.  Nobody can still be inside an operation on this
    // comm (every member has called free), so payload storage can go;
    // the slot itself stays to keep the dense handle space stable.
    cd->freed = true;
    {
        std::lock_guard lk(name_mu_);
        cd->name.clear();
        cd->name.shrink_to_fit();
    }
    std::vector<int>().swap(cd->group);
    std::vector<int>().swap(cd->remote_group);
}

Group World::create_group(std::vector<int> global_ranks) {
    return groups_.append([&](GroupData& g, std::int32_t h) {
        g.handle = h;
        g.global_ranks = std::move(global_ranks);
    });
}

GroupData& World::group(Group g) { return groups_.at(g, "simmpi: bad group handle"); }

bool World::group_valid(Group g) const {
    const GroupData* gd = groups_.find(g);
    return gd && !gd->freed;
}

Info World::create_info() {
    return infos_.append([](InfoData& i, std::int32_t h) { i.handle = h; });
}

InfoData& World::info(Info i) { return infos_.at(i, "simmpi: bad info handle"); }

bool World::info_valid(Info i) const {
    const InfoData* id = infos_.find(i);
    return id && !id->freed;
}

Win World::create_win(Comm c) {
    int impl_id;
    {
        // Real MPI implementations recycle window identifiers after
        // MPI_Win_free; we do the same so the tool's N-M uniqueness
        // scheme is actually exercised (paper section 4.2.1).
        std::lock_guard lk(mu_);
        if (!free_win_impl_ids_.empty()) {
            impl_id = free_win_impl_ids_.back();
            free_win_impl_ids_.pop_back();
        } else {
            impl_id = next_win_impl_id_++;
        }
    }
    const Win h = wins_.append([&](WinData& w, std::int32_t h2) {
        w.handle = h2;
        w.comm = c;
        w.impl_id = impl_id;
    });
    // Table-1 pvars for this window.  Handles are never reused (only
    // impl_ids recycle) and the WinData slot outlives MPI_Win_free, so
    // the captured pointer stays valid and final totals stay readable
    // -- the same contract win_rma_counters() documents.
    {
        const WinCounters* wc = &wins_.at(h, "simmpi: bad window handle").counters;
        const std::string base = "rma.table1.win" + std::to_string(h) + ".";
        auto ctr = [&](const char* leaf, std::atomic<std::int64_t> WinCounters::*field,
                       const char* unit) {
            pvars_.add_counter(base + leaf, [wc, field] {
                return static_cast<std::uint64_t>(
                    (wc->*field).load(std::memory_order_acquire));
            }, unit);
        };
        ctr("put_ops", &WinCounters::put_ops, "ops");
        ctr("get_ops", &WinCounters::get_ops, "ops");
        ctr("acc_ops", &WinCounters::acc_ops, "ops");
        ctr("put_bytes", &WinCounters::put_bytes, "bytes");
        ctr("get_bytes", &WinCounters::get_bytes, "bytes");
        ctr("acc_bytes", &WinCounters::acc_bytes, "bytes");
        ctr("sync_ops", &WinCounters::sync_ops, "ops");
        ctr("at_sync_wait_ns", &WinCounters::at_sync_wait_ns, "ns");
        ctr("pt_sync_wait_ns", &WinCounters::pt_sync_wait_ns, "ns");
    }
    return h;
}

WinData& World::win(Win w) { return wins_.at(w, "simmpi: bad window handle"); }

bool World::win_valid(Win w) const {
    const WinData* wd = wins_.find(w);
    return wd && !wd->freed;
}

void World::release_win_impl_id(int impl_id) {
    std::lock_guard lk(mu_);
    free_win_impl_ids_.push_back(impl_id);
}

RmaCounterSnapshot World::win_rma_counters(Win w) {
    WinData& wd = win(w);
    const WinCounters& c = wd.counters;
    RmaCounterSnapshot s;
    s.put_ops = c.put_ops.load(std::memory_order_acquire);
    s.get_ops = c.get_ops.load(std::memory_order_acquire);
    s.acc_ops = c.acc_ops.load(std::memory_order_acquire);
    s.put_bytes = c.put_bytes.load(std::memory_order_acquire);
    s.get_bytes = c.get_bytes.load(std::memory_order_acquire);
    s.acc_bytes = c.acc_bytes.load(std::memory_order_acquire);
    s.sync_ops = c.sync_ops.load(std::memory_order_acquire);
    s.rma_ops = s.put_ops + s.get_ops + s.acc_ops;
    s.rma_bytes = s.put_bytes + s.get_bytes + s.acc_bytes;
    s.at_sync_wait = static_cast<double>(c.at_sync_wait_ns.load(std::memory_order_acquire)) * 1e-9;
    s.pt_sync_wait = static_cast<double>(c.pt_sync_wait_ns.load(std::memory_order_acquire)) * 1e-9;
    s.sync_wait = s.at_sync_wait + s.pt_sync_wait;
    return s;
}

Request World::create_request(RequestData rd) {
    {
        std::lock_guard lk(request_free_mu_);
        if (!free_requests_.empty()) {
            const Request h = free_requests_.back();
            free_requests_.pop_back();
            RequestData& slot = requests_.at(h, "simmpi: bad request handle");
            rd.handle = h;
            rd.live = true;
            slot = std::move(rd);
            return h;
        }
    }
    return requests_.append([&](RequestData& slot, std::int32_t h) {
        slot = std::move(rd);
        slot.handle = h;
        slot.live = true;
    });
}

RequestData& World::request(Request r) {
    return requests_.at(r, "simmpi: bad request handle");
}

bool World::request_valid(Request r) const {
    const RequestData* rd = requests_.find(r);
    return rd && rd->live;
}

void World::free_request(Request r) {
    RequestData* rd = requests_.find(r);
    if (!rd || !rd->live) return;
    // Drop payload references before recycling the slot.
    rd->kind = RequestKind::Null;
    rd->delivered.reset();
    rd->buf = nullptr;
    std::lock_guard lk(request_free_mu_);
    rd->live = false;
    free_requests_.push_back(r);
}

Mailbox& World::mailbox(int global_rank) {
    return mailboxes_.at(global_rank, "simmpi: bad mailbox rank");
}

// ---------------------------------------------------------------------------
// Simulated parallel filesystem
// ---------------------------------------------------------------------------

std::shared_ptr<StoredFile> World::fs_lookup(const std::string& filename, bool create) {
    std::lock_guard lk(mu_);
    const auto it = filesystem_.find(filename);
    if (it != filesystem_.end()) return it->second;
    if (!create) return nullptr;
    auto f = std::make_shared<StoredFile>();
    filesystem_[filename] = f;
    return f;
}

bool World::fs_exists(const std::string& filename) const {
    std::lock_guard lk(mu_);
    return filesystem_.count(filename) != 0;
}

bool World::fs_delete(const std::string& filename) {
    std::lock_guard lk(mu_);
    return filesystem_.erase(filename) != 0;
}

File World::create_file(std::string filename, std::shared_ptr<StoredFile> store,
                        Comm comm, int amode, bool delete_on_close) {
    return files_.append([&](FileData& fd, std::int32_t h) {
        fd.handle = h;
        fd.filename = std::move(filename);
        fd.store = std::move(store);
        fd.comm = comm;
        fd.amode = amode;
        fd.delete_on_close = delete_on_close;
    });
}

FileData& World::file(File f) { return files_.at(f, "simmpi: bad file handle"); }

bool World::file_valid(File f) const {
    const FileData* fd = files_.find(f);
    return fd && !fd->closed;
}

// ---------------------------------------------------------------------------
// Runtime services
// ---------------------------------------------------------------------------

std::int64_t World::win_impl_id(std::int64_t handle) const {
    const WinData* wd = wins_.find(static_cast<Win>(handle));
    return wd ? wd->impl_id : -1;
}

std::int64_t World::comm_context(std::int64_t handle) const {
    const CommData* cd = comms_.find(static_cast<Comm>(handle));
    return cd ? cd->context : -1;
}

std::string World::object_name_of_win(Win w) const {
    const WinData* wd = wins_.find(w);
    if (!wd) return {};
    std::lock_guard lk(name_mu_);
    return wd->name;
}

std::string World::object_name_of_comm(Comm c) const {
    const CommData* cd = comms_.find(c);
    if (!cd) return {};
    std::lock_guard lk(name_mu_);
    return cd->name;
}

void World::set_comm_name(Comm c, const std::string& name) {
    CommData* cd = comms_.find(c);
    if (!cd) return;
    std::lock_guard lk(name_mu_);
    cd->name = name;
}

void World::set_win_name(Win w, const std::string& name) {
    WinData* wd = wins_.find(w);
    if (!wd) return;
    std::lock_guard lk(name_mu_);
    wd->name = name;
}

void World::set_type_name(Datatype dt, std::string name) {
    std::lock_guard lk(mu_);
    type_names_[dt] = std::move(name);
}

std::string World::type_name(Datatype dt) const {
    std::lock_guard lk(mu_);
    const auto it = type_names_.find(dt);
    return it == type_names_.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// Spawn
// ---------------------------------------------------------------------------

void World::set_node_pool(std::vector<std::string> nodes) {
    std::lock_guard lk(mu_);
    if (!nodes.empty()) nodes_ = std::move(nodes);
}

Comm World::do_spawn(const std::string& command, const std::vector<std::string>& argv,
                     int maxprocs, Comm parent_comm) {
    // Spawn failure is reported, never thrown: an unknown program (the
    // old path threw std::runtime_error out of the root rank's thread,
    // std::terminate-ing the process) or an injected fault returns
    // MPI_COMM_NULL, which the rendezvous in PMPI_Comm_spawn turns
    // into MPI_ERR_SPAWN on every member of the spawning communicator.
    if (!has_program(command)) {
        trace_event(trace::EventKind::Spawn, instr::current_rank(), "spawn_unknown_program",
                    maxprocs, /*ok=*/0);
        return MPI_COMM_NULL;
    }
    if (cfg_.faults) {
        // Transient launch failures (fail_spawn specs fire once) are
        // retried with bounded exponential backoff; a persistent fault
        // exhausts the attempts and fails the spawn as before.
        const int attempts = std::max(1, cfg_.spawn_retry_attempts);
        double backoff = cfg_.spawn_retry_backoff_seconds;
        bool faulted = false;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            faulted = cfg_.faults->on_spawn();
            if (!faulted) break;
            trace_event(trace::EventKind::Fault, instr::current_rank(), "fault_spawn",
                        maxprocs, attempt);
            if (attempt + 1 < attempts) {
                trace_event(trace::EventKind::Spawn, instr::current_rank(),
                            "spawn_retry", maxprocs, attempt + 1);
                sched::sleep_for(std::chrono::duration<double>(backoff));
                backoff *= 2;
            }
        }
        if (faulted) {
            trace_event(trace::EventKind::Spawn, instr::current_rank(), "spawn",
                        maxprocs, /*ok=*/0);
            return MPI_COMM_NULL;
        }
    }
    // Simulated process-creation overhead: the paper calls out spawn
    // cost as something programmers will want to measure.
    sched::sleep_for(std::chrono::duration<double>(cfg_.spawn_base_cost * maxprocs));

    std::vector<int> children;
    children.reserve(static_cast<std::size_t>(maxprocs));
    for (int i = 0; i < maxprocs; ++i) {
        std::string node;
        {
            std::lock_guard lk(mu_);
            node = nodes_[next_node_ % nodes_.size()];
            ++next_node_;
        }
        children.push_back(create_proc(node, command));
    }
    const Comm child_world = create_comm(children);
    std::vector<int> parent_group = comm(parent_comm).group;
    const Comm inter = create_comm(parent_group, children, /*is_inter=*/true);
    for (int g : children) {
        set_proc_comm_world(g, child_world, inter);
        start_proc(g, argv);
    }
    trace_event(trace::EventKind::Spawn, instr::current_rank(), "spawn", maxprocs,
                /*ok=*/1, inter);
    return inter;
}

std::vector<MpirProcDesc> World::mpir_proctable() const {
    std::vector<MpirProcDesc> out;
    if (!cfg_.mpir_enabled) return out;
    const int n = static_cast<int>(procs_.size());
    for (int g = 0; g < n; ++g) {
        const ProcData& p = *procs_.find(g);
        out.push_back({p.node, p.program, p.global_rank});
    }
    return out;
}

}  // namespace m2p::simmpi
