// MPI-2 features of simmpi: one-sided communication, dynamic process
// creation, and object naming -- the features the paper adds tool
// support for.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"

namespace m2p::simmpi {

namespace {

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

std::int64_t as_arg(const void* p) {
    return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(p));
}

std::int64_t ns_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/// Grants the lock to the longest eligible prefix of the FIFO waiter
/// queue: the head waiter if it wants exclusive access (and no shared
/// holders remain), or every consecutive shared waiter at the head.
/// Caller holds the shard mutex; returned waiters must be signalled
/// after it is released.
std::vector<std::shared_ptr<LockWaiter>> grant_passive_locked(PassiveLock& pl) {
    std::vector<std::shared_ptr<LockWaiter>> out;
    if (pl.waiters.empty() || pl.exclusive_holder != -1) return out;
    if (pl.waiters.front()->lock_type == MPI_LOCK_EXCLUSIVE) {
        if (!pl.shared_holders.empty()) return out;
        auto head = pl.waiters.front();
        pl.waiters.pop_front();
        head->granted = true;
        pl.exclusive_holder = head->origin;
        out.push_back(std::move(head));
        return out;
    }
    while (!pl.waiters.empty() && pl.waiters.front()->lock_type == MPI_LOCK_SHARED) {
        auto head = pl.waiters.front();
        pl.waiters.pop_front();
        head->granted = true;
        pl.shared_holders.push_back(head->origin);
        out.push_back(std::move(head));
    }
    return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Epoch-batched Table-1 accounting
// ---------------------------------------------------------------------------

/// Sync-call epilogue: constructed after argument validation in each
/// RMA synchronization body, it times the call and -- exactly once per
/// sync call, including error and fault-unwind exits -- flushes the
/// origin's staged op/byte counters and the measured wait into the
/// window's tool-visible counters.
class Rank::RmaSyncScope {
public:
    RmaSyncScope(Rank& r, const char* call, Win win, bool passive)
        : r_(r),
          call_(call),
          win_(win),
          passive_(passive),
          t0_(std::chrono::steady_clock::now()) {}
    RmaSyncScope(const RmaSyncScope&) = delete;
    RmaSyncScope& operator=(const RmaSyncScope&) = delete;
    ~RmaSyncScope() { r_.rma_sync_flush(win_, call_, passive_, ns_since(t0_)); }

private:
    Rank& r_;
    const char* call_;
    Win win_;
    bool passive_;
    std::chrono::steady_clock::time_point t0_;
};

void Rank::rma_sync_flush(Win win, const char* call, bool passive,
                          std::int64_t wait_ns) {
    // Handle-table slots persist after MPI_Win_free, so flushing is
    // safe for freed windows (tools read final totals there too).
    WinCounters& c = world_.win(win).counters;
    const auto it = rma_stage_.find(win);
    if (it != rma_stage_.end()) {
        const RmaStage& s = it->second;
        if (s.put_ops) c.put_ops.fetch_add(s.put_ops, std::memory_order_acq_rel);
        if (s.get_ops) c.get_ops.fetch_add(s.get_ops, std::memory_order_acq_rel);
        if (s.acc_ops) c.acc_ops.fetch_add(s.acc_ops, std::memory_order_acq_rel);
        if (s.put_bytes) c.put_bytes.fetch_add(s.put_bytes, std::memory_order_acq_rel);
        if (s.get_bytes) c.get_bytes.fetch_add(s.get_bytes, std::memory_order_acq_rel);
        if (s.acc_bytes) c.acc_bytes.fetch_add(s.acc_bytes, std::memory_order_acq_rel);
        const std::int64_t ops = s.put_ops + s.get_ops + s.acc_ops;
        const std::int64_t bytes = s.put_bytes + s.get_bytes + s.acc_bytes;
        world_.trace_event(trace::EventKind::RmaBatch, global_, call, ops, bytes, win);
        rma_stage_.erase(it);
    }
    c.sync_ops.fetch_add(1, std::memory_order_acq_rel);
    if (wait_ns > 0) {
        (passive ? c.pt_sync_wait_ns : c.at_sync_wait_ns)
            .fetch_add(wait_ns, std::memory_order_acq_rel);
    }
    world_.trace_event(trace::EventKind::RmaEpoch, global_, call, win, wait_ns,
                       passive ? 1 : 0);
}

void Rank::rma_flush_all_stages() {
    for (const auto& [win, s] : rma_stage_) {
        WinCounters& c = world_.win(win).counters;
        if (s.put_ops) c.put_ops.fetch_add(s.put_ops, std::memory_order_acq_rel);
        if (s.get_ops) c.get_ops.fetch_add(s.get_ops, std::memory_order_acq_rel);
        if (s.acc_ops) c.acc_ops.fetch_add(s.acc_ops, std::memory_order_acq_rel);
        if (s.put_bytes) c.put_bytes.fetch_add(s.put_bytes, std::memory_order_acq_rel);
        if (s.get_bytes) c.get_bytes.fetch_add(s.get_bytes, std::memory_order_acq_rel);
        if (s.acc_bytes) c.acc_bytes.fetch_add(s.acc_bytes, std::memory_order_acq_rel);
        world_.trace_event(trace::EventKind::RmaBatch, global_, "rma_flush_all",
                           s.put_ops + s.get_ops + s.acc_ops,
                           s.put_bytes + s.get_bytes + s.acc_bytes, win);
    }
    rma_stage_.clear();
}

// ---------------------------------------------------------------------------
// Window lifetime
// ---------------------------------------------------------------------------

int Rank::MPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info,
                         Comm c, Win* win) {
    // args[5] is filled with the new window handle before the return
    // point fires, so the tool's window-discovery snippet (inserted at
    // the function return, paper section 4.2.1) can read it.
    std::int64_t a[] = {as_arg(base), size, disp_unit, info, c, 0};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_create, a);
    fault_point("MPI_Win_create");
    const int rc = PMPI_Win_create(base, size, disp_unit, info, c, win);
    if (rc == MPI_SUCCESS) a[5] = *win;
    return rc;
}

int Rank::PMPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info,
                          Comm c, Win* win) {
    std::int64_t a[] = {as_arg(base), size, disp_unit, info, c, 0};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_create, a);
    if (!win) return MPI_ERR_ARG;
    if (size < 0 || disp_unit <= 0) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    const int me = my_rank_in(cd);

    // Window creation is collective; the barriers below are where the
    // synchronization overhead of a late-arriving process shows up
    // (paper Fig 1, top left).
    const auto t0 = std::chrono::steady_clock::now();
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    if (me == 0) {
        cd.win_result = world_.create_win(c);
        if (world_.flavor() == Flavor::Lam) {
            // LAM's MPI_Win structure contains a communicator created
            // with the window; window names are stored there, which is
            // why named windows also appear under /SyncObject/Message
            // in the paper's Fig 23.
            world_.win(cd.win_result).shadow_comm = world_.create_comm(cd.group);
        }
    }
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    const Win h = cd.win_result;
    {
        // Each member populates its own shard.  The map mutates only
        // here, between the handle rendezvous and the final creation
        // barrier: every later shard() lookup happens-after all
        // inserts, so the read side needs no lock.
        WinData& w = world_.win(h);
        std::lock_guard lk(w.mu);
        WinShard& sh = w.shards[global_];
        sh.has_member = true;
        sh.member = WinMember{static_cast<std::byte*>(base), size, disp_unit};
        member_wins_.push_back(h);
    }
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    *win = h;
    a[5] = h;
    // MPI_Win_create is part of the general RMA synchronization metric
    // (paper section 4.2.1); charge it now that the handle exists.
    rma_sync_flush(h, "MPI_Win_create", /*passive=*/false, ns_since(t0));
    return MPI_SUCCESS;
}

int Rank::MPI_Win_free(Win* win) {
    const std::int64_t a[] = {win ? *win : MPI_WIN_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_free, a);
    fault_point("MPI_Win_free");
    return PMPI_Win_free(win);
}

int Rank::PMPI_Win_free(Win* win) {
    const std::int64_t a[] = {win ? *win : MPI_WIN_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_free, a);
    if (!win) return MPI_ERR_ARG;
    if (!world_.win_valid(*win)) return MPI_ERR_WIN;
    WinData& w = world_.win(*win);
    CommData& cd = world_.comm(w.comm);
    RmaSyncScope sync(*this, "MPI_Win_free", *win, /*passive=*/false);
    // Freeing a window while any rank holds or awaits a passive-target
    // lock on it is erroneous; refuse before entering the collective
    // barrier so the caller gets MPI_ERR_WIN instead of wedging the
    // lock queue (and the other members) forever.
    for (auto& [gr, sh] : w.shards) {
        std::lock_guard lk(sh.mu);
        if (sh.lock.held() || !sh.lock.waiters.empty()) return MPI_ERR_WIN;
    }
    // The MPI-2 standard requires barrier semantics here (paper
    // section 4.2.1: MPI_Win_free belongs in the general RMA
    // synchronization metric for exactly this reason).
    if (!barrier_internal(cd)) return comm_error(w.comm, coll_fail_code(cd));
    if (my_rank_in(cd) == 0) {
        w.freed = true;
        world_.release_win_impl_id(w.impl_id);
        // Lockers that slipped past the pre-barrier scan park with a
        // freed-window liveness check, but drain them eagerly anyway:
        // hand each an explicit abort verdict instead of leaving them
        // to the 5 ms slice.
        std::vector<std::shared_ptr<LockWaiter>> aborted;
        for (auto& [gr, sh] : w.shards) {
            std::lock_guard lk(sh.mu);
            for (auto& lw : sh.lock.waiters) {
                lw->aborted = true;
                aborted.push_back(lw);
            }
            sh.lock.waiters.clear();
        }
        for (auto& lw : aborted) lw->token->signal();
    }
    if (!barrier_internal(cd)) return comm_error(w.comm, coll_fail_code(cd));
    *win = MPI_WIN_NULL;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Active-target synchronization
// ---------------------------------------------------------------------------

int Rank::MPI_Win_fence(int assert, Win win) {
    const std::int64_t a[] = {assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_fence, a);
    fault_point("MPI_Win_fence");
    return PMPI_Win_fence(assert, win);
}

int Rank::PMPI_Win_fence(int assert, Win win) {
    const std::int64_t a[] = {assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_fence, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    RmaSyncScope sync(*this, "MPI_Win_fence", win, /*passive=*/false);
    // Checked before the closing-arrival bookkeeping: a post-revoke
    // fence must never close the fence and wave the parked ranks
    // through with MPI_SUCCESS.
    if (comm_revoked(cd)) return comm_error(w.comm, MPI_ERR_REVOKED);
    const int n = static_cast<int>(cd.group.size());
    if (n <= 1) return MPI_SUCCESS;

    if (world_.flavor() == Flavor::Lam) {
        // LAM implements MPI_Win_fence with nonblocking message
        // passing plus MPI_Barrier: the paper observes both the
        // Message (Fig 24) and Barrier (Fig 22) sync objects showing
        // up under a fence bottleneck with LAM.
        const int me = my_rank_in(cd);
        const int tag = next_coll_tag(w.comm);
        int tok = 0, tok2 = 0;
        Request rq = MPI_REQUEST_NULL;
        Status st;
        // Any failure in the token ring (a neighbor died or the wait
        // timed out) is remapped to the collective-failure code so all
        // survivors of a faulted fence observe the same error.
        int rc = PMPI_Isend(&tok, 1, MPI_INT, (me + 1) % n, tag, w.comm, &rq);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, coll_fail_code(cd));
        rc = PMPI_Recv(&tok2, 1, MPI_INT, (me - 1 + n) % n, tag, w.comm, &st);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, coll_fail_code(cd));
        rc = PMPI_Waitall(1, &rq, &st);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, coll_fail_code(cd));
        return PMPI_Barrier(w.comm);
    }
    // MPICH2: internal fence counter; the waiting time is charged to
    // MPI_Win_fence itself.  The closing arrival signals each parked
    // rank's token exactly once -- no shared condition variable, no
    // thundering herd of n-1 spurious wakeups per fence.
    const auto deadline = wait_deadline();
    std::shared_ptr<DeliveryToken> tok;
    std::vector<std::shared_ptr<DeliveryToken>> wake;
    {
        std::lock_guard lk(w.fence_mu);
        if (++w.fence_count == n) {
            w.fence_count = 0;
            ++w.fence_gen;
            wake = std::move(w.fence_waiters);
            w.fence_waiters.clear();
        } else {
            tok = std::make_shared<DeliveryToken>();
            w.fence_waiters.push_back(tok);
        }
    }
    if (!tok) {
        // This rank closed the fence; wake the parked ranks (outside
        // fence_mu, so next-fence arrivals are not serialized behind
        // the wakeup loop) and go.
        for (auto& t : wake) t->signal();
        return MPI_SUCCESS;
    }
    const bool signalled = tok->wait_or_abandon(
        [&] {
            return world_.poisoned() || comm_revoked(cd) ||
                   (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd)) ||
                   std::chrono::steady_clock::now() >= deadline;
        },
        deadline);
    if (!signalled) {
        {
            std::lock_guard lk(w.fence_mu);
            const auto it =
                std::find(w.fence_waiters.begin(), w.fence_waiters.end(), tok);
            if (it == w.fence_waiters.end()) {
                // The closing rank took our token between the abandon
                // decision and this lock: the fence completed after all.
                return MPI_SUCCESS;
            }
            // Withdraw from the fence so a later (post-fault) fence over
            // the survivors is not off by one.
            w.fence_waiters.erase(it);
            --w.fence_count;
        }
        // Error paths only after fence_mu is dropped: check_poisoned
        // and comm_error may take shard mutexes via rma_detach_all.
        check_poisoned();
        return comm_error(w.comm, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_start(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_start, a);
    fault_point("MPI_Win_start");
    return PMPI_Win_start(grp, assert, win);
}

/// Blocks until @p target's exposure epoch is open to this origin and
/// marks the origin started in it.  Origins park on per-origin tokens
/// registered in the shard's post_waiters; MPI_Win_post signals each
/// exactly once.  A wakeup that does not satisfy this origin (a post
/// for a group excluding it) re-registers and parks again.
int Rank::rma_wait_exposure(WinData& w, WinShard& sh, int target) {
    const auto deadline = wait_deadline();
    CommData& cd = world_.comm(w.comm);
    for (;;) {
        std::shared_ptr<DeliveryToken> tok;
        {
            std::lock_guard lk(sh.mu);
            Exposure& e = sh.exposure;
            if (e.exposed && contains(e.group, global_) &&
                !contains(e.started, global_)) {
                e.started.push_back(global_);
                return MPI_SUCCESS;
            }
            tok = std::make_shared<DeliveryToken>();
            e.post_waiters.push_back(tok);
        }
        const bool signalled = tok->wait_or_abandon(
            [&] {
                return world_.poisoned() || comm_revoked(cd) ||
                       (world_.death_epoch() != 0 &&
                        world_.rank_unreachable(target)) ||
                       std::chrono::steady_clock::now() >= deadline;
            },
            deadline);
        if (!signalled) {
            bool withdrawn = false;
            {
                std::lock_guard lk(sh.mu);
                auto& pw = sh.exposure.post_waiters;
                const auto it = std::find(pw.begin(), pw.end(), tok);
                if (it != pw.end()) {
                    pw.erase(it);
                    withdrawn = true;
                }
                // else a post raced the abandon decision; loop and
                // re-check.
            }
            if (withdrawn) {
                // sh.mu is released: check_poisoned/comm_error may
                // re-enter the shard mutexes via rma_detach_all.
                check_poisoned();
                return comm_error(w.comm, coll_fail_code(cd));
            }
        }
    }
}

int Rank::PMPI_Win_start(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_start, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (!world_.group_valid(grp)) return MPI_ERR_GROUP;
    if (start_epochs_.count(win)) return MPI_ERR_WIN;  // already in an access epoch
    WinData& w = world_.win(win);
    RmaSyncScope sync(*this, "MPI_Win_start", win, /*passive=*/false);
    const std::vector<int> targets = world_.group(grp).global_ranks;
    start_epochs_[win] = targets;
    if (world_.flavor() == Flavor::Mpich) return MPI_SUCCESS;  // defers to complete

    // LAM blocks in MPI_Win_start until the matching MPI_Win_post has
    // executed on every target -- one of the two placements the MPI-2
    // standard allows, and the source of the per-implementation
    // differences in the paper's winscpwsync findings (Fig 21).
    for (int t : targets) {
        WinShard* sh = w.shard(t);
        if (!sh) {
            start_epochs_.erase(win);
            return MPI_ERR_RANK;
        }
        if (const int rc = rma_wait_exposure(w, *sh, t); rc != MPI_SUCCESS) {
            // A target that will never post: abandon the access epoch
            // so a retry does not see it half-open.
            start_epochs_.erase(win);
            return rc;
        }
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_complete(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_complete, a);
    fault_point("MPI_Win_complete");
    return PMPI_Win_complete(win);
}

int Rank::PMPI_Win_complete(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_complete, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    const auto it = start_epochs_.find(win);
    if (it == start_epochs_.end()) return MPI_ERR_WIN;
    const std::vector<int> targets = it->second;
    start_epochs_.erase(it);

    WinData& w = world_.win(win);
    RmaSyncScope sync(*this, "MPI_Win_complete", win, /*passive=*/false);
    for (int t : targets) {
        WinShard* sh = w.shard(t);
        if (!sh) return MPI_ERR_RANK;
        if (world_.flavor() == Flavor::Mpich) {
            // MPICH2 deferred the post-wait to here; flush this
            // origin's staged transfers once the target's exposure
            // epoch is open.
            if (const int rc = rma_wait_exposure(w, *sh, t); rc != MPI_SUCCESS)
                return rc;
        }
        std::shared_ptr<DeliveryToken> wake;
        {
            std::lock_guard lk(sh->mu);
            Exposure& e = sh->exposure;
            if (world_.flavor() == Flavor::Mpich) {
                auto& ops = sh->staged;
                for (auto op_it = ops.begin(); op_it != ops.end();) {
                    if (op_it->origin_global != global_) {
                        ++op_it;
                        continue;
                    }
                    const WinMember& m = sh->member;
                    std::byte* at = m.base + op_it->target_disp * m.disp_unit;
                    switch (op_it->kind) {
                        case PendingRmaOp::Kind::Put:
                            std::memcpy(at, op_it->payload.data(), op_it->payload.size());
                            break;
                        case PendingRmaOp::Kind::Get:
                            // Single copy: the target bytes land in the
                            // origin buffer here, on the origin's own
                            // thread -- no payload staging for gets.
                            std::memcpy(op_it->origin_addr, at,
                                        static_cast<std::size_t>(op_it->nbytes));
                            break;
                        case PendingRmaOp::Kind::Accumulate:
                            reduce_combine(at, op_it->payload.data(),
                                           static_cast<int>(op_it->nbytes /
                                                            datatype_size(op_it->dt)),
                                           op_it->dt, op_it->op);
                            break;
                    }
                    op_it = ops.erase(op_it);
                }
            }
            ++e.completes;
            // Hand the target's wait token over (if it is parked); the
            // waiter re-checks its predicate and re-registers when the
            // epoch is not yet fully completed.
            wake = std::move(e.wait_token);
            e.wait_token = nullptr;
        }
        if (wake) wake->signal();
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_post(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_post, a);
    fault_point("MPI_Win_post");
    return PMPI_Win_post(grp, assert, win);
}

int Rank::PMPI_Win_post(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_post, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (!world_.group_valid(grp)) return MPI_ERR_GROUP;
    WinData& w = world_.win(win);
    WinShard* sh = w.shard(global_);
    if (!sh) return MPI_ERR_WIN;
    std::vector<std::shared_ptr<DeliveryToken>> wake;
    {
        std::lock_guard lk(sh->mu);
        Exposure& e = sh->exposure;
        if (e.exposed) return MPI_ERR_WIN;  // exposure epoch already open
        e.exposed = true;
        e.group = world_.group(grp).global_ranks;
        e.started.clear();
        e.completes = 0;
        wake.swap(e.post_waiters);
    }
    // Each parked origin gets exactly one targeted signal; origins the
    // new epoch does not admit re-park on a fresh token.
    for (auto& t : wake) t->signal();
    return MPI_SUCCESS;
}

int Rank::MPI_Win_wait(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_wait, a);
    fault_point("MPI_Win_wait");
    return PMPI_Win_wait(win);
}

int Rank::PMPI_Win_wait(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_wait, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    WinShard* sh = w.shard(global_);
    if (!sh) return MPI_ERR_WIN;
    RmaSyncScope sync(*this, "MPI_Win_wait", win, /*passive=*/false);
    // Blocks until all origins in the post group have completed --
    // "MPI_Win_wait will block until all outstanding MPI_Win_complete
    // calls have been issued" (paper section 4.2.1).  The target parks
    // on its own token; each MPI_Win_complete hands it back for a
    // re-check, the last one satisfies it.
    const auto deadline = wait_deadline();
    std::vector<int> post_group;
    for (;;) {
        std::shared_ptr<DeliveryToken> tok;
        {
            std::lock_guard lk(sh->mu);
            Exposure& e = sh->exposure;
            if (!e.exposed) return MPI_ERR_WIN;  // no matching MPI_Win_post
            if (e.completes >= static_cast<int>(e.group.size())) {
                e.exposed = false;
                e.started.clear();
                e.completes = 0;
                e.wait_token = nullptr;
                return MPI_SUCCESS;
            }
            post_group = e.group;
            tok = std::make_shared<DeliveryToken>();
            e.wait_token = tok;
        }
        const bool signalled = tok->wait_or_abandon(
            [&] {
                return world_.poisoned() || comm_revoked(cd) ||
                       (world_.death_epoch() != 0 && world_.any_dead(post_group)) ||
                       std::chrono::steady_clock::now() >= deadline;
            },
            deadline);
        if (!signalled) {
            bool withdrawn = false;
            {
                std::lock_guard lk(sh->mu);
                if (sh->exposure.wait_token == tok) {
                    sh->exposure.wait_token = nullptr;
                    withdrawn = true;
                }
                // else a complete raced the abandon decision; loop and
                // re-check.
            }
            if (withdrawn) {
                // sh->mu is released: check_poisoned/comm_error may
                // re-enter the shard mutexes via rma_detach_all.
                check_poisoned();
                return comm_error(w.comm, coll_fail_code(cd));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Passive-target synchronization
// ---------------------------------------------------------------------------

int Rank::MPI_Win_lock(int lock_type, int rank, int assert, Win win) {
    const std::int64_t a[] = {lock_type, rank, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_lock, a);
    fault_point("MPI_Win_lock");
    return PMPI_Win_lock(lock_type, rank, assert, win);
}

int Rank::PMPI_Win_lock(int lock_type, int rank, int assert, Win win) {
    const std::int64_t a[] = {lock_type, rank, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_lock, a);
    if (lock_type != MPI_LOCK_EXCLUSIVE && lock_type != MPI_LOCK_SHARED)
        return MPI_ERR_LOCKTYPE;
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    if (rank < 0 || static_cast<std::size_t>(rank) >= cd.group.size())
        return MPI_ERR_RANK;
    const int target = cd.group[static_cast<std::size_t>(rank)];
    if (comm_revoked(cd)) return comm_error(w.comm, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.rank_dead(target))
        return comm_error(w.comm, MPI_ERR_RANK);
    WinShard* sh = w.shard(target);
    if (!sh) return MPI_ERR_RANK;
    RmaSyncScope sync(*this, "MPI_Win_lock", win, /*passive=*/true);
    std::shared_ptr<LockWaiter> me;
    {
        std::lock_guard lk(sh->mu);
        PassiveLock& pl = sh->lock;
        // Immediate grant only when compatible AND nobody is queued:
        // an empty queue keeps the fast path one mutex hop; a
        // non-empty one means jumping it would starve the head waiter.
        const bool compatible = lock_type == MPI_LOCK_EXCLUSIVE
                                    ? !pl.held()
                                    : pl.exclusive_holder == -1;
        if (compatible && pl.waiters.empty()) {
            if (lock_type == MPI_LOCK_EXCLUSIVE)
                pl.exclusive_holder = global_;
            else
                pl.shared_holders.push_back(global_);
            held_locks_[win].push_back(target);
            return MPI_SUCCESS;
        }
        me = std::make_shared<LockWaiter>();
        me->origin = global_;
        me->lock_type = lock_type;
        pl.waiters.push_back(me);
    }
    const auto deadline = wait_deadline();
    const auto doomed = [&] {
        if (world_.poisoned()) return true;
        if (comm_revoked(cd)) return true;
        if (w.freed.load(std::memory_order_acquire)) return true;
        if (std::chrono::steady_clock::now() >= deadline) return true;
        if (world_.death_epoch() != 0) {
            if (world_.rank_dead(target)) return true;
            // A holder that died with the lock held will never unlock.
            std::lock_guard lk(sh->mu);
            const PassiveLock& pl = sh->lock;
            if (pl.exclusive_holder != -1 && world_.rank_dead(pl.exclusive_holder))
                return true;
            if (world_.any_dead(pl.shared_holders)) return true;
        }
        return false;
    };
    const bool signalled = me->token->wait_or_abandon(doomed, deadline);
    if (!signalled) {
        bool withdrawn = false;
        bool holder_died = false;
        {
            std::lock_guard lk(sh->mu);
            if (!me->granted && !me->aborted) {
                auto& q = sh->lock.waiters;
                const auto it = std::find(q.begin(), q.end(), me);
                if (it != q.end()) q.erase(it);
                withdrawn = true;
                holder_died = world_.rank_dead(target);
                if (!holder_died && world_.death_epoch() != 0) {
                    const PassiveLock& pl = sh->lock;
                    holder_died = (pl.exclusive_holder != -1 &&
                                   world_.rank_dead(pl.exclusive_holder)) ||
                                  world_.any_dead(pl.shared_holders);
                }
            }
            // else the grant (or abort) raced the abandon decision;
            // fall through to read the verdict.
        }
        if (withdrawn) {
            // sh->mu is released: check_poisoned/comm_error may
            // re-enter the shard mutexes via rma_detach_all.
            check_poisoned();
            if (comm_revoked(cd)) return comm_error(w.comm, MPI_ERR_REVOKED);
            if (w.freed.load(std::memory_order_acquire)) return MPI_ERR_WIN;
            return comm_error(w.comm, holder_died ? MPI_ERR_RANK : MPI_ERR_OTHER);
        }
    }
    if (me->aborted) return MPI_ERR_WIN;  // window freed under the waiter
    // Granted: the granter already installed us as holder.
    held_locks_[win].push_back(target);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_unlock(int rank, Win win) {
    const std::int64_t a[] = {rank, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_unlock, a);
    fault_point("MPI_Win_unlock");
    return PMPI_Win_unlock(rank, win);
}

int Rank::PMPI_Win_unlock(int rank, Win win) {
    const std::int64_t a[] = {rank, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_unlock, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    if (rank < 0 || static_cast<std::size_t>(rank) >= cd.group.size())
        return MPI_ERR_RANK;
    const int target = cd.group[static_cast<std::size_t>(rank)];
    auto held = held_locks_.find(win);
    if (held == held_locks_.end()) return MPI_ERR_WIN;
    auto ht = std::find(held->second.begin(), held->second.end(), target);
    if (ht == held->second.end()) return MPI_ERR_WIN;  // unlock without lock
    held->second.erase(ht);
    WinShard* sh = w.shard(target);
    if (!sh) return MPI_ERR_RANK;
    RmaSyncScope sync(*this, "MPI_Win_unlock", win, /*passive=*/true);
    std::vector<std::shared_ptr<LockWaiter>> granted;
    {
        std::lock_guard lk(sh->mu);
        PassiveLock& pl = sh->lock;
        if (pl.exclusive_holder == global_) {
            pl.exclusive_holder = -1;
        } else {
            const auto sit =
                std::find(pl.shared_holders.begin(), pl.shared_holders.end(), global_);
            if (sit != pl.shared_holders.end()) pl.shared_holders.erase(sit);
        }
        granted = grant_passive_locked(pl);
    }
    // FIFO handoff: wake exactly the waiters that now hold the lock
    // (one exclusive, or the shared run at the head) -- nobody else.
    for (auto& lw : granted) lw->token->signal();
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// RMA data transfer
// ---------------------------------------------------------------------------

void Rank::rma_detach_all() const {
    // The shard mutex is the whole protocol: a survivor's direct apply
    // memcpys through member.base while holding it, so taking it here
    // (before this rank's stack unwinds and frees the backing memory)
    // drains any in-flight copy, and clearing has_member fails every
    // later one fast.  Staged ops aimed at this rank's memory can never
    // be applied either -- drop them.
    for (const Win h : member_wins_) {
        if (!world_.win_valid(h)) continue;
        WinShard* sh = world_.win(h).shard(global_);
        if (!sh) continue;
        std::lock_guard lk(sh->mu);
        sh->has_member = false;
        sh->member = WinMember{};
        sh->staged.clear();
    }
}

int Rank::rma_check(const WinData& w, int ocount, Datatype odt, int trank,
                    std::int64_t tdisp, int tcount, Datatype tdt) const {
    if (ocount < 0 || tcount < 0) return MPI_ERR_COUNT;
    if (datatype_size(odt) <= 0 || datatype_size(tdt) <= 0) return MPI_ERR_TYPE;
    if (tdisp < 0) return MPI_ERR_ARG;
    const std::int64_t obytes = static_cast<std::int64_t>(ocount) * datatype_size(odt);
    const std::int64_t tbytes = static_cast<std::int64_t>(tcount) * datatype_size(tdt);
    if (obytes != tbytes) return MPI_ERR_ARG;
    const CommData& cd = const_cast<World&>(world_).comm(w.comm);
    if (trank < 0 || static_cast<std::size_t>(trank) >= cd.group.size())
        return MPI_ERR_RANK;
    return MPI_SUCCESS;
}

int Rank::rma_run_op(Win win, WinData& w, PendingRmaOp::Kind kind, const void* src,
                     void* dst, int trank, std::int64_t tdisp, Datatype dt, Op op,
                     std::int64_t nbytes) {
    const int target = world_.comm(w.comm).group[static_cast<std::size_t>(trank)];
    WinShard* sh = w.shard(target);
    if (!sh) return MPI_ERR_RANK;
    const auto ep = start_epochs_.find(win);
    const bool defer = world_.flavor() == Flavor::Mpich && ep != start_epochs_.end() &&
                       contains(ep->second, target);
    if (defer) {
        // Mpich start epoch: the transfer happens at MPI_Win_complete.
        // Put/Accumulate snapshot the user buffer now (the standard
        // lets the user reuse it after the call returns); Get stages
        // no payload at all -- the single copy target -> origin runs
        // at complete time on this origin's thread.
        PendingRmaOp pop;
        pop.kind = kind;
        pop.origin_global = global_;
        pop.origin_addr = static_cast<std::byte*>(dst);
        pop.target_disp = tdisp;
        pop.nbytes = nbytes;
        pop.dt = dt;
        pop.op = op;
        if (kind != PendingRmaOp::Kind::Get && nbytes > 0)
            pop.payload.assign(static_cast<const std::byte*>(src),
                               static_cast<const std::byte*>(src) + nbytes);
        std::lock_guard lk(sh->mu);
        // Shards are only ever created with a member; a cleared member
        // means the target died and detached (rma_detach_all).
        if (!sh->has_member) return MPI_ERR_PROC_FAILED;
        const std::int64_t off = tdisp * sh->member.disp_unit;
        if (off < 0 || off + nbytes > sh->member.size) return MPI_ERR_ARG;
        sh->staged.push_back(std::move(pop));
    } else {
        // Direct apply: one memcpy between the user buffer and the
        // target's window memory under that target's shard mutex --
        // the zero-copy path, no staging allocation, no second copy.
        std::lock_guard lk(sh->mu);
        // Shards are only ever created with a member; a cleared member
        // means the target died and detached (rma_detach_all).
        if (!sh->has_member) return MPI_ERR_PROC_FAILED;
        const std::int64_t off = tdisp * sh->member.disp_unit;
        if (off < 0 || off + nbytes > sh->member.size) return MPI_ERR_ARG;
        std::byte* at = sh->member.base + off;
        switch (kind) {
            case PendingRmaOp::Kind::Put:
                if (nbytes > 0) std::memcpy(at, src, static_cast<std::size_t>(nbytes));
                break;
            case PendingRmaOp::Kind::Get:
                if (nbytes > 0) std::memcpy(dst, at, static_cast<std::size_t>(nbytes));
                break;
            case PendingRmaOp::Kind::Accumulate:
                reduce_combine(at, src, static_cast<int>(nbytes / datatype_size(dt)),
                               dt, op);
                break;
        }
    }
    // Table-1 accounting: thread-local staging only; the next sync
    // call on this window flushes it to the shared counters.
    RmaStage& stg = rma_stage_[win];
    switch (kind) {
        case PendingRmaOp::Kind::Put:
            ++stg.put_ops;
            stg.put_bytes += nbytes;
            break;
        case PendingRmaOp::Kind::Get:
            ++stg.get_ops;
            stg.get_bytes += nbytes;
            break;
        case PendingRmaOp::Kind::Accumulate:
            ++stg.acc_ops;
            stg.acc_bytes += nbytes;
            break;
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                  std::int64_t tdisp, int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Put, a);
    fault_point("MPI_Put");
    return PMPI_Put(oaddr, ocount, odt, trank, tdisp, tcount, tdt, win);
}

int Rank::PMPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                   std::int64_t tdisp, int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Put, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    return rma_run_op(win, w, PendingRmaOp::Kind::Put, oaddr, nullptr, trank, tdisp,
                      odt, MPI_OP_NULL,
                      static_cast<std::int64_t>(ocount) * datatype_size(odt));
}

int Rank::MPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                  int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Get, a);
    fault_point("MPI_Get");
    return PMPI_Get(oaddr, ocount, odt, trank, tdisp, tcount, tdt, win);
}

int Rank::PMPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                   int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Get, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    return rma_run_op(win, w, PendingRmaOp::Kind::Get, nullptr, oaddr, trank, tdisp,
                      odt, MPI_OP_NULL,
                      static_cast<std::int64_t>(ocount) * datatype_size(odt));
}

int Rank::MPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                         std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt),
                              static_cast<std::int64_t>(op), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Accumulate, a);
    fault_point("MPI_Accumulate");
    return PMPI_Accumulate(oaddr, ocount, odt, trank, tdisp, tcount, tdt, op, win);
}

int Rank::PMPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                          std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt),
                              static_cast<std::int64_t>(op), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Accumulate, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (op == MPI_OP_NULL) return MPI_ERR_ARG;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    if (odt != tdt) return MPI_ERR_TYPE;
    return rma_run_op(win, w, PendingRmaOp::Kind::Accumulate, oaddr, nullptr, trank,
                      tdisp, odt, op,
                      static_cast<std::int64_t>(ocount) * datatype_size(odt));
}

// ---------------------------------------------------------------------------
// Dynamic process creation
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                         int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                         std::vector<int>* errcodes) {
    std::int64_t a[] = {0, 0, maxprocs, info, root, c, 0};
    const std::string_view s[] = {command};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_spawn, a, s);
    fault_point("MPI_Comm_spawn");
    int rc;
    ProfilingLayer* layer = world_.profiling_layer();
    if (layer && !in_profiling_wrapper_) {
        // The linked profiling library's MPI_Comm_spawn wrapper runs
        // instead of the implementation (the paper's intercept method).
        in_profiling_wrapper_ = true;
        SpawnArgs sa{command, argv, maxprocs, info, root, c};
        rc = layer->wrap_spawn(*this, std::move(sa), intercomm, errcodes);
        in_profiling_wrapper_ = false;
    } else {
        rc = PMPI_Comm_spawn(command, argv, maxprocs, info, root, c, intercomm, errcodes);
    }
    if (rc == MPI_SUCCESS && intercomm) a[6] = *intercomm;
    return rc;
}

int Rank::PMPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                          int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                          std::vector<int>* errcodes) {
    std::int64_t a[] = {0, 0, maxprocs, info, root, c, 0};
    const std::string_view s[] = {command};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_spawn, a, s);
    if (!intercomm) return MPI_ERR_ARG;
    if (maxprocs <= 0) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    if (world_.flavor() == Flavor::Mpich) {
        // MPICH2 0.96p2 beta did not yet fully support dynamic process
        // creation (paper section 5.2.2); the paper's spawn results
        // are LAM-only.
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    const int n = static_cast<int>(cd.group.size());
    if (root < 0 || root >= n) return MPI_ERR_RANK;

    std::string cmd = command;
    // LAM's lam_spawn_file info key names an application schema that
    // overrides where/what to start (paper section 4.2.2).
    if (info != MPI_INFO_NULL && world_.info_valid(info)) {
        const auto& kv = world_.info(info).kv;
        const auto it = kv.find("lam_spawn_file");
        if (it != kv.end() && world_.has_program(it->second)) cmd = it->second;
    }
    if (!world_.has_program(cmd)) {
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }

    // Collective: every parent rank participates, so a late caller
    // shows up as spawn synchronization overhead (paper section 3).
    const auto spawn_collective_failed = [&] {
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return comm_error(c, coll_fail_code(cd));
    };
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (my_rank_in(cd) == root)
        cd.spawn_result = world_.do_spawn(cmd, argv, maxprocs, c);
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (cd.spawn_result == MPI_COMM_NULL) {
        // The root's do_spawn failed (unknown program or an injected
        // spawn fault).  Every member sees the same null result after
        // the rendezvous, so all of them skip the final barrier and
        // report the failure consistently.
        *intercomm = MPI_COMM_NULL;
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }
    *intercomm = cd.spawn_result;
    a[6] = *intercomm;
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_SUCCESS);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_parent(Comm* parent) {
    const std::int64_t a[] = {as_arg(parent)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_get_parent, a);
    return PMPI_Comm_get_parent(parent);
}

int Rank::MPI_Intercomm_merge(Comm intercomm, bool high, Comm* intracomm) {
    fault_point("MPI_Intercomm_merge");
    if (!intracomm) return MPI_ERR_ARG;
    if (!world_.comm_valid(intercomm)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(intercomm);
    if (!cd.is_inter) return MPI_ERR_COMM;
    // Collective over both groups.  The "high" side goes second; both
    // sides must pass complementary flags for a stable order, which we
    // approximate by always ordering the original local group first
    // when high is false on that side.
    const bool on_local_side = std::find(cd.group.begin(), cd.group.end(), global_) !=
                               cd.group.end();
    std::vector<int> merged;
    const std::vector<int>& first = high == on_local_side ? cd.remote_group : cd.group;
    const std::vector<int>& second = high == on_local_side ? cd.group : cd.remote_group;
    merged.insert(merged.end(), first.begin(), first.end());
    merged.insert(merged.end(), second.begin(), second.end());

    // Rendezvous over BOTH groups (the op is collective on the whole
    // intercommunicator); the first process of the merged order
    // creates the handle, everyone picks it up.
    const int total = static_cast<int>(cd.group.size() + cd.remote_group.size());
    auto full_barrier = [&]() -> bool {
        std::unique_lock lk(cd.bar_mu);
        const std::uint64_t gen = cd.bar_gen;
        if (++cd.bar_count == total) {
            cd.bar_count = 0;
            ++cd.bar_gen;
            std::vector<std::shared_ptr<sched::WaitToken>> waiters;
            waiters.swap(cd.bar_waiters);
            lk.unlock();
            for (const auto& t : waiters) t->unpark();
            return true;
        }
        const auto deadline = wait_deadline();
        const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
        while (cd.bar_gen == gen) {
            cd.bar_waiters.push_back(tok);
            lk.unlock();
            tok->park_until(deadline);
            lk.lock();
            auto& v = cd.bar_waiters;
            v.erase(std::remove(v.begin(), v.end(), tok), v.end());
            if (cd.bar_gen != gen) break;
            const bool doomed =
                world_.poisoned() || comm_revoked(cd) ||
                (world_.death_epoch() != 0 && world_.any_dead(merged)) ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) {
                --cd.bar_count;
                return false;
            }
        }
        return true;
    };
    const auto merge_failed = [&] {
        check_poisoned();
        return comm_error(intercomm, coll_fail_code(cd));
    };
    if (!full_barrier()) return merge_failed();
    if (global_ == merged.front()) cd.spawn_result = world_.create_comm(merged);
    if (!full_barrier()) return merge_failed();
    *intracomm = cd.spawn_result;
    if (!full_barrier()) return merge_failed();
    return MPI_SUCCESS;
}

int Rank::PMPI_Comm_get_parent(Comm* parent) {
    const std::int64_t a[] = {as_arg(parent)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_get_parent, a);
    if (!parent) return MPI_ERR_ARG;
    *parent = world_.proc(global_).parent_intercomm;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Object naming
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_set_name(Comm c, const std::string& name) {
    const std::int64_t a[] = {c};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_set_name, a, s);
    return PMPI_Comm_set_name(c, name);
}

int Rank::PMPI_Comm_set_name(Comm c, const std::string& name) {
    const std::int64_t a[] = {c};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_set_name, a, s);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    world_.set_comm_name(c, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_name(Comm c, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    *name = world_.object_name_of_comm(c);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_set_name(Win w, const std::string& name) {
    const std::int64_t a[] = {w};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_set_name, a, s);
    return PMPI_Win_set_name(w, name);
}

int Rank::PMPI_Win_set_name(Win w, const std::string& name) {
    const std::int64_t a[] = {w};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_set_name, a, s);
    if (!world_.win_valid(w)) return MPI_ERR_WIN;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    WinData& wd = world_.win(w);
    world_.set_win_name(w, name);
    // LAM stores window names in the window's shadow communicator
    // (paper Fig 23: "LAM stores RMA window names in the communicator
    // structure"), so the name shows up under Message as well.
    if (world_.flavor() == Flavor::Lam && wd.shadow_comm != MPI_COMM_NULL)
        world_.set_comm_name(wd.shadow_comm, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_get_name(Win w, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (!world_.win_valid(w)) return MPI_ERR_WIN;
    *name = world_.object_name_of_win(w);
    return MPI_SUCCESS;
}

int Rank::MPI_Type_set_name(Datatype dt, const std::string& name) {
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    world_.set_type_name(dt, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Type_get_name(Datatype dt, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    *name = world_.type_name(dt);
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Info objects
// ---------------------------------------------------------------------------

int Rank::MPI_Info_create(Info* info) {
    if (!info) return MPI_ERR_ARG;
    *info = world_.create_info();
    return MPI_SUCCESS;
}

int Rank::MPI_Info_set(Info info, const std::string& key, const std::string& value) {
    if (!world_.info_valid(info)) return MPI_ERR_INFO;
    if (key.empty()) return MPI_ERR_ARG;
    world_.info(info).kv[key] = value;
    return MPI_SUCCESS;
}

int Rank::MPI_Info_free(Info* info) {
    if (!info) return MPI_ERR_ARG;
    if (!world_.info_valid(*info)) return MPI_ERR_INFO;
    world_.info(*info).freed = true;
    *info = MPI_INFO_NULL;
    return MPI_SUCCESS;
}

}  // namespace m2p::simmpi
