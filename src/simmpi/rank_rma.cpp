// MPI-2 features of simmpi: one-sided communication, dynamic process
// creation, and object naming -- the features the paper adds tool
// support for.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "simmpi/rank.hpp"

namespace m2p::simmpi {

namespace {

// Blocking RMA waits park in short slices so they can notice rank death,
// world poison, or a deadline instead of sleeping forever (mirrors the
// pt2pt wait loops in rank.cpp).
constexpr auto kLivenessSlice = std::chrono::milliseconds(5);

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

std::int64_t as_arg(const void* p) {
    return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(p));
}

}  // namespace

// ---------------------------------------------------------------------------
// Window lifetime
// ---------------------------------------------------------------------------

int Rank::MPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info,
                         Comm c, Win* win) {
    // args[5] is filled with the new window handle before the return
    // point fires, so the tool's window-discovery snippet (inserted at
    // the function return, paper section 4.2.1) can read it.
    std::int64_t a[] = {as_arg(base), size, disp_unit, info, c, 0};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_create, a);
    fault_point("MPI_Win_create");
    const int rc = PMPI_Win_create(base, size, disp_unit, info, c, win);
    if (rc == MPI_SUCCESS) a[5] = *win;
    return rc;
}

int Rank::PMPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info,
                          Comm c, Win* win) {
    std::int64_t a[] = {as_arg(base), size, disp_unit, info, c, 0};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_create, a);
    if (!win) return MPI_ERR_ARG;
    if (size < 0 || disp_unit <= 0) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    const int me = my_rank_in(cd);

    // Window creation is collective; the barriers below are where the
    // synchronization overhead of a late-arriving process shows up
    // (paper Fig 1, top left).
    if (!barrier_internal(cd)) return comm_error(c, MPI_ERR_PROC_FAILED);
    if (me == 0) {
        cd.win_result = world_.create_win(c);
        if (world_.flavor() == Flavor::Lam) {
            // LAM's MPI_Win structure contains a communicator created
            // with the window; window names are stored there, which is
            // why named windows also appear under /SyncObject/Message
            // in the paper's Fig 23.
            world_.win(cd.win_result).shadow_comm = world_.create_comm(cd.group);
        }
    }
    if (!barrier_internal(cd)) return comm_error(c, MPI_ERR_PROC_FAILED);
    const Win h = cd.win_result;
    {
        WinData& w = world_.win(h);
        std::lock_guard lk(w.mu);
        w.members[global_] = WinMember{static_cast<std::byte*>(base), size, disp_unit};
    }
    if (!barrier_internal(cd)) return comm_error(c, MPI_ERR_PROC_FAILED);
    *win = h;
    a[5] = h;
    return MPI_SUCCESS;
}

int Rank::MPI_Win_free(Win* win) {
    const std::int64_t a[] = {win ? *win : MPI_WIN_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_free, a);
    fault_point("MPI_Win_free");
    return PMPI_Win_free(win);
}

int Rank::PMPI_Win_free(Win* win) {
    const std::int64_t a[] = {win ? *win : MPI_WIN_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_free, a);
    if (!win) return MPI_ERR_ARG;
    if (!world_.win_valid(*win)) return MPI_ERR_WIN;
    WinData& w = world_.win(*win);
    CommData& cd = world_.comm(w.comm);
    // The MPI-2 standard requires barrier semantics here (paper
    // section 4.2.1: MPI_Win_free belongs in the general RMA
    // synchronization metric for exactly this reason).
    if (!barrier_internal(cd)) return comm_error(w.comm, MPI_ERR_PROC_FAILED);
    if (my_rank_in(cd) == 0) {
        std::lock_guard lk(w.mu);
        w.freed = true;
        world_.release_win_impl_id(w.impl_id);
    }
    if (!barrier_internal(cd)) return comm_error(w.comm, MPI_ERR_PROC_FAILED);
    *win = MPI_WIN_NULL;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Active-target synchronization
// ---------------------------------------------------------------------------

int Rank::MPI_Win_fence(int assert, Win win) {
    const std::int64_t a[] = {assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_fence, a);
    fault_point("MPI_Win_fence");
    return PMPI_Win_fence(assert, win);
}

int Rank::PMPI_Win_fence(int assert, Win win) {
    const std::int64_t a[] = {assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_fence, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    const int n = static_cast<int>(cd.group.size());
    if (n <= 1) return MPI_SUCCESS;

    if (world_.flavor() == Flavor::Lam) {
        // LAM implements MPI_Win_fence with nonblocking message
        // passing plus MPI_Barrier: the paper observes both the
        // Message (Fig 24) and Barrier (Fig 22) sync objects showing
        // up under a fence bottleneck with LAM.
        const int me = my_rank_in(cd);
        const int tag = next_coll_tag(w.comm);
        int tok = 0, tok2 = 0;
        Request rq = MPI_REQUEST_NULL;
        Status st;
        // Any failure in the token ring (a neighbor died or the wait
        // timed out) is remapped to the collective-failure code so all
        // survivors of a faulted fence observe the same error.
        int rc = PMPI_Isend(&tok, 1, MPI_INT, (me + 1) % n, tag, w.comm, &rq);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, MPI_ERR_PROC_FAILED);
        rc = PMPI_Recv(&tok2, 1, MPI_INT, (me - 1 + n) % n, tag, w.comm, &st);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, MPI_ERR_PROC_FAILED);
        rc = PMPI_Waitall(1, &rq, &st);
        if (rc != MPI_SUCCESS) return comm_error(w.comm, MPI_ERR_PROC_FAILED);
        return PMPI_Barrier(w.comm);
    }
    // MPICH2: internal fence counter; the waiting time is charged to
    // MPI_Win_fence itself.
    const auto deadline = wait_deadline();
    std::unique_lock lk(w.mu);
    const std::uint64_t gen = w.fence_gen;
    if (++w.fence_count == n) {
        w.fence_count = 0;
        ++w.fence_gen;
        w.fence_cv.notify_all();
    } else {
        while (w.fence_gen == gen) {
            w.fence_cv.wait_for(lk, kLivenessSlice);
            if (w.fence_gen != gen) break;
            const bool doomed =
                world_.poisoned() ||
                (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd)) ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) {
                // Withdraw from the fence so a later (post-fault) fence
                // over the survivors is not off by one.
                --w.fence_count;
                check_poisoned();
                return comm_error(w.comm, MPI_ERR_PROC_FAILED);
            }
        }
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_start(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_start, a);
    fault_point("MPI_Win_start");
    return PMPI_Win_start(grp, assert, win);
}

int Rank::PMPI_Win_start(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_start, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (!world_.group_valid(grp)) return MPI_ERR_GROUP;
    if (start_epochs_.count(win)) return MPI_ERR_WIN;  // already in an access epoch
    const std::vector<int> targets = world_.group(grp).global_ranks;
    start_epochs_[win] = targets;
    if (world_.flavor() == Flavor::Mpich) return MPI_SUCCESS;  // defers to complete

    // LAM blocks in MPI_Win_start until the matching MPI_Win_post has
    // executed on every target -- one of the two placements the MPI-2
    // standard allows, and the source of the per-implementation
    // differences in the paper's winscpwsync findings (Fig 21).
    WinData& w = world_.win(win);
    const auto deadline = wait_deadline();
    std::unique_lock lk(w.mu);
    for (int t : targets) {
        Exposure& e = w.exposures[t];
        const auto exposed_to_us = [&] {
            return e.exposed && contains(e.group, global_) && !contains(e.started, global_);
        };
        while (!exposed_to_us()) {
            e.cv.wait_for(lk, kLivenessSlice);
            if (exposed_to_us()) break;
            const bool doomed =
                world_.poisoned() ||
                (world_.death_epoch() != 0 && world_.rank_unreachable(t)) ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) {
                // A target that will never post: abandon the access
                // epoch so a retry does not see it half-open.
                start_epochs_.erase(win);
                check_poisoned();
                return comm_error(w.comm, MPI_ERR_PROC_FAILED);
            }
        }
        e.started.push_back(global_);
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_complete(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_complete, a);
    fault_point("MPI_Win_complete");
    return PMPI_Win_complete(win);
}

int Rank::PMPI_Win_complete(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_complete, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    const auto it = start_epochs_.find(win);
    if (it == start_epochs_.end()) return MPI_ERR_WIN;
    const std::vector<int> targets = it->second;
    start_epochs_.erase(it);

    WinData& w = world_.win(win);
    const auto deadline = wait_deadline();
    std::unique_lock lk(w.mu);
    for (int t : targets) {
        Exposure& e = w.exposures[t];
        if (world_.flavor() == Flavor::Mpich) {
            // MPICH2 deferred the post-wait to here; flush queued
            // transfers once the target's exposure epoch is open.
            const auto exposed_to_us = [&] {
                return e.exposed && contains(e.group, global_) &&
                       !contains(e.started, global_);
            };
            while (!exposed_to_us()) {
                e.cv.wait_for(lk, kLivenessSlice);
                if (exposed_to_us()) break;
                const bool doomed =
                    world_.poisoned() ||
                    (world_.death_epoch() != 0 && world_.rank_unreachable(t)) ||
                    std::chrono::steady_clock::now() >= deadline;
                if (doomed) {
                    check_poisoned();
                    return comm_error(w.comm, MPI_ERR_PROC_FAILED);
                }
            }
            e.started.push_back(global_);
            auto& ops = w.deferred[global_];
            for (auto op_it = ops.begin(); op_it != ops.end();) {
                if (op_it->target_global == t) {
                    WinMember& m = w.members.at(op_it->target_global);
                    std::byte* at = m.base + op_it->target_disp * m.disp_unit;
                    switch (op_it->kind) {
                        case PendingRmaOp::Kind::Put:
                            std::memcpy(at, op_it->payload.data(), op_it->payload.size());
                            break;
                        case PendingRmaOp::Kind::Get:
                            std::memcpy(op_it->origin_addr, at,
                                        static_cast<std::size_t>(op_it->nbytes));
                            break;
                        case PendingRmaOp::Kind::Accumulate:
                            reduce_combine(at, op_it->payload.data(),
                                           static_cast<int>(op_it->nbytes /
                                                            datatype_size(op_it->dt)),
                                           op_it->dt, op_it->op);
                            break;
                    }
                    op_it = ops.erase(op_it);
                } else {
                    ++op_it;
                }
            }
        }
        ++e.completes;
        e.cv.notify_all();
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Win_post(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_post, a);
    fault_point("MPI_Win_post");
    return PMPI_Win_post(grp, assert, win);
}

int Rank::PMPI_Win_post(Group grp, int assert, Win win) {
    const std::int64_t a[] = {grp, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_post, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (!world_.group_valid(grp)) return MPI_ERR_GROUP;
    WinData& w = world_.win(win);
    std::lock_guard lk(w.mu);
    Exposure& e = w.exposures[global_];
    if (e.exposed) return MPI_ERR_WIN;  // exposure epoch already open
    ++e.gen;
    e.exposed = true;
    e.group = world_.group(grp).global_ranks;
    e.started.clear();
    e.completes = 0;
    e.cv.notify_all();
    return MPI_SUCCESS;
}

int Rank::MPI_Win_wait(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_wait, a);
    fault_point("MPI_Win_wait");
    return PMPI_Win_wait(win);
}

int Rank::PMPI_Win_wait(Win win) {
    const std::int64_t a[] = {win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_wait, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    std::unique_lock lk(w.mu);
    Exposure& e = w.exposures[global_];
    if (!e.exposed) return MPI_ERR_WIN;  // no matching MPI_Win_post
    // Blocks until all origins in the post group have completed --
    // "MPI_Win_wait will block until all outstanding MPI_Win_complete
    // calls have been issued" (paper section 4.2.1).
    const auto deadline = wait_deadline();
    while (e.completes < static_cast<int>(e.group.size())) {
        e.cv.wait_for(lk, kLivenessSlice);
        if (e.completes >= static_cast<int>(e.group.size())) break;
        const bool doomed =
            world_.poisoned() ||
            (world_.death_epoch() != 0 && world_.any_dead(e.group)) ||
            std::chrono::steady_clock::now() >= deadline;
        if (doomed) {
            check_poisoned();
            return comm_error(w.comm, MPI_ERR_PROC_FAILED);
        }
    }
    e.exposed = false;
    e.started.clear();
    e.completes = 0;
    e.cv.notify_all();
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Passive-target synchronization
// ---------------------------------------------------------------------------

int Rank::MPI_Win_lock(int lock_type, int rank, int assert, Win win) {
    const std::int64_t a[] = {lock_type, rank, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_lock, a);
    fault_point("MPI_Win_lock");
    return PMPI_Win_lock(lock_type, rank, assert, win);
}

int Rank::PMPI_Win_lock(int lock_type, int rank, int assert, Win win) {
    const std::int64_t a[] = {lock_type, rank, assert, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_lock, a);
    if (lock_type != MPI_LOCK_EXCLUSIVE && lock_type != MPI_LOCK_SHARED)
        return MPI_ERR_LOCKTYPE;
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    if (rank < 0 || static_cast<std::size_t>(rank) >= cd.group.size())
        return MPI_ERR_RANK;
    const int target = cd.group[static_cast<std::size_t>(rank)];
    if (world_.death_epoch() != 0 && world_.rank_dead(target))
        return comm_error(w.comm, MPI_ERR_RANK);
    const auto deadline = wait_deadline();
    std::unique_lock lk(w.mu);
    PassiveLock& pl = w.locks[target];
    const auto available = [&] {
        return lock_type == MPI_LOCK_EXCLUSIVE
                   ? !pl.exclusive && pl.shared_holders == 0
                   : !pl.exclusive;
    };
    while (!available()) {
        pl.cv.wait_for(lk, kLivenessSlice);
        if (available()) break;
        // A holder that died with the lock held never unlocks; the
        // deadline is the only way out (holders are not tracked here).
        const bool doomed =
            world_.poisoned() ||
            (world_.death_epoch() != 0 && world_.rank_dead(target)) ||
            std::chrono::steady_clock::now() >= deadline;
        if (doomed) {
            check_poisoned();
            return comm_error(w.comm, MPI_ERR_OTHER);
        }
    }
    if (lock_type == MPI_LOCK_EXCLUSIVE)
        pl.exclusive = true;
    else
        ++pl.shared_holders;
    held_locks_[win].push_back(target);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_unlock(int rank, Win win) {
    const std::int64_t a[] = {rank, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_unlock, a);
    fault_point("MPI_Win_unlock");
    return PMPI_Win_unlock(rank, win);
}

int Rank::PMPI_Win_unlock(int rank, Win win) {
    const std::int64_t a[] = {rank, win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_unlock, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    CommData& cd = world_.comm(w.comm);
    if (rank < 0 || static_cast<std::size_t>(rank) >= cd.group.size())
        return MPI_ERR_RANK;
    const int target = cd.group[static_cast<std::size_t>(rank)];
    auto held = held_locks_.find(win);
    if (held == held_locks_.end()) return MPI_ERR_WIN;
    auto ht = std::find(held->second.begin(), held->second.end(), target);
    if (ht == held->second.end()) return MPI_ERR_WIN;  // unlock without lock
    held->second.erase(ht);
    std::lock_guard lk(w.mu);
    PassiveLock& pl = w.locks[target];
    if (pl.exclusive)
        pl.exclusive = false;
    else if (pl.shared_holders > 0)
        --pl.shared_holders;
    pl.cv.notify_all();
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// RMA data transfer
// ---------------------------------------------------------------------------

int Rank::rma_check(const WinData& w, int ocount, Datatype odt, int trank,
                    std::int64_t tdisp, int tcount, Datatype tdt) const {
    if (ocount < 0 || tcount < 0) return MPI_ERR_COUNT;
    if (datatype_size(odt) <= 0 || datatype_size(tdt) <= 0) return MPI_ERR_TYPE;
    if (tdisp < 0) return MPI_ERR_ARG;
    const std::int64_t obytes = static_cast<std::int64_t>(ocount) * datatype_size(odt);
    const std::int64_t tbytes = static_cast<std::int64_t>(tcount) * datatype_size(tdt);
    if (obytes != tbytes) return MPI_ERR_ARG;
    const CommData& cd = const_cast<World&>(world_).comm(w.comm);
    if (trank < 0 || static_cast<std::size_t>(trank) >= cd.group.size())
        return MPI_ERR_RANK;
    return MPI_SUCCESS;
}

int Rank::rma_transfer_now(WinData& w, PendingRmaOp op) {
    std::lock_guard lk(w.mu);
    auto mit = w.members.find(op.target_global);
    if (mit == w.members.end()) return MPI_ERR_WIN;
    WinMember& m = mit->second;
    const std::int64_t off = op.target_disp * m.disp_unit;
    if (off < 0 || off + op.nbytes > m.size) return MPI_ERR_ARG;
    std::byte* at = m.base + off;
    switch (op.kind) {
        case PendingRmaOp::Kind::Put:
            if (op.nbytes > 0) std::memcpy(at, op.payload.data(), op.payload.size());
            break;
        case PendingRmaOp::Kind::Get:
            if (op.nbytes > 0)
                std::memcpy(op.origin_addr, at, static_cast<std::size_t>(op.nbytes));
            break;
        case PendingRmaOp::Kind::Accumulate:
            reduce_combine(at, op.payload.data(),
                           static_cast<int>(op.nbytes / datatype_size(op.dt)), op.dt,
                           op.op);
            break;
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                  std::int64_t tdisp, int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Put, a);
    fault_point("MPI_Put");
    return PMPI_Put(oaddr, ocount, odt, trank, tdisp, tcount, tdt, win);
}

int Rank::PMPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                   std::int64_t tdisp, int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Put, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    PendingRmaOp op;
    op.kind = PendingRmaOp::Kind::Put;
    op.target_global = world_.comm(w.comm).group[static_cast<std::size_t>(trank)];
    op.target_disp = tdisp;
    op.nbytes = static_cast<std::int64_t>(ocount) * datatype_size(odt);
    op.payload.assign(static_cast<const std::byte*>(oaddr),
                      static_cast<const std::byte*>(oaddr) + op.nbytes);
    const auto ep = start_epochs_.find(win);
    if (world_.flavor() == Flavor::Mpich && ep != start_epochs_.end() &&
        contains(ep->second, op.target_global)) {
        std::lock_guard lk(w.mu);
        w.deferred[global_].push_back(std::move(op));
        return MPI_SUCCESS;
    }
    return rma_transfer_now(w, std::move(op));
}

int Rank::MPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                  int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Get, a);
    fault_point("MPI_Get");
    return PMPI_Get(oaddr, ocount, odt, trank, tdisp, tcount, tdt, win);
}

int Rank::PMPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                   int tcount, Datatype tdt, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Get, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    PendingRmaOp op;
    op.kind = PendingRmaOp::Kind::Get;
    op.target_global = world_.comm(w.comm).group[static_cast<std::size_t>(trank)];
    op.origin_addr = static_cast<std::byte*>(oaddr);
    op.target_disp = tdisp;
    op.nbytes = static_cast<std::int64_t>(ocount) * datatype_size(odt);
    const auto ep = start_epochs_.find(win);
    if (world_.flavor() == Flavor::Mpich && ep != start_epochs_.end() &&
        contains(ep->second, op.target_global)) {
        std::lock_guard lk(w.mu);
        w.deferred[global_].push_back(std::move(op));
        return MPI_SUCCESS;
    }
    return rma_transfer_now(w, std::move(op));
}

int Rank::MPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                         std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt),
                              static_cast<std::int64_t>(op), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Accumulate, a);
    fault_point("MPI_Accumulate");
    return PMPI_Accumulate(oaddr, ocount, odt, trank, tdisp, tcount, tdt, op, win);
}

int Rank::PMPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                          std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win) {
    const std::int64_t a[] = {as_arg(oaddr), ocount,
                              static_cast<std::int64_t>(odt), trank, tdisp, tcount,
                              static_cast<std::int64_t>(tdt),
                              static_cast<std::int64_t>(op), win};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Accumulate, a);
    if (!world_.win_valid(win)) return MPI_ERR_WIN;
    if (op == MPI_OP_NULL) return MPI_ERR_ARG;
    WinData& w = world_.win(win);
    if (const int rc = rma_check(w, ocount, odt, trank, tdisp, tcount, tdt);
        rc != MPI_SUCCESS)
        return rc;
    if (odt != tdt) return MPI_ERR_TYPE;
    PendingRmaOp pop;
    pop.kind = PendingRmaOp::Kind::Accumulate;
    pop.target_global = world_.comm(w.comm).group[static_cast<std::size_t>(trank)];
    pop.target_disp = tdisp;
    pop.nbytes = static_cast<std::int64_t>(ocount) * datatype_size(odt);
    pop.dt = odt;
    pop.op = op;
    pop.payload.assign(static_cast<const std::byte*>(oaddr),
                       static_cast<const std::byte*>(oaddr) + pop.nbytes);
    const auto ep = start_epochs_.find(win);
    if (world_.flavor() == Flavor::Mpich && ep != start_epochs_.end() &&
        contains(ep->second, pop.target_global)) {
        std::lock_guard lk(w.mu);
        w.deferred[global_].push_back(std::move(pop));
        return MPI_SUCCESS;
    }
    return rma_transfer_now(w, std::move(pop));
}

// ---------------------------------------------------------------------------
// Dynamic process creation
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                         int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                         std::vector<int>* errcodes) {
    std::int64_t a[] = {0, 0, maxprocs, info, root, c, 0};
    const std::string_view s[] = {command};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_spawn, a, s);
    fault_point("MPI_Comm_spawn");
    int rc;
    ProfilingLayer* layer = world_.profiling_layer();
    if (layer && !in_profiling_wrapper_) {
        // The linked profiling library's MPI_Comm_spawn wrapper runs
        // instead of the implementation (the paper's intercept method).
        in_profiling_wrapper_ = true;
        SpawnArgs sa{command, argv, maxprocs, info, root, c};
        rc = layer->wrap_spawn(*this, std::move(sa), intercomm, errcodes);
        in_profiling_wrapper_ = false;
    } else {
        rc = PMPI_Comm_spawn(command, argv, maxprocs, info, root, c, intercomm, errcodes);
    }
    if (rc == MPI_SUCCESS && intercomm) a[6] = *intercomm;
    return rc;
}

int Rank::PMPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                          int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                          std::vector<int>* errcodes) {
    std::int64_t a[] = {0, 0, maxprocs, info, root, c, 0};
    const std::string_view s[] = {command};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_spawn, a, s);
    if (!intercomm) return MPI_ERR_ARG;
    if (maxprocs <= 0) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    if (world_.flavor() == Flavor::Mpich) {
        // MPICH2 0.96p2 beta did not yet fully support dynamic process
        // creation (paper section 5.2.2); the paper's spawn results
        // are LAM-only.
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    const int n = static_cast<int>(cd.group.size());
    if (root < 0 || root >= n) return MPI_ERR_RANK;

    std::string cmd = command;
    // LAM's lam_spawn_file info key names an application schema that
    // overrides where/what to start (paper section 4.2.2).
    if (info != MPI_INFO_NULL && world_.info_valid(info)) {
        const auto& kv = world_.info(info).kv;
        const auto it = kv.find("lam_spawn_file");
        if (it != kv.end() && world_.has_program(it->second)) cmd = it->second;
    }
    if (!world_.has_program(cmd)) {
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }

    // Collective: every parent rank participates, so a late caller
    // shows up as spawn synchronization overhead (paper section 3).
    const auto spawn_collective_failed = [&] {
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return comm_error(c, MPI_ERR_PROC_FAILED);
    };
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (my_rank_in(cd) == root)
        cd.spawn_result = world_.do_spawn(cmd, argv, maxprocs, c);
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (cd.spawn_result == MPI_COMM_NULL) {
        // The root's do_spawn failed (unknown program or an injected
        // spawn fault).  Every member sees the same null result after
        // the rendezvous, so all of them skip the final barrier and
        // report the failure consistently.
        *intercomm = MPI_COMM_NULL;
        if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_ERR_SPAWN);
        return MPI_ERR_SPAWN;
    }
    *intercomm = cd.spawn_result;
    a[6] = *intercomm;
    if (!barrier_internal(cd)) return spawn_collective_failed();
    if (errcodes) errcodes->assign(static_cast<std::size_t>(maxprocs), MPI_SUCCESS);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_parent(Comm* parent) {
    const std::int64_t a[] = {as_arg(parent)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_get_parent, a);
    return PMPI_Comm_get_parent(parent);
}

int Rank::MPI_Intercomm_merge(Comm intercomm, bool high, Comm* intracomm) {
    fault_point("MPI_Intercomm_merge");
    if (!intracomm) return MPI_ERR_ARG;
    if (!world_.comm_valid(intercomm)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(intercomm);
    if (!cd.is_inter) return MPI_ERR_COMM;
    // Collective over both groups.  The "high" side goes second; both
    // sides must pass complementary flags for a stable order, which we
    // approximate by always ordering the original local group first
    // when high is false on that side.
    const bool on_local_side = std::find(cd.group.begin(), cd.group.end(), global_) !=
                               cd.group.end();
    std::vector<int> merged;
    const std::vector<int>& first = high == on_local_side ? cd.remote_group : cd.group;
    const std::vector<int>& second = high == on_local_side ? cd.group : cd.remote_group;
    merged.insert(merged.end(), first.begin(), first.end());
    merged.insert(merged.end(), second.begin(), second.end());

    // Rendezvous over BOTH groups (the op is collective on the whole
    // intercommunicator); the first process of the merged order
    // creates the handle, everyone picks it up.
    const int total = static_cast<int>(cd.group.size() + cd.remote_group.size());
    auto full_barrier = [&]() -> bool {
        std::unique_lock lk(cd.bar_mu);
        const std::uint64_t gen = cd.bar_gen;
        if (++cd.bar_count == total) {
            cd.bar_count = 0;
            ++cd.bar_gen;
            cd.bar_cv.notify_all();
            return true;
        }
        const auto deadline = wait_deadline();
        while (cd.bar_gen == gen) {
            cd.bar_cv.wait_for(lk, kLivenessSlice);
            if (cd.bar_gen != gen) break;
            const bool doomed =
                world_.poisoned() ||
                (world_.death_epoch() != 0 && world_.any_dead(merged)) ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) {
                --cd.bar_count;
                return false;
            }
        }
        return true;
    };
    const auto merge_failed = [&] {
        check_poisoned();
        return comm_error(intercomm, MPI_ERR_PROC_FAILED);
    };
    if (!full_barrier()) return merge_failed();
    if (global_ == merged.front()) cd.spawn_result = world_.create_comm(merged);
    if (!full_barrier()) return merge_failed();
    *intracomm = cd.spawn_result;
    if (!full_barrier()) return merge_failed();
    return MPI_SUCCESS;
}

int Rank::PMPI_Comm_get_parent(Comm* parent) {
    const std::int64_t a[] = {as_arg(parent)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_get_parent, a);
    if (!parent) return MPI_ERR_ARG;
    *parent = world_.proc(global_).parent_intercomm;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Object naming
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_set_name(Comm c, const std::string& name) {
    const std::int64_t a[] = {c};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Comm_set_name, a, s);
    return PMPI_Comm_set_name(c, name);
}

int Rank::PMPI_Comm_set_name(Comm c, const std::string& name) {
    const std::int64_t a[] = {c};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Comm_set_name, a, s);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    world_.set_comm_name(c, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_name(Comm c, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    *name = world_.object_name_of_comm(c);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_set_name(Win w, const std::string& name) {
    const std::int64_t a[] = {w};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Win_set_name, a, s);
    return PMPI_Win_set_name(w, name);
}

int Rank::PMPI_Win_set_name(Win w, const std::string& name) {
    const std::int64_t a[] = {w};
    const std::string_view s[] = {name};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Win_set_name, a, s);
    if (!world_.win_valid(w)) return MPI_ERR_WIN;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    WinData& wd = world_.win(w);
    world_.set_win_name(w, name);
    // LAM stores window names in the window's shadow communicator
    // (paper Fig 23: "LAM stores RMA window names in the communicator
    // structure"), so the name shows up under Message as well.
    if (world_.flavor() == Flavor::Lam && wd.shadow_comm != MPI_COMM_NULL)
        world_.set_comm_name(wd.shadow_comm, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Win_get_name(Win w, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (!world_.win_valid(w)) return MPI_ERR_WIN;
    *name = world_.object_name_of_win(w);
    return MPI_SUCCESS;
}

int Rank::MPI_Type_set_name(Datatype dt, const std::string& name) {
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    if (name.size() >= MPI_MAX_OBJECT_NAME) return MPI_ERR_ARG;
    world_.set_type_name(dt, name);
    return MPI_SUCCESS;
}

int Rank::MPI_Type_get_name(Datatype dt, std::string* name) {
    if (!name) return MPI_ERR_ARG;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    *name = world_.type_name(dt);
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Info objects
// ---------------------------------------------------------------------------

int Rank::MPI_Info_create(Info* info) {
    if (!info) return MPI_ERR_ARG;
    *info = world_.create_info();
    return MPI_SUCCESS;
}

int Rank::MPI_Info_set(Info info, const std::string& key, const std::string& value) {
    if (!world_.info_valid(info)) return MPI_ERR_INFO;
    if (key.empty()) return MPI_ERR_ARG;
    world_.info(info).kv[key] = value;
    return MPI_SUCCESS;
}

int Rank::MPI_Info_free(Info* info) {
    if (!info) return MPI_ERR_ARG;
    if (!world_.info_valid(*info)) return MPI_ERR_INFO;
    world_.info(*info).freed = true;
    *info = MPI_INFO_NULL;
    return MPI_SUCCESS;
}

}  // namespace m2p::simmpi
