/// \file fiber.hpp
/// Stackful fibers for simmpi rank bodies (DESIGN.md section 12).
///
/// A Fiber is a call stack plus a saved machine context.  The
/// scheduler (sched.hpp) multiplexes many fibers over a small pool of
/// OS worker threads: a rank that would have blocked its own thread
/// instead parks its fiber and the worker picks up the next runnable
/// one.  This is what lets simmpi run 256-1024 ranks in one process
/// where thread-per-rank topped out around 16.
///
/// The context switch itself is a hand-rolled fcontext-style swap on
/// x86-64 (callee-saved registers + mxcsr/x87 control word pushed to
/// the fiber stack, stack pointers exchanged), with a ucontext
/// fallback elsewhere.  Stacks are mmap'd with a PROT_NONE guard page
/// below the usable range so an overflow faults instead of silently
/// corrupting a neighbour.
///
/// Sanitizer support: ASan and TSan both need to be told about stack
/// switches (__sanitizer_start/finish_switch_fiber, __tsan_*_fiber);
/// the hooks are declared locally in fiber.cpp and compiled in only
/// under the matching sanitizer so the plain build stays clean.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "instr/registry.hpp"

namespace m2p::simmpi::sched {

class Scheduler;
class WaitToken;
struct Worker;

/// Why a fiber handed control back to its worker.
enum class SwitchOp : std::uintptr_t {
    None = 0,
    Park = 1,      ///< blocked on a WaitToken; scheduler finalizes the park
    Yield = 2,     ///< cooperative timeslice; requeue immediately
    Finished = 3,  ///< body returned; release the stack
};

/// Machine context + sanitizer bookkeeping for one side of a switch.
/// The worker's scheduler loop owns one of these too (with no stack of
/// its own -- it runs on the OS thread stack).
struct StackContext {
    void* sp = nullptr;  ///< saved stack pointer (asm) / ucontext_t* (fallback)
    void* fake_stack = nullptr;    ///< ASan fake-stack save slot
    void* tsan_fiber = nullptr;    ///< TSan fiber handle
    const void* stack_bottom = nullptr;  ///< usable range for sanitizers
    std::size_t stack_size = 0;
};

class Fiber {
public:
    using Body = std::function<void()>;

    /// Allocates the stack and seeds the initial context so the first
    /// resume lands in the entry thunk.  Does not run anything.
    Fiber(Scheduler* sched, Body body, std::size_t stack_bytes);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /// The fiber's wait token: the single handle every blocking site
    /// registers to be woken through.  Shared ownership so waiter
    /// lists can outlive a racing abandon without dangling.
    const std::shared_ptr<WaitToken>& token() const { return token_; }

    /// Optional sink that receives this fiber's CPU-time slices
    /// (nanoseconds), accumulated at every switch-out.
    void set_cpu_sink(std::atomic<std::int64_t>* sink) { cpu_sink_ = sink; }
    std::atomic<std::int64_t>* cpu_sink() const { return cpu_sink_; }

    /// CLOCK_THREAD_CPUTIME_ID stamp taken at the current slice's
    /// switch-in; valid only while the fiber is running.
    std::int64_t slice_cpu_start() const { return slice_cpu_start_; }

    /// Hand control back to the worker.  Must be called on this
    /// fiber's own stack; returns when the scheduler resumes it.
    void suspend(SwitchOp op);

    /// Bumps and returns the maybe_yield() stride counter.  Only the
    /// worker currently running the fiber may call this.
    std::uint32_t next_dispatch() { return ++dispatch_count_; }

    /// First-entry landing point; internal (reached from the switch
    /// thunk), public only because extern "C" glue cannot be a friend.
    static void entry(Fiber* f);

    /// Unmap the stack early (at finish) so 1024 finished ranks don't
    /// hold 256 MiB of dead stacks until scheduler teardown.  The
    /// Fiber object itself stays alive for stray-pointer safety.
    void release_stack();

private:
    friend class Scheduler;
    friend class WaitToken;

    Scheduler* sched_;
    Body body_;
    StackContext ctx_;
    void* stack_base_ = nullptr;  ///< mmap base (includes guard page)
    std::size_t stack_total_ = 0;
    std::shared_ptr<WaitToken> token_;

    // Scheduler-side per-slice state (touched only by the worker that
    // currently runs the fiber, or under the scheduler's park lock).
    std::chrono::steady_clock::time_point park_deadline_{};
    std::uint32_t dispatch_count_ = 0;  ///< maybe_yield() stride counter
    std::int64_t slice_cpu_start_ = 0;
    std::atomic<std::int64_t>* cpu_sink_ = nullptr;
    instr::ThreadContext ictx_{};  ///< instr TLS migrated with the fiber
};

/// Fill in the sanitizer-side identity of a worker's scheduler context
/// (its TSan fiber handle and, under ASan, the OS thread stack bounds
/// needed to annotate switches back onto it).
void init_worker_context(StackContext& ctx);

}  // namespace m2p::simmpi::sched
