#include "simmpi/faults.hpp"

#include <cstring>

namespace m2p::simmpi {

const char* cause_name(Epitaph::Cause c) {
    switch (c) {
        case Epitaph::Cause::Killed: return "killed";
        case Epitaph::Cause::Hung: return "hung";
        case Epitaph::Cause::Aborted: return "aborted";
        case Epitaph::Cause::Poisoned: return "poisoned";
        case Epitaph::Cause::Exception: return "exception";
    }
    return "unknown";
}

FaultPlan::Spec& FaultPlan::add(Spec::Kind kind) {
    Spec& s = specs_.emplace_back();
    s.kind = kind;
    return s;
}

FaultPlan& FaultPlan::kill_at_call(int global_rank, std::uint64_t nth_call) {
    Spec& s = add(Spec::Kind::KillAtCall);
    s.rank = global_rank;
    s.nth = nth_call;
    has_call_faults_ = true;
    return *this;
}

FaultPlan& FaultPlan::hang_in_call(int global_rank, std::string call_name,
                                   double seconds) {
    Spec& s = add(Spec::Kind::HangInCall);
    s.rank = global_rank;
    s.call = std::move(call_name);
    s.seconds = seconds;
    has_call_faults_ = true;
    return *this;
}

FaultPlan& FaultPlan::drop_message(int src_global, int dest_global,
                                   std::uint64_t nth_match) {
    Spec& s = add(Spec::Kind::DropMessage);
    s.rank = src_global;
    s.dest = dest_global;
    s.nth = nth_match;
    has_message_faults_ = true;
    return *this;
}

FaultPlan& FaultPlan::delay_message(int src_global, int dest_global,
                                    std::uint64_t nth_match, double seconds) {
    Spec& s = add(Spec::Kind::DelayMessage);
    s.rank = src_global;
    s.dest = dest_global;
    s.nth = nth_match;
    s.seconds = seconds;
    has_message_faults_ = true;
    return *this;
}

FaultPlan& FaultPlan::fail_spawn(std::uint64_t nth_spawn) {
    Spec& s = add(Spec::Kind::FailSpawn);
    s.nth = nth_spawn;
    return *this;
}

std::shared_ptr<FaultPlan> FaultPlan::chaos(std::uint64_t seed, int nranks) {
    auto plan = std::make_shared<FaultPlan>();
    // splitmix64: tiny, seed-stable, and good enough to scatter faults.
    std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL;
    const auto next = [&state]() {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    if (nranks > 1) {
        // One victim dies somewhere in the middle of the run; rank 0 is
        // spared so the workload's coordinator side survives.
        const int victim = 1 + static_cast<int>(next() % static_cast<std::uint64_t>(
                                                    nranks - 1));
        plan->kill_at_call(victim, 20 + next() % 120);
        // A couple of lossy flows and one laggy one between random pairs.
        for (int i = 0; i < 2; ++i) {
            const int src = static_cast<int>(next() % static_cast<std::uint64_t>(nranks));
            const int dst = static_cast<int>(next() % static_cast<std::uint64_t>(nranks));
            if (src != dst) plan->drop_message(src, dst, 1 + next() % 4);
        }
        const int src = static_cast<int>(next() % static_cast<std::uint64_t>(nranks));
        const int dst = static_cast<int>(next() % static_cast<std::uint64_t>(nranks));
        if (src != dst)
            plan->delay_message(src, dst, 1 + next() % 3,
                                1e-3 * static_cast<double>(1 + next() % 5));
    }
    return plan;
}

FaultPlan::CallAction FaultPlan::on_call(int global_rank, const char* call_name,
                                         std::uint64_t call_index) {
    CallAction out;
    for (Spec& s : specs_) {
        if (s.rank != global_rank) continue;
        if (s.kind == Spec::Kind::KillAtCall) {
            // >= so a plan built against a slightly different call count
            // still fires (once) instead of silently missing its mark.
            if (call_index >= s.nth && !s.fired.exchange(true)) {
                out.kind = CallAction::Kind::Kill;
                out.nth = call_index;
                return out;
            }
        } else if (s.kind == Spec::Kind::HangInCall) {
            if (s.call == call_name && !s.fired.exchange(true)) {
                out.kind = CallAction::Kind::Hang;
                out.hang_seconds = s.seconds;
                out.nth = call_index;
                return out;
            }
        }
    }
    return out;
}

FaultPlan::MessageAction FaultPlan::on_message(int src_global, int dest_global) {
    MessageAction out;
    for (Spec& s : specs_) {
        if (s.kind != Spec::Kind::DropMessage && s.kind != Spec::Kind::DelayMessage)
            continue;
        if (s.rank != src_global || s.dest != dest_global) continue;
        const std::uint64_t seen = s.matched.fetch_add(1, std::memory_order_relaxed) + 1;
        if (seen != s.nth) continue;
        if (s.kind == Spec::Kind::DropMessage)
            out.drop = true;
        else
            out.delay_seconds += s.seconds;
    }
    return out;
}

bool FaultPlan::on_spawn() {
    const std::uint64_t n = spawns_.fetch_add(1, std::memory_order_relaxed) + 1;
    for (Spec& s : specs_)
        if (s.kind == Spec::Kind::FailSpawn && s.nth == n) return true;
    return false;
}

}  // namespace m2p::simmpi
