// Public handle types and constants for simmpi, the reproduction's
// MPI-1/MPI-2 subset (DESIGN.md section 2).  Ranks are threads of one
// process; handles are plain integers as in the C MPI bindings.
//
// Names intentionally mirror the MPI standard (MPI_COMM_WORLD,
// MPI_Send, ...) so the PPerfMark programs and examples read like the
// MPI codes in the paper.  Everything lives in namespace m2p::simmpi.
#pragma once

#include <cstdint>

namespace m2p::simmpi {

using Comm = std::int32_t;
using Win = std::int32_t;
using Group = std::int32_t;
using Info = std::int32_t;
using Request = std::int32_t;
using File = std::int32_t;

inline constexpr Comm MPI_COMM_NULL = -1;
inline constexpr Win MPI_WIN_NULL = -1;
inline constexpr Group MPI_GROUP_NULL = -1;
inline constexpr Info MPI_INFO_NULL = -1;
inline constexpr Request MPI_REQUEST_NULL = -1;
inline constexpr File MPI_FILE_NULL = -1;

// MPI-I/O open modes (bit flags, combinable).
inline constexpr int MPI_MODE_RDONLY = 1 << 1;
inline constexpr int MPI_MODE_RDWR = 1 << 2;
inline constexpr int MPI_MODE_WRONLY = 1 << 3;
inline constexpr int MPI_MODE_CREATE = 1 << 4;
inline constexpr int MPI_MODE_EXCL = 1 << 5;
inline constexpr int MPI_MODE_DELETE_ON_CLOSE = 1 << 6;
inline constexpr int MPI_MODE_APPEND = 1 << 7;

// MPI_File_seek whence values.
inline constexpr int MPI_SEEK_SET = 0;
inline constexpr int MPI_SEEK_CUR = 1;
inline constexpr int MPI_SEEK_END = 2;

inline constexpr int MPI_ANY_SOURCE = -2;
inline constexpr int MPI_ANY_TAG = -2;
inline constexpr int MPI_PROC_NULL = -3;
inline constexpr int MPI_UNDEFINED = -32766;

/// Result codes (subset of the standard's error classes).
inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_COMM = 5;
inline constexpr int MPI_ERR_TYPE = 3;
inline constexpr int MPI_ERR_COUNT = 2;
inline constexpr int MPI_ERR_TAG = 4;
inline constexpr int MPI_ERR_RANK = 6;
inline constexpr int MPI_ERR_ARG = 12;
inline constexpr int MPI_ERR_OTHER = 15;
inline constexpr int MPI_ERR_WIN = 45;
inline constexpr int MPI_ERR_SPAWN = 50;
inline constexpr int MPI_ERR_NAME = 51;
inline constexpr int MPI_ERR_GROUP = 8;
inline constexpr int MPI_ERR_REQUEST = 7;
inline constexpr int MPI_ERR_INFO = 52;
inline constexpr int MPI_ERR_LOCKTYPE = 47;
inline constexpr int MPI_ERR_FILE = 27;
inline constexpr int MPI_ERR_AMODE = 28;
inline constexpr int MPI_ERR_NO_SUCH_FILE = 33;
inline constexpr int MPI_ERR_FILE_EXISTS = 31;
inline constexpr int MPI_ERR_READ_ONLY = 36;
inline constexpr int MPI_ERR_ACCESS = 20;
/// A peer involved in the operation died (the fault-tolerance draft's
/// error class; collectives over a communicator with a dead member
/// fail with this on every survivor).
inline constexpr int MPI_ERR_PROC_FAILED = 75;
/// The communicator was revoked (MPI_Comm_revoke, ULFM-style): every
/// pending and future operation on it fails with this code on every
/// member, so survivors fall out of wedged collectives and can agree /
/// shrink their way to a fresh communicator.
inline constexpr int MPI_ERR_REVOKED = 76;

/// Per-communicator error handlers (subset: the two predefined ones).
/// MPI_ERRORS_ARE_FATAL poisons the whole world on the first
/// fault-class error; MPI_ERRORS_RETURN surfaces MPI_ERR_* codes to
/// the caller.  simmpi defaults to MPI_ERRORS_RETURN so programs (and
/// tests) observe degraded results instead of dying.
inline constexpr int MPI_ERRORS_ARE_FATAL = 1;
inline constexpr int MPI_ERRORS_RETURN = 2;

enum class Datatype : std::int32_t {
    MPI_DATATYPE_NULL = 0,
    MPI_CHAR,
    MPI_BYTE,
    MPI_INT,
    MPI_LONG,
    MPI_FLOAT,
    MPI_DOUBLE,
};
using enum Datatype;

/// Size in bytes of one element of @p dt (0 for the null type).
constexpr int datatype_size(Datatype dt) {
    switch (dt) {
        case MPI_CHAR:
        case MPI_BYTE: return 1;
        case MPI_INT:
        case MPI_FLOAT: return 4;
        case MPI_LONG:
        case MPI_DOUBLE: return 8;
        case MPI_DATATYPE_NULL: return 0;
    }
    return 0;
}

enum class Op : std::int32_t {
    MPI_OP_NULL = 0,
    MPI_SUM,
    MPI_MAX,
    MPI_MIN,
};
using enum Op;

/// MPI_Init_thread support levels (paper section 3: "the addition of
/// thread support means that performance tools for MPI programs must
/// support multi-threaded applications").
inline constexpr int MPI_THREAD_SINGLE = 0;
inline constexpr int MPI_THREAD_FUNNELED = 1;
inline constexpr int MPI_THREAD_SERIALIZED = 2;
inline constexpr int MPI_THREAD_MULTIPLE = 3;

/// MPI_Win_lock lock types.
inline constexpr int MPI_LOCK_EXCLUSIVE = 1;
inline constexpr int MPI_LOCK_SHARED = 2;

/// Assertion bits for RMA synchronization (accepted, not optimized on).
inline constexpr int MPI_MODE_NOCHECK = 1;
inline constexpr int MPI_MODE_NOSTORE = 2;
inline constexpr int MPI_MODE_NOPUT = 4;
inline constexpr int MPI_MODE_NOPRECEDE = 8;
inline constexpr int MPI_MODE_NOSUCCEED = 16;

struct Status {
    int MPI_SOURCE = MPI_ANY_SOURCE;
    int MPI_TAG = MPI_ANY_TAG;
    int MPI_ERROR = MPI_SUCCESS;
    int count_bytes = 0;  ///< backs MPI_Get_count
};

/// Point-in-time view of one window's twelve Table-1 RMA metrics
/// (paper Table 1): op and byte counts per one-sided kind plus the
/// synchronization aggregates.  The derived totals (rma_ops,
/// rma_bytes, rma_sync_wait) are computed at snapshot time from the
/// base counters, so they are always internally consistent even while
/// other ranks keep flushing.
struct RmaCounterSnapshot {
    std::int64_t put_ops = 0, get_ops = 0, acc_ops = 0, rma_ops = 0;
    std::int64_t put_bytes = 0, get_bytes = 0, acc_bytes = 0, rma_bytes = 0;
    std::int64_t sync_ops = 0;
    double at_sync_wait = 0.0;  ///< seconds in active-target sync calls
    double pt_sync_wait = 0.0;  ///< seconds in passive-target sync calls
    double sync_wait = 0.0;     ///< at_sync_wait + pt_sync_wait
};

inline constexpr int MPI_MAX_OBJECT_NAME = 128;
inline constexpr int MPI_MAX_PROCESSOR_NAME = 128;

/// Which MPI implementation simmpi is imitating.  The two flavors
/// reproduce the behavioural differences the paper observes between
/// LAM/MPI 7.0 (sysv RPI) and MPICH ch_p4mpd / MPICH2:
///  - Mpich routes message waits through socket-style read/write
///    functions, so Paradyn's I/O metrics see them (paper Fig 3).
///  - Mpich implements MPI_Barrier on PMPI_Sendrecv (paper Fig 9).
///  - Lam implements MPI_Win_fence with MPI_Barrier and internal
///    Isend/Waitall (paper Figs 22, 24).
///  - Lam blocks in MPI_Win_start; Mpich2 defers to MPI_Win_complete
///    (paper section 5.2.1.1).
///  - Only Lam supports MPI_Comm_spawn (paper section 5.2.2) and
///    stores window names in a per-window shadow communicator
///    (paper Fig 23).
enum class Flavor { Lam, Mpich };

const char* flavor_name(Flavor f);

}  // namespace m2p::simmpi
