/// \file sched.hpp
/// Work-stealing fiber scheduler for simmpi (DESIGN.md section 12).
///
/// The scheduler multiplexes rank fibers over a pool of OS worker
/// threads (default: hardware_concurrency).  Each worker owns a local
/// run queue; idle workers steal from peers and drain a shared
/// injection queue that non-worker threads (tool threads, the
/// deadline sweeper) push wakeups through.
///
/// Blocking is expressed through WaitToken, the one primitive every
/// simmpi wait site uses.  On a fiber it is a park/unpark state
/// machine with targeted wakeups (no polling slice at all); on a
/// plain OS thread (the retained thread-per-rank engine, or a test
/// driving a Rank directly) it degrades to a mutex/condvar wait
/// capped at the legacy 5 ms liveness slice.  Either way callers keep
/// their re-check loops: parks may return spuriously, and all
/// abandon predicates (peer death, poison, deadline) are re-evaluated
/// after every wakeup -- that is how the old slice semantics carry
/// over exactly, just without the 5 ms latency floor.
///
/// Wakeup sources for a parked fiber:
///   - a targeted WaitToken::unpark() from whoever satisfied the wait,
///   - Scheduler::unpark_all_parked() on death-epoch bump / poison,
///   - the deadline sweeper when the park's own deadline expires.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "simmpi/fiber.hpp"

namespace m2p::simmpi::sched {

/// The single blocking handle.  Fiber-owned tokens are created by the
/// scheduler; any other thread gets a lazily-created thread-local one
/// from current_wait_token().
class WaitToken {
public:
    /// Block the calling context until unpark() or (roughly) the
    /// deadline.  May return early/spuriously; callers loop re-checking
    /// their predicate.  Must only be called by the owning context.
    void park_until(std::chrono::steady_clock::time_point deadline);

    /// Wake the owner if parked; otherwise leave a pending notify that
    /// the owner's next park consumes.  Safe from any thread, any time.
    void unpark();

private:
    friend class Fiber;
    friend class Scheduler;

    enum State : std::uint32_t {
        kIdle = 0,      ///< running, no pending notify
        kNotified = 1,  ///< notify pending; next park returns at once
        kParking = 2,   ///< fiber announced intent, switch in progress
        kParked = 3,    ///< fully parked; unpark requeues the fiber
        kDone = 4,      ///< fiber finished; unparks are no-ops
    };

    std::atomic<std::uint32_t> state_{kIdle};
    Fiber* fiber_ = nullptr;  ///< set once at fiber creation, else null

    // Thread-mode fallback: plain mutex/condvar with a 5 ms slice cap
    // (the legacy liveness behavior of the thread-per-rank engine).
    std::mutex mu_;
    std::condition_variable cv_;
};

struct Worker {
    Scheduler* sched = nullptr;
    int index = -1;
    std::thread th;
    StackContext sched_ctx;  ///< the worker loop's own context
    Fiber* current = nullptr;
    std::mutex mu;
    std::deque<Fiber*> q;
    std::atomic<int> qsize{0};
};

class Scheduler {
public:
    /// @p workers == 0 picks max(1, hardware_concurrency).
    explicit Scheduler(std::size_t workers);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Create a fiber and make it runnable.  The returned pointer is
    /// owned by the scheduler and stays valid until destruction.
    /// @p ictx seeds the fiber's migrated instr TLS (rank identity,
    /// trace sink) before the first switch-in.
    Fiber* spawn(Fiber::Body body, std::size_t stack_bytes,
                 std::atomic<std::int64_t>* cpu_sink = nullptr,
                 const instr::ThreadContext& ictx = {});

    /// Make a suspended fiber runnable (scheduler-internal and token
    /// unpark path).
    void ready(Fiber* f);

    /// Broadcast: unpark every currently-parked fiber so it re-checks
    /// its abandon predicate.  Called on death-epoch bump and poison.
    void unpark_all_parked();

    std::size_t worker_count() const { return workers_.size(); }

    /// Cheap runnable-work probe for maybe_yield().
    int injected_size() const {
        return inject_size_.load(std::memory_order_relaxed);
    }

private:
    friend class Fiber;
    friend class WaitToken;

    void worker_main(Worker& w);
    Fiber* next_runnable(Worker& w);
    void run_one(Worker& w, Fiber* f);
    void finalize_park(Fiber* f);
    void finalize_finish(Fiber* f);
    void sweeper_main();

    /// Switch from @p from to @p to, with sanitizer annotations.
    /// Returns the SwitchOp value passed by whoever switches back.
    static void* transfer(StackContext& from, StackContext& to, void* arg,
                          bool from_dying);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::atomic<bool> stop_{false};

    std::mutex inject_mu_;
    std::condition_variable inject_cv_;
    std::deque<Fiber*> inject_;
    std::atomic<int> inject_size_{0};
    std::atomic<int> idle_workers_{0};

    // Parked set + deadline sweeper.  Any fiber in parked_ is alive:
    // it is erased (under park_mu_) before being resumed and before
    // being destroyed.
    std::mutex park_mu_;
    std::condition_variable park_cv_;
    std::unordered_set<Fiber*> parked_;
    std::thread sweeper_;
    /// steady_clock nanoseconds the sweeper is currently sleeping to
    /// (max when it has no timer).  finalize_park pokes it only for a
    /// deadline earlier than this -- an unconditional poke per timed
    /// park costs a futex wake + sweeper rescan per park, O(n^2) scan
    /// work across one n-rank collective.
    std::atomic<std::int64_t> sweep_horizon_ns_{
        std::numeric_limits<std::int64_t>::max()};

    std::mutex fibers_mu_;
    std::vector<std::unique_ptr<Fiber>> fibers_;
};

/// The calling context's wait token: the running fiber's own token, or
/// a lazily-created thread-local one for plain OS threads.
const std::shared_ptr<WaitToken>& current_wait_token();

/// True when called on a fiber stack.
bool on_fiber();

/// Fiber-aware sleep: parks the fiber with a deadline (the worker runs
/// other ranks meanwhile); falls back to this_thread::sleep_for off
/// fiber.  Used for simulated costs (I/O latency, spawn cost, fault
/// hangs) so a sleeping rank never wedges a worker.
void sleep_for(std::chrono::nanoseconds d);

template <class Rep, class Period>
inline void sleep_for(std::chrono::duration<Rep, Period> d) {
    sleep_for(std::chrono::duration_cast<std::chrono::nanoseconds>(d));
}

/// Cooperative fairness point: yields the worker iff other fibers are
/// runnable.  Costs two relaxed loads when the queues are empty.
/// Called from the MPI dispatch boundary so busy-poll loops
/// (MPI_Iprobe spinning) cannot starve peers on a small worker pool.
void maybe_yield();

/// CPU nanoseconds consumed by the current fiber's in-progress slice
/// plus nothing else; 0 off fiber.  Rank bodies add this to their
/// accumulated counter for an exact final figure.
std::int64_t current_slice_cpu_ns();

}  // namespace m2p::simmpi::sched
