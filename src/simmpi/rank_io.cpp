// MPI-I/O: parallel file access against the simulated filesystem.
//
// The paper's section 3 singles MPI-I/O out as a feature performance
// tools must support ("the interface is extensive, allowing the
// programmer to find the best combination of file operations...
// These flexibilities increase the chances that a less than optimal
// combination could be chosen"); the conclusion lists it as the
// remaining MPI-2 support under construction.  This implementation
// provides individual and collective reads/writes, explicit offsets,
// seeks, and open-mode semantics, charging a simulated latency +
// bandwidth cost so file time is observable by the tool's metrics.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"

namespace m2p::simmpi {

namespace {
std::int64_t as_arg(const void* p) {
    return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(p));
}
}  // namespace

void Rank::file_io_cost(std::int64_t bytes) {
    const World::Config& cfg = world_.config();
    const double seconds =
        cfg.file_latency_seconds +
        static_cast<double>(bytes) / cfg.file_bandwidth_bytes_per_second;
    // Fiber-aware: the worker runs other ranks while this one "waits
    // for the disk" instead of wedging an OS thread per in-flight I/O.
    sched::sleep_for(std::chrono::duration<double>(seconds));
}

// ---------------------------------------------------------------------------
// Open / close / delete
// ---------------------------------------------------------------------------

int Rank::MPI_File_open(Comm c, const std::string& filename, int amode, Info info,
                        File* fh) {
    std::int64_t a[] = {c, 0, amode, info, 0};
    const std::string_view s[] = {filename};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_open, a, s);
    fault_point("MPI_File_open");
    const int rc = PMPI_File_open(c, filename, amode, info, fh);
    if (rc == MPI_SUCCESS && fh) a[4] = *fh;
    return rc;
}

int Rank::PMPI_File_open(Comm c, const std::string& filename, int amode, Info info,
                         File* fh) {
    std::int64_t a[] = {c, 0, amode, info, 0};
    const std::string_view s[] = {filename};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_open, a, s);
    if (!fh) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    // Access-mode validation per the standard: exactly one of
    // RDONLY/RDWR/WRONLY; EXCL only with CREATE.
    const int rw = (amode & MPI_MODE_RDONLY ? 1 : 0) + (amode & MPI_MODE_RDWR ? 1 : 0) +
                   (amode & MPI_MODE_WRONLY ? 1 : 0);
    if (rw != 1) return MPI_ERR_AMODE;
    if ((amode & MPI_MODE_EXCL) && !(amode & MPI_MODE_CREATE)) return MPI_ERR_AMODE;
    if ((amode & MPI_MODE_RDONLY) && (amode & (MPI_MODE_CREATE | MPI_MODE_APPEND)))
        return MPI_ERR_AMODE;

    // Collective: everyone arrives, rank 0 resolves the file, everyone
    // picks up the shared handle (late openers show up as I/O wait).
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    if (my_rank_in(cd) == 0) {
        cd.win_result = MPI_WIN_NULL;  // reuse the slot for the file handle
        const bool exists = world_.fs_exists(filename);
        if (!exists && !(amode & MPI_MODE_CREATE)) {
            cd.win_result = -2;  // signal: no such file
        } else if (exists && (amode & MPI_MODE_EXCL)) {
            cd.win_result = -3;  // signal: exists but EXCL
        } else {
            std::shared_ptr<StoredFile> store = world_.fs_lookup(filename, true);
            cd.win_result = world_.create_file(
                filename, std::move(store), c, amode,
                (amode & MPI_MODE_DELETE_ON_CLOSE) != 0);
        }
    }
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    const std::int64_t result = cd.win_result;
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    if (result == -2) return MPI_ERR_NO_SUCH_FILE;
    if (result == -3) return MPI_ERR_FILE_EXISTS;
    *fh = static_cast<File>(result);
    a[4] = *fh;
    file_io_cost(0);  // open latency
    // APPEND: individual pointers start at end of file.
    FileData& fd = world_.file(*fh);
    if (info != MPI_INFO_NULL) {
        std::lock_guard plk(fd.mu);
        fd.info = info;  // hints recorded (access_style etc.)
    }
    if (amode & MPI_MODE_APPEND) {
        std::lock_guard flk(fd.store->mu);
        std::lock_guard plk(fd.mu);
        fd.individual_ptr[global_] = static_cast<std::int64_t>(fd.store->data.size());
    }
    world_.trace_event(trace::EventKind::Io, global_, "MPI_File_open", 0, amode, *fh);
    return MPI_SUCCESS;
}

int Rank::MPI_File_close(File* fh) {
    const std::int64_t a[] = {fh ? *fh : MPI_FILE_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_close, a);
    fault_point("MPI_File_close");
    return PMPI_File_close(fh);
}

int Rank::PMPI_File_close(File* fh) {
    const std::int64_t a[] = {fh ? *fh : MPI_FILE_NULL};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_close, a);
    if (!fh) return MPI_ERR_ARG;
    if (!world_.file_valid(*fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(*fh);
    CommData& cd = world_.comm(fd.comm);
    if (!barrier_internal(cd)) return comm_error(fd.comm, coll_fail_code(cd));
    if (my_rank_in(cd) == 0) {
        fd.closed = true;
        if (fd.delete_on_close) world_.fs_delete(fd.filename);
    }
    if (!barrier_internal(cd)) return comm_error(fd.comm, coll_fail_code(cd));
    world_.trace_event(trace::EventKind::Io, global_, "MPI_File_close", 0, 0, *fh);
    *fh = MPI_FILE_NULL;
    return MPI_SUCCESS;
}

int Rank::MPI_File_delete(const std::string& filename, Info info) {
    const std::int64_t a[] = {0, info};
    const std::string_view s[] = {filename};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_delete, a, s);
    return PMPI_File_delete(filename, info);
}

int Rank::PMPI_File_delete(const std::string& filename, Info info) {
    const std::int64_t a[] = {0, info};
    const std::string_view s[] = {filename};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_delete, a, s);
    if (!world_.fs_delete(filename)) return MPI_ERR_NO_SUCH_FILE;
    world_.trace_event(trace::EventKind::Io, global_, "MPI_File_delete");
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Data transfer
// ---------------------------------------------------------------------------

int Rank::file_transfer(File fh, const char* op, std::int64_t at_offset, void* rbuf,
                        const void* wbuf, int count, Datatype dt, Status* st,
                        bool collective) {
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    FileData& fd = world_.file(fh);
    const bool is_write = wbuf != nullptr;
    if (is_write && (fd.amode & MPI_MODE_RDONLY)) return MPI_ERR_READ_ONLY;
    if (!is_write && (fd.amode & MPI_MODE_WRONLY)) return MPI_ERR_ACCESS;

    // Collective access synchronizes the communicator before and
    // after the transfer, so stragglers produce measurable I/O wait.
    if (collective && !barrier_internal(world_.comm(fd.comm)))
        return comm_error(fd.comm, coll_fail_code(world_.comm(fd.comm)));

    const std::int64_t bytes =
        static_cast<std::int64_t>(count) * datatype_size(dt);
    // The file view (MPI_File_set_view) expresses offsets in etypes
    // from a byte displacement; the default view is bytes from 0.
    std::int64_t esize = 1, disp = 0;
    std::int64_t offset_units = at_offset;
    {
        std::lock_guard plk(fd.mu);
        esize = datatype_size(fd.view_etype);
        disp = fd.view_disp;
        if (offset_units < 0) offset_units = fd.individual_ptr[global_];
    }
    if (bytes % esize != 0) return MPI_ERR_TYPE;  // whole etypes only
    const std::int64_t byte_off = disp + offset_units * esize;
    std::int64_t moved = 0;
    {
        std::lock_guard flk(fd.store->mu);
        if (is_write) {
            if (fd.store->data.size() <
                static_cast<std::size_t>(byte_off + bytes))
                fd.store->data.resize(static_cast<std::size_t>(byte_off + bytes));
            std::memcpy(fd.store->data.data() + byte_off, wbuf,
                        static_cast<std::size_t>(bytes));
            moved = bytes;
        } else {
            const auto available = static_cast<std::int64_t>(fd.store->data.size());
            moved = std::clamp<std::int64_t>(available - byte_off, 0, bytes);
            moved -= moved % esize;  // reads deliver whole etypes
            if (moved > 0)
                std::memcpy(rbuf, fd.store->data.data() + byte_off,
                            static_cast<std::size_t>(moved));
        }
    }
    file_io_cost(moved);
    world_.trace_event(trace::EventKind::Io, global_, op, moved, byte_off, fh);
    if (at_offset < 0) {
        std::lock_guard plk(fd.mu);
        fd.individual_ptr[global_] = offset_units + moved / esize;
    }
    if (st) {
        st->MPI_SOURCE = MPI_PROC_NULL;
        st->MPI_TAG = MPI_ANY_TAG;
        st->MPI_ERROR = MPI_SUCCESS;
        st->count_bytes = static_cast<int>(moved);
    }
    if (collective && !barrier_internal(world_.comm(fd.comm)))
        return comm_error(fd.comm, coll_fail_code(world_.comm(fd.comm)));
    return MPI_SUCCESS;
}

// Argument layouts for instrumentation ($arg positions):
//   read/write/read_all/write_all: [fh, buf, count, dt, status]
//   read_at/write_at:              [fh, offset, buf, count, dt, status]

// Packs the common [fh, buf, count, dt, status] argument layout and
// the instrumentation guard around one read/write body.  The MPI_
// variant is the user-visible call boundary, so it is also the fault
// injection point (PMPI_ bodies must not double-count calls).
#define M2P_FILE_RW(CALL, FID)                                                \
    {                                                                         \
        const std::int64_t a[] = {fh, as_arg(buf), count,                     \
                                  static_cast<std::int64_t>(dt), as_arg(st)}; \
        instr::FunctionGuard g(world_.registry(), world_.fids().FID, a);      \
        return CALL;                                                          \
    }
#define M2P_FILE_RW_USER(CALL, FID)                                           \
    {                                                                         \
        const std::int64_t a[] = {fh, as_arg(buf), count,                     \
                                  static_cast<std::int64_t>(dt), as_arg(st)}; \
        instr::FunctionGuard g(world_.registry(), world_.fids().FID, a);      \
        fault_point(#FID);                                                    \
        return CALL;                                                          \
    }

int Rank::MPI_File_read(File fh, void* buf, int count, Datatype dt, Status* st) {
    M2P_FILE_RW_USER(PMPI_File_read(fh, buf, count, dt, st), MPI_File_read)
}
int Rank::PMPI_File_read(File fh, void* buf, int count, Datatype dt, Status* st) {
    M2P_FILE_RW(file_transfer(fh, "MPI_File_read", -1, buf, nullptr, count, dt, st, false), PMPI_File_read)
}
int Rank::MPI_File_write(File fh, const void* buf, int count, Datatype dt, Status* st) {
    M2P_FILE_RW_USER(PMPI_File_write(fh, buf, count, dt, st), MPI_File_write)
}
int Rank::PMPI_File_write(File fh, const void* buf, int count, Datatype dt,
                          Status* st) {
    M2P_FILE_RW(file_transfer(fh, "MPI_File_write", -1, nullptr, buf, count, dt, st, false), PMPI_File_write)
}
int Rank::MPI_File_read_all(File fh, void* buf, int count, Datatype dt, Status* st) {
    M2P_FILE_RW_USER(PMPI_File_read_all(fh, buf, count, dt, st), MPI_File_read_all)
}
int Rank::PMPI_File_read_all(File fh, void* buf, int count, Datatype dt, Status* st) {
    M2P_FILE_RW(file_transfer(fh, "MPI_File_read_all", -1, buf, nullptr, count, dt, st, true), PMPI_File_read_all)
}
int Rank::MPI_File_write_all(File fh, const void* buf, int count, Datatype dt,
                             Status* st) {
    M2P_FILE_RW_USER(PMPI_File_write_all(fh, buf, count, dt, st), MPI_File_write_all)
}
int Rank::PMPI_File_write_all(File fh, const void* buf, int count, Datatype dt,
                              Status* st) {
    M2P_FILE_RW(file_transfer(fh, "MPI_File_write_all", -1, nullptr, buf, count, dt, st, true), PMPI_File_write_all)
}

#undef M2P_FILE_RW
#undef M2P_FILE_RW_USER

int Rank::MPI_File_read_at(File fh, std::int64_t offset, void* buf, int count,
                           Datatype dt, Status* st) {
    const std::int64_t a[] = {fh,    offset, as_arg(buf), count,
                              static_cast<std::int64_t>(dt), as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_read_at, a);
    fault_point("MPI_File_read_at");
    return PMPI_File_read_at(fh, offset, buf, count, dt, st);
}
int Rank::PMPI_File_read_at(File fh, std::int64_t offset, void* buf, int count,
                            Datatype dt, Status* st) {
    const std::int64_t a[] = {fh,    offset, as_arg(buf), count,
                              static_cast<std::int64_t>(dt), as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_read_at, a);
    if (offset < 0) return MPI_ERR_ARG;
    return file_transfer(fh, "MPI_File_read_at", offset, buf, nullptr, count, dt, st,
                         false);
}
int Rank::MPI_File_write_at(File fh, std::int64_t offset, const void* buf, int count,
                            Datatype dt, Status* st) {
    const std::int64_t a[] = {fh,    offset, as_arg(buf), count,
                              static_cast<std::int64_t>(dt), as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_write_at, a);
    fault_point("MPI_File_write_at");
    return PMPI_File_write_at(fh, offset, buf, count, dt, st);
}
int Rank::PMPI_File_write_at(File fh, std::int64_t offset, const void* buf, int count,
                             Datatype dt, Status* st) {
    const std::int64_t a[] = {fh,    offset, as_arg(buf), count,
                              static_cast<std::int64_t>(dt), as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_write_at, a);
    if (offset < 0) return MPI_ERR_ARG;
    return file_transfer(fh, "MPI_File_write_at", offset, nullptr, buf, count, dt, st,
                         false);
}

int Rank::MPI_File_read_shared(File fh, void* buf, int count, Datatype dt, Status* st) {
    const std::int64_t a[] = {fh, as_arg(buf), count, static_cast<std::int64_t>(dt),
                              as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_read_shared, a);
    instr::FunctionGuard pg(world_.registry(), world_.fids().PMPI_File_read_shared, a);
    fault_point("MPI_File_read_shared");
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    FileData& fd = world_.file(fh);
    std::int64_t offset = 0, esize = 1;
    const std::int64_t bytes = static_cast<std::int64_t>(count) * datatype_size(dt);
    {
        // Reserve a region at the shared pointer atomically.
        std::lock_guard plk(fd.mu);
        esize = datatype_size(fd.view_etype);
        if (bytes % esize != 0) return MPI_ERR_TYPE;
        offset = fd.shared_ptr_;
        fd.shared_ptr_ += bytes / esize;
    }
    const int rc = file_transfer(fh, "MPI_File_read_shared", offset, buf, nullptr,
                                 count, dt, st, false);
    if (rc == MPI_SUCCESS && st && st->count_bytes < bytes) {
        // Short read at EOF: give back the unread reservation.
        std::lock_guard plk(fd.mu);
        fd.shared_ptr_ -= (bytes - st->count_bytes) / esize;
    }
    return rc;
}

int Rank::MPI_File_write_shared(File fh, const void* buf, int count, Datatype dt,
                                Status* st) {
    const std::int64_t a[] = {fh, as_arg(buf), count, static_cast<std::int64_t>(dt),
                              as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_write_shared, a);
    instr::FunctionGuard pg(world_.registry(), world_.fids().PMPI_File_write_shared, a);
    fault_point("MPI_File_write_shared");
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    FileData& fd = world_.file(fh);
    std::int64_t offset = 0;
    {
        std::lock_guard plk(fd.mu);
        const std::int64_t esize = datatype_size(fd.view_etype);
        const std::int64_t bytes =
            static_cast<std::int64_t>(count) * datatype_size(dt);
        if (bytes % esize != 0) return MPI_ERR_TYPE;
        offset = fd.shared_ptr_;
        fd.shared_ptr_ += bytes / esize;
    }
    return file_transfer(fh, "MPI_File_write_shared", offset, nullptr, buf, count, dt,
                         st, false);
}

// ---------------------------------------------------------------------------
// Pointers and metadata
// ---------------------------------------------------------------------------

int Rank::MPI_File_seek(File fh, std::int64_t offset, int whence) {
    const std::int64_t a[] = {fh, offset, whence};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_seek, a);
    return PMPI_File_seek(fh, offset, whence);
}

int Rank::PMPI_File_seek(File fh, std::int64_t offset, int whence) {
    const std::int64_t a[] = {fh, offset, whence};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_seek, a);
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(fh);
    std::int64_t base = 0;
    switch (whence) {
        case MPI_SEEK_SET: base = 0; break;
        case MPI_SEEK_CUR: {
            std::lock_guard plk(fd.mu);
            base = fd.individual_ptr[global_];
            break;
        }
        case MPI_SEEK_END: {
            std::lock_guard flk(fd.store->mu);
            std::lock_guard plk(fd.mu);
            base = (static_cast<std::int64_t>(fd.store->data.size()) - fd.view_disp) /
                   datatype_size(fd.view_etype);
            break;
        }
        default: return MPI_ERR_ARG;
    }
    if (base + offset < 0) return MPI_ERR_ARG;
    {
        std::lock_guard plk(fd.mu);
        fd.individual_ptr[global_] = base + offset;
    }
    world_.trace_event(trace::EventKind::Io, global_, "MPI_File_seek", 0, base + offset,
                       fh);
    return MPI_SUCCESS;
}

int Rank::MPI_File_get_position(File fh, std::int64_t* offset) {
    if (!offset) return MPI_ERR_ARG;
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(fh);
    std::lock_guard plk(fd.mu);
    *offset = fd.individual_ptr[global_];
    return MPI_SUCCESS;
}

int Rank::MPI_File_get_size(File fh, std::int64_t* size) {
    if (!size) return MPI_ERR_ARG;
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(fh);
    std::lock_guard flk(fd.store->mu);
    *size = static_cast<std::int64_t>(fd.store->data.size());
    return MPI_SUCCESS;
}

int Rank::MPI_File_sync(File fh) {
    const std::int64_t a[] = {fh};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_File_sync, a);
    return PMPI_File_sync(fh);
}

int Rank::MPI_File_set_view(File fh, std::int64_t disp, Datatype etype, Info info) {
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    if (disp < 0) return MPI_ERR_ARG;
    if (datatype_size(etype) <= 0) return MPI_ERR_TYPE;
    FileData& fd = world_.file(fh);
    // Collective; resets all file pointers, per the standard.
    if (!barrier_internal(world_.comm(fd.comm)))
        return comm_error(fd.comm, coll_fail_code(world_.comm(fd.comm)));
    {
        std::lock_guard plk(fd.mu);
        fd.view_disp = disp;
        fd.view_etype = etype;
        fd.individual_ptr.clear();
        fd.shared_ptr_ = 0;
        if (info != MPI_INFO_NULL) fd.info = info;
    }
    if (!barrier_internal(world_.comm(fd.comm)))
        return comm_error(fd.comm, coll_fail_code(world_.comm(fd.comm)));
    return MPI_SUCCESS;
}

int Rank::MPI_File_get_view(File fh, std::int64_t* disp, Datatype* etype) {
    if (!disp || !etype) return MPI_ERR_ARG;
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(fh);
    std::lock_guard plk(fd.mu);
    *disp = fd.view_disp;
    *etype = fd.view_etype;
    return MPI_SUCCESS;
}

int Rank::MPI_File_get_info(File fh, Info* info_out) {
    if (!info_out) return MPI_ERR_ARG;
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    FileData& fd = world_.file(fh);
    const Info fresh = world_.create_info();
    {
        std::lock_guard plk(fd.mu);
        if (fd.info != MPI_INFO_NULL && world_.info_valid(fd.info))
            world_.info(fresh).kv = world_.info(fd.info).kv;
    }
    *info_out = fresh;
    return MPI_SUCCESS;
}

int Rank::PMPI_File_sync(File fh) {
    const std::int64_t a[] = {fh};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_File_sync, a);
    if (!world_.file_valid(fh)) return MPI_ERR_FILE;
    file_io_cost(0);  // flush latency
    world_.trace_event(trace::EventKind::Io, global_, "MPI_File_sync", 0, 0, fh);
    return MPI_SUCCESS;
}

}  // namespace m2p::simmpi
