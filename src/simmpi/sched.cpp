#include "simmpi/sched.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/clock.hpp"

namespace m2p::simmpi::sched {

namespace {

thread_local Worker* t_worker = nullptr;

// Per-slice CPU accounting runs on every fiber switch-in/out, so it
// must not be a syscall: CLOCK_THREAD_CPUTIME_ID costs ~250 ns per
// read on a virtualized host (no vDSO path), which at two reads per
// slice dominates a park/unpark cycle.  A calibrated TSC delta reads
// in a few ns.  The divergence: rdtsc measures wall time, so an
// involuntary preemption of the worker mid-slice is charged to the
// running fiber, where the thread CPU clock would exclude it.  Worker
// slices never block voluntarily (blocking sites park, switching the
// fiber out), so on a quiet host the two agree; under host
// contention the rdtsc figure errs toward the scheduling reality the
// simulation models anyway.
std::int64_t slice_clock_ns() {
    static const double ns_per_tick =
        util::calibrate_ticks().seconds_per_tick * 1e9;
    return static_cast<std::int64_t>(
        static_cast<double>(util::ticks()) * ns_per_tick);
}

constexpr auto kThreadSlice = std::chrono::milliseconds(5);

// util::rank_cpu_seconds() provider (installed by the first Scheduler):
// on a fiber, its accumulated slices plus the in-progress one -- the
// thread CPU clock would subtract two different workers' clocks when a
// rank migrates between a timer's start and stop reads.  Off fiber,
// the thread clock is the context's own and stays correct.
double fiber_aware_cpu_seconds() {
    Worker* w = t_worker;
    if (w == nullptr || w->current == nullptr)
        return util::thread_cpu_seconds();
    Fiber* f = w->current;
    std::int64_t ns = current_slice_cpu_ns();
    if (std::atomic<std::int64_t>* sink = f->cpu_sink())
        ns += sink->load(std::memory_order_relaxed);
    return static_cast<double>(ns) * 1e-9;
}

// A park deadline at or beyond this sentinel means "no timer": the
// sweeper skips it entirely.
constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

}  // namespace

// ---------------------------------------------------------------------------
// WaitToken
// ---------------------------------------------------------------------------

void WaitToken::park_until(std::chrono::steady_clock::time_point deadline) {
    if (fiber_ != nullptr) {
        // Fiber mode: the caller must BE the fiber.
        std::uint32_t s = state_.load(std::memory_order_acquire);
        if (s == kNotified) {
            state_.store(kIdle, std::memory_order_relaxed);
            return;
        }
        if (deadline != kNoDeadline &&
            deadline <= std::chrono::steady_clock::now()) {
            // Already past due: don't enter the park machinery, but do
            // give peers a chance so an expired-deadline re-check loop
            // cannot monopolize the worker.
            maybe_yield();
            return;
        }
        fiber_->park_deadline_ = deadline;
        // Announce the park with a CAS, not a store: an unpark on
        // another thread may have CASed kIdle -> kNotified after the
        // fast-path load above, and a blind kParking store would
        // overwrite (lose) that notify -- a deadline-less park would
        // then sleep until an unrelated broadcast.
        std::uint32_t expected = kIdle;
        if (!state_.compare_exchange_strong(expected, kParking,
                                            std::memory_order_acq_rel)) {
            // expected == kNotified: consume it and return instead of
            // parking.
            state_.store(kIdle, std::memory_order_relaxed);
            return;
        }
        fiber_->suspend(SwitchOp::Park);
        // Resumed: state is kIdle, or kNotified from a second unpark
        // (left pending for the next park -- a benign spurious pass).
        return;
    }
    // Thread mode: legacy 5 ms liveness slice so dead-peer/poison
    // re-checks happen even without targeted wakeups.
    std::unique_lock lk(mu_);
    const auto slice = std::chrono::steady_clock::now() + kThreadSlice;
    cv_.wait_until(lk, std::min(deadline, slice), [this] {
        return state_.load(std::memory_order_relaxed) == kNotified;
    });
    state_.store(kIdle, std::memory_order_relaxed);
}

void WaitToken::unpark() {
    if (fiber_ == nullptr) {
        {
            std::lock_guard lk(mu_);
            state_.store(kNotified, std::memory_order_relaxed);
        }
        cv_.notify_one();
        return;
    }
    for (;;) {
        std::uint32_t s = state_.load(std::memory_order_acquire);
        switch (s) {
            case kParked:
                if (state_.compare_exchange_weak(s, kIdle,
                                                 std::memory_order_acq_rel)) {
                    fiber_->sched_->ready(fiber_);
                    return;
                }
                break;
            case kParking:
                // The owner is mid-switch; flag it so the scheduler's
                // finalize turns the park into an immediate requeue.
                if (state_.compare_exchange_weak(s, kNotified,
                                                 std::memory_order_acq_rel))
                    return;
                break;
            case kIdle:
                if (state_.compare_exchange_weak(s, kNotified,
                                                 std::memory_order_acq_rel))
                    return;
                break;
            default:  // kNotified (pending) or kDone (fiber gone): no-op
                return;
        }
    }
}

// ---------------------------------------------------------------------------
// Fiber <-> scheduler handoff
// ---------------------------------------------------------------------------

void Fiber::suspend(SwitchOp op) {
    Worker* w = t_worker;
    if (w == nullptr || w->current != this) {
        std::fprintf(stderr, "simmpi sched: suspend off own worker\n");
        std::abort();
    }
    Scheduler::transfer(ctx_, w->sched_ctx,
                        reinterpret_cast<void*>(static_cast<std::uintptr_t>(op)),
                        /*from_dying=*/op == SwitchOp::Finished);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(std::size_t workers) {
    // The provider checks t_worker itself, so it is safe to leave
    // installed after this scheduler is destroyed (it then degrades to
    // the thread clock) and idempotent across schedulers.
    util::set_rank_cpu_provider(&fiber_aware_cpu_seconds);
    if (workers == 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        workers = hc == 0 ? 1 : hc;
    }
    for (std::size_t i = 0; i < workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->sched = this;
        w->index = static_cast<int>(i);
        workers_.push_back(std::move(w));
    }
    for (auto& w : workers_) w->th = std::thread([this, &w] { worker_main(*w); });
    sweeper_ = std::thread([this] { sweeper_main(); });
}

Scheduler::~Scheduler() {
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard lk(inject_mu_);
    }
    inject_cv_.notify_all();
    {
        std::lock_guard lk(park_mu_);
    }
    park_cv_.notify_all();
    for (auto& w : workers_) w->th.join();
    sweeper_.join();
    // Any fiber still suspended here leaked out of join_all; destroying
    // its stack now is no worse than the thread engine's detach-free
    // guarantee (join_all aborts the process on wedged ranks first).
}

Fiber* Scheduler::spawn(Fiber::Body body, std::size_t stack_bytes,
                        std::atomic<std::int64_t>* cpu_sink,
                        const instr::ThreadContext& ictx) {
    auto f = std::make_unique<Fiber>(this, std::move(body), stack_bytes);
    f->set_cpu_sink(cpu_sink);
    f->ictx_ = ictx;
    Fiber* raw = f.get();
    {
        std::lock_guard lk(fibers_mu_);
        fibers_.push_back(std::move(f));
    }
    ready(raw);
    return raw;
}

void Scheduler::ready(Fiber* f) {
    Worker* w = t_worker;
    if (w != nullptr && w->sched == this) {
        {
            std::lock_guard lk(w->mu);
            w->q.push_back(f);
        }
        w->qsize.fetch_add(1, std::memory_order_release);
        if (idle_workers_.load(std::memory_order_acquire) > 0)
            inject_cv_.notify_one();
        return;
    }
    {
        std::lock_guard lk(inject_mu_);
        inject_.push_back(f);
    }
    inject_size_.fetch_add(1, std::memory_order_release);
    inject_cv_.notify_one();
}

void Scheduler::unpark_all_parked() {
    // Broadcast to EVERY fiber's token, not just the currently-parked
    // set: a fiber that evaluated its liveness predicate just before
    // the death-epoch bump and is now mid-park would miss a
    // parked_-only sweep and sleep until its deadline.  Leaving a
    // pending notify on running/idle tokens turns that race into one
    // benign spurious pass; finished fibers (kDone) no-op.  Tokens are
    // copied out so unpark()'s requeue work happens without the lock.
    std::vector<std::shared_ptr<WaitToken>> toks;
    {
        std::lock_guard lk(fibers_mu_);
        toks.reserve(fibers_.size());
        for (const auto& f : fibers_) toks.push_back(f->token_);
    }
    for (auto& t : toks) t->unpark();
}

Fiber* Scheduler::next_runnable(Worker& w) {
    for (;;) {
        // Move one injected fiber into the local queue per tick, even
        // when local work exists.  Yielding fibers requeue locally, so
        // a local-first pop with no inject drain would let one spinning
        // fiber starve everything in the shared queue (spawns and
        // cross-thread unparks land there) indefinitely.
        if (inject_size_.load(std::memory_order_acquire) > 0) {
            Fiber* moved = nullptr;
            {
                std::lock_guard lk(inject_mu_);
                if (!inject_.empty()) {
                    moved = inject_.front();
                    inject_.pop_front();
                    inject_size_.fetch_sub(1, std::memory_order_relaxed);
                }
            }
            if (moved != nullptr) {
                std::lock_guard lk(w.mu);
                w.q.push_back(moved);
                w.qsize.fetch_add(1, std::memory_order_relaxed);
            }
        }
        {
            std::lock_guard lk(w.mu);
            if (!w.q.empty()) {
                Fiber* f = w.q.front();
                w.q.pop_front();
                w.qsize.fetch_sub(1, std::memory_order_relaxed);
                return f;
            }
        }
        for (auto& other : workers_) {
            if (other.get() == &w) continue;
            std::lock_guard lk(other->mu);
            if (!other->q.empty()) {
                Fiber* f = other->q.back();  // steal the cold end
                other->q.pop_back();
                other->qsize.fetch_sub(1, std::memory_order_relaxed);
                return f;
            }
        }
        if (stop_.load(std::memory_order_acquire)) return nullptr;
        std::unique_lock lk(inject_mu_);
        if (!inject_.empty()) continue;
        idle_workers_.fetch_add(1, std::memory_order_acq_rel);
        // Timed wait as a lost-wakeup backstop: a ready() that read
        // idle_workers_ just before our increment misses the notify;
        // the 20 ms re-scan bounds the damage.
        inject_cv_.wait_for(lk, std::chrono::milliseconds(20));
        idle_workers_.fetch_sub(1, std::memory_order_acq_rel);
        if (stop_.load(std::memory_order_acquire)) return nullptr;
    }
}

void Scheduler::worker_main(Worker& w) {
    t_worker = &w;
    // The worker loop's context needs no stack of its own (it runs on
    // the OS thread stack); sanitizer bookkeeping only.
    init_worker_context(w.sched_ctx);
    for (;;) {
        Fiber* f = next_runnable(w);
        if (f == nullptr) break;
        run_one(w, f);
    }
    t_worker = nullptr;
}

void Scheduler::run_one(Worker& w, Fiber* f) {
    {
        // A fiber coming off a park may still be in the parked set
        // (sweeper bookkeeping); it must leave before it can run or
        // finish, so the set never holds a dangling pointer.
        std::lock_guard lk(park_mu_);
        parked_.erase(f);
    }
    w.current = f;
    f->slice_cpu_start_ = slice_clock_ns();
    const instr::ThreadContext worker_ctx =
        instr::exchange_thread_context(f->ictx_);
    void* r = transfer(w.sched_ctx, f->ctx_, f, /*from_dying=*/false);
    f->ictx_ = instr::exchange_thread_context(worker_ctx);
    if (f->cpu_sink_ != nullptr)
        f->cpu_sink_->fetch_add(slice_clock_ns() - f->slice_cpu_start_,
                                std::memory_order_relaxed);
    w.current = nullptr;
    switch (static_cast<SwitchOp>(reinterpret_cast<std::uintptr_t>(r))) {
        case SwitchOp::Park:
            finalize_park(f);
            break;
        case SwitchOp::Yield:
            ready(f);
            break;
        case SwitchOp::Finished:
            finalize_finish(f);
            break;
        default:
            std::fprintf(stderr, "simmpi sched: bad switch op\n");
            std::abort();
    }
}

void Scheduler::finalize_park(Fiber* f) {
    bool poke = false;
    {
        // Insert BEFORE publishing kParked: once the state flips, any
        // unpark may requeue and even finish the fiber, and a fiber
        // must never be inserted into parked_ after that.
        std::lock_guard lk(park_mu_);
        parked_.insert(f);
        std::uint32_t expected = WaitToken::kParking;
        if (!f->token_->state_.compare_exchange_strong(
                expected, WaitToken::kParked, std::memory_order_acq_rel)) {
            // An unpark raced in while the fiber was mid-switch: the
            // park loses, the fiber runs again immediately.
            parked_.erase(f);
            f->token_->state_.store(WaitToken::kIdle, std::memory_order_relaxed);
            ready(f);
            return;
        }
        // Wake the sweeper only when this deadline lands BEFORE the
        // horizon it is sleeping to.  An unconditional poke makes every
        // park a futex wake plus (on a saturated host) a context switch
        // into the sweeper, and the sweeper's full-set rescan turns a
        // 256-rank collective into O(n^2) scan work per operation.  The
        // horizon is published under park_mu_ before the sweeper waits,
        // and our insert above happens under the same lock, so a later
        // deadline is always covered by the pending wait_until and an
        // earlier one always pokes.
        poke = f->park_deadline_ != kNoDeadline &&
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   f->park_deadline_.time_since_epoch())
                       .count() < sweep_horizon_ns_.load(std::memory_order_relaxed);
    }
    if (poke) park_cv_.notify_one();
}

void Scheduler::finalize_finish(Fiber* f) {
    f->token_->state_.store(WaitToken::kDone, std::memory_order_release);
    {
        std::lock_guard lk(park_mu_);
        parked_.erase(f);  // paranoia; a finishing fiber ran, so it left
    }
    // Release the (large) stack eagerly; the small Fiber object stays
    // owned by fibers_ so stray pointers stay dereferenceable.
    f->release_stack();
}

void Scheduler::sweeper_main() {
    std::unique_lock lk(park_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
        const auto now = std::chrono::steady_clock::now();
        auto horizon = kNoDeadline;
        std::vector<std::shared_ptr<WaitToken>> due;
        for (Fiber* f : parked_) {
            if (f->park_deadline_ == kNoDeadline) continue;
            if (f->park_deadline_ <= now)
                due.push_back(f->token_);
            else
                horizon = std::min(horizon, f->park_deadline_);
        }
        if (!due.empty()) {
            // sweep_horizon_ns_ still holds the (past) value we last
            // slept to, so parks arriving while we unpark outside the
            // lock skip their poke; the rescan below picks them up.
            lk.unlock();
            for (auto& t : due) t->unpark();
            lk.lock();
            continue;
        }
        if (horizon == kNoDeadline) {
            sweep_horizon_ns_.store(std::numeric_limits<std::int64_t>::max(),
                                    std::memory_order_relaxed);
            park_cv_.wait(lk);
        } else {
            sweep_horizon_ns_.store(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    horizon.time_since_epoch())
                    .count(),
                std::memory_order_relaxed);
            park_cv_.wait_until(lk, horizon);
        }
    }
}

// ---------------------------------------------------------------------------
// Free helpers
// ---------------------------------------------------------------------------

const std::shared_ptr<WaitToken>& current_wait_token() {
    Worker* w = t_worker;
    if (w != nullptr && w->current != nullptr) return w->current->token();
    thread_local std::shared_ptr<WaitToken> t_token;
    if (!t_token) t_token = std::make_shared<WaitToken>();
    return t_token;
}

bool on_fiber() {
    Worker* w = t_worker;
    return w != nullptr && w->current != nullptr;
}

void sleep_for(std::chrono::nanoseconds d) {
    Worker* w = t_worker;
    if (w == nullptr || w->current == nullptr) {
        std::this_thread::sleep_for(d);
        return;
    }
    const auto end = std::chrono::steady_clock::now() + d;
    const auto& tok = w->current->token();
    while (std::chrono::steady_clock::now() < end) tok->park_until(end);
}

void maybe_yield() {
    Worker* w = t_worker;
    if (w == nullptr || w->current == nullptr) return;
    // Strided: a fiber offers its worker only every 64th dispatch.
    // Every call sites this at the MPI dispatch boundary, so a
    // busy-polling rank (MPI_Iprobe spinning) still cannot starve
    // runnable peers forever -- but an eager sender streaming a burst
    // of small messages is not forced into a context switch per
    // message, which would serialize the whole burst with its
    // receiver and forfeit the wakeup amortization the windowed
    // protocols rely on.
    if ((w->current->next_dispatch() & 63u) != 0) return;
    if (w->qsize.load(std::memory_order_relaxed) == 0 &&
        w->sched->injected_size() == 0)
        return;
    w->current->suspend(SwitchOp::Yield);
}

std::int64_t current_slice_cpu_ns() {
    Worker* w = t_worker;
    if (w == nullptr || w->current == nullptr) return 0;
    return slice_clock_ns() - w->current->slice_cpu_start();
}

}  // namespace m2p::simmpi::sched
