#include "simmpi/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "simmpi/sched.hpp"

// ---------------------------------------------------------------------------
// Sanitizer fiber hooks.  Declared by hand so the plain build needs no
// sanitizer headers; each block compiles in only under its sanitizer.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define M2P_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define M2P_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define M2P_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define M2P_TSAN 1
#endif
#endif

#if defined(M2P_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old, size_t* size_old);
}
#endif

#if defined(M2P_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void __tsan_set_fiber_name(void* fiber, const char* name);
}
#endif

// ---------------------------------------------------------------------------
// Machine context switch.
//
// x86-64: an fcontext-style swap.  The System V callee-saved registers
// (rbp rbx r12-r15) plus the mxcsr and x87 control words are pushed to
// the outgoing stack, the stack pointers are exchanged, and the same
// state is popped from the incoming stack.  The third argument rides
// across the switch in rax so the resumed side receives it as the
// return value; a fresh fiber's seeded stack instead `ret`s into a
// thunk that moves rax into rdi and calls the C++ entry.
//
// Alignment: the seeded frame leaves rsp 16-byte aligned at thunk
// entry, so the thunk's `call` meets the psABI requirement (rsp % 16
// == 8 at the callee's first instruction).  There is no CFI for these
// frames; nothing ever unwinds across a switch (the fiber entry is
// noexcept-by-catch-all).
// ---------------------------------------------------------------------------

#if defined(__x86_64__)

extern "C" void* m2p_ctx_switch(void** save_sp, void* load_sp, void* arg);
extern "C" void m2p_fiber_entry(void* f);

asm(R"(
    .text
    .globl m2p_ctx_switch
    .hidden m2p_ctx_switch
    .type m2p_ctx_switch,@function
    .align 16
m2p_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    movq %rdx, %rax
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
    .size m2p_ctx_switch,.-m2p_ctx_switch

    .globl m2p_fiber_thunk
    .hidden m2p_fiber_thunk
    .type m2p_fiber_thunk,@function
    .align 16
m2p_fiber_thunk:
    movq %rax, %rdi
    callq m2p_fiber_entry
    ud2
    .size m2p_fiber_thunk,.-m2p_fiber_thunk
)");

extern "C" void m2p_fiber_thunk();

#else  // !__x86_64__

#include <ucontext.h>

#endif

namespace m2p::simmpi::sched {

namespace {

std::size_t page_size() {
    static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    return ps;
}

std::size_t round_up(std::size_t n, std::size_t to) {
    return (n + to - 1) / to * to;
}

[[noreturn]] void die(const char* what) {
    std::fprintf(stderr, "simmpi fiber: %s\n", what);
    std::abort();
}

#if !defined(__x86_64__)
// makecontext cannot portably pass pointers and swapcontext cannot
// carry a value across, so the transfer argument rides through a
// thread-local: set by the switching side, read by the resumed side
// (both are always on the same OS thread at the moment of the swap).
thread_local void* t_xfer_arg = nullptr;

void fiber_ucontext_trampoline() {
    Fiber::entry(static_cast<Fiber*>(t_xfer_arg));
}
#endif

}  // namespace

Fiber::Fiber(Scheduler* sched, Body body, std::size_t stack_bytes)
    : sched_(sched), body_(std::move(body)) {
    const std::size_t ps = page_size();
    const std::size_t usable = round_up(stack_bytes < 4 * ps ? 4 * ps : stack_bytes, ps);
    stack_total_ = usable + ps;  // one guard page below the stack
    void* base = mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (base == MAP_FAILED) die("stack mmap failed");
    if (mprotect(base, ps, PROT_NONE) != 0) die("guard mprotect failed");
    stack_base_ = base;
    ctx_.stack_bottom = static_cast<std::byte*>(base) + ps;
    ctx_.stack_size = usable;

    token_ = std::make_shared<WaitToken>();
    token_->fiber_ = this;

#if defined(M2P_TSAN)
    ctx_.tsan_fiber = __tsan_create_fiber(0);
    __tsan_set_fiber_name(ctx_.tsan_fiber, "simmpi-rank");
#endif

#if defined(__x86_64__)
    // Seed the initial frame (see the asm comment for the layout): the
    // restore path pops mxcsr/fcw, six registers, then `ret`s into the
    // thunk with rsp 16-aligned.
    auto* top = reinterpret_cast<std::uintptr_t*>(
        static_cast<std::byte*>(const_cast<void*>(ctx_.stack_bottom)) + usable);
    // top is page-aligned hence 16-aligned.
    *--top = reinterpret_cast<std::uintptr_t>(&m2p_fiber_thunk);  // ret target
    for (int i = 0; i < 6; ++i) *--top = 0;                       // rbp..r15
    --top;  // mxcsr/fcw slot: capture the creator's control words
    asm volatile("stmxcsr (%0)\n\tfnstcw 4(%0)" ::"r"(top) : "memory");
    ctx_.sp = top;
#else
    auto* self = new ucontext_t;
    if (getcontext(self) != 0) die("getcontext failed");
    self->uc_stack.ss_sp = const_cast<void*>(ctx_.stack_bottom);
    self->uc_stack.ss_size = usable;
    self->uc_link = nullptr;
    makecontext(self, reinterpret_cast<void (*)()>(&fiber_ucontext_trampoline), 0);
    ctx_.sp = self;
#endif
}

Fiber::~Fiber() {
#if defined(M2P_TSAN)
    if (ctx_.tsan_fiber) __tsan_destroy_fiber(ctx_.tsan_fiber);
#endif
#if !defined(__x86_64__)
    delete static_cast<ucontext_t*>(ctx_.sp);
    ctx_.sp = nullptr;
#endif
    release_stack();
}

void Fiber::release_stack() {
    if (stack_base_ != nullptr) {
        munmap(stack_base_, stack_total_);
        stack_base_ = nullptr;
    }
}

void init_worker_context(StackContext& ctx) {
#if defined(M2P_TSAN)
    ctx.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(M2P_ASAN)
    // ASan wants the destination stack bounds on every switch; for the
    // worker context that is the OS thread stack.
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void* addr = nullptr;
        std::size_t size = 0;
        if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
            ctx.stack_bottom = addr;
            ctx.stack_size = size;
        }
        pthread_attr_destroy(&attr);
    }
#else
    (void)ctx;
#endif
}

void Fiber::entry(Fiber* f) {
#if defined(M2P_ASAN)
    // First switch onto this stack: no fake-stack state to restore yet.
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
    // Unwinding must never walk below this frame: there is no CFI in
    // the seeded thunk frame.  RankKilled and friends are handled
    // inside the body (World::run body catches them); anything else
    // escaping here is a hard bug.
    try {
        f->body_();
    } catch (...) {
        die("exception escaped a fiber body");
    }
    f->suspend(SwitchOp::Finished);
    die("finished fiber was resumed");
}

// Defined here (not sched.cpp) so the switch mechanics stay in one file.
void* Scheduler::transfer(StackContext& from, StackContext& to, void* arg,
                          bool from_dying) {
#if defined(M2P_ASAN)
    __sanitizer_start_switch_fiber(from_dying ? nullptr : &from.fake_stack,
                                   to.stack_bottom, to.stack_size);
#else
    (void)from_dying;
#endif
#if defined(M2P_TSAN)
    __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
#if defined(__x86_64__)
    void* ret = m2p_ctx_switch(&from.sp, to.sp, arg);
#else
    t_xfer_arg = arg;
    swapcontext(static_cast<ucontext_t*>(from.sp), static_cast<ucontext_t*>(to.sp));
    void* ret = t_xfer_arg;  // written by whoever resumed us
#endif
#if defined(M2P_ASAN)
    // We are back on `from`; restore its fake stack.
    __sanitizer_finish_switch_fiber(from.fake_stack, nullptr, nullptr);
#endif
    return ret;
}

}  // namespace m2p::simmpi::sched

#if defined(__x86_64__)
extern "C" void m2p_fiber_entry(void* f) {
    m2p::simmpi::sched::Fiber::entry(static_cast<m2p::simmpi::sched::Fiber*>(f));
}
#endif
