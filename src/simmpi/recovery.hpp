// ULFM-style recovery plane: the state and protocol notes behind
// MPI_Comm_revoke / MPI_Comm_shrink / MPI_Comm_agree (recovery.cpp).
//
// The design in three rules:
//
//  1. Revocation is a latch, not a message.  MPI_Comm_revoke sets one
//     atomic flag on the communicator and broadcasts a scheduler
//     wakeup (World::revoke_comm -> Scheduler::unpark_all_parked, the
//     same fan-out record_death uses).  Every liveness-checked wait
//     predicate in the transport -- pt2pt, internal collectives, RMA
//     fences/exposure/locks, MPI-IO barriers -- also tests the flag,
//     so parked fibers fail out with MPI_ERR_REVOKED immediately; no
//     polling, no per-member revoke fan-out protocol.  The flag is
//     never cleared: a revoked communicator is dead forever, and the
//     survivors' path forward is MPI_Comm_shrink.
//
//  2. Agreement completes when the live members agree.  The agree /
//     shrink / split collectives all run the same rendezvous round
//     (FtRendezvous below): arrivals register under the round mutex,
//     and the round closes when every member of the communicator has
//     either arrived or -- for the fault-tolerant ops -- become
//     unreachable (dead or cleanly finished).  Deaths bump the world
//     death epoch and broadcast-unpark, so a round blocked on a rank
//     that just died re-evaluates its closing condition immediately.
//     The closing arriver publishes one uniform verdict (flag, return
//     code, result communicators), bumps the generation, and unparks
//     the collected waiters -- the targeted fan-out the internal
//     barrier uses, not a condition-variable herd.
//
//  3. Survivors rebuild, the tool re-plans.  MPI_Comm_shrink orders
//     the arrivals as in the parent communicator and creates a fresh
//     comm (fresh context ids, so stale traffic can never match);
//     completing a shrink on a world that holds epitaphs marks the
//     world Recovered, which the session layer surfaces as
//     RunOutcome::Recovered and the Performance Consultant answers by
//     re-testing truncated experiments over the survivor hierarchy.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "simmpi/sched.hpp"
#include "simmpi/types.hpp"

namespace m2p::simmpi {

/// Rendezvous state for one fault-tolerant collective class (agree /
/// shrink / split) on one communicator.  Collectives execute in
/// program order on every member, so one instance per op class per
/// comm never sees two concurrent rounds; published results of round
/// gen-1 stay stable until every reader of that round has returned
/// (a reader still parked cannot have joined the next round, and the
/// next round cannot close without it while it is live).
struct FtRendezvous {
    std::mutex mu;
    std::uint64_t gen = 0;
    std::vector<int> arrived;  ///< global ranks that joined this round
    /// Per-arrival payload, parallel to `arrived` (agree: {vote, 0};
    /// split: {color, key}).
    std::vector<std::array<int, 2>> votes;
    // Published outcome of round gen-1:
    int result_rc = MPI_SUCCESS;
    int result_flag = 0;  ///< agree: AND of every contributed vote
    /// shrink/split: result communicator per global rank; key -1 holds
    /// a single shared handle (shrink).  Absent key = MPI_COMM_NULL.
    std::map<int, Comm> result_comms;
    std::vector<std::shared_ptr<sched::WaitToken>> waiters;
};

}  // namespace m2p::simmpi
