// FaultPlan: a seeded, deterministic fault-injection schedule for one
// simmpi world.  The tool the paper describes must stay useful when
// the measured job misbehaves -- spawned children that never check
// in, daemons attached to dying processes -- so the simulated MPI
// grows a failure plane: a plan can kill a rank at its Nth MPI call,
// hang a rank inside a named call, drop or delay point-to-point
// envelopes, and fail MPI_Comm_spawn.  The plan is installed in
// World::Config before launch and queried at the dispatch boundary
// (rank.cpp trampolines, send paths, World::do_spawn).
//
// Determinism: builders run before launch; during the run the spec
// list is immutable and only per-spec atomic counters advance, so the
// same plan over the same program replays the same faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

namespace m2p::simmpi {

/// How and where a rank died.  One row of the world's epitaph table;
/// liveness checks consult the table so a dead peer turns a blocking
/// wait into an error return instead of a deadlock.
struct Epitaph {
    enum class Cause {
        Killed,     ///< fault plan killed the rank at its Nth MPI call
        Hung,       ///< fault plan wedged the rank inside a named call
        Aborted,    ///< the rank called MPI_Abort
        Poisoned,   ///< the rank unwound after another rank aborted / a fatal error
        Exception,  ///< the program threw something else
    };
    int global_rank = -1;
    Cause cause = Cause::Killed;
    std::string detail;     ///< human explanation ("killed at call 17", what())
    std::string last_call;  ///< MPI entry point the rank was last seen in
    std::uint64_t calls_made = 0;
};

const char* cause_name(Epitaph::Cause c);

/// Thrown through a rank's user program to unwind its thread back to
/// World::start_proc, which records the epitaph.  Not derived from
/// std::exception on purpose: a user program's catch (std::exception&)
/// must not swallow a kill.
struct RankKilled {
    Epitaph::Cause cause = Epitaph::Cause::Killed;
    std::string detail;
    bool recorded = false;  ///< epitaph already in the world's table
};

class FaultPlan {
public:
    struct CallAction {
        enum class Kind { None, Kill, Hang } kind = Kind::None;
        double hang_seconds = 0.0;
        std::uint64_t nth = 0;  ///< which call matched (for the epitaph detail)
    };
    struct MessageAction {
        bool drop = false;
        double delay_seconds = 0.0;
    };

    // -- Builders (call before the world launches) -----------------------
    /// Kill @p global_rank when it makes its @p nth_call'th MPI call
    /// (1-based, counted at the MPI_* dispatch boundary).
    FaultPlan& kill_at_call(int global_rank, std::uint64_t nth_call);
    /// Wedge @p global_rank the first time it enters the named MPI call
    /// (e.g. "MPI_Barrier") for @p seconds, then kill it.  The rank is
    /// marked dead *before* the wedge so peers unwedge via the liveness
    /// check, not by waiting out the hang.
    FaultPlan& hang_in_call(int global_rank, std::string call_name, double seconds);
    /// Silently discard the @p nth_match'th point-to-point envelope from
    /// @p src_global to @p dest_global (1-based; user traffic only, the
    /// internal collective side channel is never lossy).
    FaultPlan& drop_message(int src_global, int dest_global, std::uint64_t nth_match = 1);
    /// Delay the matching envelope by @p seconds before it is queued.
    FaultPlan& delay_message(int src_global, int dest_global, std::uint64_t nth_match,
                             double seconds);
    /// Fail the @p nth_spawn'th MPI_Comm_spawn world-wide (1-based):
    /// World::do_spawn returns MPI_COMM_NULL and every member of the
    /// spawning communicator sees MPI_ERR_SPAWN.
    FaultPlan& fail_spawn(std::uint64_t nth_spawn = 1);

    /// A seeded pseudo-random plan for chaos testing: kills one
    /// non-zero rank at a random call depth and makes a few envelope
    /// flows lossy/laggy.  Same seed + same nranks => same plan.
    static std::shared_ptr<FaultPlan> chaos(std::uint64_t seed, int nranks);

    // -- Queries (hot path; thread-safe after launch) ---------------------
    /// Consulted once per MPI_* dispatch.  @p call_index is the rank's
    /// 1-based running call count.
    CallAction on_call(int global_rank, const char* call_name, std::uint64_t call_index);
    /// Consulted once per user point-to-point envelope, on the send side.
    MessageAction on_message(int src_global, int dest_global);
    /// Consulted by the spawn root inside World::do_spawn.  Returns
    /// true when this spawn must fail.
    bool on_spawn();

    /// Fast gates so fault-free hot paths pay one relaxed load.
    bool has_call_faults() const { return has_call_faults_.load(std::memory_order_relaxed); }
    bool has_message_faults() const {
        return has_message_faults_.load(std::memory_order_relaxed);
    }

private:
    struct Spec {
        enum class Kind { KillAtCall, HangInCall, DropMessage, DelayMessage, FailSpawn };
        Kind kind = Kind::KillAtCall;
        int rank = -1;   ///< victim (kill/hang) or envelope source
        int dest = -1;   ///< envelope destination
        std::uint64_t nth = 1;
        std::string call;       ///< named call for HangInCall
        double seconds = 0.0;   ///< hang / delay duration
        std::atomic<bool> fired{false};
        std::atomic<std::uint64_t> matched{0};  ///< envelopes seen so far
    };

    Spec& add(Spec::Kind kind);

    std::deque<Spec> specs_;  ///< deque: specs hold atomics, never relocate
    std::atomic<std::uint64_t> spawns_{0};
    std::atomic<bool> has_call_faults_{false};
    std::atomic<bool> has_message_faults_{false};
};

}  // namespace m2p::simmpi
