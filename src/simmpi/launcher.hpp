// mpirun-style launcher.
//
// The paper's MPI-1 enhancements (section 4.1) are mostly about how
// Paradyn starts MPI processes: parsing MPICH's -m/-wdir arguments for
// non-shared filesystems, and supporting LAM's richer process-placement
// notations ("-np n", "N", "nR[,R]*", "C", "cR[,R]*", and mixtures).
// This launcher implements both dialects against the simulated node
// pool and is what the tool uses to create application processes
// directly (the paper removed Paradyn's intermediate mpirun script for
// the same reason).
#pragma once

#include <string>
#include <vector>

#include "simmpi/world.hpp"

namespace m2p::simmpi {

struct Node {
    std::string name;
    int cpus = 1;
};

/// Result of parsing an mpirun command line: one node name per MPI
/// process, in rank order.
struct LaunchPlan {
    std::vector<std::string> placements;
    std::string wdir;  ///< MPICH -wdir working directory
    bool ok = true;
    std::string error;
};

/// Parses a lamboot/MPICH machine file.  Lines look like
///   node0 cpu=2
///   node1
/// with '#' comments; MPICH's "host:ncpus" form is also accepted.
std::vector<Node> parse_machinefile(const std::string& content);

/// LAM mpirun placement: -np n (first n processors), N (one per
/// node), nR[,R]* (listed nodes), C (one per processor), cR[,R]*
/// (listed processors), and mixtures of node and processor specs.
LaunchPlan plan_lam(const std::vector<Node>& nodes, const std::vector<std::string>& args);

/// MPICH mpirun placement: -np n round-robin over the -m machine
/// file's processors; -wdir records the working directory (non-shared
/// filesystem support).
LaunchPlan plan_mpich(const std::vector<Node>& nodes,
                      const std::vector<std::string>& args);

/// Creates and starts MPI processes per @p plan.  All processes run
/// @p command (which must be registered with the world) and share a
/// fresh MPI_COMM_WORLD.  Returns their global ranks.
std::vector<int> launch(World& world, const std::string& command,
                        const std::vector<std::string>& argv, const LaunchPlan& plan);

}  // namespace m2p::simmpi
