// Rank: the per-process (per-thread) MPI interface.
//
// Every MPI_X method is a thin instrumented trampoline around the
// matching PMPI_X method, reproducing the MPI profiling interface the
// paper relies on (section 4.1.1): the tool can instrument either
// symbol, and a "profiling library" (ProfilingLayer) can interpose on
// MPI_Comm_spawn / MPI_Init exactly as the paper's intercept method
// does.  Argument layouts visible to instrumentation snippets follow
// the C MPI bindings, so MDL code like `MPI_Type_size($arg[2], ...)`
// and `DYNINSTWindow_FindUniqueId($arg[7])` works as in the paper's
// Figure 2.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simmpi/types.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {

class Rank {
public:
    Rank(World& world, int global_rank);
    Rank(const Rank&) = delete;
    Rank& operator=(const Rank&) = delete;

    World& world() { return world_; }
    int global_rank() const { return global_; }
    /// This process's MPI_COMM_WORLD (its own world for spawned children).
    Comm MPI_COMM_WORLD() const;

    // ---- Environment -----------------------------------------------------
    int MPI_Init();
    /// MPI-2 thread support: simmpi's engine is fully thread-safe, so
    /// every requested level up to MPI_THREAD_MULTIPLE is granted.
    int MPI_Init_thread(int required, int* provided);
    int MPI_Query_thread(int* provided) const;
    int MPI_Finalize();
    /// Terminates the whole job: poisons the world (every rank unwinds
    /// at its next MPI call or liveness-checked wait) and unwinds this
    /// rank.  Never returns.
    int MPI_Abort(Comm c, int errorcode);
    int PMPI_Abort(Comm c, int errorcode);
    /// Per-communicator error handler for *fault-class* errors (dead
    /// peer, failed collective): MPI_ERRORS_ARE_FATAL or
    /// MPI_ERRORS_RETURN.  Argument-validation errors always return.
    int MPI_Comm_set_errhandler(Comm c, int errhandler);
    int MPI_Comm_get_errhandler(Comm c, int* errhandler);
    bool initialized() const { return initialized_; }
    double MPI_Wtime() const;
    int MPI_Get_processor_name(std::string* name) const;
    int MPI_Type_size(Datatype dt, int* size) const;
    int MPI_Get_count(const Status* st, Datatype dt, int* count) const;

    // ---- Communicator / group queries -------------------------------------
    int MPI_Comm_size(Comm c, int* size);
    int MPI_Comm_rank(Comm c, int* rank);
    int MPI_Comm_remote_size(Comm c, int* size);
    int MPI_Comm_dup(Comm c, Comm* out);
    /// Partitions @p c by @p color (MPI_UNDEFINED opts out), ordering
    /// each result communicator by (key, rank in c).  Collective.
    int MPI_Comm_split(Comm c, int color, int key, Comm* out);
    int MPI_Comm_free(Comm* c);

    // ---- ULFM-style recovery (recovery.cpp) --------------------------------
    /// Revokes @p c: every pending and future operation on it -- on
    /// every member -- fails with MPI_ERR_REVOKED.  Parked waiters are
    /// woken by broadcast, not polled out.  Idempotent, not collective.
    int MPI_Comm_revoke(Comm c);
    /// Survivors of @p c (revoked or not) collectively build a fresh
    /// communicator from the live membership, ordered as in @p c.
    int MPI_Comm_shrink(Comm c, Comm* newcomm);
    /// Fault-tolerant agreement: returns the bitwise AND of every
    /// contributed *flag.  Completes even when members die mid-vote;
    /// all participants get the same flag, and the uniform return code
    /// is MPI_ERR_PROC_FAILED when any member could not contribute.
    int MPI_Comm_agree(Comm c, int* flag);
    /// Snapshots the currently-known failed members of @p c (local op).
    int MPI_Comm_failure_ack(Comm c);
    /// Returns the group of members acknowledged by the last
    /// MPI_Comm_failure_ack on this rank (empty if never acked).
    int MPI_Comm_get_acked(Comm c, Group* g);
    int MPI_Comm_group(Comm c, Group* g);
    int MPI_Group_incl(Group g, int n, const int* ranks, Group* out);
    int MPI_Group_size(Group g, int* size);
    int MPI_Group_free(Group* g);

    // ---- Point-to-point ----------------------------------------------------
    int MPI_Send(const void* buf, int count, Datatype dt, int dest, int tag, Comm c);
    /// Synchronous send: always rendezvous -- completes only when the
    /// receive has started, regardless of message size.
    int MPI_Ssend(const void* buf, int count, Datatype dt, int dest, int tag, Comm c);
    int MPI_Recv(void* buf, int count, Datatype dt, int src, int tag, Comm c, Status* st);
    int MPI_Isend(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                  Request* req);
    int MPI_Irecv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                  Request* req);
    int MPI_Wait(Request* req, Status* st);
    int MPI_Waitall(int n, Request* reqs, Status* sts);
    int MPI_Sendrecv(const void* sbuf, int scount, Datatype sdt, int dest, int stag,
                     void* rbuf, int rcount, Datatype rdt, int src, int rtag, Comm c,
                     Status* st);
    /// Blocks until a matching message is available (without
    /// receiving it); fills @p st with its envelope.
    int MPI_Probe(int src, int tag, Comm c, Status* st);
    /// Non-blocking match check: sets *flag and fills @p st on a hit.
    int MPI_Iprobe(int src, int tag, Comm c, int* flag, Status* st);

    // ---- Collectives -------------------------------------------------------
    int MPI_Barrier(Comm c);
    int MPI_Bcast(void* buf, int count, Datatype dt, int root, Comm c);
    int MPI_Reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, int root,
                   Comm c);
    int MPI_Allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, Comm c);
    int MPI_Gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                   Datatype rdt, int root, Comm c);
    int MPI_Scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                    Datatype rdt, int root, Comm c);
    int MPI_Allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                      int rcount, Datatype rdt, Comm c);

    // ---- MPI-2: one-sided communication ------------------------------------
    int MPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info, Comm c,
                       Win* win);
    int MPI_Win_free(Win* win);
    int MPI_Win_fence(int assert, Win win);
    int MPI_Win_start(Group g, int assert, Win win);
    int MPI_Win_complete(Win win);
    int MPI_Win_post(Group g, int assert, Win win);
    int MPI_Win_wait(Win win);
    int MPI_Win_lock(int lock_type, int rank, int assert, Win win);
    int MPI_Win_unlock(int rank, Win win);
    int MPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                std::int64_t tdisp, int tcount, Datatype tdt, Win win);
    int MPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                int tcount, Datatype tdt, Win win);
    int MPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                       std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win);

    // ---- MPI-2: dynamic process creation ------------------------------------
    int MPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                       int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                       std::vector<int>* errcodes);
    int MPI_Comm_get_parent(Comm* parent);
    /// Merges an intercommunicator into an intracommunicator spanning
    /// both groups (@p high orders the local group after the remote).
    int MPI_Intercomm_merge(Comm intercomm, bool high, Comm* intracomm);

    // ---- MPI-2: object naming ------------------------------------------------
    int MPI_Comm_set_name(Comm c, const std::string& name);
    int MPI_Comm_get_name(Comm c, std::string* name);
    int MPI_Win_set_name(Win w, const std::string& name);
    int MPI_Win_get_name(Win w, std::string* name);
    /// Datatype naming -- the third MPI-2 naming target the paper
    /// lists (windows and communicators were implemented; datatypes
    /// are this reproduction's extension).
    int MPI_Type_set_name(Datatype dt, const std::string& name);
    int MPI_Type_get_name(Datatype dt, std::string* name);

    // ---- MPI-2: parallel file I/O (MPI-I/O) ---------------------------------
    // "File I/O has traditionally been a performance bottleneck ...
    // MPI programmers can improve performance by utilizing the
    // parallel file I/O operations included in MPI-2" (paper sec. 3).
    int MPI_File_open(Comm c, const std::string& filename, int amode, Info info,
                      File* fh);
    int MPI_File_close(File* fh);
    int MPI_File_delete(const std::string& filename, Info info);
    int MPI_File_read(File fh, void* buf, int count, Datatype dt, Status* st);
    int MPI_File_write(File fh, const void* buf, int count, Datatype dt, Status* st);
    int MPI_File_read_at(File fh, std::int64_t offset, void* buf, int count,
                         Datatype dt, Status* st);
    int MPI_File_write_at(File fh, std::int64_t offset, const void* buf, int count,
                          Datatype dt, Status* st);
    /// Collective variants: every process of the file's communicator
    /// participates (the synchronization cost a performance tool must
    /// expose when one process is late).
    int MPI_File_read_all(File fh, void* buf, int count, Datatype dt, Status* st);
    int MPI_File_write_all(File fh, const void* buf, int count, Datatype dt,
                           Status* st);
    /// Shared-file-pointer access: all processes advance one pointer
    /// (ordering between concurrent callers is unspecified, as in the
    /// standard's non-collective shared-pointer routines).
    int MPI_File_read_shared(File fh, void* buf, int count, Datatype dt, Status* st);
    int MPI_File_write_shared(File fh, const void* buf, int count, Datatype dt,
                              Status* st);
    int MPI_File_seek(File fh, std::int64_t offset, int whence);
    int MPI_File_get_position(File fh, std::int64_t* offset);
    int MPI_File_get_size(File fh, std::int64_t* size);
    int MPI_File_sync(File fh);
    /// Contiguous file view: subsequent offsets/pointers are in units
    /// of @p etype starting at byte @p disp (collective; resets the
    /// individual and shared pointers, as the standard requires).
    int MPI_File_set_view(File fh, std::int64_t disp, Datatype etype, Info info);
    int MPI_File_get_view(File fh, std::int64_t* disp, Datatype* etype);
    /// Returns a fresh Info with the hints in effect for the file.
    int MPI_File_get_info(File fh, Info* info_out);

    int PMPI_File_open(Comm c, const std::string& filename, int amode, Info info,
                       File* fh);
    int PMPI_File_close(File* fh);
    int PMPI_File_delete(const std::string& filename, Info info);
    int PMPI_File_read(File fh, void* buf, int count, Datatype dt, Status* st);
    int PMPI_File_write(File fh, const void* buf, int count, Datatype dt, Status* st);
    int PMPI_File_read_at(File fh, std::int64_t offset, void* buf, int count,
                          Datatype dt, Status* st);
    int PMPI_File_write_at(File fh, std::int64_t offset, const void* buf, int count,
                           Datatype dt, Status* st);
    int PMPI_File_read_all(File fh, void* buf, int count, Datatype dt, Status* st);
    int PMPI_File_write_all(File fh, const void* buf, int count, Datatype dt,
                            Status* st);
    int PMPI_File_seek(File fh, std::int64_t offset, int whence);
    int PMPI_File_sync(File fh);

    // ---- MPI-2: info objects ---------------------------------------------------
    int MPI_Info_create(Info* info);
    int MPI_Info_set(Info info, const std::string& key, const std::string& value);
    int MPI_Info_free(Info* info);

    // ---- Profiling (PMPI) entry points ------------------------------------
    int PMPI_Init();
    int PMPI_Finalize();
    int PMPI_Send(const void* buf, int count, Datatype dt, int dest, int tag, Comm c);
    int PMPI_Recv(void* buf, int count, Datatype dt, int src, int tag, Comm c, Status* st);
    int PMPI_Isend(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                   Request* req);
    int PMPI_Irecv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                   Request* req);
    int PMPI_Wait(Request* req, Status* st);
    int PMPI_Waitall(int n, Request* reqs, Status* sts);
    int PMPI_Sendrecv(const void* sbuf, int scount, Datatype sdt, int dest, int stag,
                      void* rbuf, int rcount, Datatype rdt, int src, int rtag, Comm c,
                      Status* st);
    int PMPI_Barrier(Comm c);
    int PMPI_Bcast(void* buf, int count, Datatype dt, int root, Comm c);
    int PMPI_Reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, int root,
                    Comm c);
    int PMPI_Allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op,
                       Comm c);
    int PMPI_Gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                    Datatype rdt, int root, Comm c);
    int PMPI_Scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                     Datatype rdt, int root, Comm c);
    int PMPI_Allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                       int rcount, Datatype rdt, Comm c);
    int PMPI_Win_create(void* base, std::int64_t size, int disp_unit, Info info, Comm c,
                        Win* win);
    int PMPI_Win_free(Win* win);
    int PMPI_Win_fence(int assert, Win win);
    int PMPI_Win_start(Group g, int assert, Win win);
    int PMPI_Win_complete(Win win);
    int PMPI_Win_post(Group g, int assert, Win win);
    int PMPI_Win_wait(Win win);
    int PMPI_Win_lock(int lock_type, int rank, int assert, Win win);
    int PMPI_Win_unlock(int rank, Win win);
    int PMPI_Put(const void* oaddr, int ocount, Datatype odt, int trank,
                 std::int64_t tdisp, int tcount, Datatype tdt, Win win);
    int PMPI_Get(void* oaddr, int ocount, Datatype odt, int trank, std::int64_t tdisp,
                 int tcount, Datatype tdt, Win win);
    int PMPI_Accumulate(const void* oaddr, int ocount, Datatype odt, int trank,
                        std::int64_t tdisp, int tcount, Datatype tdt, Op op, Win win);
    int PMPI_Comm_spawn(const std::string& command, const std::vector<std::string>& argv,
                        int maxprocs, Info info, int root, Comm c, Comm* intercomm,
                        std::vector<int>* errcodes);
    int PMPI_Comm_get_parent(Comm* parent);
    int PMPI_Comm_set_name(Comm c, const std::string& name);
    int PMPI_Win_set_name(Win w, const std::string& name);

private:
    // Local/remote rank translation.  For intercommunicators, point-to-
    // point destination ranks address the *remote* group.
    int my_rank_in(const CommData& c) const;
    const std::vector<int>& dest_group(const CommData& c) const;
    int check_pt2pt(const CommData& c, int count, Datatype dt, int peer, int tag,
                    bool is_send) const;

    // ---- Fault plane -------------------------------------------------------
    /// Dispatch-boundary hook, called at every MPI_* trampoline: records
    /// the breadcrumb (last call + call count) used in epitaphs and
    /// watchdog dumps, unwinds if the world is poisoned, and applies the
    /// FaultPlan's kill/hang actions for this rank.
    void fault_point(const char* name);
    /// Applies @p c's error handler to fault-class error @p code:
    /// ERRORS_ARE_FATAL poisons the world and unwinds; ERRORS_RETURN
    /// returns @p code for the caller to propagate.
    int comm_error(Comm c, int code);
    /// Throws RankKilled if the world has been poisoned (MPI_Abort or a
    /// fatal error elsewhere), so blocked ranks unwind promptly.
    void check_poisoned() const;
    /// Deadline for liveness-checked waits (Config::wait_deadline_seconds
    /// from now): the backstop for wedges no death explains, e.g. a cycle
    /// caused by a dropped message.
    std::chrono::steady_clock::time_point wait_deadline() const;

    enum class SendMode {
        Standard,     ///< eager below the limit, rendezvous above
        ForceEager,   ///< always buffered (collectives: deadlock-free)
        Synchronous,  ///< always rendezvous (MPI_Ssend)
    };
    /// Blocking send body.
    int send_body(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                  SendMode mode);
    int recv_body(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                  Status* st, std::int64_t context_offset = 0);
    int probe_body(int src, int tag, Comm c, int* flag, Status* st, bool blocking);
    /// Internal collective side-channel (uninstrumented, force-eager,
    /// separate context so user messages can never match).  The bool-
    /// returning ops report false when the collective cannot complete
    /// because a member of @p c died (callers turn that into
    /// comm_error(c, MPI_ERR_PROC_FAILED) so survivors fail alike).
    void internal_send(const void* buf, int bytes, int dest_cr, int tag, CommData& c);
    bool internal_recv(void* buf, int bytes, int src_cr, int tag, CommData& c);
    bool barrier_internal(CommData& c);
    int next_coll_tag(Comm c);
    void reduce_combine(void* acc, const void* in, int count, Datatype dt, Op op) const;
    // Binomial-tree data movement on the collective side-channel
    // (Config::coll_algo selects these or the flat legacy loops).
    bool coll_bcast_tree(void* buf, int bytes, int root_cr, int tag, CommData& c);
    /// Gathers @p block bytes per rank into @p rbuf (rank order) at
    /// @p root_cr; other ranks pass rbuf = nullptr.
    bool coll_gather_tree(const void* sbuf, void* rbuf, int block, int root_cr, int tag,
                          CommData& c);
    bool coll_scatter_tree(const void* sbuf, void* rbuf, int block, int root_cr, int tag,
                           CommData& c);
    /// Node-aware allreduce: same-node ranks fold through the comm's
    /// ShmCombineCell; node leaders run a binomial exchange across
    /// nodes and publish the result back through the cells.
    bool coll_allreduce_tree(const void* sbuf, void* rbuf, int count, Datatype dt,
                             Op op, int bytes, int tag, CommData& c);

    /// RAII collective span: CollBegin in the ctor, CollEnd at scope
    /// exit -- so a rank that unwinds mid-collective (fault, poison)
    /// still closes its span and the postmortem shows where it was.
    /// @p algo is the shape actually used: 0 flat star, 1 binomial tree.
    class CollScope {
    public:
        CollScope(Rank& r, const char* name, Comm c, std::int64_t bytes, int algo);
        ~CollScope();
        CollScope(const CollScope&) = delete;
        CollScope& operator=(const CollScope&) = delete;

    private:
        Rank& r_;
        const char* name_;
        Comm c_;
        int algo_;
    };

    // ---- Recovery plane (recovery.cpp) -------------------------------------
    /// True when @p cd has been revoked (relaxed load; never cleared).
    static bool comm_revoked(const CommData& cd) {
        return cd.revoked.load(std::memory_order_relaxed);
    }
    /// The uniform failure code for a collective that cannot complete
    /// on @p cd: MPI_ERR_REVOKED once the comm is revoked, else
    /// MPI_ERR_PROC_FAILED (a member died).
    static int coll_fail_code(const CommData& cd) {
        return comm_revoked(cd) ? MPI_ERR_REVOKED : MPI_ERR_PROC_FAILED;
    }
    /// One rendezvous round over @p rv: blocks until every member of
    /// @p cd has arrived (with @p excuse_dead, dead/finished members
    /// are excused -- the agree/shrink fault-tolerance rule; without
    /// it a dead member dooms the round -- the split rule), then the
    /// closing arriver runs @p close_round under rv.mu to publish the
    /// uniform verdict and unparks the rest.  Returns the published
    /// rc; *out_flag / *out_comm (either may be null) receive this
    /// member's published flag / communicator.
    int ft_rendezvous(Comm c, CommData& cd, FtRendezvous& rv,
                      std::array<int, 2> vote, bool excuse_dead,
                      void (Rank::*close_round)(CommData&, FtRendezvous&),
                      int* out_flag, Comm* out_comm);
    /// Round closers (run once, by the arriver that completes the
    /// round, under rv.mu): publish per-member results into rv.
    void close_agree(CommData& cd, FtRendezvous& rv);
    void close_shrink(CommData& cd, FtRendezvous& rv);
    void close_split(CommData& cd, FtRendezvous& rv);

    int wait_one(RequestData& rd, Status* st);
    /// Shared body of the read/write family.  @p at_offset < 0 means
    /// "use (and advance) the individual file pointer".  @p op names
    /// the user-level call (a string literal) for the flight recorder's
    /// Io event.
    int file_transfer(File fh, const char* op, std::int64_t at_offset, void* rbuf,
                      const void* wbuf, int count, Datatype dt, Status* st,
                      bool collective);
    /// Charges the simulated filesystem cost for an @p bytes transfer.
    void file_io_cost(std::int64_t bytes);

    // ---- RMA data plane ----------------------------------------------------
    int rma_check(const WinData& w, int ocount, Datatype odt, int trank,
                  std::int64_t tdisp, int tcount, Datatype tdt) const;
    /// Executes (or, for Mpich start epochs, stages) one Put/Get/
    /// Accumulate against @p trank's shard.  Immediate ops are
    /// direct-apply: one memcpy between the user buffer and the target
    /// window memory under that shard's mutex, no staging copy.
    int rma_run_op(Win win, WinData& w, PendingRmaOp::Kind kind, const void* src,
                   void* dst, int trank, std::int64_t tdisp, Datatype dt, Op op,
                   std::int64_t nbytes);
    /// Blocks until @p target's exposure epoch admits this origin,
    /// then records the origin in its started set.  Token-parked with
    /// the PR 3 liveness contract.
    int rma_wait_exposure(WinData& w, WinShard& sh, int target);
    /// Thread-local Table-1 staging for one window: ops bump these
    /// plain fields; sync calls flush them to WinCounters.
    struct RmaStage {
        std::int64_t put_ops = 0, get_ops = 0, acc_ops = 0;
        std::int64_t put_bytes = 0, get_bytes = 0, acc_bytes = 0;
    };
    /// RAII sync-call epilogue (defined in rank_rma.cpp): times the
    /// call and flushes the staged counters on destruction.
    class RmaSyncScope;
    /// Flushes this rank's staged counters for @p win and charges one
    /// sync op plus @p wait_ns of sync wait (passive- or active-target
    /// bucket) to the window's tool-visible counters.  @p call names
    /// the synchronization call (a string literal) for the flight
    /// recorder's epoch-transition and op-batch events.
    void rma_sync_flush(Win win, const char* call, bool passive, std::int64_t wait_ns);
    /// Residual flush for windows never synchronized again before
    /// MPI_Finalize (counters must not lose trailing ops).
    void rma_flush_all_stages();
    /// Window memory is user memory -- on a fiber stack, it dies with
    /// the rank's unwind.  Called before every RankKilled throw (and
    /// from MPI_Finalize): clears has_member under each shard mutex so
    /// an in-flight direct apply finishes first and every later access
    /// gets MPI_ERR_PROC_FAILED instead of a dangling-base memcpy.
    void rma_detach_all() const;

    World& world_;
    int global_;
    bool initialized_ = false;
    bool finalized_ = false;
    int thread_level_ = MPI_THREAD_SINGLE;
    bool in_profiling_wrapper_ = false;
    std::map<Comm, int> coll_seq_;
    /// Active access epochs started with MPI_Win_start: target globals.
    std::map<Win, std::vector<int>> start_epochs_;
    /// Passive-target locks currently held: win -> target globals.
    std::map<Win, std::vector<int>> held_locks_;
    /// Per-window staged Table-1 counters (this rank's ops since its
    /// last sync call on that window).  Owned by the rank thread.
    std::map<Win, RmaStage> rma_stage_;
    /// Windows this rank populated a shard in (MPI_Win_create); what
    /// rma_detach_all walks.  Owned by the rank thread.
    std::vector<Win> member_wins_;
    /// MPI_Comm_failure_ack snapshots: comm -> failed members (global
    /// ranks) known at ack time.  Owned by the rank thread.
    std::map<Comm, std::vector<int>> acked_failures_;
};

}  // namespace m2p::simmpi
