// HandleTable: append-only chunked storage for simmpi handles.
//
// The same pattern the instrumentation registry uses for its function
// table (src/instr/registry.cpp): slots live in fixed-size chunks whose
// addresses never move, and the element count is published with a
// release store, so a handle lookup is one acquire load plus two
// indexed loads -- no lock anywhere on the lookup path.  This is what
// lets every MPI call resolve its communicator, mailbox, window, and
// request handles without funnelling through a global mutex.
//
// Handles are small dense integers.  @p Base is the value of the first
// handle: 0 for rank-indexed tables (procs, mailboxes), 1 for MPI-style
// handles where 0 and negative values mean "null"/"invalid".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>

namespace m2p::simmpi {

template <class T, std::int32_t Base = 1>
class HandleTable {
public:
    static constexpr std::size_t kChunkShift = 6;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;
    static constexpr std::size_t kMaxChunks = 4096;  ///< 256Ki slots

    HandleTable() = default;
    ~HandleTable() {
        for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
    }
    HandleTable(const HandleTable&) = delete;
    HandleTable& operator=(const HandleTable&) = delete;

    /// Appends one slot and returns its handle.  @p init runs on the
    /// slot before the handle is published, so lock-free readers never
    /// observe a half-initialized entry.  Appends serialize on an
    /// internal writer mutex; lookups are never blocked by them.
    template <class Init>
    std::int32_t append(Init&& init) {
        std::lock_guard lk(append_mu_);
        const std::uint32_t idx = count_.load(std::memory_order_relaxed);
        const std::size_t chunk = idx >> kChunkShift;
        if (chunk >= kMaxChunks) throw std::length_error("simmpi: handle table full");
        T* base = chunks_[chunk].load(std::memory_order_relaxed);
        if (!base) {
            base = new T[kChunkSize];
            chunks_[chunk].store(base, std::memory_order_release);
        }
        const std::int32_t handle = Base + static_cast<std::int32_t>(idx);
        init(base[idx & kChunkMask], handle);
        count_.store(idx + 1, std::memory_order_release);
        return handle;
    }

    /// Lock-free lookup; nullptr when the handle was never issued.
    /// (The chunk pointer may be read relaxed: it was stored before the
    /// count_ release that made this index visible.)
    T* find(std::int32_t h) const {
        const std::int64_t idx = static_cast<std::int64_t>(h) - Base;
        if (idx < 0 ||
            idx >= static_cast<std::int64_t>(count_.load(std::memory_order_acquire)))
            return nullptr;
        T* base = chunks_[static_cast<std::size_t>(idx) >> kChunkShift].load(
            std::memory_order_relaxed);
        return base + (static_cast<std::size_t>(idx) & kChunkMask);
    }

    /// Lookup that throws std::out_of_range (message @p what) on a
    /// handle that was never issued.
    T& at(std::int32_t h, const char* what) const {
        T* p = find(h);
        if (!p) throw std::out_of_range(what);
        return *p;
    }

    std::size_t size() const { return count_.load(std::memory_order_acquire); }

private:
    std::atomic<T*> chunks_[kMaxChunks]{};
    std::atomic<std::uint32_t> count_{0};
    std::mutex append_mu_;
};

}  // namespace m2p::simmpi
