// ULFM-style recovery collectives: MPI_Comm_revoke / shrink / agree /
// failure_ack / get_acked, plus MPI_Comm_split, which shares the
// group-based construction machinery shrink needs anyway.  Protocol
// notes live in recovery.hpp; the wait predicates that make a revoked
// communicator fail promptly are spread through rank.cpp / rank_rma.cpp
// / rank_io.cpp.
#include <algorithm>
#include <chrono>

#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"

namespace m2p::simmpi {

namespace {

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// The rendezvous round
// ---------------------------------------------------------------------------

int Rank::ft_rendezvous(Comm c, CommData& cd, FtRendezvous& rv,
                        std::array<int, 2> vote, bool excuse_dead,
                        void (Rank::*close_round)(CommData&, FtRendezvous&),
                        int* out_flag, Comm* out_comm) {
    const auto deadline = wait_deadline();
    std::unique_lock lk(rv.mu);
    const std::uint64_t gen = rv.gen;
    rv.arrived.push_back(global_);
    rv.votes.push_back(vote);

    // The round closes when every member has arrived or -- for the
    // fault-tolerant ops -- will never arrive.  Monotone in deaths, so
    // re-evaluating on each death broadcast converges.
    const auto complete = [&]() -> bool {
        for (int g : cd.group) {
            if (contains(rv.arrived, g)) continue;
            if (excuse_dead && world_.rank_unreachable(g)) continue;
            return false;
        }
        return true;
    };
    // Published results are read under rv.mu; see recovery.hpp for why
    // they remain stable until every reader of this round returned.
    const auto read_result = [&]() -> int {
        if (out_flag) *out_flag = rv.result_flag;
        if (out_comm) {
            auto it = rv.result_comms.find(global_);
            if (it == rv.result_comms.end()) it = rv.result_comms.find(-1);
            *out_comm = it == rv.result_comms.end() ? MPI_COMM_NULL : it->second;
        }
        return rv.result_rc;
    };
    const auto close_now = [&]() -> int {
        (this->*close_round)(cd, rv);
        rv.arrived.clear();
        rv.votes.clear();
        ++rv.gen;
        std::vector<std::shared_ptr<sched::WaitToken>> waiters;
        waiters.swap(rv.waiters);
        const int rc = read_result();
        lk.unlock();
        for (const auto& t : waiters) t->unpark();
        return rc;
    };

    if (complete()) return close_now();

    const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
    while (rv.gen == gen) {
        rv.waiters.push_back(tok);
        lk.unlock();
        tok->park_until(deadline);
        lk.lock();
        auto& v = rv.waiters;
        v.erase(std::remove(v.begin(), v.end(), tok), v.end());
        if (rv.gen != gen) break;
        if (complete()) return close_now();
        // The fault-tolerant ops are doomed only by poison or the wait
        // deadline (deaths *help* them close); split is additionally
        // doomed by revocation or a dead member, like any collective.
        const bool doomed =
            world_.poisoned() ||
            std::chrono::steady_clock::now() >= deadline ||
            (!excuse_dead &&
             (comm_revoked(cd) ||
              (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))));
        if (doomed) {
            // Withdraw this arrival so a later round over the
            // survivors is not off by one.
            const auto it = std::find(rv.arrived.begin(), rv.arrived.end(), global_);
            if (it != rv.arrived.end()) {
                rv.votes.erase(rv.votes.begin() + (it - rv.arrived.begin()));
                rv.arrived.erase(it);
            }
            lk.unlock();
            check_poisoned();
            return comm_error(c, excuse_dead ? MPI_ERR_OTHER : coll_fail_code(cd));
        }
    }
    return read_result();
}

// ---------------------------------------------------------------------------
// Round closers (run under rv.mu by the closing arriver)
// ---------------------------------------------------------------------------

void Rank::close_agree(CommData& cd, FtRendezvous& rv) {
    int acc = ~0;
    for (const auto& v : rv.votes) acc &= v[0];
    bool full = true;
    for (int g : cd.group) {
        if (!contains(rv.arrived, g)) {
            full = false;
            break;
        }
    }
    rv.result_flag = acc;
    // The verdict is uniform: either everyone contributed, or every
    // participant learns (via the same code) that someone could not.
    rv.result_rc = full ? MPI_SUCCESS : MPI_ERR_PROC_FAILED;
    rv.result_comms.clear();
    world_.trace_event(trace::EventKind::Agree, global_, "MPI_Comm_agree", cd.handle,
                       acc, rv.result_rc);
}

void Rank::close_shrink(CommData& cd, FtRendezvous& rv) {
    // Survivors keep their relative order from the parent comm; the
    // fresh handle gets fresh context ids, so traffic wedged on the
    // revoked parent can never match operations on the child.
    std::vector<int> survivors;
    for (int g : cd.group)
        if (contains(rv.arrived, g)) survivors.push_back(g);
    const Comm fresh = world_.create_comm(survivors);
    world_.comm(fresh).errhandler.store(cd.errhandler.load(std::memory_order_acquire),
                                        std::memory_order_release);
    rv.result_comms.clear();
    rv.result_comms[-1] = fresh;
    rv.result_flag = static_cast<int>(survivors.size());
    rv.result_rc = MPI_SUCCESS;
    world_.trace_event(trace::EventKind::Shrink, global_, "MPI_Comm_shrink", cd.handle,
                       fresh, static_cast<std::int64_t>(survivors.size()));
    // A completed shrink on a world that lost ranks is the definition
    // of recovery: survivors rebuilt and kept going.
    world_.mark_recovered();
}

void Rank::close_split(CommData& cd, FtRendezvous& rv) {
    struct Entry {
        int color, key, cr, global;
    };
    std::vector<Entry> es;
    es.reserve(rv.arrived.size());
    for (std::size_t i = 0; i < rv.arrived.size(); ++i) {
        const int g = rv.arrived[i];
        const auto pos = std::find(cd.group.begin(), cd.group.end(), g);
        const int cr = static_cast<int>(pos - cd.group.begin());
        es.push_back({rv.votes[i][0], rv.votes[i][1], cr, g});
    }
    std::sort(es.begin(), es.end(), [](const Entry& a, const Entry& b) {
        if (a.color != b.color) return a.color < b.color;
        if (a.key != b.key) return a.key < b.key;
        return a.cr < b.cr;  // ties broken by rank in the parent comm
    });
    rv.result_comms.clear();
    for (std::size_t i = 0; i < es.size();) {
        std::size_t j = i;
        while (j < es.size() && es[j].color == es[i].color) ++j;
        if (es[i].color != MPI_UNDEFINED) {
            std::vector<int> members;
            members.reserve(j - i);
            for (std::size_t k = i; k < j; ++k) members.push_back(es[k].global);
            const Comm fresh = world_.create_comm(members);
            world_.comm(fresh).errhandler.store(
                cd.errhandler.load(std::memory_order_acquire),
                std::memory_order_release);
            for (std::size_t k = i; k < j; ++k) rv.result_comms[es[k].global] = fresh;
        }
        i = j;
    }
    rv.result_flag = 0;
    rv.result_rc = MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// User-visible operations
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_revoke(Comm c) {
    fault_point("MPI_Comm_revoke");
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    world_.revoke_comm(c, global_);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_shrink(Comm c, Comm* newcomm) {
    fault_point("MPI_Comm_shrink");
    if (!newcomm) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    *newcomm = MPI_COMM_NULL;
    Comm out = MPI_COMM_NULL;
    const int rc = ft_rendezvous(c, cd, cd.shrink_rv, {0, 0}, /*excuse_dead=*/true,
                                 &Rank::close_shrink, nullptr, &out);
    if (rc != MPI_SUCCESS) return rc;
    *newcomm = out;
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_agree(Comm c, int* flag) {
    fault_point("MPI_Comm_agree");
    if (!flag) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    int out = *flag;
    const int rc = ft_rendezvous(c, cd, cd.agree_rv, {*flag, 0}, /*excuse_dead=*/true,
                                 &Rank::close_agree, &out, nullptr);
    *flag = out;
    // The uniform not-everyone-contributed verdict is fault-class:
    // route it through the communicator's error handler.
    if (rc == MPI_ERR_PROC_FAILED) return comm_error(c, rc);
    return rc;
}

int Rank::MPI_Comm_failure_ack(Comm c) {
    fault_point("MPI_Comm_failure_ack");
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    const CommData& cd = world_.comm(c);
    std::vector<int> dead;
    for (int g : cd.group)
        if (world_.rank_dead(g)) dead.push_back(g);
    acked_failures_[c] = std::move(dead);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_acked(Comm c, Group* g) {
    if (!g) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    const auto it = acked_failures_.find(c);
    *g = world_.create_group(it == acked_failures_.end() ? std::vector<int>{}
                                                         : it->second);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_split(Comm c, int color, int key, Comm* out) {
    fault_point("MPI_Comm_split");
    if (!out) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    if (color < 0 && color != MPI_UNDEFINED) return MPI_ERR_ARG;
    *out = MPI_COMM_NULL;
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    Comm fresh = MPI_COMM_NULL;
    const int rc = ft_rendezvous(c, cd, cd.split_rv, {color, key},
                                 /*excuse_dead=*/false, &Rank::close_split, nullptr,
                                 &fresh);
    if (rc != MPI_SUCCESS) return rc;
    *out = fresh;
    return MPI_SUCCESS;
}

}  // namespace m2p::simmpi
