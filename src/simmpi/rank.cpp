#include "simmpi/rank.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "simmpi/sched.hpp"
#include "util/clock.hpp"

namespace m2p::simmpi {

namespace {

// Tags at and above this value are reserved for library-internal
// traffic (the MPICH-flavor dissemination barrier, LAM-flavor fence
// tokens).  User tags must stay below it, as with real MPI tag bounds.
constexpr int kReservedTagBase = 1 << 28;

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

std::int64_t as_arg(const void* p) {
    return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(p));
}

// Blocking waits park on the context's WaitToken and are woken by a
// targeted unpark from whoever satisfied the condition, by the
// death/poison broadcast, or by the deadline sweeper; thread-mode
// tokens additionally self-cap at the legacy 5 ms liveness slice
// (DESIGN.md sections 9 and 12).  Every caller loops re-checking its
// predicate, so spurious wakeups are harmless.

// Park waiting for a message to land in @p mb (only the owning rank
// ever waits here, so a single waiter slot suffices).
void wait_for_msg(Mailbox& mb, std::unique_lock<std::mutex>& lk,
                  std::chrono::steady_clock::time_point deadline) {
    const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
    ++mb.msg_waiters;
    mb.msg_waiter = tok;
    lk.unlock();
    tok->park_until(deadline);
    lk.lock();
    if (mb.msg_waiter == tok) mb.msg_waiter.reset();
    --mb.msg_waiters;
}

// Park waiting for eager flow-control headroom in @p mb.  Many senders
// can be parked here at once, so each registers its own token.
void wait_for_space(Mailbox& mb, std::unique_lock<std::mutex>& lk,
                    std::chrono::steady_clock::time_point deadline) {
    const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
    mb.flow_stalls.fetch_add(1, std::memory_order_relaxed);
    ++mb.space_waiters;
    mb.space_tokens.push_back(tok);
    lk.unlock();
    tok->park_until(deadline);
    lk.lock();
    auto& v = mb.space_tokens;
    v.erase(std::remove(v.begin(), v.end(), tok), v.end());
    --mb.space_waiters;
}

}  // namespace

Rank::Rank(World& world, int global_rank) : world_(world), global_(global_rank) {}

Comm Rank::MPI_COMM_WORLD() const { return world_.proc(global_).comm_world; }

// ---------------------------------------------------------------------------
// Fault plane (DESIGN.md section 9)
// ---------------------------------------------------------------------------

void Rank::fault_point(const char* name) {
    // Cooperative fairness: every MPI call is a yield point, so a rank
    // busy-polling MPI_Iprobe cannot starve its peers on a small
    // worker pool (two relaxed loads when no other fiber is runnable).
    sched::maybe_yield();
    ProcData& p = world_.proc_data(global_);
    p.last_call.store(name, std::memory_order_relaxed);
    const std::uint64_t n = p.calls_made.fetch_add(1, std::memory_order_relaxed) + 1;
    check_poisoned();
    FaultPlan* plan = world_.config().faults.get();
    if (!plan || !plan->has_call_faults()) return;
    const FaultPlan::CallAction act = plan->on_call(global_, name, n);
    if (act.kind == FaultPlan::CallAction::Kind::Kill) {
        // name is the call-site string literal, so the ring may keep it.
        world_.trace_event(trace::EventKind::Fault, global_, name,
                           static_cast<std::int64_t>(n));
        // Before the unwind frees this rank's window memory: survivors
        // may be mid-memcpy through it (see rma_detach_all).
        rma_detach_all();
        throw RankKilled{Epitaph::Cause::Killed,
                         std::string("fault plan: killed in ") + name + " (call " +
                             std::to_string(n) + ")"};
    }
    if (act.kind == FaultPlan::CallAction::Kind::Hang) {
        world_.trace_event(trace::EventKind::Fault, global_, name,
                           static_cast<std::int64_t>(n));
        // A hung rank is dead to its peers from here on; detach its
        // window memory before publishing the death so no survivor
        // races an RMA apply against the eventual unwind.
        rma_detach_all();
        // Publish the death *before* wedging: peers unwedge via the
        // liveness checks immediately instead of waiting out the hang.
        Epitaph e;
        e.global_rank = global_;
        e.cause = Epitaph::Cause::Hung;
        e.detail = std::string("fault plan: hung in ") + name;
        e.last_call = name;
        e.calls_made = n;
        world_.record_death(std::move(e));
        sched::sleep_for(std::chrono::duration<double>(act.hang_seconds));
        throw RankKilled{Epitaph::Cause::Hung, {}, /*recorded=*/true};
    }
}

int Rank::comm_error(Comm c, int code) {
    int handler = world_.config().default_errhandler;
    if (world_.comm_valid(c))
        handler = world_.comm(c).errhandler.load(std::memory_order_relaxed);
    if (handler == MPI_ERRORS_ARE_FATAL) {
        world_.poison(code);
        rma_detach_all();
        throw RankKilled{Epitaph::Cause::Poisoned,
                         "MPI_ERRORS_ARE_FATAL: error " + std::to_string(code)};
    }
    return code;
}

void Rank::check_poisoned() const {
    if (!world_.poisoned()) return;
    rma_detach_all();
    throw RankKilled{Epitaph::Cause::Poisoned,
                     "world poisoned (code " + std::to_string(world_.poison_code()) +
                         ")"};
}

std::chrono::steady_clock::time_point Rank::wait_deadline() const {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(world_.config().wait_deadline_seconds));
}

// ---------------------------------------------------------------------------
// Rank / group translation helpers
// ---------------------------------------------------------------------------

int Rank::my_rank_in(const CommData& c) const {
    const auto it = std::find(c.group.begin(), c.group.end(), global_);
    if (it != c.group.end()) return static_cast<int>(it - c.group.begin());
    // Intercomm: we may be a member of the "remote" side; our local
    // group is then the remote_group vector.
    const auto it2 = std::find(c.remote_group.begin(), c.remote_group.end(), global_);
    if (it2 != c.remote_group.end()) return static_cast<int>(it2 - c.remote_group.begin());
    return MPI_UNDEFINED;
}

const std::vector<int>& Rank::dest_group(const CommData& c) const {
    if (!c.is_inter) return c.group;
    // Point-to-point on an intercommunicator addresses the other side.
    return contains(c.group, global_) ? c.remote_group : c.group;
}

int Rank::check_pt2pt(const CommData& c, int count, Datatype dt, int peer, int tag,
                      bool is_send) const {
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    if (tag != MPI_ANY_TAG && tag < 0) return MPI_ERR_TAG;
    if (is_send && tag == MPI_ANY_TAG) return MPI_ERR_TAG;
    if (peer == MPI_PROC_NULL) return MPI_SUCCESS;
    if (peer == MPI_ANY_SOURCE) return is_send ? MPI_ERR_RANK : MPI_SUCCESS;
    const auto& grp = dest_group(c);
    if (peer < 0 || static_cast<std::size_t>(peer) >= grp.size()) return MPI_ERR_RANK;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

int Rank::MPI_Init() {
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Init);
    fault_point("MPI_Init");
    const int rc = PMPI_Init();
    if (auto* layer = world_.profiling_layer()) layer->wrap_init(*this);
    return rc;
}

int Rank::PMPI_Init() {
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Init);
    if (initialized_) return MPI_ERR_OTHER;
    initialized_ = true;
    return MPI_SUCCESS;
}

int Rank::MPI_Init_thread(int required, int* provided) {
    if (!provided) return MPI_ERR_ARG;
    if (required < MPI_THREAD_SINGLE || required > MPI_THREAD_MULTIPLE)
        return MPI_ERR_ARG;
    const int rc = MPI_Init();
    if (rc != MPI_SUCCESS) return rc;
    // Ranks are threads of one address space and every internal
    // structure is lock-protected: MULTIPLE is always available.
    thread_level_ = required;
    *provided = required;
    return MPI_SUCCESS;
}

int Rank::MPI_Query_thread(int* provided) const {
    if (!provided) return MPI_ERR_ARG;
    *provided = thread_level_;
    return MPI_SUCCESS;
}

int Rank::MPI_Finalize() {
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Finalize);
    fault_point("MPI_Finalize");
    return PMPI_Finalize();
}

int Rank::PMPI_Finalize() {
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Finalize);
    if (!initialized_ || finalized_) return MPI_ERR_OTHER;
    // Push any Table-1 RMA counters still staged thread-locally (a
    // window touched after its last sync call) to the shared counters
    // before the rank stops running MPI code.
    rma_flush_all_stages();
    // An erroneous-but-reachable chaos shape: a rank whose MPI_Win_free
    // failed (dead member wedged the barrier) finalizes and returns,
    // freeing the user memory behind its window while survivors still
    // target it.  Finalize is this rank's last MPI call, so detaching
    // here is always safe and closes that hole too.
    rma_detach_all();
    finalized_ = true;
    return MPI_SUCCESS;
}

int Rank::MPI_Abort(Comm c, int errorcode) {
    const std::int64_t a[] = {c, errorcode};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Abort, a);
    fault_point("MPI_Abort");
    return PMPI_Abort(c, errorcode);
}

int Rank::PMPI_Abort(Comm c, int errorcode) {
    const std::int64_t a[] = {c, errorcode};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Abort, a);
    (void)c;  // like most MPIs, simmpi aborts the whole job, not one comm
    world_.poison(errorcode == MPI_SUCCESS ? MPI_ERR_OTHER : errorcode);
    rma_detach_all();
    throw RankKilled{Epitaph::Cause::Aborted,
                     "MPI_Abort(code=" + std::to_string(errorcode) + ")"};
}

int Rank::MPI_Comm_set_errhandler(Comm c, int errhandler) {
    if (errhandler != MPI_ERRORS_ARE_FATAL && errhandler != MPI_ERRORS_RETURN)
        return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    world_.comm(c).errhandler.store(errhandler, std::memory_order_relaxed);
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_get_errhandler(Comm c, int* errhandler) {
    if (!errhandler) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    *errhandler = world_.comm(c).errhandler.load(std::memory_order_relaxed);
    return MPI_SUCCESS;
}

double Rank::MPI_Wtime() const { return util::wall_seconds(); }

int Rank::MPI_Get_processor_name(std::string* name) const {
    if (!name) return MPI_ERR_ARG;
    *name = world_.proc(global_).node;
    return MPI_SUCCESS;
}

int Rank::MPI_Type_size(Datatype dt, int* size) const {
    if (!size) return MPI_ERR_ARG;
    const int s = datatype_size(dt);
    if (s <= 0) return MPI_ERR_TYPE;
    *size = s;
    return MPI_SUCCESS;
}

int Rank::MPI_Get_count(const Status* st, Datatype dt, int* count) const {
    if (!st || !count) return MPI_ERR_ARG;
    const int s = datatype_size(dt);
    if (s <= 0) return MPI_ERR_TYPE;
    *count = (st->count_bytes % s == 0) ? st->count_bytes / s : MPI_UNDEFINED;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Communicators and groups
// ---------------------------------------------------------------------------

int Rank::MPI_Comm_size(Comm c, int* size) {
    if (!size) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    const bool on_remote_side = cd.is_inter && !contains(cd.group, global_);
    *size = static_cast<int>(on_remote_side ? cd.remote_group.size() : cd.group.size());
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_rank(Comm c, int* rank) {
    if (!rank) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    const int r = my_rank_in(world_.comm(c));
    if (r == MPI_UNDEFINED) return MPI_ERR_COMM;
    *rank = r;
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_remote_size(Comm c, int* size) {
    if (!size) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (!cd.is_inter) return MPI_ERR_COMM;
    const bool on_local_side = contains(cd.group, global_);
    *size = static_cast<int>(on_local_side ? cd.remote_group.size() : cd.group.size());
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_dup(Comm c, Comm* out) {
    if (!out) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    fault_point("MPI_Comm_dup");
    CommData& cd = world_.comm(c);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    // Every member must end up with the same handle; rank 0 creates.
    if (my_rank_in(cd) == 0)
        cd.spawn_result = world_.create_comm(cd.group, cd.remote_group, cd.is_inter);
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    *out = cd.spawn_result;
    if (!barrier_internal(cd)) return comm_error(c, coll_fail_code(cd));
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_free(Comm* c) {
    if (!c) return MPI_ERR_ARG;
    if (!world_.comm_valid(*c)) return MPI_ERR_COMM;
    // Collective-free semantics: the handle is retired (and its payload
    // storage released) once every member has freed it.
    world_.release_comm_member(*c);
    *c = MPI_COMM_NULL;
    return MPI_SUCCESS;
}

int Rank::MPI_Comm_group(Comm c, Group* g) {
    if (!g) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    const bool on_remote_side = cd.is_inter && !contains(cd.group, global_);
    *g = world_.create_group(on_remote_side ? cd.remote_group : cd.group);
    return MPI_SUCCESS;
}

int Rank::MPI_Group_incl(Group g, int n, const int* ranks, Group* out) {
    if (!out || (n > 0 && !ranks)) return MPI_ERR_ARG;
    if (!world_.group_valid(g)) return MPI_ERR_GROUP;
    GroupData& gd = world_.group(g);
    std::vector<int> sel;
    sel.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        if (ranks[i] < 0 || static_cast<std::size_t>(ranks[i]) >= gd.global_ranks.size())
            return MPI_ERR_RANK;
        sel.push_back(gd.global_ranks[static_cast<std::size_t>(ranks[i])]);
    }
    *out = world_.create_group(std::move(sel));
    return MPI_SUCCESS;
}

int Rank::MPI_Group_size(Group g, int* size) {
    if (!size) return MPI_ERR_ARG;
    if (!world_.group_valid(g)) return MPI_ERR_GROUP;
    *size = static_cast<int>(world_.group(g).global_ranks.size());
    return MPI_SUCCESS;
}

int Rank::MPI_Group_free(Group* g) {
    if (!g) return MPI_ERR_ARG;
    if (!world_.group_valid(*g)) return MPI_ERR_GROUP;
    // Groups are rank-local snapshots, so the storage can go at once.
    GroupData& gd = world_.group(*g);
    gd.freed = true;
    std::vector<int>().swap(gd.global_ranks);
    *g = MPI_GROUP_NULL;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Point-to-point bodies
// ---------------------------------------------------------------------------

int Rank::send_body(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                    SendMode mode) {
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_pt2pt(cd, count, dt, dest, tag, /*is_send=*/true);
        rc != MPI_SUCCESS)
        return rc;
    if (dest == MPI_PROC_NULL) return MPI_SUCCESS;

    const std::size_t bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(datatype_size(dt));
    const int src_cr = my_rank_in(cd);
    const int dest_global = dest_group(cd)[static_cast<std::size_t>(dest)];
    Mailbox& mb = world_.mailbox(dest_global);

    // A revoked communicator fails every current and future operation
    // on it; checked before touching the destination mailbox so the
    // envelope never enters a queue nobody will drain.
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    // A provably-unreachable destination fails fast: nothing will ever
    // drain the mailbox or signal the rendezvous token.  (Gated on the
    // death epoch so fault-free runs keep the old behavior for sends
    // to already-finished ranks.)
    if (world_.death_epoch() != 0 && world_.rank_unreachable(dest_global))
        return comm_error(c, MPI_ERR_RANK);

    FaultPlan::MessageAction inject;
    if (FaultPlan* plan = world_.config().faults.get();
        plan && plan->has_message_faults())
        inject = plan->on_message(global_, dest_global);

    // The blocking part of the send happens inside the transport
    // function so the tool sees where the MPI implementation really
    // waits: socket write() for MPICH, the sysv RPI for LAM (paper
    // Fig 3: MPICH's ExcessiveIOBlockingTime).
    const auto& f = world_.fids();
    instr::FunctionGuard tg(world_.registry(),
                            world_.flavor() == Flavor::Mpich ? f.io_write : f.sysv_send);

    // Injected link faults: a delay stalls inside the transport (where
    // a slow wire would); a drop discards the envelope after the
    // "wire" accepted it, so the sender sees success -- exactly the
    // silent loss the liveness deadline exists to catch.
    if (inject.delay_seconds > 0) {
        world_.trace_event(trace::EventKind::Fault, global_, "fault_delay",
                           static_cast<std::int64_t>(inject.delay_seconds * 1e9), tag,
                           dest_global);
        sched::sleep_for(std::chrono::duration<double>(inject.delay_seconds));
    }
    if (inject.drop) {
        world_.trace_event(trace::EventKind::Fault, global_, "fault_drop",
                           static_cast<std::int64_t>(bytes), tag, dest_global);
        return MPI_SUCCESS;
    }

    const bool rendezvous =
        mode == SendMode::Synchronous ||
        (mode == SendMode::Standard && bytes > world_.config().eager_limit);
    std::shared_ptr<DeliveryToken> token;
    std::shared_ptr<sched::WaitToken> wake_msg;
    {
        std::unique_lock lk(mb.mu);
        if (!rendezvous && mode == SendMode::Standard) {
            // Eager flow control: park while the destination queue is
            // full; the receiver unparks us as it drains.
            const auto deadline = wait_deadline();
            while (mb.bytes_queued + bytes + kEnvelopeOverhead >
                   world_.config().mailbox_capacity) {
                // Evaluate the doom predicates under mb.mu, but run the
                // error paths only after dropping it: check_poisoned and
                // comm_error may detach window shards (shard mutexes)
                // or poison the world, neither of which may happen
                // while a mailbox mutex is held.
                int err = MPI_SUCCESS;
                if (comm_revoked(cd))
                    err = MPI_ERR_REVOKED;
                else if (world_.death_epoch() != 0 &&
                         (world_.poisoned() ||
                          world_.rank_unreachable(dest_global)))
                    err = MPI_ERR_RANK;
                else if (std::chrono::steady_clock::now() >= deadline)
                    err = MPI_ERR_OTHER;
                if (err != MPI_SUCCESS) {
                    lk.unlock();
                    check_poisoned();  // throws when the world is poisoned
                    return comm_error(c, err);
                }
                wait_for_space(mb, lk, deadline);
            }
        }
        Envelope env;
        env.src_global = global_;
        env.src_comm_rank = src_cr;
        env.tag = tag;
        env.context = cd.context;
        env.data = mb.take_buf_locked(bytes);
        if (bytes > 0) std::memcpy(env.data.data(), buf, bytes);
        if (rendezvous) {
            token = std::make_shared<DeliveryToken>();
            env.delivered = token;  // not charged against mailbox capacity
        } else {
            mb.bytes_queued += bytes + kEnvelopeOverhead;
        }
        mb.queue.push_back(std::move(env));
        mb.note_queued_locked(rendezvous);
        wake_msg = mb.msg_waiter;
    }
    if (wake_msg) wake_msg->unpark();
    // Rendezvous: block until the receiver has copied the payload.  The
    // token wakes only this sender.  Abandon the wait when the receiver
    // dies first (its mailbox keeps the orphan envelope, but nothing
    // will ever drain it).
    if (token) {
        const auto deadline = wait_deadline();
        const bool delivered = token->wait_or_abandon(
            [&] {
                return world_.poisoned() || comm_revoked(cd) ||
                       (world_.death_epoch() != 0 &&
                        world_.rank_unreachable(dest_global)) ||
                       std::chrono::steady_clock::now() >= deadline;
            },
            deadline);
        if (!delivered) {
            check_poisoned();
            return comm_error(c, comm_revoked(cd) ? MPI_ERR_REVOKED : MPI_ERR_RANK);
        }
    }
    // Fold the transfer into the enclosing MPI_ call's span rather than
    // recording a second event.  Reserved tags are collective/RMA side
    // traffic running inside some *other* user call's guard; folding
    // those would mislabel that call's span, so they stay untraced.
    if (tag < kReservedTagBase)
        world_.trace_call_payload(trace::EventKind::Pt2ptSend,
                                  static_cast<std::int64_t>(bytes), tag,
                                  dest_global);
    return MPI_SUCCESS;
}

int Rank::recv_body(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                    Status* st, std::int64_t context_offset) {
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_pt2pt(cd, count, dt, src, tag, /*is_send=*/false);
        rc != MPI_SUCCESS)
        return rc;
    if (src == MPI_PROC_NULL) {
        if (st) {
            st->MPI_SOURCE = MPI_PROC_NULL;
            st->MPI_TAG = MPI_ANY_TAG;
            st->count_bytes = 0;
        }
        return MPI_SUCCESS;
    }

    const std::int64_t want_ctx = cd.context + context_offset;
    const std::size_t cap =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(datatype_size(dt));
    Mailbox& mb = world_.mailbox(global_);

    const auto& f = world_.fids();
    instr::FunctionGuard tg(world_.registry(),
                            world_.flavor() == Flavor::Mpich ? f.io_read : f.sysv_recv);

    // Liveness bookkeeping: internal traffic (side-channel contexts or
    // reserved tags) fails like a collective; user receives fail when
    // the named source -- or, for ANY_SOURCE, every peer -- becomes
    // unreachable with nothing left in the queue.
    const bool internal_traffic =
        context_offset != 0 || (tag != MPI_ANY_TAG && tag >= kReservedTagBase);
    const int src_global = src == MPI_ANY_SOURCE
                               ? -1
                               : dest_group(cd)[static_cast<std::size_t>(src)];
    const auto deadline = wait_deadline();

    std::unique_lock lk(mb.mu);
    for (;;) {
        auto it = std::find_if(mb.queue.begin(), mb.queue.end(), [&](const Envelope& e) {
            return e.context == want_ctx && (tag == MPI_ANY_TAG || e.tag == tag) &&
                   (src == MPI_ANY_SOURCE || e.src_comm_rank == src);
        });
        if (it != mb.queue.end()) {
            Envelope env = std::move(*it);
            mb.queue.erase(it);
            mb.note_delivered_locked(env.data.size());
            const bool truncated = env.data.size() > cap;
            const std::size_t n = std::min(env.data.size(), cap);
            if (n > 0) std::memcpy(buf, env.data.data(), n);
            if (st) {
                st->MPI_SOURCE = env.src_comm_rank;
                st->MPI_TAG = env.tag;
                st->count_bytes = static_cast<int>(n);
                st->MPI_ERROR = truncated ? MPI_ERR_COUNT : MPI_SUCCESS;
            }
            std::vector<std::shared_ptr<sched::WaitToken>> wake_space;
            if (!env.delivered) {
                mb.bytes_queued -= env.data.size() + kEnvelopeOverhead;
                wake_space.swap(mb.space_tokens);
            }
            mb.recycle_locked(std::move(env.data));
            lk.unlock();
            // Wake every parked sender: they need different amounts of
            // room, so the frontmost waiter alone may not be the one
            // that fits.
            for (const auto& t : wake_space) t->unpark();
            if (env.delivered) env.delivered->signal();
            if (!internal_traffic)
                world_.trace_call_payload(trace::EventKind::Pt2ptRecv,
                                          static_cast<std::int64_t>(n), env.tag,
                                          env.src_global);
            return truncated ? MPI_ERR_COUNT : MPI_SUCCESS;
        }
        // No queued match.  The scan above ran under mb.mu, and peers
        // enqueue under mb.mu before they can die or finish, so bailing
        // here cannot lose a message that was actually delivered.
        // Revocation is checked first and independently of the death
        // epoch: a communicator can be revoked with zero deaths.  The
        // verdict is computed under mb.mu; the error paths run after
        // dropping it (check_poisoned/comm_error may take shard mutexes
        // via rma_detach_all, or poison the world).
        int err = MPI_SUCCESS;
        if (comm_revoked(cd)) {
            err = MPI_ERR_REVOKED;
        } else if (world_.death_epoch() != 0) {
            if (world_.poisoned()) {
                err = MPI_ERR_OTHER;  // check_poisoned throws below
            } else if (internal_traffic) {
                // Reserved-tag exchanges (e.g. the MPICH dissemination
                // barrier) are collectives: any dead member dooms them.
                if (world_.comm_has_dead_member(cd)) err = MPI_ERR_PROC_FAILED;
            } else if (src_global >= 0) {
                if (world_.rank_unreachable(src_global)) err = MPI_ERR_RANK;
            } else {
                bool any_alive = false;
                for (int g : dest_group(cd))
                    if (g != global_ && !world_.rank_unreachable(g)) {
                        any_alive = true;
                        break;
                    }
                if (!any_alive) err = MPI_ERR_RANK;
            }
        }
        if (err == MPI_SUCCESS && std::chrono::steady_clock::now() >= deadline)
            err = MPI_ERR_OTHER;
        if (err != MPI_SUCCESS) {
            lk.unlock();
            check_poisoned();  // throws when the world is poisoned
            return comm_error(c, err);
        }
        wait_for_msg(mb, lk, deadline);
    }
}

int Rank::probe_body(int src, int tag, Comm c, int* flag, Status* st, bool blocking) {
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_pt2pt(cd, 0, MPI_BYTE, src, tag, /*is_send=*/false);
        rc != MPI_SUCCESS)
        return rc;
    if (src == MPI_PROC_NULL) {
        if (flag) *flag = 1;
        if (st) {
            st->MPI_SOURCE = MPI_PROC_NULL;
            st->MPI_TAG = MPI_ANY_TAG;
            st->count_bytes = 0;
        }
        return MPI_SUCCESS;
    }
    Mailbox& mb = world_.mailbox(global_);
    const auto deadline = wait_deadline();
    std::unique_lock lk(mb.mu);
    for (;;) {
        const auto it =
            std::find_if(mb.queue.begin(), mb.queue.end(), [&](const Envelope& e) {
                return e.context == cd.context && (tag == MPI_ANY_TAG || e.tag == tag) &&
                       (src == MPI_ANY_SOURCE || e.src_comm_rank == src);
            });
        if (it != mb.queue.end()) {
            if (flag) *flag = 1;
            if (st) {
                st->MPI_SOURCE = it->src_comm_rank;
                st->MPI_TAG = it->tag;
                st->count_bytes = static_cast<int>(it->data.size());
                st->MPI_ERROR = MPI_SUCCESS;
            }
            return MPI_SUCCESS;
        }
        if (!blocking) {
            if (flag) *flag = 0;
            return MPI_SUCCESS;
        }
        // As in recv_body: verdicts under mb.mu, error paths (which may
        // detach shards or poison the world) after dropping it.
        int err = MPI_SUCCESS;
        if (comm_revoked(cd)) {
            err = MPI_ERR_REVOKED;
        } else if (world_.death_epoch() != 0) {
            if (world_.poisoned()) {
                err = MPI_ERR_OTHER;  // check_poisoned throws below
            } else if (src != MPI_ANY_SOURCE) {
                const int src_global = dest_group(cd)[static_cast<std::size_t>(src)];
                if (world_.rank_unreachable(src_global)) err = MPI_ERR_RANK;
            } else {
                bool any_alive = false;
                for (int g : dest_group(cd))
                    if (g != global_ && !world_.rank_unreachable(g)) {
                        any_alive = true;
                        break;
                    }
                if (!any_alive) err = MPI_ERR_RANK;
            }
        }
        if (err == MPI_SUCCESS && std::chrono::steady_clock::now() >= deadline)
            err = MPI_ERR_OTHER;
        if (err != MPI_SUCCESS) {
            lk.unlock();
            check_poisoned();  // throws when the world is poisoned
            return comm_error(c, err);
        }
        wait_for_msg(mb, lk, deadline);
    }
}

int Rank::MPI_Probe(int src, int tag, Comm c, Status* st) {
    fault_point("MPI_Probe");
    return probe_body(src, tag, c, nullptr, st, /*blocking=*/true);
}

int Rank::MPI_Iprobe(int src, int tag, Comm c, int* flag, Status* st) {
    if (!flag) return MPI_ERR_ARG;
    fault_point("MPI_Iprobe");
    return probe_body(src, tag, c, flag, st, /*blocking=*/false);
}

void Rank::internal_send(const void* buf, int bytes, int dest_cr, int tag, CommData& c) {
    const int src_cr = my_rank_in(c);
    const int dest_global = c.group[static_cast<std::size_t>(dest_cr)];
    Mailbox& mb = world_.mailbox(dest_global);
    std::shared_ptr<sched::WaitToken> wake_msg;
    {
        std::lock_guard lk(mb.mu);
        Envelope env;
        env.src_global = global_;
        env.src_comm_rank = src_cr;
        env.tag = tag;
        env.context = c.context + 1;  // collective side channel
        env.data = mb.take_buf_locked(static_cast<std::size_t>(bytes));
        if (bytes > 0) std::memcpy(env.data.data(), buf, static_cast<std::size_t>(bytes));
        mb.bytes_queued += env.data.size() + kEnvelopeOverhead;
        mb.queue.push_back(std::move(env));
        mb.note_queued_locked(/*rendezvous=*/false);
        wake_msg = mb.msg_waiter;
    }
    if (wake_msg) wake_msg->unpark();
}

bool Rank::internal_recv(void* buf, int bytes, int src_cr, int tag, CommData& c) {
    const std::int64_t want_ctx = c.context + 1;
    Mailbox& mb = world_.mailbox(global_);
    const auto deadline = wait_deadline();
    std::unique_lock lk(mb.mu);
    for (;;) {
        auto it = std::find_if(mb.queue.begin(), mb.queue.end(), [&](const Envelope& e) {
            return e.context == want_ctx && e.tag == tag && e.src_comm_rank == src_cr;
        });
        if (it != mb.queue.end()) {
            const std::size_t n =
                std::min(it->data.size(), static_cast<std::size_t>(bytes));
            if (n > 0) std::memcpy(buf, it->data.data(), n);
            mb.note_delivered_locked(it->data.size());
            mb.bytes_queued -= it->data.size() + kEnvelopeOverhead;
            mb.recycle_locked(std::move(it->data));
            mb.queue.erase(it);
            std::vector<std::shared_ptr<sched::WaitToken>> wake_space;
            wake_space.swap(mb.space_tokens);
            lk.unlock();
            for (const auto& t : wake_space) t->unpark();
            return true;
        }
        // Already-queued traffic was drained above; once the comm is
        // revoked or a member of the collective is dead the operation
        // can never complete.
        if (comm_revoked(c)) return false;
        if (world_.death_epoch() != 0) {
            if (world_.poisoned()) {
                // check_poisoned detaches window shards; never under
                // mb.mu.  poisoned() is monotone, so it surely throws.
                lk.unlock();
                check_poisoned();
            }
            if (world_.comm_has_dead_member(c)) return false;
        }
        if (std::chrono::steady_clock::now() >= deadline) return false;
        wait_for_msg(mb, lk, deadline);
    }
}

bool Rank::barrier_internal(CommData& c) {
    std::unique_lock lk(c.bar_mu);
    if (comm_revoked(c)) return false;
    if (world_.death_epoch() != 0) {
        if (world_.poisoned()) {
            // check_poisoned detaches window shards; never under
            // bar_mu.  poisoned() is monotone, so it surely throws.
            lk.unlock();
            check_poisoned();
        }
        if (world_.comm_has_dead_member(c)) return false;
    }
    const std::uint64_t gen = c.bar_gen;
    if (static_cast<std::size_t>(++c.bar_count) == c.group.size()) {
        c.bar_count = 0;
        ++c.bar_gen;
        std::vector<std::shared_ptr<sched::WaitToken>> waiters;
        waiters.swap(c.bar_waiters);
        lk.unlock();
        for (const auto& t : waiters) t->unpark();
        return true;
    }
    const auto deadline = wait_deadline();
    const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
    for (;;) {
        c.bar_waiters.push_back(tok);
        lk.unlock();
        tok->park_until(deadline);
        lk.lock();
        auto& v = c.bar_waiters;
        v.erase(std::remove(v.begin(), v.end(), tok), v.end());
        if (c.bar_gen != gen) return true;
        const bool doomed =
            world_.poisoned() || comm_revoked(c) ||
            (world_.death_epoch() != 0 && world_.comm_has_dead_member(c)) ||
            std::chrono::steady_clock::now() >= deadline;
        if (doomed) {
            // Withdraw so the count stays consistent for survivors that
            // bail later (every survivor fails this barrier alike),
            // then drop bar_mu before the poison path detaches shards.
            --c.bar_count;
            lk.unlock();
            check_poisoned();
            return false;
        }
    }
}

int Rank::next_coll_tag(Comm c) {
    // Collectives execute in the same order on every member, so a
    // per-rank counter yields matching tags without communication.
    return kReservedTagBase + 64 * coll_seq_[c]++;
}

void Rank::reduce_combine(void* acc, const void* in, int count, Datatype dt,
                          Op op) const {
    auto fold = [&](auto* a, const auto* b) {
        for (int i = 0; i < count; ++i) {
            switch (op) {
                case MPI_SUM: a[i] = a[i] + b[i]; break;
                case MPI_MAX: a[i] = std::max(a[i], b[i]); break;
                case MPI_MIN: a[i] = std::min(a[i], b[i]); break;
                case MPI_OP_NULL: break;
            }
        }
    };
    switch (dt) {
        case MPI_INT:
            fold(static_cast<std::int32_t*>(acc), static_cast<const std::int32_t*>(in));
            break;
        case MPI_LONG:
            fold(static_cast<std::int64_t*>(acc), static_cast<const std::int64_t*>(in));
            break;
        case MPI_FLOAT:
            fold(static_cast<float*>(acc), static_cast<const float*>(in));
            break;
        case MPI_DOUBLE:
            fold(static_cast<double*>(acc), static_cast<const double*>(in));
            break;
        case MPI_CHAR:
        case MPI_BYTE:
            fold(static_cast<std::uint8_t*>(acc), static_cast<const std::uint8_t*>(in));
            break;
        case MPI_DATATYPE_NULL: break;
    }
}

// ---------------------------------------------------------------------------
// Binomial-tree collective building blocks (CollAlgo::Tree).
//
// All three run in a "virtual rank" space rotated so the root is vrank
// 0; `mask` ends at the lowest set bit of vrank (or past n for the
// root), which makes parent = vrank - mask and the children the
// vrank + 2^k below mask.  Depth is ceil(log2 n) instead of the flat
// algorithms' O(n) root loop.
// ---------------------------------------------------------------------------

bool Rank::coll_bcast_tree(void* buf, int bytes, int root_cr, int tag, CommData& c) {
    const int n = static_cast<int>(c.group.size());
    const int me = my_rank_in(c);
    const int vrank = (me - root_cr + n) % n;
    const auto actual = [&](int v) { return (v + root_cr) % n; };
    int mask = 1;
    while (mask < n && (vrank & mask) == 0) mask <<= 1;
    if (vrank != 0 && !internal_recv(buf, bytes, actual(vrank - mask), tag, c))
        return false;
    for (int m = mask >> 1; m > 0; m >>= 1)
        if (vrank + m < n) internal_send(buf, bytes, actual(vrank + m), tag, c);
    return true;
}

bool Rank::coll_gather_tree(const void* sbuf, void* rbuf, int block, int root_cr,
                            int tag, CommData& c) {
    const int n = static_cast<int>(c.group.size());
    const int me = my_rank_in(c);
    const int vrank = (me - root_cr + n) % n;
    const auto actual = [&](int v) { return (v + root_cr) % n; };
    int mask = 1;
    while (mask < n && (vrank & mask) == 0) mask <<= 1;
    // This rank relays the blocks of its whole subtree: vranks
    // [vrank, vrank + span), laid out in vrank order.
    const int span = std::min(mask, n - vrank);
    std::vector<std::byte> tmp(static_cast<std::size_t>(span) *
                               static_cast<std::size_t>(block));
    if (block > 0) std::memcpy(tmp.data(), sbuf, static_cast<std::size_t>(block));
    for (int m = 1; m < mask; m <<= 1) {
        const int child = vrank + m;
        if (child >= n) break;
        // The child's subtree spans min(m, n - child) vranks, exactly
        // the room left in tmp starting at offset m.
        const int cnt = std::min(m, n - child);
        if (!internal_recv(tmp.data() + static_cast<std::size_t>(m) * block,
                           cnt * block, actual(child), tag, c))
            return false;
    }
    if (vrank != 0) {
        internal_send(tmp.data(), span * block, actual(vrank - mask), tag, c);
    } else if (block > 0) {
        // Unrotate: comm rank r's block sits at vrank (r - root) in tmp.
        auto* out = static_cast<std::byte*>(rbuf);
        for (int r = 0; r < n; ++r)
            std::memcpy(out + static_cast<std::size_t>(r) * block,
                        tmp.data() + static_cast<std::size_t>((r - root_cr + n) % n) *
                                         block,
                        static_cast<std::size_t>(block));
    }
    return true;
}

bool Rank::coll_scatter_tree(const void* sbuf, void* rbuf, int block, int root_cr,
                             int tag, CommData& c) {
    const int n = static_cast<int>(c.group.size());
    const int me = my_rank_in(c);
    const int vrank = (me - root_cr + n) % n;
    const auto actual = [&](int v) { return (v + root_cr) % n; };
    int mask = 1;
    while (mask < n && (vrank & mask) == 0) mask <<= 1;
    const int span = std::min(mask, n - vrank);
    std::vector<std::byte> tmp(static_cast<std::size_t>(span) *
                               static_cast<std::size_t>(block));
    if (vrank == 0) {
        // Rotate into vrank order so every subtree is contiguous.
        const auto* in = static_cast<const std::byte*>(sbuf);
        if (block > 0)
            for (int r = 0; r < n; ++r)
                std::memcpy(tmp.data() + static_cast<std::size_t>((r - root_cr + n) % n) *
                                             block,
                            in + static_cast<std::size_t>(r) * block,
                            static_cast<std::size_t>(block));
    } else if (!internal_recv(tmp.data(), span * block, actual(vrank - mask), tag, c)) {
        return false;
    }
    for (int m = mask >> 1; m > 0; m >>= 1) {
        const int child = vrank + m;
        if (child < n) {
            const int cnt = std::min(m, n - child);
            internal_send(tmp.data() + static_cast<std::size_t>(m) * block, cnt * block,
                          actual(child), tag, c);
        }
    }
    if (block > 0) std::memcpy(rbuf, tmp.data(), static_cast<std::size_t>(block));
    return true;
}

bool Rank::coll_allreduce_tree(const void* sbuf, void* rbuf, int count, Datatype dt,
                               Op op, int bytes, int tag, CommData& c) {
    const int n = static_cast<int>(c.group.size());
    const int me = my_rank_in(c);
    std::unique_lock lk(c.shm_mu);
    if (!c.shm_layout_built) {
        std::map<std::string, int> index_of;
        c.shm_node_of.resize(static_cast<std::size_t>(n));
        for (int cr = 0; cr < n; ++cr) {
            const std::string& node = world_.proc(c.group[cr]).node;
            const auto [it, fresh] =
                index_of.emplace(node, static_cast<int>(c.shm_leaders.size()));
            if (fresh) {
                c.shm_leaders.push_back(cr);
                c.shm_node_size.push_back(0);
            }
            c.shm_node_of[static_cast<std::size_t>(cr)] = it->second;
            ++c.shm_node_size[static_cast<std::size_t>(it->second)];
        }
        c.shm_cells = std::vector<ShmCombineCell>(c.shm_leaders.size());
        c.shm_layout_built = true;
    }
    const int ni = c.shm_node_of[static_cast<std::size_t>(me)];
    ShmCombineCell& cell = c.shm_cells[static_cast<std::size_t>(ni)];
    const int k = c.shm_node_size[static_cast<std::size_t>(ni)];
    const bool leader = c.shm_leaders[static_cast<std::size_t>(ni)] == me;
    const std::uint64_t gen0 = cell.gen;
    if (cell.arrived == 0) {
        cell.failed = false;
        cell.acc.resize(static_cast<std::size_t>(bytes));
        if (bytes > 0)
            std::memcpy(cell.acc.data(), sbuf, static_cast<std::size_t>(bytes));
    } else if (bytes > 0) {
        reduce_combine(cell.acc.data(), sbuf, count, dt, op);
    }
    ++cell.arrived;
    const auto deadline = wait_deadline();
    const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
    if (!leader) {
        // Last arriver hands the full node to the (parked) leader.
        if (cell.arrived == k && cell.leader_waiter) cell.leader_waiter->unpark();
        for (;;) {
            cell.waiters.push_back(tok);
            lk.unlock();
            tok->park_until(deadline);
            lk.lock();
            auto& v = cell.waiters;
            v.erase(std::remove(v.begin(), v.end(), tok), v.end());
            if (cell.gen != gen0) break;
            const bool doomed =
                world_.poisoned() || comm_revoked(c) ||
                (world_.death_epoch() != 0 && world_.comm_has_dead_member(c)) ||
                std::chrono::steady_clock::now() >= deadline;
            if (doomed) {
                // The fold already consumed this rank's contribution,
                // so no withdrawal: flag the round instead and let the
                // leader publish the failure (every member fails alike).
                cell.failed = true;
                if (cell.leader_waiter) cell.leader_waiter->unpark();
                check_poisoned();
                return false;
            }
        }
        if (cell.result_failed) return false;
        if (bytes > 0)
            std::memcpy(rbuf, cell.result.data(), static_cast<std::size_t>(bytes));
        return true;
    }
    // Leader: publishes the round's outcome (result or failure) so
    // parked followers always get released exactly once per round.
    const auto publish = [&](bool ok, std::vector<std::byte>&& value) {
        cell.result_failed = !ok;
        cell.result = std::move(value);
        ++cell.gen;
        cell.arrived = 0;
        std::vector<std::shared_ptr<sched::WaitToken>> waiters;
        waiters.swap(cell.waiters);
        lk.unlock();
        for (const auto& t : waiters) t->unpark();
    };
    while (cell.arrived < k && !cell.failed) {
        cell.leader_waiter = tok;
        lk.unlock();
        tok->park_until(deadline);
        lk.lock();
        if (cell.leader_waiter == tok) cell.leader_waiter.reset();
        if (cell.arrived >= k || cell.failed) break;
        const bool doomed =
            world_.poisoned() || comm_revoked(c) ||
            (world_.death_epoch() != 0 && world_.comm_has_dead_member(c)) ||
            std::chrono::steady_clock::now() >= deadline;
        if (doomed) {
            publish(false, {});
            check_poisoned();
            return false;
        }
    }
    cell.leader_waiter.reset();
    bool ok = !cell.failed;
    std::vector<std::byte> acc;
    acc.swap(cell.acc);
    lk.unlock();
    const int num_leaders = static_cast<int>(c.shm_leaders.size());
    if (ok && num_leaders > 1) {
        // Binomial reduce to the first leader, then binomial bcast
        // back across the leader set (node index == leader index).
        const std::vector<int>& ld = c.shm_leaders;
        const int lme = ni;
        std::vector<std::byte> tmp(static_cast<std::size_t>(bytes));
        for (int mask = 1; mask < num_leaders; mask <<= 1) {
            if (lme & mask) {
                internal_send(acc.data(), bytes, ld[static_cast<std::size_t>(lme - mask)],
                              tag, c);
                break;
            }
            const int child = lme + mask;
            if (child >= num_leaders) continue;
            if (!internal_recv(tmp.data(), bytes, ld[static_cast<std::size_t>(child)],
                               tag, c)) {
                ok = false;
                break;
            }
            if (bytes > 0) reduce_combine(acc.data(), tmp.data(), count, dt, op);
        }
        if (ok) {
            int mask = 1;
            while (mask < num_leaders && (lme & mask) == 0) mask <<= 1;
            if (lme != 0 &&
                !internal_recv(acc.data(), bytes, ld[static_cast<std::size_t>(lme - mask)],
                               tag + 32, c))
                ok = false;
            if (ok)
                for (int m = mask >> 1; m > 0; m >>= 1)
                    if (lme + m < num_leaders)
                        internal_send(acc.data(), bytes,
                                      ld[static_cast<std::size_t>(lme + m)], tag + 32, c);
        }
    }
    if (ok && bytes > 0)
        std::memcpy(rbuf, acc.data(), static_cast<std::size_t>(bytes));
    lk.lock();
    ok = ok && !cell.failed;
    publish(ok, std::move(acc));
    return ok;
}

// ---------------------------------------------------------------------------
// Point-to-point: instrumented trampolines
// ---------------------------------------------------------------------------

int Rank::MPI_Send(const void* buf, int count, Datatype dt, int dest, int tag, Comm c) {
    const std::int64_t a[] = {as_arg(buf),
                              count,
                              static_cast<std::int64_t>(dt),
                              dest,
                              tag,
                              c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Send, a);
    fault_point("MPI_Send");
    return PMPI_Send(buf, count, dt, dest, tag, c);
}

int Rank::PMPI_Send(const void* buf, int count, Datatype dt, int dest, int tag, Comm c) {
    const std::int64_t a[] = {as_arg(buf),
                              count,
                              static_cast<std::int64_t>(dt),
                              dest,
                              tag,
                              c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Send, a);
    return send_body(buf, count, dt, dest, tag, c, SendMode::Standard);
}

int Rank::MPI_Ssend(const void* buf, int count, Datatype dt, int dest, int tag,
                    Comm c) {
    const std::int64_t a[] = {as_arg(buf),
                              count,
                              static_cast<std::int64_t>(dt),
                              dest,
                              tag,
                              c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Ssend, a);
    fault_point("MPI_Ssend");
    {
        const std::int64_t pa[] = {as_arg(buf),
                                   count,
                                   static_cast<std::int64_t>(dt),
                                   dest,
                                   tag,
                                   c};
        instr::FunctionGuard pg(world_.registry(), world_.fids().PMPI_Ssend, pa);
        return send_body(buf, count, dt, dest, tag, c, SendMode::Synchronous);
    }
}

int Rank::MPI_Recv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                   Status* st) {
    const std::int64_t a[] = {as_arg(buf), count, static_cast<std::int64_t>(dt),
                              src,         tag,   c,
                              as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Recv, a);
    fault_point("MPI_Recv");
    return PMPI_Recv(buf, count, dt, src, tag, c, st);
}

int Rank::PMPI_Recv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                    Status* st) {
    const std::int64_t a[] = {as_arg(buf), count, static_cast<std::int64_t>(dt),
                              src,         tag,   c,
                              as_arg(st)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Recv, a);
    return recv_body(buf, count, dt, src, tag, c, st);
}

int Rank::MPI_Isend(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                    Request* req) {
    const std::int64_t a[] = {as_arg(buf), count,       static_cast<std::int64_t>(dt),
                              dest,        tag,         c,
                              as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Isend, a);
    fault_point("MPI_Isend");
    return PMPI_Isend(buf, count, dt, dest, tag, c, req);
}

int Rank::PMPI_Isend(const void* buf, int count, Datatype dt, int dest, int tag, Comm c,
                     Request* req) {
    const std::int64_t a[] = {as_arg(buf), count,       static_cast<std::int64_t>(dt),
                              dest,        tag,         c,
                              as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Isend, a);
    if (!req) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_pt2pt(cd, count, dt, dest, tag, /*is_send=*/true);
        rc != MPI_SUCCESS)
        return rc;
    if (dest == MPI_PROC_NULL) {
        RequestData rd;
        rd.kind = RequestKind::Completed;
        rd.owner_global = global_;
        *req = world_.create_request(std::move(rd));
        return MPI_SUCCESS;
    }

    const std::size_t bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(datatype_size(dt));
    const int src_cr = my_rank_in(cd);
    const int dest_global = dest_group(cd)[static_cast<std::size_t>(dest)];
    Mailbox& mb = world_.mailbox(dest_global);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.rank_unreachable(dest_global))
        return comm_error(c, MPI_ERR_RANK);
    if (FaultPlan* plan = world_.config().faults.get();
        plan && plan->has_message_faults() &&
        plan->on_message(global_, dest_global).drop) {
        // Lost on the wire: the request completes as if delivered (a
        // standard-mode sender cannot observe the loss; injected delays
        // are a blocking-send concern and are ignored here).
        RequestData done;
        done.kind = RequestKind::Completed;
        done.owner_global = global_;
        *req = world_.create_request(std::move(done));
        return MPI_SUCCESS;
    }
    RequestData rd;
    rd.owner_global = global_;
    rd.dest_mailbox = dest_global;
    rd.comm = c;
    std::shared_ptr<sched::WaitToken> wake_msg;
    {
        std::lock_guard lk(mb.mu);
        Envelope env;
        env.src_global = global_;
        env.src_comm_rank = src_cr;
        env.tag = tag;
        env.context = cd.context;
        env.data = mb.take_buf_locked(bytes);
        if (bytes > 0) std::memcpy(env.data.data(), buf, bytes);
        if (bytes <= world_.config().eager_limit &&
            mb.bytes_queued + bytes + kEnvelopeOverhead <=
                world_.config().mailbox_capacity) {
            mb.bytes_queued += bytes + kEnvelopeOverhead;
            rd.kind = RequestKind::Completed;
        } else {
            // Large (or flow-controlled) nonblocking send: completion is
            // deferred to MPI_Wait via a delivery token.
            rd.kind = RequestKind::SendToken;
            rd.delivered = std::make_shared<DeliveryToken>();
            env.delivered = rd.delivered;
        }
        mb.queue.push_back(std::move(env));
        mb.note_queued_locked(rd.kind == RequestKind::SendToken);
        wake_msg = mb.msg_waiter;
    }
    if (wake_msg) wake_msg->unpark();
    *req = world_.create_request(std::move(rd));
    return MPI_SUCCESS;
}

int Rank::MPI_Irecv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                    Request* req) {
    const std::int64_t a[] = {as_arg(buf), count,       static_cast<std::int64_t>(dt),
                              src,         tag,         c,
                              as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Irecv, a);
    fault_point("MPI_Irecv");
    return PMPI_Irecv(buf, count, dt, src, tag, c, req);
}

int Rank::PMPI_Irecv(void* buf, int count, Datatype dt, int src, int tag, Comm c,
                     Request* req) {
    const std::int64_t a[] = {as_arg(buf), count,       static_cast<std::int64_t>(dt),
                              src,         tag,         c,
                              as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Irecv, a);
    if (!req) return MPI_ERR_ARG;
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_pt2pt(cd, count, dt, src, tag, /*is_send=*/false);
        rc != MPI_SUCCESS)
        return rc;
    // The receive is matched when waited on.  This serializes overlap
    // but preserves blocking semantics (documented in DESIGN.md).
    RequestData rd;
    rd.kind = RequestKind::RecvDeferred;
    rd.owner_global = global_;
    rd.buf = buf;
    rd.count = count;
    rd.dt = dt;
    rd.src = src;
    rd.tag = tag;
    rd.comm = c;
    *req = world_.create_request(std::move(rd));
    return MPI_SUCCESS;
}

int Rank::wait_one(RequestData& rd, Status* st) {
    switch (rd.kind) {
        case RequestKind::Null:
        case RequestKind::Completed: return MPI_SUCCESS;
        case RequestKind::SendToken: {
            const auto deadline = wait_deadline();
            const int dest = rd.dest_mailbox;
            CommData& cd = world_.comm(rd.comm);
            const bool delivered = rd.delivered->wait_or_abandon(
                [&] {
                    return world_.poisoned() || comm_revoked(cd) ||
                           (world_.death_epoch() != 0 &&
                            world_.rank_unreachable(dest)) ||
                           std::chrono::steady_clock::now() >= deadline;
                },
                deadline);
            if (delivered) return MPI_SUCCESS;
            check_poisoned();
            return comm_error(rd.comm,
                              comm_revoked(cd) ? MPI_ERR_REVOKED : MPI_ERR_RANK);
        }
        case RequestKind::RecvDeferred:
            return recv_body(rd.buf, rd.count, rd.dt, rd.src, rd.tag, rd.comm, st);
    }
    return MPI_ERR_REQUEST;
}

int Rank::MPI_Wait(Request* req, Status* st) {
    const std::int64_t a[] = {as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Wait, a);
    fault_point("MPI_Wait");
    return PMPI_Wait(req, st);
}

int Rank::PMPI_Wait(Request* req, Status* st) {
    const std::int64_t a[] = {as_arg(req)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Wait, a);
    if (!req) return MPI_ERR_ARG;
    if (*req == MPI_REQUEST_NULL) return MPI_SUCCESS;
    if (!world_.request_valid(*req)) return MPI_ERR_REQUEST;
    RequestData& rd = world_.request(*req);
    const int rc = wait_one(rd, st);
    world_.free_request(*req);
    *req = MPI_REQUEST_NULL;
    return rc;
}

int Rank::MPI_Waitall(int n, Request* reqs, Status* sts) {
    const std::int64_t a[] = {n, as_arg(reqs)};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Waitall, a);
    fault_point("MPI_Waitall");
    return PMPI_Waitall(n, reqs, sts);
}

int Rank::PMPI_Waitall(int n, Request* reqs, Status* sts) {
    const std::int64_t a[] = {n, as_arg(reqs)};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Waitall, a);
    if (n < 0 || (n > 0 && !reqs)) return MPI_ERR_ARG;
    int rc = MPI_SUCCESS;
    for (int i = 0; i < n; ++i) {
        Status* st = sts ? &sts[i] : nullptr;
        const int r = PMPI_Wait(&reqs[i], st);
        if (r != MPI_SUCCESS) rc = r;
    }
    return rc;
}

int Rank::MPI_Sendrecv(const void* sbuf, int scount, Datatype sdt, int dest, int stag,
                       void* rbuf, int rcount, Datatype rdt, int src, int rtag, Comm c,
                       Status* st) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              dest,         stag,   as_arg(rbuf),
                              rcount,       static_cast<std::int64_t>(rdt),
                              src,          rtag,   c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Sendrecv, a);
    fault_point("MPI_Sendrecv");
    return PMPI_Sendrecv(sbuf, scount, sdt, dest, stag, rbuf, rcount, rdt, src, rtag, c,
                         st);
}

int Rank::PMPI_Sendrecv(const void* sbuf, int scount, Datatype sdt, int dest, int stag,
                        void* rbuf, int rcount, Datatype rdt, int src, int rtag, Comm c,
                        Status* st) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              dest,         stag,   as_arg(rbuf),
                              rcount,       static_cast<std::int64_t>(rdt),
                              src,          rtag,   c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Sendrecv, a);
    // The send half is buffered so two processes exchanging with
    // Sendrecv cannot deadlock; the waiting happens in the receive.
    const int rc = send_body(sbuf, scount, sdt, dest, stag, c, SendMode::ForceEager);
    if (rc != MPI_SUCCESS) return rc;
    return recv_body(rbuf, rcount, rdt, src, rtag, c, st);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

Rank::CollScope::CollScope(Rank& r, const char* name, Comm c, std::int64_t bytes,
                           int algo)
    : r_(r), name_(name), c_(c), algo_(algo) {
    r_.world_.trace_event(trace::EventKind::CollBegin, r_.global_, name_, bytes, algo_, c_);
}

Rank::CollScope::~CollScope() {
    r_.world_.trace_event(trace::EventKind::CollEnd, r_.global_, name_, 0, algo_, c_);
}

int Rank::MPI_Barrier(Comm c) {
    const std::int64_t a[] = {c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Barrier, a);
    fault_point("MPI_Barrier");
    return PMPI_Barrier(c);
}

int Rank::PMPI_Barrier(Comm c) {
    const std::int64_t a[] = {c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Barrier, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    // Barrier "algo": 0 = LAM's shared token exchange, 1 = MPICH's
    // dissemination rounds.
    CollScope cs(*this, "MPI_Barrier", c, 0,
                 world_.flavor() == Flavor::Mpich ? 1 : 0);
    if (world_.flavor() == Flavor::Lam)
        return barrier_internal(cd) ? MPI_SUCCESS : comm_error(c, coll_fail_code(cd));
    // MPICH implements MPI_Barrier as a dissemination exchange built on
    // PMPI_Sendrecv -- which is why the paper's Performance Consultant
    // drills from MPI_Barrier down to PMPI_Sendrecv (Fig 9).
    const int n = static_cast<int>(cd.group.size());
    if (n <= 1) return MPI_SUCCESS;
    const int me = my_rank_in(cd);
    const int seq_tag = next_coll_tag(c);
    // The tag is consumed unconditionally (coll_seq_ must stay aligned
    // across ranks even when some bail), then liveness is checked.
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    int tok = 0, tok2 = 0;
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
        const int to = (me + k) % n;
        const int from = (me - k % n + n) % n;
        Status st;
        const int rc = PMPI_Sendrecv(&tok, 1, MPI_INT, to, seq_tag + round, &tok2, 1,
                                     MPI_INT, from, seq_tag + round, c, &st);
        // Map whatever the exchange saw (dead partner on either half)
        // to the one code every survivor of a failed collective gets.
        if (rc != MPI_SUCCESS) return comm_error(c, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Bcast(void* buf, int count, Datatype dt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(buf), count, static_cast<std::int64_t>(dt), root, c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Bcast, a);
    fault_point("MPI_Bcast");
    return PMPI_Bcast(buf, count, dt, root, c);
}

int Rank::PMPI_Bcast(void* buf, int count, Datatype dt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(buf), count, static_cast<std::int64_t>(dt), root, c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Bcast, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    const int n = static_cast<int>(cd.group.size());
    if (root < 0 || root >= n) return MPI_ERR_RANK;
    const int me = my_rank_in(cd);
    const int bytes = count * datatype_size(dt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Bcast", c, bytes, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    if (tree)
        return coll_bcast_tree(buf, bytes, root, tag, cd)
                   ? MPI_SUCCESS
                   : comm_error(c, coll_fail_code(cd));
    // Flat star: the legacy shape paper-validation runs pin.
    if (me == root) {
        for (int r = 0; r < n; ++r)
            if (r != root) internal_send(buf, bytes, r, tag, cd);
    } else if (!internal_recv(buf, bytes, root, tag, cd)) {
        return comm_error(c, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op,
                     int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), as_arg(rbuf),
                              count,        static_cast<std::int64_t>(dt),
                              static_cast<std::int64_t>(op), root, c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Reduce, a);
    fault_point("MPI_Reduce");
    return PMPI_Reduce(sbuf, rbuf, count, dt, op, root, c);
}

int Rank::PMPI_Reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op,
                      int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), as_arg(rbuf),
                              count,        static_cast<std::int64_t>(dt),
                              static_cast<std::int64_t>(op), root, c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Reduce, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    const int n = static_cast<int>(cd.group.size());
    if (root < 0 || root >= n) return MPI_ERR_RANK;
    const int me = my_rank_in(cd);
    const int bytes = count * datatype_size(dt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Reduce", c, bytes, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    if (tree) {
        // Binomial reduce (ops are commutative): combine children's
        // partial results, then forward the accumulator to the parent.
        const int vrank = (me - root + n) % n;
        const auto actual = [&](int v) { return (v + root) % n; };
        std::vector<std::byte> acc(static_cast<std::size_t>(bytes));
        std::vector<std::byte> tmp(static_cast<std::size_t>(bytes));
        if (bytes > 0) std::memcpy(acc.data(), sbuf, static_cast<std::size_t>(bytes));
        for (int mask = 1; mask < n; mask <<= 1) {
            if (vrank & mask) {
                internal_send(acc.data(), bytes, actual(vrank - mask), tag, cd);
                break;
            }
            const int child = vrank + mask;
            if (child < n) {
                if (!internal_recv(tmp.data(), bytes, actual(child), tag, cd))
                    return comm_error(c, coll_fail_code(cd));
                reduce_combine(acc.data(), tmp.data(), count, dt, op);
            }
        }
        if (me == root && bytes > 0)
            std::memcpy(rbuf, acc.data(), static_cast<std::size_t>(bytes));
        return MPI_SUCCESS;
    }
    if (me == root) {
        if (bytes > 0) std::memcpy(rbuf, sbuf, static_cast<std::size_t>(bytes));
        std::vector<std::byte> tmp(static_cast<std::size_t>(bytes));
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            if (!internal_recv(tmp.data(), bytes, r, tag, cd))
                return comm_error(c, coll_fail_code(cd));
            reduce_combine(rbuf, tmp.data(), count, dt, op);
        }
    } else {
        internal_send(sbuf, bytes, root, tag, cd);
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op,
                        Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), as_arg(rbuf),
                              count,        static_cast<std::int64_t>(dt),
                              static_cast<std::int64_t>(op), c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Allreduce, a);
    fault_point("MPI_Allreduce");
    return PMPI_Allreduce(sbuf, rbuf, count, dt, op, c);
}

int Rank::PMPI_Allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op,
                         Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), as_arg(rbuf),
                              count,        static_cast<std::int64_t>(dt),
                              static_cast<std::int64_t>(op), c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Allreduce, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (cd.is_inter) return MPI_ERR_COMM;
    if (count < 0) return MPI_ERR_COUNT;
    if (datatype_size(dt) <= 0) return MPI_ERR_TYPE;
    const int n = static_cast<int>(cd.group.size());
    const int me = my_rank_in(cd);
    const int bytes = count * datatype_size(dt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Allreduce", c, bytes, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    if (tree) {
        // Node-aware schedule, replacing recursive doubling: doubling
        // moved 2*n*log2(n) point-to-point messages per operation and
        // parked both partners at every round, losing to the flat star
        // on wall-clock whenever ranks timeshare a small worker pool.
        // Here same-node ranks fold through a shared combining cell
        // (zero messages -- the shm fast path a real intra-node
        // transport takes) and only node leaders exchange across the
        // simulated network, binomially.  Aggregate traffic drops from
        // the star's 2*(n-1) messages to 2*(#nodes-1) while the
        // per-rank critical path stays logarithmic.
        return coll_allreduce_tree(sbuf, rbuf, count, dt, op, bytes, tag, cd)
                   ? MPI_SUCCESS
                   : comm_error(c, coll_fail_code(cd));
    }
    if (me == 0) {
        if (bytes > 0) std::memcpy(rbuf, sbuf, static_cast<std::size_t>(bytes));
        std::vector<std::byte> tmp(static_cast<std::size_t>(bytes));
        for (int r = 1; r < n; ++r) {
            if (!internal_recv(tmp.data(), bytes, r, tag, cd))
                return comm_error(c, coll_fail_code(cd));
            reduce_combine(rbuf, tmp.data(), count, dt, op);
        }
        for (int r = 1; r < n; ++r) internal_send(rbuf, bytes, r, tag + 1, cd);
    } else {
        internal_send(sbuf, bytes, 0, tag, cd);
        if (!internal_recv(rbuf, bytes, 0, tag + 1, cd))
            return comm_error(c, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

namespace {
/// Shared validation for the gather/scatter family.
int check_gs(const CommData& cd, int scount, Datatype sdt, int rcount, Datatype rdt,
             int root) {
    if (cd.is_inter) return MPI_ERR_COMM;
    if (scount < 0 || rcount < 0) return MPI_ERR_COUNT;
    if (datatype_size(sdt) <= 0 || datatype_size(rdt) <= 0) return MPI_ERR_TYPE;
    if (root < 0 || static_cast<std::size_t>(root) >= cd.group.size())
        return MPI_ERR_RANK;
    // Matching signatures (we require equal byte counts per block).
    if (static_cast<std::int64_t>(scount) * datatype_size(sdt) !=
        static_cast<std::int64_t>(rcount) * datatype_size(rdt))
        return MPI_ERR_ARG;
    return MPI_SUCCESS;
}
}  // namespace

int Rank::MPI_Gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                     Datatype rdt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt),
                              root,         c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Gather, a);
    fault_point("MPI_Gather");
    return PMPI_Gather(sbuf, scount, sdt, rbuf, rcount, rdt, root, c);
}

int Rank::PMPI_Gather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                      int rcount, Datatype rdt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt),
                              root,         c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Gather, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_gs(cd, scount, sdt, rcount, rdt, root); rc != MPI_SUCCESS)
        return rc;
    const int me = my_rank_in(cd);
    const int n = static_cast<int>(cd.group.size());
    const int block = scount * datatype_size(sdt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Gather", c, block, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    if (tree)
        return coll_gather_tree(sbuf, me == root ? rbuf : nullptr, block, root, tag, cd)
                   ? MPI_SUCCESS
                   : comm_error(c, coll_fail_code(cd));
    if (me == root) {
        auto* out = static_cast<std::byte*>(rbuf);
        std::memcpy(out + static_cast<std::ptrdiff_t>(root) * block, sbuf,
                    static_cast<std::size_t>(block));
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            if (!internal_recv(out + static_cast<std::ptrdiff_t>(r) * block, block, r,
                               tag, cd))
                return comm_error(c, coll_fail_code(cd));
        }
    } else {
        internal_send(sbuf, block, root, tag, cd);
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                      int rcount, Datatype rdt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt),
                              root,         c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Scatter, a);
    fault_point("MPI_Scatter");
    return PMPI_Scatter(sbuf, scount, sdt, rbuf, rcount, rdt, root, c);
}

int Rank::PMPI_Scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                       int rcount, Datatype rdt, int root, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt),
                              root,         c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Scatter, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_gs(cd, scount, sdt, rcount, rdt, root); rc != MPI_SUCCESS)
        return rc;
    const int me = my_rank_in(cd);
    const int n = static_cast<int>(cd.group.size());
    const int block = rcount * datatype_size(rdt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Scatter", c, block, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    if (tree)
        return coll_scatter_tree(me == root ? sbuf : nullptr, rbuf, block, root, tag, cd)
                   ? MPI_SUCCESS
                   : comm_error(c, coll_fail_code(cd));
    if (me == root) {
        const auto* in = static_cast<const std::byte*>(sbuf);
        std::memcpy(rbuf, in + static_cast<std::ptrdiff_t>(root) * block,
                    static_cast<std::size_t>(block));
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            internal_send(in + static_cast<std::ptrdiff_t>(r) * block, block, r, tag,
                          cd);
        }
    } else if (!internal_recv(rbuf, block, root, tag, cd)) {
        return comm_error(c, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

int Rank::MPI_Allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                        int rcount, Datatype rdt, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt), c};
    instr::FunctionGuard g(world_.registry(), world_.fids().MPI_Allgather, a);
    fault_point("MPI_Allgather");
    return PMPI_Allgather(sbuf, scount, sdt, rbuf, rcount, rdt, c);
}

int Rank::PMPI_Allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                         int rcount, Datatype rdt, Comm c) {
    const std::int64_t a[] = {as_arg(sbuf), scount, static_cast<std::int64_t>(sdt),
                              as_arg(rbuf), rcount, static_cast<std::int64_t>(rdt), c};
    instr::FunctionGuard g(world_.registry(), world_.fids().PMPI_Allgather, a);
    if (!world_.comm_valid(c)) return MPI_ERR_COMM;
    CommData& cd = world_.comm(c);
    if (const int rc = check_gs(cd, scount, sdt, rcount, rdt, 0); rc != MPI_SUCCESS)
        return rc;
    const int me = my_rank_in(cd);
    const int n = static_cast<int>(cd.group.size());
    const int block = rcount * datatype_size(rdt);
    const int tag = next_coll_tag(c);
    const bool tree = world_.config().coll_algo == CollAlgo::Tree && n > 1;
    CollScope cs(*this, "MPI_Allgather", c, block, tree ? 1 : 0);
    if (comm_revoked(cd)) return comm_error(c, MPI_ERR_REVOKED);
    if (world_.death_epoch() != 0 && world_.comm_has_dead_member(cd))
        return comm_error(c, MPI_ERR_PROC_FAILED);
    auto* out = static_cast<std::byte*>(rbuf);
    if (tree) {
        if ((n & (n - 1)) == 0) {
            // Power of two: recursive doubling, each round swapping the
            // m-block slab the partner pair already holds.
            if (block > 0)
                std::memcpy(out + static_cast<std::size_t>(me) * block, sbuf,
                            static_cast<std::size_t>(block));
            int round = 0;
            for (int m = 1; m < n; m <<= 1, ++round) {
                const int peer = me ^ m;
                const int my_off = me & ~(m - 1);
                const int peer_off = peer & ~(m - 1);
                internal_send(out + static_cast<std::size_t>(my_off) * block, m * block,
                              peer, tag + round, cd);
                if (!internal_recv(out + static_cast<std::size_t>(peer_off) * block,
                                   m * block, peer, tag + round, cd))
                    return comm_error(c, coll_fail_code(cd));
            }
        } else {
            if (!coll_gather_tree(sbuf, me == 0 ? rbuf : nullptr, block, 0, tag, cd) ||
                !coll_bcast_tree(out, n * block, 0, tag + 32, cd))
                return comm_error(c, coll_fail_code(cd));
        }
        return MPI_SUCCESS;
    }
    // Gather-to-0 then broadcast of the assembled vector.
    if (me == 0) {
        std::memcpy(out, sbuf, static_cast<std::size_t>(block));
        for (int r = 1; r < n; ++r)
            if (!internal_recv(out + static_cast<std::ptrdiff_t>(r) * block, block, r,
                               tag, cd))
                return comm_error(c, coll_fail_code(cd));
        for (int r = 1; r < n; ++r) internal_send(out, n * block, r, tag + 1, cd);
    } else {
        internal_send(sbuf, block, 0, tag, cd);
        if (!internal_recv(out, n * block, 0, tag + 1, cd))
            return comm_error(c, coll_fail_code(cd));
    }
    return MPI_SUCCESS;
}

}  // namespace m2p::simmpi
