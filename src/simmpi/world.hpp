// World: the shared state of a simmpi universe -- the process table,
// communicators, RMA windows, groups, mailboxes, and the spawn
// machinery.  One World models one cluster run (an "mpirun"): the
// launcher creates the initial processes; MPI_Comm_spawn adds more at
// run time, exactly the situation the paper's dynamic-process-creation
// support must handle (tools cannot know the number of application
// processes until run time, section 3).
//
// Handle tables use the append-only chunked-storage pattern from the
// instrumentation registry (see handle_table.hpp): every lookup on the
// message data path -- comm(), mailbox(), proc(), request(), win() --
// is lock-free; creation and free keep writer mutexes.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "instr/registry.hpp"
#include "pvar/registry.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/handle_table.hpp"
#include "simmpi/recovery.hpp"
#include "simmpi/sched.hpp"
#include "simmpi/types.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::pvar {
class ExportWriter;
}

namespace m2p::simmpi {

class Rank;
class World;

/// An MPI program: what an executable's main() would be on a cluster.
/// Registered under a command name so MPI_Comm_spawn can find it
/// (simulating the process manager's ability to exec a binary).
using ProgramFn = std::function<void(Rank&, const std::vector<std::string>& argv)>;

/// Reusable payload storage: raw uninitialized bytes, so filling it
/// costs one memcpy (a std::vector would zero every byte first, a
/// second full write over the payload).  Buffers cycle sender ->
/// queue -> receiver -> per-mailbox free list -> sender.
class PayloadBuf {
public:
    PayloadBuf() = default;
    PayloadBuf(PayloadBuf&&) = default;
    PayloadBuf& operator=(PayloadBuf&&) = default;

    /// Makes the buffer hold exactly @p n bytes, reallocating only when
    /// the current capacity is too small.  Contents are uninitialized.
    void ensure(std::size_t n) {
        if (cap_ < n) {
            data_.reset(new std::byte[n]);
            cap_ = n;
        }
        size_ = n;
    }
    std::byte* data() { return data_.get(); }
    const std::byte* data() const { return data_.get(); }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }

private:
    std::unique_ptr<std::byte[]> data_;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

/// Rendezvous completion token: delivering one message wakes exactly
/// the one sender (or waiter) parked on it -- never the whole mailbox.
/// Parking is a sched::WaitToken registration: on the fiber engine a
/// signal is a targeted unpark (no polling slice at all); on the
/// thread engine the token degrades to the legacy 5 ms cv slices.
class DeliveryToken {
public:
    void signal() {
        std::shared_ptr<sched::WaitToken> w;
        {
            std::lock_guard lk(mu_);
            done_.store(true, std::memory_order_release);
            w = std::move(waiter_);
        }
        if (w) w->unpark();
    }
    /// Liveness-checked wait: parks until signalled and gives up when
    /// @p abandoned() turns true (peer died, world poisoned, deadline
    /// passed).  @p deadline bounds each park so the deadline clause of
    /// the predicate is guaranteed to be re-evaluated; death and poison
    /// re-checks ride the scheduler's broadcast unpark.  Returns true
    /// when the token was signalled, false when the wait was abandoned.
    /// Signals still win races: the predicate is only consulted while
    /// done_ is false.
    template <class Abandoned>
    bool wait_or_abandon(Abandoned&& abandoned,
                         std::chrono::steady_clock::time_point deadline) {
        if (done_.load(std::memory_order_acquire)) return true;
        const std::shared_ptr<sched::WaitToken>& tok = sched::current_wait_token();
        for (;;) {
            // Consult the predicate BEFORE parking: if the peer died in
            // the past there is no future broadcast to wake us, so an
            // unchecked first park would sleep clear to the deadline.
            if (abandoned()) return done_.load(std::memory_order_acquire);
            {
                std::lock_guard lk(mu_);
                if (done_.load(std::memory_order_acquire)) return true;
                waiter_ = tok;
            }
            tok->park_until(deadline);
            {
                std::lock_guard lk(mu_);
                waiter_.reset();
            }
            if (done_.load(std::memory_order_acquire)) return true;
        }
    }

private:
    std::atomic<bool> done_{false};
    std::mutex mu_;  ///< guards waiter_ registration only
    std::shared_ptr<sched::WaitToken> waiter_;
};

/// One message in flight.
struct Envelope {
    int src_global = -1;
    int src_comm_rank = -1;
    int tag = 0;
    std::int64_t context = 0;  ///< communicator context id
    PayloadBuf data;
    /// Rendezvous token: non-null when the sender blocks until the
    /// receiver has copied the payload (large messages).
    std::shared_ptr<DeliveryToken> delivered;
};

/// Accounting cost of one queued envelope beyond its payload (header,
/// matching metadata).  Real MPI eager buffers are charged per-message
/// overhead too; without it, tiny messages would never exert
/// backpressure.
inline constexpr std::size_t kEnvelopeOverhead = 64;

/// Per-process incoming message queue with eager-protocol flow
/// control: once queued bytes exceed the capacity, senders block --
/// this is what makes the PPerfMark small-messages clients spend
/// their time in MPI_Send, as the paper observes (Fig 3).
///
/// Waiters are split by what they wait for, so wakeups are targeted:
/// msg_waiter parks the owning rank (at most one context) waiting for
/// an arrival and is unparked by the sender that fills the queue;
/// space_waiters holds flow-controlled senders, unparked when the
/// receiver drains bytes.  Rendezvous senders never wait on the
/// mailbox at all -- they wait on their envelope's DeliveryToken.
/// The integer counters mirror the token slots for the watchdog dump.
struct Mailbox {
    std::mutex mu;  ///< guards everything below (stats excepted)
    std::deque<Envelope> queue;
    std::size_t bytes_queued = 0;
    int msg_waiters = 0;
    int space_waiters = 0;

    // Transport accounting for the pvar plane (simmpi.mailbox.*).
    // Relaxed atomics bumped at the push/drain/park sites while mu is
    // already held, but readable lock-free by the snapshot aggregator
    // -- a sampler never touches a mailbox mutex.
    std::atomic<std::uint64_t> eager_msgs{0};       ///< envelopes queued eagerly
    std::atomic<std::uint64_t> rendezvous_msgs{0};  ///< envelopes queued with a token
    std::atomic<std::uint64_t> delivered_msgs{0};   ///< envelopes drained by a receiver
    std::atomic<std::uint64_t> delivered_bytes{0};  ///< payload bytes drained
    std::atomic<std::uint64_t> flow_stalls{0};      ///< sender parks for eager headroom
    std::atomic<std::uint64_t> bytes_queued_hwm{0};  ///< high-water of bytes_queued

    /// Records a just-queued envelope in the stats; caller holds mu
    /// (bytes_queued already includes the envelope).
    void note_queued_locked(bool rendezvous) {
        (rendezvous ? rendezvous_msgs : eager_msgs)
            .fetch_add(1, std::memory_order_relaxed);
        if (bytes_queued > bytes_queued_hwm.load(std::memory_order_relaxed))
            bytes_queued_hwm.store(bytes_queued, std::memory_order_relaxed);
    }
    /// Records a drained envelope; caller holds mu.
    void note_delivered_locked(std::size_t payload_bytes) {
        delivered_msgs.fetch_add(1, std::memory_order_relaxed);
        delivered_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
    }
    std::shared_ptr<sched::WaitToken> msg_waiter;
    std::vector<std::shared_ptr<sched::WaitToken>> space_tokens;
    std::vector<PayloadBuf> free_bufs;  ///< recycled payload buffers

    static constexpr std::size_t kMaxFreeBufs = 64;
    static constexpr std::size_t kMaxRecycledCapacity = 64 * 1024;

    /// Pops a recycled buffer (or grows a fresh one) sized to @p n.
    /// Caller holds mu.
    PayloadBuf take_buf_locked(std::size_t n) {
        PayloadBuf b;
        if (!free_bufs.empty()) {
            b = std::move(free_bufs.back());
            free_bufs.pop_back();
        }
        b.ensure(n);
        return b;
    }

    /// Returns a drained buffer to the free list (bounded; oversized
    /// rendezvous buffers are dropped).  Caller holds mu.
    void recycle_locked(PayloadBuf&& b) {
        if (b.capacity() == 0 || b.capacity() > kMaxRecycledCapacity) return;
        if (free_bufs.size() >= kMaxFreeBufs) return;
        free_bufs.push_back(std::move(b));
    }
};

/// One simulated MPI process (a fiber, or an OS thread on the legacy
/// engine).  finished/cpu_clock_ready are atomic publish flags: the
/// owning context stores its result fields first, then the flag;
/// lock-free readers load the flag before touching the fields.
struct ProcData {
    int global_rank = -1;
    std::string node;        ///< simulated hostname, e.g. "node2"
    std::string program;     ///< command name ("a.out", "child", ...)
    Comm comm_world = MPI_COMM_NULL;
    Comm parent_intercomm = MPI_COMM_NULL;  ///< for spawned children
    clockid_t cpu_clock{};   ///< per-thread CPU clock (thread engine only)
    std::atomic<bool> cpu_clock_ready{false};
    /// Fiber engine: CPU nanoseconds accumulated at every fiber
    /// switch-out (the worker charges each slice to the rank it ran).
    std::atomic<std::int64_t> cpu_ns{0};
    std::atomic<bool> finished{false};
    /// CPU seconds at exit (the thread's clock dies with the thread).
    double final_cpu_seconds = 0.0;
    /// Set (before finished) when the rank died instead of returning;
    /// liveness checks read it to unwedge peers.  The epitaph with the
    /// full story lives in the world's table.
    std::atomic<bool> dead{false};
    /// Dispatch-boundary breadcrumbs for the join_all watchdog dump:
    /// the MPI_* entry point the rank was last seen in (a string
    /// literal, hence the raw pointer) and how many it has made.
    std::atomic<const char*> last_call{nullptr};
    std::atomic<std::uint64_t> calls_made{0};
};

/// Shared-memory combining cell for the node-aware tree allreduce:
/// one per (communicator, simulated node).  Ranks that share a node
/// fold their contributions into `acc` under the comm's shm_mu --
/// intra-node traffic never touches a mailbox, exactly the shm
/// fast path LAM's sysv RPI and MPICH's shared-memory device use.
/// The node leader carries the folded value through the cross-node
/// exchange and publishes the result by bumping `gen`.
struct ShmCombineCell {
    std::uint64_t gen = 0;  ///< bumps when a round's outcome publishes
    int arrived = 0;        ///< arrivals in the current round
    bool failed = false;    ///< a member bailed (death/poison/deadline)
    std::vector<std::byte> acc;     ///< in-progress fold
    std::vector<std::byte> result;  ///< published outcome of round gen-1
    bool result_failed = false;
    std::shared_ptr<sched::WaitToken> leader_waiter;  ///< leader awaiting full node
    std::vector<std::shared_ptr<sched::WaitToken>> waiters;  ///< followers
};

struct CommData {
    Comm handle = MPI_COMM_NULL;
    std::int64_t context = 0;
    std::vector<int> group;         ///< local group: global ranks
    std::vector<int> remote_group;  ///< non-empty for intercommunicators
    bool is_inter = false;
    std::atomic<bool> freed{false};
    /// Members that have called MPI_Comm_free; payload storage is
    /// released when the count reaches the full membership (at which
    /// point no member can still be inside an operation on this comm).
    std::atomic<int> free_count{0};
    /// Per-communicator error handler (MPI_ERRORS_ARE_FATAL or
    /// MPI_ERRORS_RETURN), applied to fault-class errors only.
    std::atomic<int> errhandler{MPI_ERRORS_RETURN};
    /// Set (once, never cleared) by MPI_Comm_revoke: every pending and
    /// future operation on this communicator fails with
    /// MPI_ERR_REVOKED.  Checked with relaxed loads in wait-loop
    /// predicates -- NOT gated on death_epoch, because a revoke can
    /// happen with zero deaths.
    std::atomic<bool> revoked{false};
    std::string name;  ///< guarded by World::name_mu_

    // ULFM-style recovery rendezvous (MPI_Comm_agree / MPI_Comm_shrink
    // / MPI_Comm_split).  agree and shrink keep working on a revoked
    // communicator and excuse dead members; split is an ordinary
    // collective that requires full participation.
    FtRendezvous agree_rv;
    FtRendezvous shrink_rv;
    FtRendezvous split_rv;

    // Internal (uninstrumented) central barrier state.  Arrivals park
    // their own wait token in bar_waiters; the closing rank bumps the
    // generation and unparks the collected tokens -- a targeted fan-out
    // instead of a broadcast condition variable.
    std::mutex bar_mu;
    int bar_count = 0;
    std::uint64_t bar_gen = 0;
    std::vector<std::shared_ptr<sched::WaitToken>> bar_waiters;

    // Spawn rendezvous: root publishes the new intercomm handle here.
    Comm spawn_result = MPI_COMM_NULL;
    // Collective MPI_Win_create rendezvous: rank 0 publishes the handle.
    Win win_result = MPI_WIN_NULL;

    // Node-aware collective layout + combining cells, built lazily
    // under shm_mu on first tree allreduce (placement is fixed for the
    // comm's lifetime).  shm_leaders holds one comm rank per node (the
    // lowest on that node); shm_node_of maps comm rank -> node index.
    std::mutex shm_mu;
    bool shm_layout_built = false;
    std::vector<int> shm_leaders;
    std::vector<int> shm_node_of;
    std::vector<int> shm_node_size;
    std::vector<ShmCombineCell> shm_cells;
};

struct GroupData {
    Group handle = MPI_GROUP_NULL;
    std::vector<int> global_ranks;
    std::atomic<bool> freed{false};
};

struct InfoData {
    Info handle = MPI_INFO_NULL;
    std::map<std::string, std::string> kv;
    std::atomic<bool> freed{false};
};

/// Exposure epoch for post/start/complete/wait on one target.  All
/// parking is token-based: origins blocked in MPI_Win_start /
/// MPI_Win_complete each register their own DeliveryToken in
/// post_waiters (MPI_Win_post signals each exactly once), and the
/// target blocked in MPI_Win_wait parks on wait_token (the last
/// MPI_Win_complete signals it) -- no condition variable is ever
/// broadcast to a herd of unrelated waiters.
struct Exposure {
    bool exposed = false;
    std::vector<int> group;      ///< origin global ranks allowed this epoch
    std::vector<int> started;    ///< origins that matched this epoch
    int completes = 0;
    /// Target parked in MPI_Win_wait for this epoch (at most one).
    std::shared_ptr<DeliveryToken> wait_token;
    /// Origins parked until this target's exposure epoch opens.
    std::vector<std::shared_ptr<DeliveryToken>> post_waiters;
};

/// One parked MPI_Win_lock caller: an MCS-style queue node carrying
/// its own completion token.  The granter sets `granted` (or the
/// window-free drain sets `aborted`) under the shard mutex before
/// signalling, so the woken locker reads an unambiguous verdict.
struct LockWaiter {
    int origin = -1;
    int lock_type = 0;
    bool granted = false;
    bool aborted = false;  ///< window freed underneath the waiter
    std::shared_ptr<DeliveryToken> token = std::make_shared<DeliveryToken>();
};

/// Passive-target lock state for one target member: explicit holder
/// identity (so waiters can bail when a holder dies with the lock
/// held) plus a FIFO waiter queue.  Unlock hands the lock to exactly
/// the head waiter -- or the maximal run of shared waiters at the
/// head -- instead of notify_all'ing every parked locker to re-fight.
struct PassiveLock {
    int exclusive_holder = -1;        ///< global rank, -1 when not held
    std::vector<int> shared_holders;  ///< global ranks (repeats allowed)
    std::deque<std::shared_ptr<LockWaiter>> waiters;
    bool held() const { return exclusive_holder != -1 || !shared_holders.empty(); }
};

struct WinMember {
    std::byte* base = nullptr;
    std::int64_t size = 0;
    int disp_unit = 1;
};

/// A queued RMA data-transfer op (Mpich flavor defers transfers from
/// MPI_Put/Get/Accumulate to MPI_Win_complete, so the blocking happens
/// in complete rather than start -- the implementation freedom the
/// MPI-2 standard grants and the paper's section 5.2.1.1 observes).
/// Get never stages a payload: the target bytes are copied straight
/// into origin_addr when the op completes on the origin's thread.
struct PendingRmaOp {
    enum class Kind { Put, Get, Accumulate } kind = Kind::Put;
    int origin_global = -1;
    std::vector<std::byte> payload;   ///< for put/accumulate
    std::byte* origin_addr = nullptr; ///< for get
    std::int64_t target_disp = 0;
    std::int64_t nbytes = 0;
    Datatype dt = MPI_DATATYPE_NULL;
    Op op = MPI_OP_NULL;
};

/// Tool-visible Table-1 accounting for one window.  The data plane
/// never touches these on the per-op hot path: each rank stages its
/// increments thread-locally (Rank::RmaStage) and flushes them here
/// with one fetch_add per dirty field at each RMA synchronization
/// call, so totals stay bit-exact (the histogram contract from the
/// dispatch fast path) while Put/Get/Accumulate pay zero shared
/// atomic traffic.
struct WinCounters {
    std::atomic<std::int64_t> put_ops{0}, get_ops{0}, acc_ops{0};
    std::atomic<std::int64_t> put_bytes{0}, get_bytes{0}, acc_bytes{0};
    std::atomic<std::int64_t> sync_ops{0};
    std::atomic<std::int64_t> at_sync_wait_ns{0};  ///< fence/start/complete/wait
    std::atomic<std::int64_t> pt_sync_wait_ns{0};  ///< lock/unlock
};

/// Per-target-rank shard of a window: everything one target's RMA
/// traffic touches -- its memory descriptor, exposure epoch, passive
/// lock, and the staged-op (MPSC) queue -- behind its own mutex, so
/// origins driving different targets of the same window never
/// contend.  Shards are created collectively inside MPI_Win_create
/// (between its barriers); after the final creation barrier the shard
/// map is immutable, so lookups are unsynchronized reads.
struct WinShard {
    std::mutex mu;  ///< guards everything below
    bool has_member = false;
    WinMember member;
    Exposure exposure;
    PassiveLock lock;
    /// Ops staged by origins for this target (Mpich PSCW deferral);
    /// each origin drains its own entries at MPI_Win_complete.
    std::vector<PendingRmaOp> staged;
};

struct WinData {
    Win handle = MPI_WIN_NULL;
    int impl_id = -1;  ///< small reused id, as real MPIs reuse them (paper 4.2.1)
    Comm comm = MPI_COMM_NULL;
    Comm shadow_comm = MPI_COMM_NULL;  ///< Lam keeps window names in a comm (Fig 23)
    std::string name;  ///< guarded by World::name_mu_
    std::atomic<bool> freed{false};

    std::mutex mu;  ///< guards shard-map mutation (MPI_Win_create only)
    std::map<int, WinShard> shards;  ///< by target global rank

    /// Shard lookup (read-only map walk; see WinShard's immutability
    /// note).  Null for ranks that are not window members.
    WinShard* shard(int global_rank) {
        const auto it = shards.find(global_rank);
        return it == shards.end() ? nullptr : &it->second;
    }

    // Fence epoch (internal barrier for the Mpich flavor): arrivals
    // park on per-rank tokens; the closing rank signals each exactly
    // once instead of broadcasting on a shared condition variable.
    std::mutex fence_mu;
    int fence_count = 0;
    std::uint64_t fence_gen = 0;
    std::vector<std::shared_ptr<DeliveryToken>> fence_waiters;

    WinCounters counters;  ///< epoch-batched Table-1 accounting
};

/// One file in the simulated parallel filesystem: a shared byte array
/// all processes access through MPI-I/O (DESIGN.md: the stand-in for
/// the cluster's PVFS/NFS volume).
struct StoredFile {
    std::mutex mu;
    std::vector<std::byte> data;
};

struct FileData {
    File handle = MPI_FILE_NULL;
    std::string filename;
    std::shared_ptr<StoredFile> store;
    Comm comm = MPI_COMM_NULL;
    int amode = 0;
    std::atomic<bool> closed{false};
    bool delete_on_close = false;
    Info info = MPI_INFO_NULL;  ///< hints given at open / set_view
    std::mutex mu;  ///< guards pointers and the view below
    std::map<int, std::int64_t> individual_ptr;  ///< per global rank, in etypes
    std::int64_t shared_ptr_ = 0;                ///< in etypes
    // File view (MPI_File_set_view, contiguous): transfers address the
    // file starting at view_disp, in units of view_etype.
    std::int64_t view_disp = 0;
    Datatype view_etype = MPI_BYTE;
};

enum class RequestKind { Null, SendToken, RecvDeferred, Completed };

struct RequestData {
    Request handle = MPI_REQUEST_NULL;
    RequestKind kind = RequestKind::Null;
    bool live = false;  ///< slot holds an outstanding request
    int owner_global = -1;
    std::shared_ptr<DeliveryToken> delivered;  ///< SendToken
    int dest_mailbox = -1;            ///< destination rank of the send
    // RecvDeferred parameters:
    void* buf = nullptr;
    int count = 0;
    Datatype dt = MPI_DATATYPE_NULL;
    int src = MPI_ANY_SOURCE;
    int tag = MPI_ANY_TAG;
    Comm comm = MPI_COMM_NULL;
};

/// Interposition seam for the profiling (PMPI) library: the paper's
/// intercept method wraps MPI_Comm_spawn and MPI_Init in a wrapper
/// library.  When installed, Rank::MPI_Comm_spawn routes here instead
/// of straight to PMPI_Comm_spawn.
struct SpawnArgs {
    std::string command;
    std::vector<std::string> argv;
    int maxprocs = 0;
    Info info = MPI_INFO_NULL;
    int root = 0;
    Comm comm = MPI_COMM_NULL;
};

class ProfilingLayer {
public:
    virtual ~ProfilingLayer() = default;
    /// Wrapper for MPI_Comm_spawn.  Implementations typically adjust
    /// @p args and call rank.PMPI_Comm_spawn(...).  Return MPI result.
    virtual int wrap_spawn(Rank& rank, SpawnArgs args, Comm* intercomm,
                           std::vector<int>* errcodes) = 0;
    /// Wrapper hook fired inside MPI_Init.
    virtual void wrap_init(Rank& /*rank*/) {}
};

/// Ids of every function simmpi registers with the instrumentation
/// substrate, cached so trampolines avoid name lookups.
struct FuncIds {
    using F = instr::FuncId;
    // clang-format off
    F MPI_Init{}, PMPI_Init{}, MPI_Finalize{}, PMPI_Finalize{};
    F MPI_Send{}, PMPI_Send{}, MPI_Recv{}, PMPI_Recv{};
    F MPI_Ssend{}, PMPI_Ssend{};
    F MPI_Isend{}, PMPI_Isend{}, MPI_Irecv{}, PMPI_Irecv{};
    F MPI_Wait{}, PMPI_Wait{}, MPI_Waitall{}, PMPI_Waitall{};
    F MPI_Sendrecv{}, PMPI_Sendrecv{};
    F MPI_Barrier{}, PMPI_Barrier{};
    F MPI_Bcast{}, PMPI_Bcast{}, MPI_Reduce{}, PMPI_Reduce{};
    F MPI_Allreduce{}, PMPI_Allreduce{};
    F MPI_Gather{}, PMPI_Gather{}, MPI_Scatter{}, PMPI_Scatter{};
    F MPI_Allgather{}, PMPI_Allgather{};
    F MPI_Win_create{}, PMPI_Win_create{}, MPI_Win_free{}, PMPI_Win_free{};
    F MPI_Win_fence{}, PMPI_Win_fence{};
    F MPI_Win_start{}, PMPI_Win_start{}, MPI_Win_complete{}, PMPI_Win_complete{};
    F MPI_Win_post{}, PMPI_Win_post{}, MPI_Win_wait{}, PMPI_Win_wait{};
    F MPI_Win_lock{}, PMPI_Win_lock{}, MPI_Win_unlock{}, PMPI_Win_unlock{};
    F MPI_Put{}, PMPI_Put{}, MPI_Get{}, PMPI_Get{};
    F MPI_Accumulate{}, PMPI_Accumulate{};
    F MPI_Comm_spawn{}, PMPI_Comm_spawn{};
    F MPI_Comm_get_parent{}, PMPI_Comm_get_parent{};
    F MPI_Comm_set_name{}, PMPI_Comm_set_name{};
    F MPI_Win_set_name{}, PMPI_Win_set_name{};
    F MPI_Abort{}, PMPI_Abort{};
    F io_read{}, io_write{};        ///< Mpich socket transport ("read"/"write")
    F sysv_recv{}, sysv_send{};     ///< Lam sysv RPI transport
    // MPI-I/O (the remaining MPI-2 feature the paper's conclusion
    // lists as in-progress work).
    F MPI_File_open{}, PMPI_File_open{}, MPI_File_close{}, PMPI_File_close{};
    F MPI_File_read{}, PMPI_File_read{}, MPI_File_write{}, PMPI_File_write{};
    F MPI_File_read_at{}, PMPI_File_read_at{};
    F MPI_File_write_at{}, PMPI_File_write_at{};
    F MPI_File_read_all{}, PMPI_File_read_all{};
    F MPI_File_write_all{}, PMPI_File_write_all{};
    F MPI_File_read_shared{}, PMPI_File_read_shared{};
    F MPI_File_write_shared{}, PMPI_File_write_shared{};
    F MPI_File_seek{}, PMPI_File_seek{};
    F MPI_File_sync{}, PMPI_File_sync{};
    F MPI_File_delete{}, PMPI_File_delete{};
    // clang-format on
};

/// MPIR debugging-interface process descriptor (paper section 4.2.2:
/// the attach method would use MPIR_proctable to find spawned
/// processes; LAM and MPICH2 did not support it at the time, so the
/// interface is disable-able to reproduce that gap).
struct MpirProcDesc {
    std::string host_name;
    std::string executable_name;
    int global_rank = -1;
};

/// Which collective algorithms the transport uses.  Tree is the
/// production shape (binomial / recursive-doubling, log depth); Flat
/// pins the legacy linear root-loops so paper-validation runs keep the
/// message pattern the known-bottleneck figures were built on.
enum class CollAlgo { Flat, Tree };

/// How rank bodies are executed.  Fiber is the production engine:
/// stackful fibers multiplexed over the work-stealing scheduler pool,
/// with park/unpark blocking (DESIGN.md section 12).  Thread is the
/// legacy thread-per-rank engine, retained as an in-binary baseline
/// and for tests that pin OS-thread semantics.
enum class RankEngine { Fiber, Thread };

class World {
public:
    struct Config {
        Flavor flavor = Flavor::Lam;
        /// Rank execution engine (fibers by default).
        RankEngine rank_engine = RankEngine::Fiber;
        /// Scheduler worker threads for the fiber engine; 0 picks
        /// hardware_concurrency.
        std::size_t sched_workers = 0;
        /// Usable stack bytes per fiber (plus a guard page).
        std::size_t fiber_stack_bytes = 256 * 1024;
        std::size_t eager_limit = 4096;        ///< bytes; larger sends rendezvous
        std::size_t mailbox_capacity = 65536;  ///< eager bytes queued before senders block
        CollAlgo coll_algo = CollAlgo::Tree;   ///< collective algorithm family
        bool mpir_enabled = false;
        /// Simulated per-process daemon start cost (seconds) charged by
        /// the intercept spawn method (paper: "adds overhead to the
        /// spawning operation").
        double daemon_start_cost = 0.002;
        /// Simulated base cost of creating one process via spawn.
        double spawn_base_cost = 0.0005;
        /// Total attempts do_spawn makes against a transient injected
        /// spawn fault (fail_spawn specs fire once, so the retry sees a
        /// clean consult).  1 = no retry, preserving the PR 3 contract.
        int spawn_retry_attempts = 1;
        /// Backoff before the first retry; doubles per attempt.
        double spawn_retry_backoff_seconds = 0.002;
        /// Start processes paused until release_start_gate() -- how
        /// Paradyn creates processes: stopped, so initial
        /// instrumentation is in place before user code runs.
        bool start_paused = false;
        /// Simulated filesystem speed for MPI-I/O transfers.  Real
        /// file access is what made I/O "traditionally a performance
        /// bottleneck" (paper section 3); the simulated store charges
        /// a per-operation latency plus a per-byte cost.
        double file_latency_seconds = 50e-6;
        double file_bandwidth_bytes_per_second = 200e6;
        /// Deterministic fault-injection schedule (null = fault free).
        std::shared_ptr<FaultPlan> faults;
        /// Error handler new communicators start with.
        int default_errhandler = MPI_ERRORS_RETURN;
        /// Backstop for every liveness-checked blocking wait: a wait
        /// that makes no progress for this long returns an error even
        /// when no peer is provably dead (e.g. a lost-message cycle).
        double wait_deadline_seconds = 30.0;
        /// join_all watchdog: ranks still unfinished after this long
        /// get their state dumped to stderr, then the world is
        /// poisoned (and aborted if that does not unwedge them).
        double join_deadline_seconds = 120.0;
        /// Always-on flight recorder (per-thread event rings).  Turn
        /// off only for overhead ablations; the capacity is events per
        /// recording thread, rounded up to a power of two -- older
        /// events are overwritten, with exact drop counters.
        bool trace_enabled = true;
        std::size_t trace_ring_capacity = 8192;
    };

    World(instr::Registry& reg, Config cfg);
    ~World();
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    instr::Registry& registry() { return reg_; }
    const Config& config() const { return cfg_; }
    Flavor flavor() const { return cfg_.flavor; }
    const FuncIds& fids() const { return fids_; }

    // -- Flight recorder ---------------------------------------------------
    /// Null when Config::trace_enabled is false.
    trace::FlightRecorder* recorder() const { return recorder_.get(); }
    /// Drops one instant event into the calling thread's ring; a no-op
    /// (one pointer test) when tracing is disabled.
    /// Folds a data-plane payload into the MpiCall span the recorder
    /// will emit when the enclosing MPI_ trampoline returns -- no extra
    /// ring slot or timestamp on the hot path.  No-op when tracing is
    /// off or no user-boundary call is active on this thread.
    void trace_call_payload(trace::EventKind kind, std::int64_t a = 0,
                            std::int64_t b = 0, std::int64_t c = 0) {
        if (recorder_)
            instr::set_boundary_payload(static_cast<std::uint32_t>(kind), a, b, c);
    }
    void trace_event(trace::EventKind kind, int rank, const char* name,
                     std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0) {
        if (recorder_) recorder_->record(kind, rank, name, a, b, c);
    }
    /// Renders the postmortem dump (stderr, plus files under
    /// $M2P_POSTMORTEM_DIR when set) correlated with the epitaph
    /// table.  Called from poison() and the join_all watchdog; emits at
    /// most once per world.  Safe while rank threads are still
    /// recording.
    void emit_postmortem(const char* why);

    // -- Performance variables (MPI_T-style pvar plane) --------------------
    /// The world's pvar registry.  Every plane registers its counters
    /// here at world construction (instr.dispatch.*, simmpi.mailbox.*,
    /// trace.ring.*, faults.epitaphs) or object creation
    /// (rma.table1.win<h>.*); tool-side providers (pc.experiments.*)
    /// attach through a pvar::ProviderScope so they can detach before
    /// the world dies.  Setting M2P_PVAR_EXPORT additionally streams
    /// snapshots to an mmap file an external sampler can read live.
    pvar::Registry& pvars() { return pvars_; }
    /// Number of recorded epitaphs, lock-free (the faults.epitaphs
    /// pvar source; equals epitaphs().size() at quiescence).
    std::uint64_t epitaph_count() const {
        return epitaph_count_.load(std::memory_order_acquire);
    }

    /// Aggregated transport stats over every mailbox (lock-free sums
    /// of the per-mailbox relaxed counters; hwm is the max).
    struct MailboxStats {
        std::uint64_t eager_msgs = 0;
        std::uint64_t rendezvous_msgs = 0;
        std::uint64_t delivered_msgs = 0;
        std::uint64_t delivered_bytes = 0;
        std::uint64_t flow_stalls = 0;
        std::uint64_t bytes_queued = 0;      ///< gauge: currently queued
        std::uint64_t bytes_queued_hwm = 0;  ///< max over mailboxes
    };
    MailboxStats mailbox_stats() const;

    // -- Program registry ------------------------------------------------
    void register_program(const std::string& command, ProgramFn fn);
    bool has_program(const std::string& command) const;
    /// Returns the registered program (empty function if unknown).
    ProgramFn find_program(const std::string& command) const;

    // -- Process management ----------------------------------------------
    /// Creates one process (thread) running @p command.  Returns its
    /// global rank.  @p comm_world is the world communicator the
    /// process belongs to; pass MPI_COMM_NULL to defer (launcher sets
    /// it before starting).
    int create_proc(const std::string& node, const std::string& command);
    /// Starts the thread for @p global_rank.  The proc's comm_world
    /// must be set.  @p argv is passed to the program.
    void start_proc(int global_rank, std::vector<std::string> argv);
    void set_proc_comm_world(int global_rank, Comm cw, Comm parent = MPI_COMM_NULL);
    /// Releases processes held by Config::start_paused.  Idempotent;
    /// also releases processes started after the call.
    void release_start_gate();
    /// Blocks until every started process has returned.
    void join_all();

    std::size_t proc_count() const;
    const ProcData& proc(int global_rank) const;
    /// Mutable proc slot, for the dispatch boundary's breadcrumb
    /// stores (last_call / calls_made) on the owning rank thread.
    ProcData& proc_data(int global_rank);
    std::vector<int> live_procs() const;
    /// CPU seconds consumed so far by the process's thread.
    double proc_cpu_seconds(int global_rank) const;
    bool all_finished() const;

    // -- Failure plane -----------------------------------------------------
    /// True when @p global_rank died (epitaph recorded) instead of
    /// returning normally.
    bool rank_dead(int global_rank) const;
    /// True when @p global_rank will never touch MPI again: dead or
    /// cleanly finished.  Blocking waits bail on unreachable peers
    /// (after draining anything already queued).
    bool rank_unreachable(int global_rank) const;
    /// Bumped on every death and on poison; fault-free wait loops pay
    /// one relaxed load instead of scanning peers.
    std::uint64_t death_epoch() const {
        return death_epoch_.load(std::memory_order_acquire);
    }
    /// Records a rank's death: marks the proc dead, appends the
    /// epitaph, bumps the death epoch, and invokes the death observer
    /// (tool-side retirement).  Idempotent per rank.
    void record_death(Epitaph e);
    std::vector<Epitaph> epitaphs() const;
    /// MPI_ERRORS_ARE_FATAL / MPI_Abort: marks the whole world doomed.
    /// Every rank unwinds at its next dispatch or liveness-checked
    /// wait.
    void poison(int errorcode);
    bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }
    int poison_code() const { return poison_code_.load(std::memory_order_acquire); }
    /// True when any member (local or remote group) of @p cd is dead.
    bool comm_has_dead_member(const CommData& cd) const;
    bool any_dead(const std::vector<int>& global_ranks) const;
    /// Revokes @p c: sets the comm's revoked flag, traces the Revoke
    /// lifecycle event, and broadcasts a wakeup to every parked fiber
    /// so pending operations on the comm fail with MPI_ERR_REVOKED now
    /// rather than at the next 5 ms thread-mode slice.  Idempotent.
    void revoke_comm(Comm c, int by_global_rank);
    /// Set when a shrink completes on a world that has lost ranks: the
    /// survivors rebuilt a communicator and kept going, so the session
    /// outcome is Recovered rather than RanksLost.
    void mark_recovered();
    bool recovered() const { return recovered_.load(std::memory_order_acquire); }
    /// Observer invoked (serialized, outside World locks) on each rank
    /// death -- the PerfTool registers here to retire the dead
    /// process's resources.  Pass nullptr to unregister.
    void set_death_observer(std::function<void(const Epitaph&)> obs);
    /// Per-rank state dump (last call, mailbox depth, waiter counts)
    /// for the join_all watchdog and post-mortem debugging.
    void dump_state(const char* why) const;

    // -- Handles -----------------------------------------------------------
    // Lookups (comm/group/info/win/request/file/mailbox/proc) are
    // lock-free; create/free operations serialize on writer mutexes.
    Comm create_comm(std::vector<int> group, std::vector<int> remote = {},
                     bool is_inter = false);
    CommData& comm(Comm c);
    bool comm_valid(Comm c) const;
    /// Records one member's MPI_Comm_free.  When every member of the
    /// communicator has freed it, the handle is retired and its payload
    /// storage (groups, name) is released -- long-running worlds no
    /// longer grow their comm table payload without bound.
    void release_comm_member(Comm c);
    Group create_group(std::vector<int> global_ranks);
    GroupData& group(Group g);
    bool group_valid(Group g) const;
    Info create_info();
    InfoData& info(Info i);
    bool info_valid(Info i) const;
    Win create_win(Comm c);
    WinData& win(Win w);
    bool win_valid(Win w) const;
    void release_win_impl_id(int impl_id);
    /// Snapshot of a window's Table-1 RMA counters with the derived
    /// totals (rma_ops/rma_bytes/rma_sync_wait) computed.  Valid for
    /// freed windows too: the handle-table slot persists, so tools can
    /// read final totals after MPI_Win_free.
    RmaCounterSnapshot win_rma_counters(Win w);
    Request create_request(RequestData rd);
    RequestData& request(Request r);
    bool request_valid(Request r) const;
    void free_request(Request r);

    Mailbox& mailbox(int global_rank);

    // -- Simulated parallel filesystem ----------------------------------
    /// Finds or (when @p create) creates a stored file.  Returns null
    /// when the file does not exist and create is false.
    std::shared_ptr<StoredFile> fs_lookup(const std::string& filename, bool create);
    bool fs_exists(const std::string& filename) const;
    bool fs_delete(const std::string& filename);
    File create_file(std::string filename, std::shared_ptr<StoredFile> store, Comm comm,
                     int amode, bool delete_on_close);
    FileData& file(File f);
    bool file_valid(File f) const;

    // -- Tool-facing runtime services (used by MDL snippets) --------------
    /// MPI implementation id of a window handle (may be reused across
    /// create/free cycles -- the tool's N-M scheme handles that).
    std::int64_t win_impl_id(std::int64_t handle) const;
    std::int64_t comm_context(std::int64_t handle) const;
    std::string object_name_of_win(Win w) const;
    std::string object_name_of_comm(Comm c) const;
    void set_comm_name(Comm c, const std::string& name);
    void set_win_name(Win w, const std::string& name);
    void set_type_name(Datatype dt, std::string name);
    std::string type_name(Datatype dt) const;

    // -- Profiling layer ----------------------------------------------------
    void set_profiling_layer(ProfilingLayer* layer) { profiling_ = layer; }
    ProfilingLayer* profiling_layer() const { return profiling_; }

    // -- Spawn -------------------------------------------------------------
    /// Executes the actual spawn on behalf of the root rank: creates
    /// @p maxprocs children running @p command, builds their world
    /// communicator and the parent<->child intercommunicator, starts
    /// their threads.  Returns the intercomm handle (parent side).
    Comm do_spawn(const std::string& command, const std::vector<std::string>& argv,
                  int maxprocs, Comm parent_comm);
    /// Nodes new processes are placed on (round-robin).
    void set_node_pool(std::vector<std::string> nodes);
    const std::vector<std::string>& node_pool() const { return nodes_; }

    // -- MPIR debugging interface stub --------------------------------------
    bool mpir_enabled() const { return cfg_.mpir_enabled; }
    void set_mpir_enabled(bool on) { cfg_.mpir_enabled = on; }
    /// Snapshot of MPIR_proctable (empty when the interface is off,
    /// as with LAM/MPICH2 at the time of the paper).
    std::vector<MpirProcDesc> mpir_proctable() const;

private:
    void register_mpi_functions();
    void register_pvars();

    instr::Registry& reg_;
    Config cfg_;
    FuncIds fids_;

    // Lock-free handle tables (lookup side); each serializes its own
    // appends internally.  Procs and mailboxes are created together
    // under mu_ so their indices stay aligned.
    HandleTable<ProcData, 0> procs_;
    HandleTable<Mailbox, 0> mailboxes_;
    HandleTable<CommData> comms_;
    HandleTable<GroupData> groups_;
    HandleTable<InfoData> infos_;
    HandleTable<WinData> wins_;
    HandleTable<RequestData> requests_;
    HandleTable<FileData> files_;
    std::atomic<std::int64_t> next_context_{100};

    /// Recycled request slots (mirrors the free_win_impl_ids_ scheme):
    /// completed requests return their handle here instead of growing
    /// the table forever.
    mutable std::mutex request_free_mu_;
    std::vector<Request> free_requests_;

    /// Guards MPI-2 object names (set/get_name are rare control-plane
    /// calls; the data path never touches them).
    mutable std::mutex name_mu_;

    /// Runs a rank body on the calling context: start gate, instr TLS
    /// setup, the program itself, death/epitaph handling, CPU-time
    /// publication, and the finished/unfinished bookkeeping.  Shared
    /// by both engines.
    void run_rank_body(int global_rank, std::vector<std::string> argv,
                       ProgramFn fn);
    /// Lazily constructs the fiber scheduler (fiber engine only).
    sched::Scheduler* scheduler_locked();

    mutable std::mutex mu_;  ///< guards control-plane state below
    /// Completion plane for join_all: bodies still running.  The last
    /// finisher decrements under join_mu_ and notifies join_cv_ -- no
    /// polling loop (DESIGN.md 12).  Declared BEFORE threads_/sched_
    /// on purpose: members declared later are destroyed first, so the
    /// scheduler's destructor (which joins its workers, quiescing
    /// every fiber epilogue) runs while these are still alive.
    std::atomic<std::size_t> unfinished_{0};
    mutable std::mutex join_mu_;
    mutable std::condition_variable join_cv_;
    std::deque<std::thread> threads_;  ///< thread engine; stable refs while spawn appends
    std::size_t joined_ = 0;
    std::unique_ptr<sched::Scheduler> sched_;  ///< fiber engine (lazy)
    std::size_t started_ = 0;  ///< rank bodies launched (either engine)
    std::map<std::string, std::shared_ptr<StoredFile>> filesystem_;
    std::map<Datatype, std::string> type_names_;
    std::map<std::string, ProgramFn> programs_;
    std::vector<std::string> nodes_{"node0"};
    std::size_t next_node_ = 0;
    /// Start gate: paused rank bodies park here until release.
    std::vector<std::shared_ptr<sched::WaitToken>> start_waiters_;
    bool start_released_ = false;
    std::vector<int> free_win_impl_ids_;
    int next_win_impl_id_ = 0;
    ProfilingLayer* profiling_ = nullptr;

    // Failure plane: the epitaph table and the world-poison flag.
    mutable std::mutex epitaph_mu_;
    std::vector<Epitaph> epitaphs_;
    std::atomic<std::uint64_t> epitaph_count_{0};  ///< lock-free mirror for pvars
    std::atomic<std::uint64_t> death_epoch_{0};
    std::atomic<bool> poisoned_{false};
    std::atomic<bool> recovered_{false};
    std::atomic<int> poison_code_{MPI_SUCCESS};
    /// Serializes observer invocation against set_death_observer so
    /// the tool can unregister without racing an in-flight callback.
    mutable std::mutex observer_mu_;
    std::function<void(const Epitaph&)> death_observer_;

    // Flight recorder (null when Config::trace_enabled is false).
    std::unique_ptr<trace::FlightRecorder> recorder_;
    std::atomic<bool> postmortem_emitted_{false};

    // Pvar plane.  The registry is declared after every provider it
    // reads; the export writer is the LAST member on purpose: members
    // declared later are destroyed first, so its publisher thread (and
    // final closed snapshot) are gone before any counter source dies.
    pvar::Registry pvars_;
    std::unique_ptr<pvar::ExportWriter> exporter_;
};

}  // namespace m2p::simmpi
