// mmap-backed pvar export: the observer seam that lets a REAL second
// process sample a live run's counters, the way the Scalable Unix
// Commands let a separate tool observe a parallel job and the way Open
// MPI's SPC exposes MPI_T pvars through shared memory.
//
// File layout (little-endian, page-sized header):
//
//   [0)            ExportHeader   fixed fields + the mutable handshake
//   [4096)         NameRecord[var_capacity]   64 B each: name, class, live
//   [4096+64*cap)  value buffer 0: u64[var_capacity]
//   [...)          value buffer 1: u64[var_capacity]
//
// Generation handshake (double-buffered seqlock).  The writer only
// ever mutates the INACTIVE value buffer while `generation` is even;
// the flip is fenced by an odd window:
//
//   writer:  fill inactive buffer + its epoch/tick stamps
//            generation <- g+1   (release; odd = flipping)
//            active_buf <- inactive
//            [closed <- 1 on the final snapshot]
//            generation <- g+2   (release; even = stable)
//
//   reader:  g1 <- generation (acquire); retry while odd
//            read active_buf, its stamps, var_count, values, closed
//            acquire fence; g2 <- generation
//            consistent iff g1 == g2
//
// A torn read is therefore *detected*, never returned: any overlap
// with a flip changes `generation` and the reader retries.  Name
// records for ids < var_count are immutable (written before the
// var_count release-store that publishes them); only their `live`
// flag moves later.
//
// All cross-process field accesses go through std::atomic_ref on the
// mapped bytes -- same-sized accesses on both sides, so the mapping is
// coherent shared memory, not a file protocol.
//
// One writer per file at a time.  A writer that opens an existing
// compatible file resumes IN PLACE (bumping run_id, never truncating)
// so an attached sampler's mapping stays valid across back-to-back
// runs -- truncation would SIGBUS a live reader.  An existing file of
// the wrong geometry (different var_capacity or not an export file) is
// refused -- export disabled with a note -- for the same reason.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "pvar/registry.hpp"

namespace m2p::pvar {

inline constexpr char kExportMagic[8] = {'M', '2', 'P', 'P', 'V', 'A', 'R', '1'};
inline constexpr std::uint32_t kExportVersion = 1;
inline constexpr std::uint32_t kExportHeaderBytes = 4096;
inline constexpr const char* kExportEnv = "M2P_PVAR_EXPORT";
inline constexpr const char* kExportPeriodEnv = "M2P_PVAR_EXPORT_PERIOD_US";

/// Fixed-offset header at byte 0.  Static fields are written once at
/// file (re)initialization; fields below the marker move under the
/// generation handshake.
struct ExportHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t header_bytes;
    std::uint32_t var_capacity;
    std::uint32_t name_record_bytes;
    std::uint64_t ticks_per_second;  ///< util::ticks() rate (approximate)
    std::uint64_t pid;               ///< writer process
    // -- mutable handshake fields (std::atomic_ref) --
    std::uint32_t var_count;  ///< published name records (release)
    std::uint32_t closed;     ///< 1 after the writer's final snapshot
    std::uint64_t generation;
    std::uint32_t active_buf;  ///< 0 or 1
    std::uint32_t run_id;      ///< bumps when a writer (re)opens the file
    std::uint64_t snap_epoch[2];  ///< registry epoch per buffer
    std::uint64_t snap_ticks[2];
    std::uint64_t snapshots_written;
    std::uint64_t overflow_vars;  ///< live vars beyond var_capacity (dropped)
};
static_assert(sizeof(ExportHeader) <= kExportHeaderBytes);

struct NameRecord {
    char name[56];  ///< NUL-terminated, truncated
    std::uint32_t cls;
    std::uint32_t live;
};
static_assert(sizeof(NameRecord) == 64);

/// Background snapshot publisher.  Owns an mmap of the export file and
/// a thread that runs one registry snapshot pass per period; World
/// creates one when M2P_PVAR_EXPORT is set and destroys it FIRST
/// (declared last) so the thread stops before any provider dies.
class ExportWriter {
public:
    struct Options {
        std::uint32_t var_capacity = 4096;
        std::uint64_t period_us = 2000;
    };

    /// Opens/initializes @p path and starts the publisher thread.
    /// Failure (unwritable path) leaves valid() false; the writer is
    /// then inert.
    ExportWriter(Registry& reg, std::string path, Options opt);
    ExportWriter(Registry& reg, std::string path)
        : ExportWriter(reg, std::move(path), Options()) {}
    ~ExportWriter();
    ExportWriter(const ExportWriter&) = delete;
    ExportWriter& operator=(const ExportWriter&) = delete;

    /// Null when M2P_PVAR_EXPORT is unset/empty; reads
    /// M2P_PVAR_EXPORT_PERIOD_US for the period override.
    static std::unique_ptr<ExportWriter> from_env(Registry& reg);

    bool valid() const { return map_ != nullptr; }
    const std::string& path() const { return path_; }

    /// Publishes one snapshot immediately, on the calling thread.
    /// Callers must hold no simmpi locks: the registry providers take
    /// mailbox mutexes (simmpi.mailbox.*).  Death/poison hooks use
    /// request_flush() instead for exactly that reason.
    void write_now();
    /// Asks the publisher thread to run a snapshot pass now instead of
    /// waiting out the period.  Safe to call from any context --
    /// including under transport locks -- because the publish happens
    /// on the publisher thread, not the caller's.
    void request_flush();
    /// Final snapshot with the closed flag set, then stops the
    /// publisher thread.  Idempotent; the destructor calls it.
    void close();

private:
    void loop();
    void publish(bool closing);
    void init_file();

    Registry& reg_;
    const std::string path_;
    const Options opt_;
    int fd_ = -1;
    std::byte* map_ = nullptr;
    std::size_t map_len_ = 0;

    std::mutex pub_mu_;  ///< serializes publish() callers
    std::uint32_t exported_count_ = 0;
    std::vector<char> live_mirror_;  ///< last live flag written per id
    std::atomic<std::uint64_t>* self_snapshots_ = nullptr;  ///< pvar.export.snapshots

    std::mutex cv_mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool closed_ = false;
    bool flush_ = false;  ///< request_flush() pending
    std::thread th_;
};

/// Read side, shared by m2p-pvar-sample and the export tests.  Maps
/// the file read-only and extracts torn-free snapshots under the
/// generation handshake.
class ExportReader {
public:
    struct VarInfo {
        std::string name;
        Class cls = Class::Counter;
        bool live = true;
    };
    struct Sample {
        std::uint64_t generation = 0;
        std::uint64_t epoch = 0;
        std::uint64_t ticks = 0;
        std::uint32_t run_id = 0;
        std::uint32_t var_count = 0;
        bool closed = false;
        std::uint64_t snapshots_written = 0;
        std::vector<std::uint64_t> values;  ///< [0, var_count)
    };

    ExportReader() = default;
    ~ExportReader() { close(); }
    ExportReader(const ExportReader&) = delete;
    ExportReader& operator=(const ExportReader&) = delete;

    /// Maps @p path read-only.  False when the file is missing, too
    /// small, or carries the wrong magic/version.
    bool open(const std::string& path);
    void close();
    bool valid() const { return map_ != nullptr; }

    std::uint64_t ticks_per_second() const;
    std::uint64_t writer_pid() const;
    std::uint32_t var_capacity() const;

    /// One torn-free snapshot.  False only when @p max_retries
    /// generation races elapse without a stable window (writer
    /// flipping continuously) -- callers just try again later.
    bool read(Sample& out, int max_retries = 1000) const;
    /// Name records for ids < @p count (a Sample's var_count; records
    /// below it are immutable except the live flag).
    std::vector<VarInfo> vars(std::uint32_t count) const;

private:
    const ExportHeader* hdr() const;
    std::byte* map_ = nullptr;
    std::size_t map_len_ = 0;
};

}  // namespace m2p::pvar
