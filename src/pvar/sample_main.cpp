// m2p-pvar-sample: external sampler for the mmap pvar export.
//
// This is the "separate observer process" leg of the pvar plane: it
// attaches to the file a live run publishes under M2P_PVAR_EXPORT,
// tails torn-free snapshots via the generation handshake, and prints
// deltas as text or JSON lines.  --verify makes it the property
// checker the export test forks: every snapshot must honor the
// generation protocol and monotone classes (counters, watermarks)
// must never regress within a run.
//
//   m2p-pvar-sample [options] [path]
//     path                 export file (default: $M2P_PVAR_EXPORT)
//     --json               JSON-lines output (one object per snapshot)
//     --interval-us N      poll period (default 5000)
//     --count N            stop after N distinct snapshots
//     --until-closed       stop once the writer's final snapshot is seen
//     --timeout-s S        hard wall-clock stop (default 600)
//     --verify             enable protocol checks; exit 2 on violation
//     --follow             survive run resets / missing file (CI tailing)
//     --match G1,G2,...    only print counters matching these globs
//     --quiet              print the final summary only
//
// The last stdout line is always a JSON summary:
//   {"summary":true,"snapshots":..,"distinct_epochs":..,"violations":..,
//    "runs":..,"closed":..}

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pvar/export.hpp"
#include "pvar/registry.hpp"
#include "util/clock.hpp"

namespace {

using m2p::pvar::Class;
using m2p::pvar::ExportReader;
using m2p::pvar::Registry;

struct Args {
    std::string path;
    bool json = false;
    bool verify = false;
    bool follow = false;
    bool quiet = false;
    bool until_closed = false;
    std::uint64_t interval_us = 5000;
    std::uint64_t count = 0;  ///< 0 = unbounded
    double timeout_s = 600.0;
    std::vector<std::string> match;
};

bool parse_args(int argc, char** argv, Args& a) {
    for (int i = 1; i < argc; ++i) {
        const std::string s = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (s == "--json") {
            a.json = true;
        } else if (s == "--verify") {
            a.verify = true;
        } else if (s == "--follow") {
            a.follow = true;
        } else if (s == "--quiet") {
            a.quiet = true;
        } else if (s == "--until-closed") {
            a.until_closed = true;
        } else if (s == "--interval-us") {
            const char* v = next();
            if (!v) return false;
            a.interval_us = std::strtoull(v, nullptr, 10);
        } else if (s == "--count") {
            const char* v = next();
            if (!v) return false;
            a.count = std::strtoull(v, nullptr, 10);
        } else if (s == "--timeout-s") {
            const char* v = next();
            if (!v) return false;
            a.timeout_s = std::strtod(v, nullptr);
        } else if (s == "--match") {
            const char* v = next();
            if (!v) return false;
            std::string globs = v;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = globs.find(',', pos);
                a.match.push_back(globs.substr(
                    pos, comma == std::string::npos ? comma : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (!s.empty() && s[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", s.c_str());
            return false;
        } else {
            a.path = s;
        }
    }
    if (a.path.empty()) {
        if (const char* p = std::getenv(m2p::pvar::kExportEnv)) a.path = p;
    }
    if (a.path.empty()) {
        std::fprintf(stderr, "no export path (argument or $%s)\n",
                     m2p::pvar::kExportEnv);
        return false;
    }
    return true;
}

bool wanted(const Args& a, const std::string& name) {
    if (a.match.empty()) return true;
    for (const std::string& g : a.match)
        if (Registry::glob_match(g.c_str(), name.c_str())) return true;
    return false;
}

bool monotone_class(Class c) { return c == Class::Counter || c == Class::Watermark; }

void json_escape(std::string& out, const std::string& s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
}

}  // namespace

int main(int argc, char** argv) {
    Args a;
    if (!parse_args(argc, argv, a)) return 1;

    ExportReader rd;
    const double t_start = m2p::util::wall_seconds();
    auto expired = [&] { return m2p::util::wall_seconds() - t_start > a.timeout_s; };

    // Attach: wait for the writer to create the file (CI starts the
    // sampler first, then the run).
    while (!rd.open(a.path)) {
        if (expired()) {
            std::fprintf(stderr, "timeout waiting for %s\n", a.path.c_str());
            std::printf(
                "{\"summary\":true,\"snapshots\":0,\"distinct_epochs\":0,"
                "\"violations\":0,\"runs\":0,\"closed\":false}\n");
            return 3;
        }
        ::usleep(100000);
    }

    std::uint64_t snapshots = 0, distinct = 0, violations = 0, runs = 0;
    bool saw_closed = false;
    std::uint32_t cur_run = 0;
    std::uint64_t last_epoch = 0, last_gen = 0;
    std::uint32_t last_count = 0;
    std::vector<std::uint64_t> last_values;
    std::vector<ExportReader::VarInfo> vars;

    auto violation = [&](const char* what, const std::string& detail) {
        ++violations;
        std::fprintf(stderr, "VIOLATION %s: %s\n", what, detail.c_str());
    };

    for (;;) {
        if (expired()) break;
        ExportReader::Sample s;
        if (!rd.read(s)) {
            // Persistent failure usually means the file was replaced
            // with an incompatible one; --follow reopens.
            if (a.follow) {
                rd.close();
                while (!rd.open(a.path) && !expired()) ::usleep(100000);
                if (!rd.valid()) break;
            }
            ::usleep(static_cast<useconds_t>(a.interval_us));
            continue;
        }
        ++snapshots;

        if (s.run_id != cur_run) {
            // New run on the same file: reset per-run verification
            // state (counters legitimately restart from zero).
            if (!a.follow && cur_run != 0) break;
            cur_run = s.run_id;
            ++runs;
            last_epoch = 0;
            last_gen = 0;
            last_count = 0;
            last_values.clear();
            vars.clear();
        }

        if (s.epoch != last_epoch || s.generation != last_gen) {
            ++distinct;
            if (s.generation < last_gen)
                violation("generation-regressed",
                          std::to_string(s.generation) + " < " + std::to_string(last_gen));
            if (s.epoch < last_epoch)
                violation("epoch-regressed",
                          std::to_string(s.epoch) + " < " + std::to_string(last_epoch));
            if (s.var_count < last_count)
                violation("var-count-shrank", std::to_string(s.var_count) + " < " +
                                                  std::to_string(last_count));
            if (s.var_count > vars.size()) vars = rd.vars(s.var_count);
            for (std::uint32_t id = 0; id < s.var_count && id < last_values.size();
                 ++id) {
                if (id < vars.size() && monotone_class(vars[id].cls) &&
                    s.values[id] < last_values[id])
                    violation("counter-regressed",
                              vars[id].name + ": " + std::to_string(s.values[id]) +
                                  " < " + std::to_string(last_values[id]));
            }

            if (!a.quiet) {
                if (a.json) {
                    std::string line = "{\"run\":" + std::to_string(s.run_id) +
                                       ",\"epoch\":" + std::to_string(s.epoch) +
                                       ",\"ticks\":" + std::to_string(s.ticks) +
                                       ",\"tps\":" +
                                       std::to_string(rd.ticks_per_second()) +
                                       ",\"closed\":" + (s.closed ? "true" : "false") +
                                       ",\"counters\":{";
                    bool first = true;
                    for (std::uint32_t id = 0; id < s.var_count && id < vars.size();
                         ++id) {
                        if (!wanted(a, vars[id].name)) continue;
                        if (!first) line += ",";
                        first = false;
                        line += "\"";
                        json_escape(line, vars[id].name);
                        line += "\":" + std::to_string(s.values[id]);
                    }
                    line += "}}";
                    std::puts(line.c_str());
                } else {
                    std::printf("run=%u epoch=%llu closed=%d",
                                s.run_id,
                                static_cast<unsigned long long>(s.epoch),
                                s.closed ? 1 : 0);
                    for (std::uint32_t id = 0; id < s.var_count && id < vars.size();
                         ++id) {
                        if (!wanted(a, vars[id].name)) continue;
                        const std::uint64_t prev =
                            id < last_values.size() ? last_values[id] : 0;
                        std::printf(" %s=%llu(+%lld)", vars[id].name.c_str(),
                                    static_cast<unsigned long long>(s.values[id]),
                                    static_cast<long long>(s.values[id] - prev));
                    }
                    std::printf("\n");
                }
                std::fflush(stdout);
            }

            last_epoch = s.epoch;
            last_gen = s.generation;
            last_count = s.var_count;
            last_values = s.values;
        }

        if (s.closed) {
            saw_closed = true;
            if (a.until_closed && !a.follow) break;
        }
        if (a.count && distinct >= a.count) break;
        ::usleep(static_cast<useconds_t>(a.interval_us));
    }

    std::printf(
        "{\"summary\":true,\"snapshots\":%llu,\"distinct_epochs\":%llu,"
        "\"violations\":%llu,\"runs\":%llu,\"closed\":%s}\n",
        static_cast<unsigned long long>(snapshots),
        static_cast<unsigned long long>(distinct),
        static_cast<unsigned long long>(violations),
        static_cast<unsigned long long>(runs), saw_closed ? "true" : "false");
    std::fflush(stdout);
    return (a.verify && violations > 0) ? 2 : 0;
}
