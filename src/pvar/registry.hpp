// MPI_T-style performance-variable (pvar) registry.
//
// The paper's thesis is that tool support must expose the MPI runtime's
// behavior as measurable resources; Open MPI's Software Performance
// Counters later productized the idea as MPI_T pvars.  This registry is
// that seam for the reproduction: every data plane (instr dispatch,
// transport mailboxes, Table-1 RMA shards, trace rings, the fault
// plane, the Performance Consultant) registers its counters ONCE under
// a dotted name, and readers attach by name or glob without knowing
// which plane owns the value or how it is sharded.
//
// Design contract, in order of importance:
//
//  1. Providers keep their hot-path write shape.  A pvar is a *reader
//     function* over storage the provider already maintains (per-thread
//     stat slots, relaxed per-window atomics, per-ring head counters).
//     Registration never adds an atomic to anyone's fast path.
//  2. Lookup is lock-free.  The variable table is the same append-only
//     chunked storage as instr::Registry and simmpi's handle tables:
//     readers walk `count_` (acquire) into chunks that never move;
//     only registration/removal serialize on a writer mutex.
//  3. Snapshots never stop writers.  A snapshot pass walks the live
//     variables, polls each reader, and publishes the value into a
//     per-variable seqlock cell stamped with the snapshot epoch.
//     Concurrent cached readers (and the mmap export writer) retry the
//     odd/changed-sequence window and otherwise read torn-free
//     (value, epoch) pairs without taking any lock.
//
// Out-of-band readers live in export.hpp: an mmap-backed file a real
// second process samples while the run is live.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m2p::pvar {

/// Variable semantics, mirroring the MPI_T pvar classes this plane
/// models.  Verification treats them differently: counters and
/// watermarks are monotone non-decreasing (the sampler asserts this
/// across snapshots); gauges (e.g. bytes currently queued) may move
/// both ways and are exempt.
enum class Class : std::uint32_t {
    Counter = 0,    ///< monotone event/byte count
    Watermark = 1,  ///< monotone high-water mark
    Gauge = 2,      ///< instantaneous level, non-monotone
};

const char* class_name(Class c);

/// Dense handle into the variable table.  Ids are never reused within
/// one registry: removal tombstones the slot (the export file keeps
/// the name column stable for the sampler).
using VarId = std::uint32_t;
inline constexpr VarId kInvalidVar = 0xffffffffu;

/// Polls the provider's current value.  Must be callable from any
/// thread, must not block on rank-fiber progress, and may take short
/// provider-internal locks (e.g. the instr stat-slot mutex).
using Reader = std::function<std::uint64_t()>;

struct Desc {
    std::string name;  ///< dotted path, e.g. "simmpi.mailbox.delivered_msgs"
    Class cls = Class::Counter;
    std::string unit;  ///< "events", "bytes", "ns", ... (docs only)
    std::string help;
};

/// One (value, epoch) pair published by a snapshot pass and readable
/// lock-free by anyone.
struct CachedSample {
    std::uint64_t value = 0;
    std::uint64_t epoch = 0;  ///< 0 until the first snapshot covers the var
};

/// One variable's sample inside a Snapshot.
struct Sample {
    VarId id = kInvalidVar;
    std::uint64_t value = 0;
};

/// Epoch-stamped consistent view: every sample was read by the same
/// snapshot pass (epoch), with the pass serialized against other
/// passes and against removal -- but never against writers, which keep
/// mutating their shards while the pass runs.
struct Snapshot {
    std::uint64_t epoch = 0;
    std::uint64_t ticks = 0;  ///< util::ticks() when the pass started
    std::vector<Sample> samples;
};

class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    // -- Provider side ---------------------------------------------------
    /// Registers a variable.  Returns kInvalidVar (and registers
    /// nothing) when another LIVE variable already owns @p name --
    /// duplicate names would make glob attachment ambiguous and the
    /// export file unreadable.  A name freed by remove() may be
    /// registered again (fresh id; the export file shows both slots,
    /// the old one tombstoned).
    VarId add(Desc d, Reader r);
    VarId add_counter(std::string name, Reader r, std::string unit = "events",
                      std::string help = {});
    VarId add_watermark(std::string name, Reader r, std::string unit = "bytes",
                        std::string help = {});
    VarId add_gauge(std::string name, Reader r, std::string unit = "bytes",
                    std::string help = {});
    /// Registers a counter whose storage lives inside the registry
    /// slot, for providers with no natural home for the value.  The
    /// returned atomic's address is stable for the registry's lifetime
    /// (chunked storage never moves).  Null when the name is taken.
    std::atomic<std::uint64_t>* add_owned_counter(std::string name,
                                                  std::string unit = "events",
                                                  std::string help = {});
    /// Tombstones @p id: detaches the name (re-registrable), excludes
    /// the variable from future snapshots, and -- because removal
    /// serializes against the snapshot pass -- guarantees no snapshot
    /// is still inside the reader when remove() returns, so the
    /// provider may free the storage the reader captured.
    bool remove(VarId id);

    // -- Reader side -----------------------------------------------------
    std::size_t size() const;  ///< ids allocated (live + tombstoned)
    bool alive(VarId id) const;
    const Desc* describe(VarId id) const;  ///< null for invalid ids
    /// Exact-name lookup among live variables.
    VarId find(const std::string& name) const;
    /// Attaches to every live variable matching @p glob (`*` and `?`),
    /// sorted by id (== registration order).  This is the MPI_T
    /// "attach a handle set" step; detaching is just dropping the ids.
    std::vector<VarId> attach(const std::string& glob) const;

    /// Polls the provider right now (0 for tombstoned/invalid ids).
    /// Unlike cached(), this races removal of the same id -- callers
    /// are either quiescent (tests) or hold the provider alive.
    std::uint64_t read(VarId id) const;
    /// Lock-free torn-free read of the last snapshotted (value, epoch)
    /// for @p id, via the per-variable seqlock.  Safe against a
    /// concurrent snapshot pass and against removal.
    CachedSample cached(VarId id) const;

    /// Runs one snapshot pass over every live variable: bumps the
    /// epoch, polls each reader, publishes each value into the
    /// variable's seqlock cell, and returns the collected view.
    /// Passes serialize on an internal mutex (writers never wait).
    Snapshot snapshot();
    /// Same pass restricted to @p ids (the attached-set form).
    Snapshot snapshot(const std::vector<VarId>& ids);
    /// Epoch of the most recent completed pass.
    std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

    /// True when @p name matches @p glob (`*` = any run, `?` = any one
    /// char).  Exposed for the sampler CLI's --match filter.
    static bool glob_match(const char* glob, const char* name);

private:
    struct Var {
        Desc desc;
        Reader read;
        std::atomic<bool> alive{false};
        std::atomic<std::uint64_t> owned{0};  ///< add_owned_counter storage
        /// Seqlock cell: seq odd while a snapshot pass writes
        /// value/epoch; cached() retries until seq is even and
        /// unchanged across the reads.
        std::atomic<std::uint64_t> seq{0};
        /// Relaxed atomics, ordered entirely by seq + the fences: plain
        /// fields would make the benign seqlock retry formally a data
        /// race (and TSAN rightly flags it).
        std::atomic<std::uint64_t> cached_value{0};
        std::atomic<std::uint64_t> cached_epoch{0};
    };

    static constexpr std::size_t kChunkShift = 8;  ///< 256 vars per chunk
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kMaxChunks = 256;

    Var* slot(VarId id) const;
    Var* live_slot(VarId id) const;
    void publish_locked(Var& v, std::uint64_t value, std::uint64_t epoch);

    mutable std::mutex reg_mu_;  ///< registration / removal / name index
    std::map<std::string, VarId, std::less<>> by_name_;
    std::atomic<std::uint32_t> count_{0};  ///< published ids (release)
    std::unique_ptr<std::unique_ptr<Var[]>[]> chunks_;

    std::mutex snap_mu_;  ///< serializes snapshot passes (and remove())
    std::atomic<std::uint64_t> epoch_{0};
};

/// RAII bundle for a provider's registrations: collects the ids it
/// adds and removes them all on destruction -- the pattern for
/// providers that die before the registry (PerfTool's pc.* vars, whose
/// world outlives the tool).
class ProviderScope {
public:
    explicit ProviderScope(Registry& r) : reg_(r) {}
    ~ProviderScope() { reset(); }
    ProviderScope(const ProviderScope&) = delete;
    ProviderScope& operator=(const ProviderScope&) = delete;

    VarId add(Desc d, Reader r) { return track(reg_.add(std::move(d), std::move(r))); }
    VarId add_counter(std::string name, Reader r, std::string unit = "events",
                      std::string help = {}) {
        return track(reg_.add_counter(std::move(name), std::move(r), std::move(unit),
                                      std::move(help)));
    }
    VarId add_watermark(std::string name, Reader r, std::string unit = "bytes",
                        std::string help = {}) {
        return track(reg_.add_watermark(std::move(name), std::move(r), std::move(unit),
                                        std::move(help)));
    }
    VarId add_gauge(std::string name, Reader r, std::string unit = "bytes",
                    std::string help = {}) {
        return track(reg_.add_gauge(std::move(name), std::move(r), std::move(unit),
                                    std::move(help)));
    }
    /// Removes every tracked variable now (idempotent).
    void reset() {
        for (VarId id : ids_) reg_.remove(id);
        ids_.clear();
    }
    Registry& registry() { return reg_; }

private:
    VarId track(VarId id) {
        if (id != kInvalidVar) ids_.push_back(id);
        return id;
    }
    Registry& reg_;
    std::vector<VarId> ids_;
};

}  // namespace m2p::pvar
