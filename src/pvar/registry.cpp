#include "pvar/registry.hpp"

#include <algorithm>

#include "util/clock.hpp"

namespace m2p::pvar {

const char* class_name(Class c) {
    switch (c) {
        case Class::Counter: return "counter";
        case Class::Watermark: return "watermark";
        case Class::Gauge: return "gauge";
    }
    return "?";
}

Registry::Registry() : chunks_(new std::unique_ptr<Var[]>[kMaxChunks]) {}

Registry::~Registry() = default;

Registry::Var* Registry::slot(VarId id) const {
    if (id >= count_.load(std::memory_order_acquire)) return nullptr;
    return &chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
}

Registry::Var* Registry::live_slot(VarId id) const {
    Var* v = slot(id);
    if (!v || !v->alive.load(std::memory_order_acquire)) return nullptr;
    return v;
}

VarId Registry::add(Desc d, Reader r) {
    std::lock_guard lk(reg_mu_);
    if (d.name.empty() || by_name_.count(d.name)) return kInvalidVar;
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    const std::size_t chunk = id >> kChunkShift;
    if (chunk >= kMaxChunks) return kInvalidVar;
    if (!chunks_[chunk]) chunks_[chunk].reset(new Var[kChunkSize]);
    Var& v = chunks_[chunk][id & (kChunkSize - 1)];
    by_name_.emplace(d.name, id);
    v.desc = std::move(d);
    v.read = std::move(r);
    v.alive.store(true, std::memory_order_relaxed);
    // Publish the id: lock-free readers acquire count_ and see the
    // fully built slot.
    count_.store(id + 1, std::memory_order_release);
    return id;
}

VarId Registry::add_counter(std::string name, Reader r, std::string unit,
                            std::string help) {
    return add({std::move(name), Class::Counter, std::move(unit), std::move(help)},
               std::move(r));
}

VarId Registry::add_watermark(std::string name, Reader r, std::string unit,
                              std::string help) {
    return add({std::move(name), Class::Watermark, std::move(unit), std::move(help)},
               std::move(r));
}

VarId Registry::add_gauge(std::string name, Reader r, std::string unit,
                          std::string help) {
    return add({std::move(name), Class::Gauge, std::move(unit), std::move(help)},
               std::move(r));
}

std::atomic<std::uint64_t>* Registry::add_owned_counter(std::string name,
                                                        std::string unit,
                                                        std::string help) {
    std::lock_guard lk(reg_mu_);
    if (name.empty() || by_name_.count(name)) return nullptr;
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    const std::size_t chunk = id >> kChunkShift;
    if (chunk >= kMaxChunks) return nullptr;
    if (!chunks_[chunk]) chunks_[chunk].reset(new Var[kChunkSize]);
    Var& v = chunks_[chunk][id & (kChunkSize - 1)];
    by_name_.emplace(name, id);
    v.desc = {std::move(name), Class::Counter, std::move(unit), std::move(help)};
    // The reader captures the slot's own atomic; the slot address is
    // chunk-stable, so this never dangles.  Set BEFORE the count_
    // publish so lock-free snapshot passes never see a half-built var.
    v.read = [&v] { return v.owned.load(std::memory_order_relaxed); };
    v.alive.store(true, std::memory_order_relaxed);
    count_.store(id + 1, std::memory_order_release);
    return &v.owned;
}

bool Registry::remove(VarId id) {
    // Take the snapshot mutex FIRST: an in-flight snapshot pass may be
    // inside this variable's reader right now, and the provider is
    // about to free whatever the reader captured.  Holding snap_mu_
    // across the tombstone means remove() returns only after any such
    // pass has finished, and no later pass re-polls the variable.
    std::lock_guard snap(snap_mu_);
    std::lock_guard lk(reg_mu_);
    Var* v = slot(id);
    if (!v || !v->alive.load(std::memory_order_relaxed)) return false;
    v->alive.store(false, std::memory_order_release);
    by_name_.erase(v->desc.name);
    return true;
}

std::size_t Registry::size() const { return count_.load(std::memory_order_acquire); }

bool Registry::alive(VarId id) const { return live_slot(id) != nullptr; }

const Desc* Registry::describe(VarId id) const {
    Var* v = slot(id);
    return v ? &v->desc : nullptr;
}

VarId Registry::find(const std::string& name) const {
    std::lock_guard lk(reg_mu_);
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidVar : it->second;
}

std::vector<VarId> Registry::attach(const std::string& glob) const {
    std::vector<VarId> out;
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    for (std::uint32_t id = 0; id < n; ++id) {
        const Var& v = chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
        if (!v.alive.load(std::memory_order_acquire)) continue;
        if (glob_match(glob.c_str(), v.desc.name.c_str())) out.push_back(id);
    }
    return out;
}

std::uint64_t Registry::read(VarId id) const {
    Var* v = live_slot(id);
    return (v && v->read) ? v->read() : 0;
}

CachedSample Registry::cached(VarId id) const {
    Var* v = slot(id);
    if (!v) return {};
    for (;;) {
        const std::uint64_t s0 = v->seq.load(std::memory_order_acquire);
        if (s0 & 1) continue;  // pass mid-publish on this cell
        CachedSample out{v->cached_value.load(std::memory_order_relaxed),
                         v->cached_epoch.load(std::memory_order_relaxed)};
        std::atomic_thread_fence(std::memory_order_acquire);
        if (v->seq.load(std::memory_order_relaxed) == s0) return out;
    }
}

void Registry::publish_locked(Var& v, std::uint64_t value, std::uint64_t epoch) {
    const std::uint64_t s = v.seq.load(std::memory_order_relaxed);
    v.seq.store(s + 1, std::memory_order_relaxed);  // odd: cell is being written
    std::atomic_thread_fence(std::memory_order_release);
    v.cached_value.store(value, std::memory_order_relaxed);
    v.cached_epoch.store(epoch, std::memory_order_relaxed);
    v.seq.store(s + 2, std::memory_order_release);  // even again
}

Snapshot Registry::snapshot() {
    std::lock_guard lk(snap_mu_);
    Snapshot out;
    out.ticks = util::ticks();
    out.epoch = epoch_.load(std::memory_order_relaxed) + 1;
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    out.samples.reserve(n);
    for (std::uint32_t id = 0; id < n; ++id) {
        Var& v = chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
        if (!v.alive.load(std::memory_order_acquire) || !v.read) continue;
        const std::uint64_t value = v.read();
        publish_locked(v, value, out.epoch);
        out.samples.push_back({id, value});
    }
    epoch_.store(out.epoch, std::memory_order_release);
    return out;
}

Snapshot Registry::snapshot(const std::vector<VarId>& ids) {
    std::lock_guard lk(snap_mu_);
    Snapshot out;
    out.ticks = util::ticks();
    out.epoch = epoch_.load(std::memory_order_relaxed) + 1;
    out.samples.reserve(ids.size());
    for (const VarId id : ids) {
        Var* v = live_slot(id);
        if (!v || !v->read) continue;
        const std::uint64_t value = v->read();
        publish_locked(*v, value, out.epoch);
        out.samples.push_back({id, value});
    }
    epoch_.store(out.epoch, std::memory_order_release);
    return out;
}

bool Registry::glob_match(const char* glob, const char* name) {
    // Iterative star-backtracking matcher: `*` any run, `?` any char.
    const char* star = nullptr;
    const char* resume = nullptr;
    while (*name) {
        if (*glob == '*') {
            star = glob++;
            resume = name;
        } else if (*glob == *name || *glob == '?') {
            ++glob;
            ++name;
        } else if (star) {
            glob = star + 1;
            name = ++resume;
        } else {
            return false;
        }
    }
    while (*glob == '*') ++glob;
    return *glob == '\0';
}

}  // namespace m2p::pvar
