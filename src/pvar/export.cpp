#include "pvar/export.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/clock.hpp"

namespace m2p::pvar {
namespace {

std::size_t file_bytes(std::uint32_t cap) {
    return kExportHeaderBytes + std::size_t{cap} * sizeof(NameRecord) +
           2 * std::size_t{cap} * sizeof(std::uint64_t);
}

// Typed views into the mapping.  All mutable-field traffic goes
// through atomic_ref so writer and sampler processes see coherent
// word-sized accesses; offsets inside ExportHeader are 8-aligned by
// construction (static_asserts below).
template <class T>
std::atomic_ref<T> at(std::byte* base, std::size_t off) {
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base + off));
}

constexpr std::size_t kOffVarCount = offsetof(ExportHeader, var_count);
constexpr std::size_t kOffClosed = offsetof(ExportHeader, closed);
constexpr std::size_t kOffGeneration = offsetof(ExportHeader, generation);
constexpr std::size_t kOffActiveBuf = offsetof(ExportHeader, active_buf);
constexpr std::size_t kOffRunId = offsetof(ExportHeader, run_id);
constexpr std::size_t kOffSnapEpoch = offsetof(ExportHeader, snap_epoch);
constexpr std::size_t kOffSnapTicks = offsetof(ExportHeader, snap_ticks);
constexpr std::size_t kOffSnapsWritten = offsetof(ExportHeader, snapshots_written);
constexpr std::size_t kOffOverflow = offsetof(ExportHeader, overflow_vars);
static_assert(kOffGeneration % 8 == 0 && kOffSnapEpoch % 8 == 0 &&
              kOffSnapTicks % 8 == 0 && kOffSnapsWritten % 8 == 0 &&
              kOffOverflow % 8 == 0);

std::size_t name_off(std::uint32_t id) {
    return kExportHeaderBytes + std::size_t{id} * sizeof(NameRecord);
}
std::size_t value_off(std::uint32_t cap, std::uint32_t buf, std::uint32_t id) {
    return kExportHeaderBytes + std::size_t{cap} * sizeof(NameRecord) +
           (std::size_t{buf} * cap + id) * sizeof(std::uint64_t);
}

}  // namespace

// ---------------------------------------------------------------------------
// ExportWriter
// ---------------------------------------------------------------------------

ExportWriter::ExportWriter(Registry& reg, std::string path, Options opt)
    : reg_(reg), path_(std::move(path)), opt_(opt) {
    init_file();
    if (!valid()) return;
    self_snapshots_ = reg_.add_owned_counter("pvar.export.snapshots", "snapshots",
                                             "export publishes this run");
    live_mirror_.assign(opt_.var_capacity, 0);
    publish(false);  // names + first values are in place before anyone samples
    th_ = std::thread([this] { loop(); });
}

ExportWriter::~ExportWriter() {
    close();
    if (map_) ::munmap(map_, map_len_);
    if (fd_ != -1) ::close(fd_);
}

std::unique_ptr<ExportWriter> ExportWriter::from_env(Registry& reg) {
    const char* path = std::getenv(kExportEnv);
    if (!path || !*path) return nullptr;
    Options opt;
    if (const char* p = std::getenv(kExportPeriodEnv)) {
        const unsigned long long v = std::strtoull(p, nullptr, 10);
        if (v > 0) opt.period_us = v;
    }
    auto w = std::make_unique<ExportWriter>(reg, path, opt);
    if (!w->valid()) {
        std::fprintf(stderr, "[m2p] pvar export: cannot open %s; export disabled\n",
                     path);
        return nullptr;
    }
    return w;
}

void ExportWriter::init_file() {
    // O_CREAT without O_TRUNC: resuming in place keeps a live sampler's
    // mapping valid (see header comment).
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ == -1) return;
    const std::size_t want = file_bytes(opt_.var_capacity);
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fd_ = -1;
        return;
    }
    const std::size_t have = static_cast<std::size_t>(st.st_size);
    bool reuse = false;
    if (have == want) {
        char magic[8] = {};
        if (::pread(fd_, magic, sizeof magic, 0) == static_cast<ssize_t>(sizeof magic) &&
            std::memcmp(magic, kExportMagic, sizeof magic) == 0)
            reuse = true;
        // Wrong magic at the right size: reinitialize in place below
        // (the EOF never moves, so an unlikely existing mapping stays
        // valid and just sees the run reset).
    } else if (have != 0) {
        // A non-empty file of the wrong geometry (different
        // var_capacity, older layout, or not an export file at all).
        // Resizing it would SIGBUS any sampler still mapping the old
        // length -- the resume-in-place contract forbids that -- so
        // refuse and disable export instead.
        std::fprintf(stderr,
                     "[m2p] pvar export: %s exists with size %zu, expected %zu; "
                     "refusing to resize a possibly-mapped file (delete it or "
                     "match var_capacity); export disabled\n",
                     path_.c_str(), have, want);
        ::close(fd_);
        fd_ = -1;
        return;
    }
    if (have == 0 && ::ftruncate(fd_, static_cast<off_t>(want)) != 0) {
        ::close(fd_);
        fd_ = -1;
        return;
    }
    void* m = ::mmap(nullptr, want, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) {
        ::close(fd_);
        fd_ = -1;
        return;
    }
    map_ = static_cast<std::byte*>(m);
    map_len_ = want;

    // Odd generation while we reset the run: attached readers spin on
    // the handshake instead of consuming half-initialized state.
    const std::uint64_t g = at<std::uint64_t>(map_, kOffGeneration).load(
        std::memory_order_relaxed);
    at<std::uint64_t>(map_, kOffGeneration)
        .store(g | 1, std::memory_order_release);
    const std::uint32_t prev_run =
        reuse ? at<std::uint32_t>(map_, kOffRunId).load(std::memory_order_relaxed) : 0;

    auto* hdr = reinterpret_cast<ExportHeader*>(map_);
    const util::TickCalibration cal = util::calibrate_ticks();
    std::memcpy(hdr->magic, kExportMagic, sizeof hdr->magic);
    hdr->version = kExportVersion;
    hdr->header_bytes = kExportHeaderBytes;
    hdr->var_capacity = opt_.var_capacity;
    hdr->name_record_bytes = sizeof(NameRecord);
    hdr->ticks_per_second =
        cal.seconds_per_tick > 0 ? static_cast<std::uint64_t>(1.0 / cal.seconds_per_tick)
                                 : 0;
    hdr->pid = static_cast<std::uint64_t>(::getpid());
    at<std::uint32_t>(map_, kOffVarCount).store(0, std::memory_order_relaxed);
    at<std::uint32_t>(map_, kOffClosed).store(0, std::memory_order_relaxed);
    at<std::uint32_t>(map_, kOffActiveBuf).store(0, std::memory_order_relaxed);
    at<std::uint32_t>(map_, kOffRunId).store(prev_run + 1, std::memory_order_relaxed);
    at<std::uint64_t>(map_, kOffSnapsWritten).store(0, std::memory_order_relaxed);
    at<std::uint64_t>(map_, kOffOverflow).store(0, std::memory_order_relaxed);
    // Leave generation odd: the first publish() completes the flip and
    // presents a fully consistent run to readers.
}

void ExportWriter::publish(bool closing) {
    std::lock_guard lk(pub_mu_);
    if (!map_) return;
    if (self_snapshots_) self_snapshots_->fetch_add(1, std::memory_order_relaxed);
    const Snapshot snap = reg_.snapshot();

    // New variables since the last publish: write their name records,
    // then release-publish the new count.
    const std::uint32_t total = static_cast<std::uint32_t>(reg_.size());
    const std::uint32_t cap = opt_.var_capacity;
    const std::uint32_t publishable = total < cap ? total : cap;
    const std::uint32_t prev_count = exported_count_;
    if (publishable > exported_count_) {
        for (std::uint32_t id = exported_count_; id < publishable; ++id) {
            const Desc* d = reg_.describe(id);
            auto* nr = reinterpret_cast<NameRecord*>(map_ + name_off(id));
            std::memset(nr->name, 0, sizeof nr->name);
            if (d) std::strncpy(nr->name, d->name.c_str(), sizeof nr->name - 1);
            nr->cls = d ? static_cast<std::uint32_t>(d->cls) : 0;
            at<std::uint32_t>(map_, name_off(id) + offsetof(NameRecord, live))
                .store(1, std::memory_order_relaxed);
            live_mirror_[id] = 1;
        }
        exported_count_ = publishable;
        at<std::uint32_t>(map_, kOffVarCount)
            .store(exported_count_, std::memory_order_release);
    }
    if (total > cap)
        at<std::uint64_t>(map_, kOffOverflow)
            .store(total - cap, std::memory_order_relaxed);

    // Maintain live flags for tombstoned variables.
    for (std::uint32_t id = 0; id < exported_count_; ++id) {
        const char live = reg_.alive(id) ? 1 : 0;
        if (live != live_mirror_[id]) {
            at<std::uint32_t>(map_, name_off(id) + offsetof(NameRecord, live))
                .store(static_cast<std::uint32_t>(live), std::memory_order_relaxed);
            live_mirror_[id] = live;
        }
    }

    // Fill the inactive buffer while generation is even/odd-from-init:
    // readers only consume the active one.
    const std::uint32_t active =
        at<std::uint32_t>(map_, kOffActiveBuf).load(std::memory_order_relaxed);
    const std::uint32_t inactive = 1 - active;
    // Carry the active buffer's values forward before overlaying fresh
    // samples: a variable with no sample this pass (tombstoned
    // provider) must freeze at its LAST published value, not resurface
    // whatever this buffer held two publishes ago -- samplers verify
    // counters as monotone.  Slots new this publish start at zero so a
    // register-then-remove between passes never exposes stale bytes.
    for (std::uint32_t id = 0; id < prev_count; ++id)
        at<std::uint64_t>(map_, value_off(cap, inactive, id))
            .store(at<std::uint64_t>(map_, value_off(cap, active, id))
                       .load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    for (std::uint32_t id = prev_count; id < exported_count_; ++id)
        at<std::uint64_t>(map_, value_off(cap, inactive, id))
            .store(0, std::memory_order_relaxed);
    for (const Sample& s : snap.samples) {
        if (s.id >= cap) continue;
        at<std::uint64_t>(map_, value_off(cap, inactive, s.id))
            .store(s.value, std::memory_order_relaxed);
    }
    at<std::uint64_t>(map_, kOffSnapEpoch + inactive * sizeof(std::uint64_t))
        .store(snap.epoch, std::memory_order_relaxed);
    at<std::uint64_t>(map_, kOffSnapTicks + inactive * sizeof(std::uint64_t))
        .store(snap.ticks, std::memory_order_relaxed);

    // The flip, under an odd-generation window (see header comment).
    auto gen = at<std::uint64_t>(map_, kOffGeneration);
    const std::uint64_t g = gen.load(std::memory_order_relaxed);
    const std::uint64_t odd = g | 1;
    gen.store(odd, std::memory_order_release);
    at<std::uint32_t>(map_, kOffActiveBuf).store(inactive, std::memory_order_relaxed);
    at<std::uint64_t>(map_, kOffSnapsWritten)
        .fetch_add(1, std::memory_order_relaxed);
    if (closing) at<std::uint32_t>(map_, kOffClosed).store(1, std::memory_order_relaxed);
    gen.store(odd + 1, std::memory_order_release);
}

void ExportWriter::write_now() {
    if (valid()) publish(false);
}

void ExportWriter::request_flush() {
    if (!valid()) return;
    {
        std::lock_guard lk(cv_mu_);
        if (closed_) return;  // close() already published the final state
        flush_ = true;
    }
    cv_.notify_all();
}

void ExportWriter::close() {
    {
        std::lock_guard lk(cv_mu_);
        if (closed_) return;
        closed_ = true;
        stop_ = true;
    }
    cv_.notify_all();
    if (th_.joinable()) th_.join();
    if (valid()) publish(true);
}

void ExportWriter::loop() {
    std::unique_lock lk(cv_mu_);
    const auto period = std::chrono::microseconds(opt_.period_us);
    while (!stop_) {
        // Wakes early on request_flush() (death/poison hooks) so the
        // terminal counter state reaches samplers promptly; a timeout
        // is just the periodic pass.
        cv_.wait_for(lk, period, [&] { return stop_ || flush_; });
        if (stop_) break;
        flush_ = false;
        lk.unlock();
        publish(false);
        lk.lock();
    }
}

// ---------------------------------------------------------------------------
// ExportReader
// ---------------------------------------------------------------------------

bool ExportReader::open(const std::string& path) {
    close();
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd == -1) return false;
    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(ExportHeader)) {
        ::close(fd);
        return false;
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    void* m = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (m == MAP_FAILED) return false;
    auto* h = static_cast<const ExportHeader*>(m);
    if (std::memcmp(h->magic, kExportMagic, sizeof h->magic) != 0 ||
        h->version != kExportVersion || h->header_bytes != kExportHeaderBytes ||
        h->name_record_bytes != sizeof(NameRecord) ||
        len < file_bytes(h->var_capacity)) {
        ::munmap(m, len);
        return false;
    }
    map_ = static_cast<std::byte*>(m);
    map_len_ = len;
    return true;
}

void ExportReader::close() {
    if (map_) ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
}

const ExportHeader* ExportReader::hdr() const {
    return reinterpret_cast<const ExportHeader*>(map_);
}

std::uint64_t ExportReader::ticks_per_second() const {
    return map_ ? hdr()->ticks_per_second : 0;
}
std::uint64_t ExportReader::writer_pid() const { return map_ ? hdr()->pid : 0; }
std::uint32_t ExportReader::var_capacity() const {
    return map_ ? hdr()->var_capacity : 0;
}

bool ExportReader::read(Sample& out, int max_retries) const {
    if (!map_) return false;
    std::byte* base = map_;  // atomic_ref wants non-const; mapping is PROT_READ
    const std::uint32_t cap = hdr()->var_capacity;
    for (int attempt = 0; attempt < max_retries; ++attempt) {
        const std::uint64_t g1 =
            at<std::uint64_t>(base, kOffGeneration).load(std::memory_order_acquire);
        if (g1 & 1) continue;  // writer mid-flip
        const std::uint32_t active =
            at<std::uint32_t>(base, kOffActiveBuf).load(std::memory_order_relaxed);
        Sample s;
        s.generation = g1;
        s.run_id = at<std::uint32_t>(base, kOffRunId).load(std::memory_order_relaxed);
        s.closed =
            at<std::uint32_t>(base, kOffClosed).load(std::memory_order_relaxed) != 0;
        s.epoch = at<std::uint64_t>(base, kOffSnapEpoch + active * sizeof(std::uint64_t))
                      .load(std::memory_order_relaxed);
        s.ticks = at<std::uint64_t>(base, kOffSnapTicks + active * sizeof(std::uint64_t))
                      .load(std::memory_order_relaxed);
        s.snapshots_written =
            at<std::uint64_t>(base, kOffSnapsWritten).load(std::memory_order_relaxed);
        s.var_count =
            at<std::uint32_t>(base, kOffVarCount).load(std::memory_order_acquire);
        if (s.var_count > cap) continue;  // impossible unless re-initializing
        s.values.resize(s.var_count);
        for (std::uint32_t id = 0; id < s.var_count; ++id)
            s.values[id] = at<std::uint64_t>(base, value_off(cap, active, id))
                               .load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t g2 =
            at<std::uint64_t>(base, kOffGeneration).load(std::memory_order_relaxed);
        if (g2 == g1) {
            out = std::move(s);
            return true;
        }
    }
    return false;
}

std::vector<ExportReader::VarInfo> ExportReader::vars(std::uint32_t count) const {
    std::vector<VarInfo> out;
    if (!map_) return out;
    const std::uint32_t cap = hdr()->var_capacity;
    if (count > cap) count = cap;
    out.reserve(count);
    for (std::uint32_t id = 0; id < count; ++id) {
        const auto* nr = reinterpret_cast<const NameRecord*>(map_ + name_off(id));
        VarInfo vi;
        char buf[sizeof nr->name + 1] = {};
        std::memcpy(buf, nr->name, sizeof nr->name);
        vi.name = buf;
        vi.cls = static_cast<Class>(nr->cls);
        vi.live = at<std::uint32_t>(map_, name_off(id) + offsetof(NameRecord, live))
                      .load(std::memory_order_relaxed) != 0;
        out.push_back(std::move(vi));
    }
    return out;
}

}  // namespace m2p::pvar
