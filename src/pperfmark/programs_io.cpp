// MPI-I/O PPerfMark programs -- the extension exercising the MPI-2
// feature the paper's conclusion lists as remaining work.
#include "pperfmark/detail.hpp"
#include "util/clock.hpp"

namespace m2p::ppm::detail {

namespace {

using simmpi::Comm;
using simmpi::File;
using simmpi::Rank;
using simmpi::Status;
using simmpi::MPI_BYTE;
using simmpi::MPI_FILE_NULL;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_MODE_CREATE;
using simmpi::MPI_MODE_RDWR;

/// io-stripes: each process writes its stripe of a shared file with
/// explicit offsets, then reads it back and verifies the contents --
/// known operation and byte counts for metric validation.
void io_stripes(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    const int chunk = cx.p.io_chunk_bytes;
    File fh = MPI_FILE_NULL;
    const int rc = r.MPI_File_open(world, "pperfmark-stripes.dat",
                                   MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh);
    if (rc != simmpi::MPI_SUCCESS) {
        r.MPI_Finalize();
        return;
    }
    std::vector<char> out(static_cast<std::size_t>(chunk));
    std::vector<char> in(static_cast<std::size_t>(chunk));
    for (int round = 0; round < cx.p.io_rounds; ++round) {
        for (int k = 0; k < chunk; ++k)
            out[static_cast<std::size_t>(k)] =
                static_cast<char>((me * 7 + round * 3 + k) & 0x7f);
        const std::int64_t offset =
            static_cast<std::int64_t>(round) * n * chunk +
            static_cast<std::int64_t>(me) * chunk;
        Status st;
        r.MPI_File_write_at(fh, offset, out.data(), chunk, MPI_BYTE, &st);
        r.MPI_Barrier(world);
        r.MPI_File_read_at(fh, offset, in.data(), chunk, MPI_BYTE, &st);
        // Silent corruption would invalidate every byte-count truth;
        // fail loudly through a mismatching read instead.
        for (int k = 0; k < chunk; k += 251)
            if (in[static_cast<std::size_t>(k)] != out[static_cast<std::size_t>(k)])
                std::abort();
    }
    r.MPI_File_close(&fh);
    r.MPI_Finalize();
}

/// io-bound: collective writes where rank 0 moves far more data than
/// the others -- everyone else blocks inside MPI_File_write_all
/// waiting for the straggler, the classic collective-I/O imbalance a
/// tool must expose.
void io_bound(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    File fh = MPI_FILE_NULL;
    const int rc = r.MPI_File_open(world, "pperfmark-bound.dat",
                                   MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh);
    if (rc != simmpi::MPI_SUCCESS) {
        r.MPI_Finalize();
        return;
    }
    const int big = cx.p.io_chunk_bytes * 16;
    const int small = 64;
    std::vector<char> buf(static_cast<std::size_t>(big), 'd');
    for (int round = 0; round < cx.p.io_rounds * 4; ++round) {
        const int mine = me == 0 ? big : small;
        Status st;
        r.MPI_File_write_all(fh, buf.data(), mine, MPI_BYTE, &st);
    }
    r.MPI_File_close(&fh);
    r.MPI_Finalize();
}

}  // namespace

void register_io(simmpi::World& world, const std::shared_ptr<Ctx>& cx) {
    auto reg = [&](const char* name, void (*fn)(Rank&, const Ctx&)) {
        world.register_program(
            name, [cx, fn](Rank& r, const std::vector<std::string>&) { fn(r, *cx); });
    };
    reg(kIoStripes, io_stripes);
    reg(kIoBound, io_bound);
}

}  // namespace m2p::ppm::detail
