// PPerfMark: the performance-tool benchmark suite the paper develops
// (section 5) -- an MPI port of the Grindstone PVM test suite plus new
// MPI-2 programs.  Each program has a *known* performance bottleneck,
// so a tool's findings can be graded pass/fail (paper Tables 2 and 3).
//
// MPI-1 programs (Table 2): small-messages, big-message, wrong-way,
// intensive-server, random-barrier, diffuse-procedure, system-time,
// hot-procedure, plus sstwod (the "Using MPI" book's 2-D Poisson
// solver with a known bottleneck in exchng2).
//
// MPI-2 programs (Table 3): allcount, wincreate-blast, winfence-sync,
// winscpw-sync, spawn-count, spawn-sync, spawnwin-sync, plus oned (the
// "Using MPI-2" book's RMA 1-D Poisson solver, bottleneck in exchng1)
// and winlock-sync (passive target -- the paper defers this program
// because LAM/MPICH2 lacked passive-target support; simmpi has it, so
// the suite includes it as the planned extension).
//
// Programs are registered with a simmpi::World under the command names
// below; application functions (Gsend_message, bottleneckProcedure,
// waste_time, exchng2, ...) register with the instrumentation
// substrate under module "pperfmark" so the tool can discover and
// instrument them.
#pragma once

#include <string>

#include "simmpi/world.hpp"

namespace m2p::ppm {

struct Params {
    int iterations = 400;
    int small_message_bytes = 4;
    int big_message_bytes = 100000;  ///< > eager limit: rendezvous
    int wrongway_batch = 16;         ///< messages per out-of-order burst
    int time_to_waste = 5;           ///< TIMETOWASTE knob (dimensionless)
    double waste_unit_seconds = 0.002;  ///< CPU seconds per TIMETOWASTE unit
    int irrelevant_procedures = 13;  ///< hot-procedure's decoys (Fig 19 shows 12+)
    int grid_n = 64;                 ///< sstwod/oned mesh size
    int rma_ops_per_epoch = 50;      ///< allcount / presta-style epochs
    int epochs = 10;
    int rma_bytes = 1024;
    int win_blast_count = 24;        ///< wincreate-blast windows
    int spawn_children = 3;
    int spawn_rounds = 2;            ///< spawn-count repetitions
    int io_chunk_bytes = 65536;      ///< MPI-I/O programs: bytes per operation
    int io_rounds = 8;               ///< MPI-I/O programs: rounds
};

// Command names (what mpirun / MPI_Comm_spawn start).
inline constexpr const char* kSmallMessages = "small-messages";
inline constexpr const char* kBigMessage = "big-message";
inline constexpr const char* kWrongWay = "wrong-way";
inline constexpr const char* kIntensiveServer = "intensive-server";
inline constexpr const char* kRandomBarrier = "random-barrier";
inline constexpr const char* kDiffuseProcedure = "diffuse-procedure";
inline constexpr const char* kSystemTime = "system-time";
inline constexpr const char* kHotProcedure = "hot-procedure";
inline constexpr const char* kSstwod = "sstwod";
inline constexpr const char* kAllcount = "allcount";
inline constexpr const char* kWincreateBlast = "wincreate-blast";
inline constexpr const char* kWinfenceSync = "winfence-sync";
inline constexpr const char* kWinscpwSync = "winscpw-sync";
inline constexpr const char* kWinlockSync = "winlock-sync";
inline constexpr const char* kSpawnCount = "spawn-count";
inline constexpr const char* kSpawnSync = "spawn-sync";
inline constexpr const char* kSpawnwinSync = "spawnwin-sync";
inline constexpr const char* kOned = "oned";
inline constexpr const char* kSpawnChild = "spawn-child";        ///< exits immediately
inline constexpr const char* kSpawnSyncChild = "spawn-sync-child";
inline constexpr const char* kSpawnwinChild = "spawnwin-child";
// MPI-I/O extension programs (the paper's remaining MPI-2 feature).
inline constexpr const char* kIoStripes = "io-stripes";   ///< known byte counts
inline constexpr const char* kIoBound = "io-bound";       ///< collective-write straggler

/// Registers every PPerfMark program and its application functions.
/// Call once per World, before launching.
void register_all(simmpi::World& world, const Params& params);

/// The instrumentable application functions PPerfMark registers
/// (module "pperfmark"): used by tests to check Code-axis discovery.
struct AppFuncs {
    instr::FuncId Gsend_message, Grecv_message, waste_time, bottleneckProcedure,
        childFunction, parentFunction, exchng2, exchng1, compute_sweep;
    std::vector<instr::FuncId> irrelevantProcedures;
};
AppFuncs app_funcs(simmpi::World& world);

// ---------------------------------------------------------------------------
// Ground truths for byte/operation-count validation (paper section 5
// verifies Paradyn's histograms against per-process output and source
// inspection).
// ---------------------------------------------------------------------------

struct MessageTruth {
    long long messages_sent = 0;  ///< per sending process
    long long bytes_sent = 0;     ///< per sending process
    long long bytes_received_at_server = 0;  ///< total at the receiver
};
MessageTruth small_messages_truth(const Params& p, int nprocs);
MessageTruth big_message_truth(const Params& p);
MessageTruth wrong_way_truth(const Params& p);

struct RmaTruth {
    long long puts = 0, gets = 0, accs = 0;   ///< totals across processes
    long long put_bytes = 0, get_bytes = 0, acc_bytes = 0;
};
RmaTruth allcount_truth(const Params& p, int nprocs);

struct IoTruth {
    long long ops = 0;            ///< total read+write data operations
    long long bytes_written = 0;  ///< totals across processes
    long long bytes_read = 0;
};
IoTruth io_stripes_truth(const Params& p, int nprocs);

}  // namespace m2p::ppm
