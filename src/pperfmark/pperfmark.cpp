#include "pperfmark/pperfmark.hpp"

#include "pperfmark/detail.hpp"
#include "util/clock.hpp"

namespace m2p::ppm {

namespace {
constexpr const char* kModule = "pperfmark";
}

AppFuncs app_funcs(simmpi::World& world) {
    instr::Registry& reg = world.registry();
    const auto app = static_cast<std::uint32_t>(instr::Category::AppCode);
    AppFuncs f;
    f.Gsend_message = reg.register_function("Gsend_message", kModule, app);
    f.Grecv_message = reg.register_function("Grecv_message", kModule, app);
    f.waste_time = reg.register_function("waste_time", kModule, app);
    f.bottleneckProcedure = reg.register_function("bottleneckProcedure", kModule, app);
    f.childFunction = reg.register_function("childFunction", kModule, app);
    f.parentFunction = reg.register_function("parentFunction", kModule, app);
    f.exchng2 = reg.register_function("exchng2", kModule, app);
    f.exchng1 = reg.register_function("exchng1", kModule, app);
    f.compute_sweep = reg.register_function("compute_sweep", kModule, app);
    return f;
}

void register_all(simmpi::World& world, const Params& params) {
    auto cx = std::make_shared<detail::Ctx>();
    cx->p = params;
    cx->f = app_funcs(world);
    instr::Registry& reg = world.registry();
    const auto app = static_cast<std::uint32_t>(instr::Category::AppCode);
    for (int i = 0; i < params.irrelevant_procedures; ++i)
        cx->f.irrelevantProcedures.push_back(reg.register_function(
            "irrelevantProcedure" + std::to_string(i), kModule, app));
    detail::register_mpi1(world, cx);
    detail::register_mpi2(world, cx);
    detail::register_io(world, cx);
}

namespace detail {

void waste_time(simmpi::Rank& r, const Ctx& cx, int units) {
    instr::FunctionGuard g(r.world().registry(), cx.f.waste_time);
    util::burn_thread_cpu(units * cx.p.waste_unit_seconds);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Ground truths (paper section 5's per-process-output / source-derived
// expected values)
// ---------------------------------------------------------------------------

MessageTruth small_messages_truth(const Params& p, int nprocs) {
    MessageTruth t;
    t.messages_sent = p.iterations;
    t.bytes_sent = static_cast<long long>(p.iterations) * p.small_message_bytes;
    t.bytes_received_at_server = t.bytes_sent * (nprocs - 1);
    return t;
}

MessageTruth big_message_truth(const Params& p) {
    MessageTruth t;
    // Each of the two processes both sends and receives `iterations`
    // messages per direction.
    t.messages_sent = p.iterations;
    t.bytes_sent = static_cast<long long>(p.iterations) * p.big_message_bytes;
    t.bytes_received_at_server = t.bytes_sent;
    return t;
}

MessageTruth wrong_way_truth(const Params& p) {
    MessageTruth t;
    t.messages_sent = static_cast<long long>(p.iterations) * p.wrongway_batch;
    t.bytes_sent = t.messages_sent * p.small_message_bytes;
    t.bytes_received_at_server = t.bytes_sent;
    return t;
}

IoTruth io_stripes_truth(const Params& p, int nprocs) {
    IoTruth t;
    // Per process per round: one write_at and one read_at of a chunk.
    t.ops = 2LL * p.io_rounds * nprocs;
    t.bytes_written = static_cast<long long>(p.io_rounds) * nprocs * p.io_chunk_bytes;
    t.bytes_read = t.bytes_written;
    return t;
}

RmaTruth allcount_truth(const Params& p, int nprocs) {
    RmaTruth t;
    const long long per_origin =
        static_cast<long long>(p.epochs) * p.rma_ops_per_epoch;
    const long long origins = nprocs - 1;
    t.puts = per_origin * origins;
    t.gets = per_origin * origins;
    t.accs = per_origin * origins;
    t.put_bytes = t.puts * p.rma_bytes;
    t.get_bytes = t.gets * p.rma_bytes;
    // Accumulates move int arrays of rma_bytes bytes as well.
    t.acc_bytes = t.accs * p.rma_bytes;
    return t;
}

}  // namespace m2p::ppm
